// ipa_site: run an IPA grid site (manager node) as a standalone daemon.
//
// Brings up the SOAP and RMI endpoints on TCP, optionally generates and
// publishes demo datasets, prints a ready-to-use user token, then serves
// until EOF on stdin (pipe-friendly) or SIGINT.
//
//   ipa_site [--soap-port P] [--rpc-port P] [--nodes N]
//            [--staging DIR] [--demo-events N] [--secret S]
//
// Connect with:  ipa_shell --connect http://127.0.0.1:P --token <printed>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/log.hpp"
#include "obs/flight.hpp"
#include "physics/event_gen.hpp"
#include "services/manager.hpp"
#include "workloads/workloads.hpp"

using namespace ipa;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  // Line-buffer stdout so the banner (with the token) reaches logs/pipes
  // immediately when the daemon is detached.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  log::set_global_level(log::Level::kInfo);
  // A crashing daemon dumps its flight journals to stderr before dying, so
  // the last seconds of activity survive in the log.
  obs::FlightRecorder::install_crash_handler();

  std::uint16_t soap_port = 8443;
  std::uint16_t rpc_port = 8444;
  int nodes = 16;
  std::string staging = "/tmp/ipa-site-staging";
  std::uint64_t demo_events = 50000;
  std::string secret = "ipa-dev-secret";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--soap-port") soap_port = static_cast<std::uint16_t>(std::atoi(next()));
    else if (arg == "--rpc-port") rpc_port = static_cast<std::uint16_t>(std::atoi(next()));
    else if (arg == "--nodes") nodes = std::atoi(next());
    else if (arg == "--staging") staging = next();
    else if (arg == "--demo-events") demo_events = std::strtoull(next(), nullptr, 10);
    else if (arg == "--secret") secret = next();
    else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  services::ManagerConfig config;
  config.soap_host = "127.0.0.1";
  config.soap_port = soap_port;
  config.rpc_endpoint = Uri::parse("tcp://127.0.0.1:" + std::to_string(rpc_port)).value();
  config.staging_dir = staging;
  config.vo_secret = secret;
  config.site_max_nodes = nodes;

  auto manager = services::ManagerNode::start(std::move(config));
  if (!manager.is_ok()) {
    std::fprintf(stderr, "manager start: %s\n", manager.status().to_string().c_str());
    return 1;
  }

  // Demo datasets so a fresh site has something to analyze.
  if (demo_events > 0) {
    const auto data_dir = std::filesystem::path(staging) / "site-data";
    std::filesystem::create_directories(data_dir);
    const std::string lc = (data_dir / "lc-higgs.ipd").string();
    const std::string dna = (data_dir / "reads.ipd").string();
    const std::string ticks = (data_dir / "ticks.ipd").string();
    std::printf("generating demo datasets (%llu events) ...\n",
                static_cast<unsigned long long>(demo_events));
    (void)physics::generate_dataset(lc, "lc-higgs", demo_events);
    (void)workloads::generate_dna_dataset(dna, "reads", demo_events / 4);
    (void)workloads::generate_stock_dataset(ticks, "ticks", demo_events);
    (void)(*manager)->publish_dataset("lc/2006/higgs", "ds-higgs",
                                      {{"experiment", "LC"}}, lc);
    (void)(*manager)->publish_dataset("bio/dna/reads", "ds-reads",
                                      {{"experiment", "genome"}}, dna);
    (void)(*manager)->publish_dataset("finance/ticks", "ds-ticks",
                                      {{"domain", "finance"}}, ticks);
    physics::register_higgs_plugin();
  }

  const std::string token =
      (*manager)->authority().issue("cn=demo-user", {"analysis"}, 24 * 3600);

  std::printf("\nIPA site is up.\n");
  std::printf("  SOAP (web services): %s\n", (*manager)->soap_endpoint().to_string().c_str());
  std::printf("  RMI  (result polling): %s\n", (*manager)->rpc_endpoint().to_string().c_str());
  std::printf("  demo user token:\n    %s\n\n", token.c_str());
  std::printf("connect with:\n  ipa_shell --connect %s --token '%s'\n\n",
              (*manager)->soap_endpoint().to_string().c_str(), token.c_str());
  std::printf("serving until EOF/SIGINT ...\n");

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // Interactive: pressing enter/EOF stops the site. Detached (stdin already
  // at EOF, e.g. started with </dev/null): serve until a signal arrives.
  bool stdin_open = true;
  while (!g_stop) {
    if (stdin_open) {
      const int c = std::getchar();
      if (c == EOF) {
        if (std::feof(stdin) == 0) continue;  // EINTR etc.
        stdin_open = false;
      } else if (c == '\n') {
        break;
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  }
  std::printf("shutting down.\n");
  (*manager)->stop();
  return 0;
}
