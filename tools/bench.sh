#!/bin/sh
# Benchmark regression gate: build the hot-path benches in Release, run them
# with JSON output, and diff against the checked-in baselines in
# BENCH_batch.json (tools/bench_diff.py enforces the per-benchmark floors).
#
# Usage: tools/bench.sh [--update-out DIR]
#   --update-out DIR  also copy the raw JSON results into DIR (for refreshing
#                     the baseline file by hand after an intentional change).
# Set IPA_BENCH_JOBS to override build parallelism.
set -eu

cd "$(dirname "$0")/.."
jobs="${IPA_BENCH_JOBS:-2}"
out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

update_out=""
if [ "${1:-}" = "--update-out" ]; then
  update_out="$2"
  mkdir -p "$update_out"
fi

echo "== build benches (Release) =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$jobs" \
  --target bench_engine bench_merge bench_hist bench_staging bench_server

echo "== run benches =="
for bench in bench_engine bench_merge bench_hist bench_staging; do
  "build-release/bench/$bench" \
    --benchmark_out="$out_dir/$bench.json" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.2
done
# Custom harness (not google-benchmark): enforces its own >=10x-capacity and
# flat-p99 gates, and emits compatible JSON for the absolute floors below.
"build-release/bench/bench_server" --out "$out_dir/bench_server.json"

if [ -n "$update_out" ]; then
  cp "$out_dir"/bench_*.json "$update_out/"
  echo "raw results copied to $update_out"
fi

echo "== diff against BENCH_batch.json =="
python3 tools/bench_diff.py BENCH_batch.json \
  "$out_dir/bench_engine.json" "$out_dir/bench_merge.json" "$out_dir/bench_hist.json" \
  "$out_dir/bench_staging.json" "$out_dir/bench_server.json"
