// ipa_shell: interactive command-line client for an IPA grid site — the
// terminal counterpart of the paper's Java Analysis Studio plug-ins.
//
//   ipa_shell --connect http://host:port --token <proxy-token> [--script cmds]
//
// Commands (also `help` inside the shell):
//   browse [path]          list a catalog level
//   search <query>         metadata query ("experiment == 'LC' && size_mb > 10")
//   locate <dataset-id>    resolve a dataset's physical location
//   session <nodes>        create + activate an analysis session
//   select <dataset-id>    locate/split/distribute a dataset to the engines
//   load <file.paw>        stage PawScript analysis code from a file
//   plugin <name>          stage a pre-installed native analyzer
//   run | run <n> | pause | stop | rewind
//   status                 per-engine progress
//   watch                  poll until finished, live progress + histogram list
//   show [path]            print a merged histogram (ASCII)
//   svg <path> <file>      export a merged histogram as SVG
//   close | quit
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>

#include "client/grid_client.hpp"
#include "common/strings.hpp"
#include "http/http.hpp"
#include "perf/scenario.hpp"
#include "viz/render.hpp"

using namespace ipa;

namespace {

struct Shell {
  std::optional<client::GridClient> grid;
  std::optional<client::GridSession> session;
  aida::Tree latest;
  double staged_mb = 0;  // size of the last staged dataset, for `stats`

  bool require_grid() const {
    if (!grid) std::printf("not connected\n");
    return grid.has_value();
  }
  bool require_session() const {
    if (!session) std::printf("no session (use: session <nodes>)\n");
    return session.has_value();
  }

  void cmd_browse(const std::string& path) {
    if (!require_grid()) return;
    auto listing = grid->browse(path);
    if (!listing.is_ok()) {
      std::printf("error: %s\n", listing.status().to_string().c_str());
      return;
    }
    for (const auto& folder : listing->folders) std::printf("  %s/\n", folder.c_str());
    for (const auto& entry : listing->datasets) {
      std::printf("  %-28s id=%s", entry.path.c_str(), entry.id.c_str());
      const auto records = entry.metadata.find("records");
      if (records != entry.metadata.end()) std::printf("  records=%s", records->second.c_str());
      std::printf("\n");
    }
  }

  void cmd_search(const std::string& query) {
    if (!require_grid()) return;
    auto hits = grid->search(query);
    if (!hits.is_ok()) {
      std::printf("error: %s\n", hits.status().to_string().c_str());
      return;
    }
    for (const auto& entry : *hits) {
      std::printf("  %-28s id=%s\n", entry.path.c_str(), entry.id.c_str());
    }
    std::printf("  (%zu match(es))\n", hits->size());
  }

  void cmd_locate(const std::string& id) {
    if (!require_grid()) return;
    auto location = grid->locate(id);
    if (!location.is_ok()) {
      std::printf("error: %s\n", location.status().to_string().c_str());
      return;
    }
    std::printf("  location: %s\n  splitter: %s\n", location->first.c_str(),
                location->second.c_str());
  }

  void cmd_session(int nodes) {
    if (!require_grid()) return;
    if (session) {
      std::printf("close the current session first\n");
      return;
    }
    auto created = grid->create_session(nodes);
    if (!created.is_ok()) {
      std::printf("error: %s\n", created.status().to_string().c_str());
      return;
    }
    if (Status activated = created->activate(); !activated.is_ok()) {
      std::printf("activate failed: %s\n", activated.to_string().c_str());
      (void)created->close();
      return;
    }
    std::printf("session %s: %d engine(s) ready on queue '%s'\n",
                created->info().session_id.c_str(), created->info().granted_nodes,
                created->info().queue.c_str());
    session.emplace(std::move(*created));
  }

  void cmd_select(const std::string& id) {
    if (!require_session()) return;
    auto staged = session->select_dataset(id);
    if (!staged.is_ok()) {
      std::printf("error: %s\n", staged.status().to_string().c_str());
      return;
    }
    std::printf("staged %llu records (%s) as %d part(s)\n",
                static_cast<unsigned long long>(staged->records),
                strings::human_bytes(staged->bytes).c_str(), staged->parts);
    staged_mb = static_cast<double>(staged->bytes) / (1024.0 * 1024.0);
  }

  void cmd_load(const std::string& file) {
    if (!require_session()) return;
    std::ifstream in(file);
    if (!in) {
      std::printf("cannot read %s\n", file.c_str());
      return;
    }
    std::ostringstream source;
    source << in.rdbuf();
    const Status staged = session->stage_script(file, source.str());
    if (!staged.is_ok()) {
      std::printf("stage failed: %s\n", staged.to_string().c_str());
      return;
    }
    std::printf("staged %zu bytes of PawScript to every engine\n", source.str().size());
  }

  void cmd_plugin(const std::string& name) {
    if (!require_session()) return;
    const Status staged = session->stage_plugin(name);
    std::printf("%s\n", staged.is_ok() ? "plugin staged" : staged.to_string().c_str());
  }

  void cmd_control(const std::string& verb, std::uint64_t n) {
    if (!require_session()) return;
    Status status;
    if (verb == "run" && n > 0) status = session->run_records(n);
    else if (verb == "run") status = session->run();
    else if (verb == "pause") status = session->pause();
    else if (verb == "stop") status = session->stop();
    else status = session->rewind();
    std::printf("%s\n", status.is_ok() ? "ok" : status.to_string().c_str());
  }

  void cmd_status() {
    if (!require_session()) return;
    auto update = session->poll();
    if (!update.is_ok()) {
      std::printf("error: %s\n", update.status().to_string().c_str());
      return;
    }
    if (update->changed) latest = std::move(update->merged);
    for (const auto& report : update->engines) {
      std::printf("  %-24s %-9s %s\n", report.engine_id.c_str(),
                  std::string(engine::to_string(report.state)).c_str(),
                  viz::ascii_progress(report.processed, report.total).c_str());
      if (!report.error.empty()) std::printf("    error: %s\n", report.error.c_str());
    }
    if (update->engines.empty()) std::printf("  (no engine reports yet)\n");
  }

  void cmd_watch() {
    if (!require_session()) return;
    const std::size_t expected =
        static_cast<std::size_t>(session->info().granted_nodes);
    while (true) {
      auto update = session->poll();
      if (!update.is_ok()) {
        std::printf("error: %s\n", update.status().to_string().c_str());
        return;
      }
      if (update->changed) latest = std::move(update->merged);
      std::printf("\r  %s", viz::ascii_progress(update->total_processed(),
                                                update->total_records())
                                .c_str());
      std::fflush(stdout);
      if (update->all_engines_done(expected)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("\nmerged objects:\n");
    for (const auto& path : latest.paths()) std::printf("  %s\n", path.c_str());
  }

  void cmd_show(const std::string& path) {
    refresh();
    if (path.empty()) {
      for (const auto& p : latest.paths()) std::printf("  %s\n", p.c_str());
      return;
    }
    auto hist = latest.histogram1d(path);
    if (!hist.is_ok()) {
      std::printf("error: %s\n", hist.status().to_string().c_str());
      return;
    }
    std::printf("%s\n", viz::ascii_histogram(**hist).c_str());
  }

  void cmd_svg(const std::string& path, const std::string& file) {
    refresh();
    auto hist = latest.histogram1d(path);
    if (!hist.is_ok()) {
      std::printf("error: %s\n", hist.status().to_string().c_str());
      return;
    }
    const Status written = viz::write_file(file, viz::svg_histogram(**hist));
    std::printf("%s\n", written.is_ok() ? ("wrote " + file).c_str()
                                        : written.to_string().c_str());
  }

  void cmd_stats() {
    if (!require_session()) return;
    // The site serves live phase timings on the same HTTP listener as its
    // web services.
    const Uri& endpoint = grid->soap_endpoint();
    auto http = http::Client::connect(endpoint.host, endpoint.port);
    if (!http.is_ok()) {
      std::printf("error: %s\n", http.status().to_string().c_str());
      return;
    }
    auto response = http->get("/status?session=" + session->info().session_id);
    if (!response.is_ok() || response->status != 200) {
      std::printf("error: /status %s\n", response.is_ok()
                                             ? std::to_string(response->status).c_str()
                                             : response.status().to_string().c_str());
      return;
    }
    const auto phase_of = [&response](const char* name) {
      const std::string needle = "\"" + std::string(name) + "\":";
      const std::size_t at = response->body.find(needle);
      return at == std::string::npos
                 ? 0.0
                 : std::strtod(response->body.c_str() + at + needle.size(), nullptr);
    };

    const perf::ScenarioTimings model = perf::ScenarioTimings::paper_prediction(
        staged_mb, session->info().granted_nodes);
    const double model_phases[6] = {model.locate_s, model.split_s,  model.transfer_s,
                                    model.code_stage_s, model.run_s, model.merge_s};
    std::printf("  %-12s %12s %14s\n", "phase", "live (s)", "paper model (s)");
    double live_total = 0;
    for (int i = 0; i < 6; ++i) {
      const double live = phase_of(perf::ScenarioTimings::kPhaseNames[i]);
      live_total += live;
      std::printf("  %-12s %12.4f %14.4f\n", perf::ScenarioTimings::kPhaseNames[i], live,
                  model_phases[i]);
    }
    std::printf("  %-12s %12.4f %14.4f\n", "total", live_total, model.total_s());
    std::printf("  (model: %.1f MB dataset on %d node(s); live merge accrues per poll)\n",
                staged_mb, session->info().granted_nodes);
  }

  void cmd_close() {
    if (!session) return;
    (void)session->close();
    session.reset();
    latest.clear();
    std::printf("session closed\n");
  }

  void refresh() {
    if (!session) return;
    auto update = session->poll();
    if (update.is_ok() && update->changed) latest = std::move(update->merged);
  }
};

const char* kHelp = R"(commands:
  browse [path]       search <query>      locate <id>
  session <nodes>     select <id>         load <file.paw>     plugin <name>
  run | run <n>       pause | stop | rewind
  status | watch      show [path]         svg <path> <file>
  stats               live phase timings vs the paper's cost model
  close               quit
)";

}  // namespace

int main(int argc, char** argv) {
  std::string endpoint_text, token, command_script;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--connect") endpoint_text = next();
    else if (arg == "--token") token = next();
    else if (arg == "--script") command_script = next();
    else {
      std::fprintf(stderr, "unknown flag %s\n%s", arg.c_str(), kHelp);
      return 2;
    }
  }
  if (endpoint_text.empty() || token.empty()) {
    std::fprintf(stderr, "usage: ipa_shell --connect http://host:port --token <proxy>\n");
    return 2;
  }

  auto endpoint = Uri::parse(endpoint_text);
  if (!endpoint.is_ok()) {
    std::fprintf(stderr, "bad endpoint: %s\n", endpoint.status().to_string().c_str());
    return 2;
  }
  Shell shell;
  auto grid = client::GridClient::connect(*endpoint, token);
  if (!grid.is_ok()) {
    std::fprintf(stderr, "connect: %s\n", grid.status().to_string().c_str());
    return 1;
  }
  shell.grid.emplace(std::move(*grid));
  std::printf("connected to %s\n", endpoint_text.c_str());

  std::istringstream scripted(command_script);
  std::istream& input = command_script.empty() ? std::cin : scripted;
  const bool interactive = command_script.empty();

  std::string line;
  while (true) {
    if (interactive) {
      std::printf("ipa> ");
      std::fflush(stdout);
    }
    if (!std::getline(input, line, interactive ? '\n' : ';')) break;
    const auto words = strings::split_trimmed(line, ' ');
    if (words.empty()) continue;
    const std::string& cmd = words[0];
    const std::string arg1 = words.size() > 1 ? words[1] : "";
    const std::string rest =
        words.size() > 1
            ? std::string(strings::trim(line.substr(line.find(words[1], cmd.size()))))
            : "";

    if (cmd == "quit" || cmd == "exit") break;
    else if (cmd == "help") std::printf("%s", kHelp);
    else if (cmd == "browse") shell.cmd_browse(arg1);
    else if (cmd == "search") shell.cmd_search(rest);
    else if (cmd == "locate") shell.cmd_locate(arg1);
    else if (cmd == "session") shell.cmd_session(arg1.empty() ? 4 : std::atoi(arg1.c_str()));
    else if (cmd == "select") shell.cmd_select(arg1);
    else if (cmd == "load") shell.cmd_load(arg1);
    else if (cmd == "plugin") shell.cmd_plugin(arg1);
    else if (cmd == "run") shell.cmd_control("run", arg1.empty() ? 0 : std::strtoull(arg1.c_str(), nullptr, 10));
    else if (cmd == "pause" || cmd == "stop" || cmd == "rewind") shell.cmd_control(cmd, 0);
    else if (cmd == "status") shell.cmd_status();
    else if (cmd == "stats") shell.cmd_stats();
    else if (cmd == "watch") shell.cmd_watch();
    else if (cmd == "show") shell.cmd_show(arg1);
    else if (cmd == "svg") shell.cmd_svg(arg1, words.size() > 2 ? words[2] : "out.svg");
    else if (cmd == "close") shell.cmd_close();
    else std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
  }
  shell.cmd_close();
  return 0;
}
