#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against checked-in baselines.

Usage: tools/bench_diff.py BASELINE.json CURRENT.json [CURRENT2.json ...]

BASELINE is the regression-gate file (BENCH_batch.json): its `gates` list
holds benchmark names with the items-per-second floor they must sustain.
CURRENT files are `--benchmark_out` JSON from the binaries. A benchmark
regresses when its items_per_second drops below floor * (1 - tolerance);
a gate entry may carry its own `tolerance` overriding the file-level one
(used to hold the instrumented engine hot path within 3%).
Gated benchmarks missing from the current run fail the gate (a renamed
benchmark must come with a baseline update). Exit code 1 on any regression.
"""
import json
import sys


def load_results(paths):
    results = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            results[bench["name"]] = bench
    return results


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    with open(argv[1]) as f:
        baseline = json.load(f)
    current = load_results(argv[2:])

    default_tolerance = baseline.get("tolerance", 0.15)
    failures = []
    print(f"{'benchmark':44} {'floor':>12} {'current':>12}  verdict")
    for gate in baseline["gates"]:
        name, floor = gate["name"], gate["min_items_per_second"]
        tolerance = gate.get("tolerance", default_tolerance)
        bench = current.get(name)
        if bench is None:
            failures.append(f"{name}: missing from current run")
            print(f"{name:44} {floor:12.3e} {'absent':>12}  FAIL")
            continue
        ips = bench.get("items_per_second")
        if ips is None:
            failures.append(f"{name}: no items_per_second counter")
            print(f"{name:44} {floor:12.3e} {'no-items':>12}  FAIL")
            continue
        threshold = floor * (1.0 - tolerance)
        ok = ips >= threshold
        print(f"{name:44} {floor:12.3e} {ips:12.3e}  {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{name}: {ips:.3e} items/s < {threshold:.3e} "
                f"(floor {floor:.3e} - {tolerance:.0%})")

    if failures:
        print("\nbench regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
