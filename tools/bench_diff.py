#!/usr/bin/env python3
"""Compare benchmark/load runs against checked-in gates.

Usage:
  tools/bench_diff.py BASELINE.json CURRENT.json [CURRENT2.json ...]
  tools/bench_diff.py --slo REPORT.json [REPORT2.json ...]

Benchmark mode: BASELINE is the regression-gate file (BENCH_batch.json); its
`gates` list holds benchmark names with the items-per-second floor they must
sustain. CURRENT files are `--benchmark_out` JSON from the binaries. A
benchmark regresses when its items_per_second drops below
floor * (1 - tolerance); a gate entry may carry its own `tolerance`
overriding the file-level one (used to hold the instrumented engine hot path
within 3%). Gated benchmarks missing from the current run fail the gate (a
renamed benchmark must come with a baseline update).

SLO mode (--slo): REPORT files are `bench_load --report` JSON. Every
violation prints as one line with the gate name, the limit, the measured
value and the percent delta — the diffable evidence the CI log keeps.

Exit code 1 on any regression/violation in either mode.
"""
import json
import sys


def load_results(paths):
    results = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            results[bench["name"]] = bench
    return results


def delta_pct(old, new):
    """Signed percent change from old to new; 'n/a' when old is 0."""
    if old == 0:
        return "n/a"
    return f"{(new - old) / abs(old) * 100.0:+.1f}%"


def slo_mode(paths):
    """One line per SLO violation: gate, limit (old), actual (new), delta."""
    failed = False
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        profile = report.get("profile", "?")
        violations = report.get("violations", [])
        scenario = report.get("scenario", {})
        header = (f"{path}: profile={profile} users={scenario.get('users', '?')} "
                  f"iterations={scenario.get('iterations_done', '?')} "
                  f"wall={scenario.get('wall_s', 0):.1f}s")
        if report.get("ok", False) and not violations:
            print(f"{header}  ok")
            continue
        failed = True
        print(f"{header}  FAIL ({len(violations)} violations)")
        for v in violations:
            gate, limit, actual = v["gate"], v["limit"], v["actual"]
            # Floor gates (counts/min_iterations) fail low, latency/rate
            # gates fail high; the signed delta tells which without a flag.
            print(f"  - {gate}: limit {limit:.6g} -> actual {actual:.6g} "
                  f"({delta_pct(limit, actual)})")
    if failed:
        print("\nload SLO gate FAILED")
        return 1
    print("\nload SLO gate passed")
    return 0


def main(argv):
    if len(argv) >= 3 and argv[1] == "--slo":
        return slo_mode(argv[2:])
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    with open(argv[1]) as f:
        baseline = json.load(f)
    current = load_results(argv[2:])

    default_tolerance = baseline.get("tolerance", 0.15)
    failures = []
    print(f"{'benchmark':44} {'floor':>12} {'current':>12} {'delta':>8}  verdict")
    for gate in baseline["gates"]:
        name, floor = gate["name"], gate["min_items_per_second"]
        tolerance = gate.get("tolerance", default_tolerance)
        bench = current.get(name)
        if bench is None:
            failures.append(f"{name}: missing from current run "
                            f"(floor {floor:.3e}, current absent)")
            print(f"{name:44} {floor:12.3e} {'absent':>12} {'':>8}  FAIL")
            continue
        ips = bench.get("items_per_second")
        if ips is None:
            failures.append(f"{name}: no items_per_second counter "
                            f"(floor {floor:.3e}, current n/a)")
            print(f"{name:44} {floor:12.3e} {'no-items':>12} {'':>8}  FAIL")
            continue
        threshold = floor * (1.0 - tolerance)
        ok = ips >= threshold
        delta = delta_pct(floor, ips)
        print(f"{name:44} {floor:12.3e} {ips:12.3e} {delta:>8}  {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{name}: {ips:.3e} items/s < {threshold:.3e} "
                f"(floor {floor:.3e} - {tolerance:.0%}, delta {delta})")

    if failures:
        print("\nbench regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
