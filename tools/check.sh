#!/bin/sh
# Repo verification: the tier-1 build-and-test pass, one sanitizer
# configuration over the fault-sensitive suites (chaos, net, rpc, obs,
# and the common log-sink races), a thread-sanitizer pass over the
# parallel staging pipeline, and a
# Release build + smoke run of the hot-path benchmarks (full regression
# gating against BENCH_batch.json lives in tools/bench.sh).
#
# Usage: tools/check.sh [address|thread|undefined]
#   The optional argument picks the sanitizer for the second pass
#   (default: address). Set IPA_CHECK_JOBS to override parallelism.
set -eu

cd "$(dirname "$0")/.."
jobs="${IPA_CHECK_JOBS:-2}"
san="${1:-address}"

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

echo "== tier 2: ${san} sanitizer over chaos/net/rpc/obs/common =="
cmake -B "build-${san}" -S . -DIPA_SANITIZE="${san}" >/dev/null
cmake --build "build-${san}" -j "$jobs" \
  --target ipa_test_chaos ipa_test_net ipa_test_rpc ipa_test_obs \
  ipa_test_common
(cd "build-${san}" && \
  ctest --output-on-failure -j "$jobs" -L 'chaos|net|rpc|obs|common')

echo "== tier staging: thread sanitizer over the staging pipeline =="
# The parallel split + session fan-out + bounded server pool all cross the
# shared staging pool; TSan is the tier that would catch a race there.
cmake -B build-thread -S . -DIPA_SANITIZE=thread >/dev/null
cmake --build build-thread -j "$jobs" --target ipa_test_staging
(cd build-thread && ctest --output-on-failure -j "$jobs" -L staging)

echo "== tier 3: Release bench build + smoke run =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$jobs" \
  --target bench_engine bench_merge bench_hist
for bench in bench_engine bench_merge bench_hist; do
  # One rep per benchmark: catches crashes/asserts without the multi-minute
  # timed run (the older benchmark lib wants a plain double for min_time).
  "build-release/bench/$bench" --benchmark_min_time=0.01 >/dev/null
done

echo "== all checks passed =="
