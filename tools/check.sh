#!/bin/sh
# Repo verification tiers:
#   0  source-level lint (tools/ipa_lint.py + its self-test)
#   1  warnings-as-errors build + full test suite
#   1d /debug endpoint smoke: boot build/tools/ipa_site, curl /metrics,
#      /status and every /debug/* endpoint (tools/debug_smoke.py)
#   2  sanitizer pass over the fault-sensitive suites (chaos, net, rpc,
#      obs, common) — address and/or undefined
#   2u UBSan over the value-heavy suites (data, serialize, xml)
#   T  thread sanitizer over the reactor-backed net/rpc/http suites, the
#      staging pipeline and the common concurrency primitives
#   C  Clang thread-safety-analysis build, when clang++ is installed —
#      proves the IPA_GUARDED_BY/IPA_REQUIRES annotations
#   3  Release bench build + smoke run (full regression gating against
#      BENCH_batch.json lives in tools/bench.sh)
#   L  load harness: SLO-gated multi-user smoke + chaos soak smoke
#      (bench_load against bench/slo.json; see docs/load-testing.md)
#
# Usage: tools/check.sh [address|thread|undefined|all]
#   The optional argument picks the sanitizer for tier 2 (default:
#   address); `all` runs both address and undefined. Set IPA_CHECK_JOBS
#   to override parallelism.
set -eu

cd "$(dirname "$0")/.."
jobs="${IPA_CHECK_JOBS:-2}"
san="${1:-address}"
case "$san" in
  all) sanitizers="address undefined" ;;
  address|thread|undefined) sanitizers="$san" ;;
  *) echo "usage: tools/check.sh [address|thread|undefined|all]" >&2; exit 2 ;;
esac

echo "== tier 0: ipa-lint (source-level concurrency contracts) =="
python3 tools/ipa_lint.py
python3 tools/ipa_lint.py --self-test

echo "== tier 1: -Werror build + full test suite =="
cmake -B build -S . -DIPA_WERROR=ON >/dev/null
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

echo "== tier 1d: /debug endpoint smoke against a live site =="
# Boots build/tools/ipa_site on ephemeral ports and curls /metrics, /status
# and every /debug/* endpoint (see tools/debug_smoke.py).
python3 tools/debug_smoke.py --site build/tools/ipa_site

for s in $sanitizers; do
  echo "== tier 2: ${s} sanitizer over chaos/net/rpc/obs/common =="
  cmake -B "build-${s}" -S . -DIPA_SANITIZE="${s}" >/dev/null
  cmake --build "build-${s}" -j "$jobs" \
    --target ipa_test_chaos ipa_test_net ipa_test_rpc ipa_test_obs \
    ipa_test_common
  (cd "build-${s}" && \
    ctest --output-on-failure -j "$jobs" -L 'chaos|net|rpc|obs|common')
done

case " $sanitizers " in *" undefined "*)
  echo "== tier 2u: UBSan over data/serialize/xml =="
  # The value-heavy suites: integer narrowing, enum decoding and XML
  # parsing are where undefined behaviour would hide.
  cmake --build build-undefined -j "$jobs" \
    --target ipa_test_data ipa_test_serialize ipa_test_xml
  (cd build-undefined && \
    ctest --output-on-failure -j "$jobs" -L 'data|serialize|xml')
  ;;
esac

echo "== tier thread: TSan over reactor/servers + staging + primitives =="
# The epoll reactor hands streams between the loop thread, pool workers and
# caller threads; the mux RpcClient shares one connection across callers;
# the parallel split + session fan-out cross the shared staging pool; and
# MpmcQueue/sync underpin every pool. TSan is the tier that would catch a
# race in any of those hand-offs.
cmake -B build-thread -S . -DIPA_SANITIZE=thread >/dev/null
cmake --build build-thread -j "$jobs" --target ipa_test_staging ipa_test_common \
  ipa_test_net ipa_test_rpc ipa_test_http
(cd build-thread && \
  ctest --output-on-failure -j "$jobs" -L 'staging|common|net|rpc|http')

if command -v clang++ >/dev/null 2>&1; then
  echo "== tier clang: thread-safety-analysis build =="
  # -Wthread-safety only exists under Clang; IPA_WERROR turns it on and
  # promotes it to an error, proving the sync.hpp annotations.
  cmake -B build-clang -S . -DIPA_WERROR=ON \
    -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-clang -j "$jobs"
else
  echo "== tier clang: skipped (clang++ not installed) =="
fi

echo "== tier 3: Release bench build + smoke run =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$jobs" \
  --target bench_engine bench_merge bench_hist bench_server
for bench in bench_engine bench_merge bench_hist; do
  # One rep per benchmark: catches crashes/asserts without the multi-minute
  # timed run (the older benchmark lib wants a plain double for min_time).
  "build-release/bench/$bench" --benchmark_min_time=0.01 >/dev/null
done
# Server-core capacity gate: the binary enforces its own >=10x-connections
# and flat-p99 invariants and exits non-zero on violation (absolute floors
# live in BENCH_batch.json, enforced by tools/bench.sh).
"build-release/bench/bench_server" --conns 2048 --requests 500 >/dev/null

echo "== tier load: SLO-gated multi-user load smoke =="
# Deterministic seeds, small user counts: this is the always-on tier. The
# full 256-user interactive gate is a manual/nightly run:
#   build-release/bench/bench_load --users 256 --profile interactive
cmake --build build-release -j "$jobs" --target bench_load
"build-release/bench/bench_load" --users 24 --iterations 1 --drivers 4 \
  --records 600 --seed 2006 --profile smoke \
  --report build-release/load_report_smoke.json
"build-release/bench/bench_load" --users 8 --iterations 1 --drivers 4 \
  --records 400 --seed 2006 --soak --profile soak_smoke \
  --report build-release/load_report_soak.json
# One-line-per-violation summary of both runs (diffable CI evidence).
python3 tools/bench_diff.py --slo build-release/load_report_smoke.json \
  build-release/load_report_soak.json

echo "== all checks passed =="
