#!/bin/sh
# Repo verification: the tier-1 build-and-test pass, then one sanitizer
# configuration over the fault-sensitive suites (chaos, net, rpc).
#
# Usage: tools/check.sh [address|thread|undefined]
#   The optional argument picks the sanitizer for the second pass
#   (default: address). Set IPA_CHECK_JOBS to override parallelism.
set -eu

cd "$(dirname "$0")/.."
jobs="${IPA_CHECK_JOBS:-2}"
san="${1:-address}"

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

echo "== tier 2: ${san} sanitizer over chaos/net/rpc =="
cmake -B "build-${san}" -S . -DIPA_SANITIZE="${san}" >/dev/null
cmake --build "build-${san}" -j "$jobs" \
  --target ipa_test_chaos ipa_test_net ipa_test_rpc
(cd "build-${san}" && ctest --output-on-failure -j "$jobs" -L 'chaos|net|rpc')

echo "== all checks passed =="
