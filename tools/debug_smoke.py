#!/usr/bin/env python3
"""debug_smoke: curl every observability endpoint of a live ipa_site.

Boots a site on ephemeral ports with no demo data, then checks:

  GET /metrics        200, ipa_build_info present with value 1
  GET /status         200, JSON, sessions array
  GET /debug/journal  200, JSON, at least one thread journal with events
  GET /debug/locks    200, JSON, ranks array
  GET /debug/slow     200, JSON, ops array + default threshold

This is the cheap end-to-end guarantee that the introspection surface stays
wired through routing, rendering and shutdown — unit tests cover the data,
this covers the plumbing.

Usage: tools/debug_smoke.py [--site BIN] [--timeout SECONDS]
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile
import time
import urllib.request

BANNER_RE = re.compile(r"SOAP \(web services\):\s+(http://\S+)")


def fail(message):
    print(f"debug_smoke: FAIL: {message}", file=sys.stderr)
    return 1


def fetch(base, target, timeout):
    with urllib.request.urlopen(base + target, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8", "replace")


def wait_for_banner(proc, deadline):
    """Read stdout lines until the SOAP endpoint line appears."""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            return None
        m = BANNER_RE.search(line)
        if m:
            return m.group(1).rstrip("/")
    return None


def run_checks(base, timeout):
    status, metrics = fetch(base, "/metrics", timeout)
    if status != 200:
        return fail(f"/metrics returned {status}")
    build = re.search(r"^ipa_build_info\{[^}]*\} 1$", metrics, re.MULTILINE)
    if not build:
        return fail("/metrics has no ipa_build_info series with value 1")
    for label in ("build_type=", "git_sha=", "version="):
        if label not in build.group(0):
            return fail(f"ipa_build_info missing label {label}")
    if "ipa_server_queue_delay_seconds" not in metrics:
        return fail("/metrics has no queue-delay histograms")

    status, body = fetch(base, "/status", timeout)
    if status != 200:
        return fail(f"/status returned {status}")
    if "sessions" not in json.loads(body):
        return fail("/status JSON has no sessions array")

    status, body = fetch(base, "/debug/journal", timeout)
    if status != 200:
        return fail(f"/debug/journal returned {status}")
    journal = json.loads(body)
    threads = journal.get("threads", [])
    # Serving this very request opened a connection, so at least the reactor
    # thread has journaled something by the time the response renders.
    if not threads or not any(t.get("events") for t in threads):
        return fail("/debug/journal has no journaled events")

    status, body = fetch(base, "/debug/locks", timeout)
    if status != 200:
        return fail(f"/debug/locks returned {status}")
    if not isinstance(json.loads(body).get("ranks"), list):
        return fail("/debug/locks JSON has no ranks array")

    status, body = fetch(base, "/debug/slow", timeout)
    if status != 200:
        return fail(f"/debug/slow returned {status}")
    slow = json.loads(body)
    if not isinstance(slow.get("ops"), list) or "default_threshold_s" not in slow:
        return fail("/debug/slow JSON missing ops/default_threshold_s")

    print("debug_smoke: all observability endpoints OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--site", default="build/tools/ipa_site",
                        help="path to the ipa_site binary")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="overall startup/request deadline (seconds)")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="ipa-debug-smoke-") as staging:
        proc = subprocess.Popen(
            [args.site, "--soap-port", "0", "--rpc-port", "0",
             "--demo-events", "0", "--staging", staging],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True)
        try:
            base = wait_for_banner(proc, time.monotonic() + args.timeout)
            if base is None:
                return fail("site never printed its SOAP endpoint")
            return run_checks(base, args.timeout)
        finally:
            try:
                proc.stdin.write("\n")  # newline on stdin = clean shutdown
                proc.stdin.flush()
                proc.wait(timeout=10)
            except (OSError, subprocess.TimeoutExpired, ValueError):
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    sys.exit(main())
