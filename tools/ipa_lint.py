#!/usr/bin/env python3
"""ipa-lint: source-level concurrency and hygiene checks for the IPA tree.

The third layer of the concurrency-contract tooling (see
docs/static-analysis.md): Clang thread-safety analysis proves lock/field
relationships at compile time, the lock-rank runtime catches ordering
inversions, and this linter enforces the invariants neither can see —
that all locking goes *through* src/common/sync.hpp in the first place,
and a few project hygiene rules.

Rules (each suppressible, see below):

  raw-mutex           std::mutex / std::shared_mutex / std::recursive_mutex /
                      std::condition_variable[_any] / std::lock_guard /
                      std::unique_lock / std::shared_lock / std::scoped_lock
                      anywhere except src/common/sync.hpp|sync.cpp. Raw
                      primitives bypass both the thread-safety annotations
                      and the lock-rank checker.
  detach              std::thread/jthread .detach() — detached threads
                      outlive their state and race shutdown.
  blocking-under-lock a blocking call (RPC invoke, send_all/write_all,
                      ::connect, sleep_for, read_exact/read_some) lexically
                      inside a LockGuard/UniqueLock scope. Holding a lock
                      across the network turns one slow peer into a pile-up.
  wallclock           std::chrono::system_clock::now() outside
                      common/clock.cpp — all timing goes through ipa::Clock
                      so gridsim/ManualClock tests stay deterministic.
  include-guard       a .hpp file without #pragma once.
  metric-name         a Registry counter()/gauge()/histogram() registration
                      whose literal name breaks the conventions: counters
                      end in _total; histograms end in a unit suffix
                      (_seconds/_records/_bytes); gauges never end in _total;
                      nothing ends in the reserved exposition suffixes
                      _bucket/_sum/_count; label literals sorted by key
                      (the registry sorts at render time — unsorted literals
                      make grep and the rendered output disagree).

Suppressions: a comment `// ipa-lint: allow(rule)` on the violating line or
the line above suppresses one finding. For blocking-under-lock the comment
may also sit on (or directly above) the lock declaration that opens the
scope, blessing the whole critical section — that is the idiom for channel
locks whose entire point is to serialize wire traffic.
`// ipa-lint: skip-file(rule)` anywhere in a file suppresses the rule for
the whole file; `skip-file(*)` skips the file entirely.

Usage:
  tools/ipa_lint.py [--root DIR]       lint src/ and tests/ (exit 1 on findings)
  tools/ipa_lint.py --self-test        run each tests/lint/fixtures sample and
                                       require exactly its named rule to fire
"""

import argparse
import os
import re
import sys

RULES = ("raw-mutex", "detach", "blocking-under-lock", "wallclock", "include-guard",
         "metric-name")

# Files allowed to use raw std primitives: the wrapper itself.
RAW_MUTEX_ALLOWED = {
    os.path.join("src", "common", "sync.hpp"),
    os.path.join("src", "common", "sync.cpp"),
}
# The one blessed wall-clock site.
WALLCLOCK_ALLOWED = {os.path.join("src", "common", "clock.cpp")}

RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|shared_lock|scoped_lock)\b"
)
DETACH_RE = re.compile(r"\.detach\s*\(")
WALLCLOCK_RE = re.compile(r"system_clock\s*::\s*now")
# Lock-scope openers for blocking-under-lock: the annotated guards plus the
# raw std ones (so a file that also violates raw-mutex still gets scoped).
LOCK_DECL_RE = re.compile(
    r"\b(?:ipa::)?(?:LockGuard|UniqueLock|WriterLock|ReaderLock)\s+\w+\s*[({]"
    r"|std::(?:lock_guard|unique_lock|scoped_lock)\s*(?:<[^;]*>)?\s+\w+\s*[({]"
)
BLOCKING_RES = (
    re.compile(r"\binvoke\s*\("),
    re.compile(r"\bsend_all\s*\("),
    re.compile(r"\bwrite_all\s*\("),
    re.compile(r"\bread_exact\s*\("),
    re.compile(r"\bread_some\s*\("),
    re.compile(r"(?<![A-Za-z0-9_])::connect\s*\("),  # bare ::connect, not net::connect
    re.compile(r"\bsleep_for\s*\("),
)
# Metric registrations: kind + literal name, labels scanned in a small
# window after the call (registrations put labels right after the name).
METRIC_CALL_RE = re.compile(r"\b(counter|gauge|histogram)\s*\(\s*\"(ipa_[A-Za-z0-9_]*)\"")
METRIC_LABEL_RE = re.compile(r"\{\s*\"([A-Za-z_][A-Za-z0-9_]*)\"\s*,")
HISTOGRAM_SUFFIXES = ("_seconds", "_records", "_bytes")
RESERVED_SUFFIXES = ("_bucket", "_sum", "_count")
ALLOW_RE = re.compile(r"ipa-lint:\s*allow\(([a-z*-]+)\)")
SKIP_FILE_RE = re.compile(r"ipa-lint:\s*skip-file\(([a-z*-]+)\)")

SOURCE_EXTS = (".hpp", ".cpp", ".h", ".cc")


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_comment(line):
    """Code portion of a line (string-literal '//' is rare enough to ignore)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def allowed(lines, i, rule):
    """True when line i (0-based) carries an allow() for `rule`, or one sits
    in the contiguous comment block directly above it."""
    m = ALLOW_RE.search(lines[i])
    if m and m.group(1) in (rule, "*"):
        return True
    j = i - 1
    while j >= 0 and lines[j].lstrip().startswith("//"):
        m = ALLOW_RE.search(lines[j])
        if m and m.group(1) in (rule, "*"):
            return True
        j -= 1
    return False


def lint_file(path, rel, lines):
    findings = []
    skip = set()
    for line in lines:
        m = SKIP_FILE_RE.search(line)
        if m:
            skip.add(m.group(1))
    if "*" in skip:
        return findings

    is_header = rel.endswith((".hpp", ".h"))
    if (
        is_header
        and "include-guard" not in skip
        and not any(line.lstrip().startswith("#pragma once") for line in lines)
    ):
        findings.append(Finding(rel, 1, "include-guard", "header missing '#pragma once'"))

    # Brace-tracked lexical lock scopes: (depth_at_entry, scope_allowed).
    lock_scopes = []
    depth = 0
    for i, raw in enumerate(lines):
        line_no = i + 1
        code = strip_comment(raw)

        if (
            "raw-mutex" not in skip
            and rel not in RAW_MUTEX_ALLOWED
            and RAW_MUTEX_RE.search(code)
            and not allowed(lines, i, "raw-mutex")
        ):
            findings.append(
                Finding(rel, line_no, "raw-mutex",
                        "raw std sync primitive; use ipa::Mutex/LockGuard from "
                        "common/sync.hpp (annotated + rank-checked)")
            )

        if "detach" not in skip and DETACH_RE.search(code) and not allowed(lines, i, "detach"):
            findings.append(
                Finding(rel, line_no, "detach",
                        "detached thread; keep a jthread handle so shutdown can join")
            )

        if (
            "wallclock" not in skip
            and rel not in WALLCLOCK_ALLOWED
            and WALLCLOCK_RE.search(code)
            and not allowed(lines, i, "wallclock")
        ):
            findings.append(
                Finding(rel, line_no, "wallclock",
                        "system_clock::now outside common/clock.cpp; go through "
                        "ipa::Clock so virtual-time tests stay deterministic")
            )

        if "metric-name" not in skip:
            # A registration may wrap (name on this line, labels on the
            # next); scan a 3-line window but only report matches that
            # start on this line, so wrapped calls aren't double-counted.
            window = " ".join(strip_comment(l) for l in lines[i:i + 3])
            for m in METRIC_CALL_RE.finditer(window):
                if m.start() >= len(code):
                    break
                if allowed(lines, i, "metric-name"):
                    break
                kind, name = m.group(1), m.group(2)
                problem = None
                if name.endswith(RESERVED_SUFFIXES):
                    problem = (f"'{name}' ends in a reserved exposition suffix "
                               "(_bucket/_sum/_count are generated at render time)")
                elif kind == "counter" and not name.endswith("_total"):
                    problem = f"counter '{name}' must end in _total"
                elif kind == "histogram" and not name.endswith(HISTOGRAM_SUFFIXES):
                    problem = (f"histogram '{name}' needs a unit suffix "
                               "(_seconds, _records or _bytes)")
                elif kind == "gauge" and name.endswith("_total"):
                    problem = f"gauge '{name}' must not end in _total (counters do)"
                if problem is None:
                    rest = window[m.end():]
                    block = re.match(r"\s*,\s*\{\{", rest)
                    if block:
                        end = rest.find("}}")
                        if end >= 0:
                            keys = METRIC_LABEL_RE.findall(rest[block.start():end])
                            if keys != sorted(keys):
                                problem = (f"'{name}' label literals {keys} not "
                                           "sorted by key (registry renders sorted)")
                if problem:
                    findings.append(Finding(rel, line_no, "metric-name", problem))

        if "blocking-under-lock" not in skip:
            if LOCK_DECL_RE.search(code):
                scope_allowed = allowed(lines, i, "blocking-under-lock")
                lock_scopes.append((depth, scope_allowed))
            elif lock_scopes and not lock_scopes[-1][1]:
                for rx in BLOCKING_RES:
                    if rx.search(code) and not allowed(lines, i, "blocking-under-lock"):
                        findings.append(
                            Finding(rel, line_no, "blocking-under-lock",
                                    f"blocking call '{rx.pattern}' inside a lock "
                                    "scope; move the I/O outside the critical "
                                    "section or bless the scope explicitly")
                        )
                        break

        # Track braces after the checks so a lock declared on this line sees
        # the depth at its declaration point.
        depth += code.count("{") - code.count("}")
        while lock_scopes and depth < lock_scopes[-1][0]:
            lock_scopes.pop()

    return findings


def walk(root, subdirs, exclude_prefixes):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                if any(rel.startswith(p) for p in exclude_prefixes):
                    continue
                yield path, rel


def lint_tree(root):
    findings = []
    fixture_prefix = os.path.join("tests", "lint", "fixtures")
    for path, rel in walk(root, ("src", "tests"), (fixture_prefix,)):
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
        findings.extend(lint_file(path, rel, lines))
    return findings


def self_test(root):
    """Each fixture file is named <rule>[_*].cpp/.hpp and must trigger exactly
    that rule (and no other)."""
    fixture_dir = os.path.join(root, "tests", "lint", "fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"ipa-lint self-test: no fixture dir at {fixture_dir}", file=sys.stderr)
        return 1
    failures = 0
    ran = 0
    for name in sorted(os.listdir(fixture_dir)):
        if not name.endswith(SOURCE_EXTS):
            continue
        stem = name.rsplit(".", 1)[0]
        rule = next((r for r in RULES if stem == r.replace("-", "_") or
                     stem.startswith(r.replace("-", "_") + "_")), None)
        if rule is None:
            print(f"self-test: fixture '{name}' names no known rule", file=sys.stderr)
            failures += 1
            continue
        ran += 1
        path = os.path.join(fixture_dir, name)
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        # Lint fixtures as if they lived under src/ so path-based allowances
        # (sync.hpp, clock.cpp) don't apply.
        rel = os.path.join("src", "fixture", name)
        got = {f.rule for f in lint_file(path, rel, lines)}
        # Headers double as include-guard checks; a .cpp fixture can't trip it.
        expected = {rule}
        if got != expected:
            print(f"self-test FAIL: {name}: expected {sorted(expected)}, got {sorted(got) or '{}'}",
                  file=sys.stderr)
            failures += 1
    if ran == 0:
        print("self-test: no fixtures found", file=sys.stderr)
        return 1
    if failures:
        return 1
    print(f"ipa-lint self-test: {ran} fixtures OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None, help="repo root (default: script's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each tests/lint/fixtures sample trips exactly its rule")
    args = parser.parse_args()

    root = args.root or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        return self_test(root)

    findings = lint_tree(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"ipa-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("ipa-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
