// Reproduces paper Table 2: "Comparison of time to stage and analyze a
// dataset by varying the nodes available on the Grid" (471 MB dataset,
// N = 1, 2, 4, 8, 16).
//
// Columns, as in the paper: move-whole (constant), split (near constant),
// move-parts (decreasing with per-part overhead), analysis (sub-linear
// speedup). Simulated values are printed next to the paper's measurements.
#include <cstdio>

#include "perf/scenario.hpp"

using namespace ipa;

int main() {
  const double kDatasetMb = 471.0;
  const perf::SiteCalibration cal;

  struct PaperRow {
    int nodes;
    double move_whole, split, move_parts, analysis;
  };
  // The paper's measured values.
  const PaperRow paper[] = {
      {1, 63, 120, 105, 330}, {2, 63, 120, 77, 287},  {4, 63, 115, 70, 190},
      {8, 63, 117, 65, 148},  {16, 63, 124, 50, 78},
  };

  std::printf("Table 2: stage + analysis time vs node count (471 MB dataset)\n");
  std::printf("%-7s | %-19s | %-19s | %-19s | %-19s\n", "nodes", "move whole [s]",
              "split [s]", "move parts [s]", "analysis [s]");
  std::printf("%-7s | %-9s %-9s | %-9s %-9s | %-9s %-9s | %-9s %-9s\n", "", "sim", "paper",
              "sim", "paper", "sim", "paper", "sim", "paper");
  std::printf("--------+---------------------+---------------------+---------------------+"
              "--------------------\n");
  for (const PaperRow& row : paper) {
    const perf::GridRunBreakdown run = perf::simulate_grid_run(cal, kDatasetMb, row.nodes);
    std::printf("%-7d | %-9.0f %-9.0f | %-9.0f %-9.0f | %-9.0f %-9.0f | %-9.0f %-9.0f\n",
                row.nodes, run.move_whole_s, row.move_whole, run.split_s, row.split,
                run.move_parts_s, row.move_parts, run.analysis_s, row.analysis);
  }

  std::printf("\nshape checks (paper section 4):\n");
  const auto t1 = perf::simulate_grid_run(cal, kDatasetMb, 1);
  const auto t16 = perf::simulate_grid_run(cal, kDatasetMb, 16);
  std::printf("  splitting varies little with N:       %.0f s -> %.0f s\n", t1.split_s,
              t16.split_s);
  std::printf("  move-parts slightly decreases with N: %.0f s -> %.0f s\n", t1.move_parts_s,
              t16.move_parts_s);
  std::printf("  analysis speedup at 16 nodes:         %.1fx (paper: %.1fx; not 16x — grid\n"
              "  CPUs are 866 MHz vs the 1.7 GHz local machine, plus fixed overheads)\n",
              t1.analysis_s / t16.analysis_s, 330.0 / 78.0);
  return 0;
}
