// Analysis-engine throughput and the snapshot-period sensitivity: how much
// of the engine's record rate is spent serializing and pushing intermediate
// results ("getting the intermediate results quickly ... is a very
// important requirement", paper §2.5 — but snapshots are not free).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "engine/engine.hpp"
#include "physics/event_gen.hpp"

using namespace ipa;

namespace {

class EngineFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (!dataset_.empty()) return;
    const auto dir = std::filesystem::temp_directory_path() / "ipa-bench-engine";
    std::filesystem::create_directories(dir);
    dataset_ = (dir / "events.ipd").string();
    (void)physics::generate_dataset(dataset_, "bench", kEvents);
    physics::register_higgs_plugin();
  }

  static constexpr std::uint64_t kEvents = 5000;
  static std::string dataset_;
};

std::string EngineFixture::dataset_;

BENCHMARK_DEFINE_F(EngineFixture, FullRun)(benchmark::State& state) {
  const auto snapshot_every = static_cast<std::uint64_t>(state.range(0));
  const bool script = state.range(1) != 0;
  for (auto _ : state) {
    engine::AnalysisEngine eng({.snapshot_every = snapshot_every, .interp = {}});
    int snapshots = 0;
    eng.set_snapshot_handler(
        [&snapshots](const ser::Bytes& bytes, const engine::Progress&) {
          benchmark::DoNotOptimize(bytes.size());
          ++snapshots;
        });
    if (!eng.stage_dataset(dataset_).is_ok()) {
      state.SkipWithError("stage failed");
      break;
    }
    const engine::CodeBundle bundle =
        script ? engine::CodeBundle{engine::CodeBundle::Kind::kScript, "s",
                                    physics::higgs_script()}
               : engine::CodeBundle{engine::CodeBundle::Kind::kPlugin, "p", "higgs-mass"};
    if (!eng.stage_code(bundle).is_ok()) {
      state.SkipWithError("code failed");
      break;
    }
    (void)eng.run();
    const auto done = eng.wait();
    if (done.state != engine::EngineState::kFinished) {
      state.SkipWithError("run failed");
      break;
    }
    state.counters["snapshots"] = snapshots;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEvents));
  state.counters["snapshot_every"] = static_cast<double>(snapshot_every);
  state.counters["script"] = script ? 1 : 0;
}
// {snapshot_every, use_script}
BENCHMARK_REGISTER_F(EngineFixture, FullRun)
    ->Args({100, 0})
    ->Args({1000, 0})
    ->Args({100000, 0})
    ->Args({1000, 1})
    ->Args({100000, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
