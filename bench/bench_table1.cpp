// Reproduces paper Table 1: "Comparison of time taken for sample dataset
// analysis for local case vs. on the Grid" — a 471 MB Higgs analysis on the
// user's 1.7 GHz desktop over the WAN vs a 16-node 866 MHz grid queue.
//
// The timing substrate is the calibrated discrete-event simulator
// (perf/scenario.hpp); see EXPERIMENTS.md for calibration notes and the
// paper-vs-measured record.
#include <cstdio>

#include "common/strings.hpp"
#include "perf/scenario.hpp"

using namespace ipa;

int main() {
  const double kDatasetMb = 471.0;
  const int kNodes = 16;
  const perf::SiteCalibration cal;

  const perf::LocalRunBreakdown local = perf::simulate_local_run(cal, kDatasetMb);
  const perf::GridRunBreakdown grid = perf::simulate_grid_run(cal, kDatasetMb, kNodes);

  std::printf("Table 1: local vs Grid (16 nodes), %.0f MB dataset, 15 kB code\n", kDatasetMb);
  std::printf("%-44s %-16s %-16s\n", "", "Local", "Grid (16 nodes)");
  std::printf("%-44s %-16s %-16s\n", "Get dataset (over WAN)",
              strings::human_duration_s(local.move_s).c_str(), "-");
  // The paper's "Stage Dataset" row is split+parts-transfer; move-whole is
  // reported inside Table 2 (their 174 s excludes the 63 s LAN pull).
  std::printf("%-44s %-16s %-16s\n", "Stage dataset (split + move parts, LAN)", "-",
              strings::human_duration_s(grid.split_s + grid.move_parts_s).c_str());
  std::printf("%-44s %-16s %-16s\n", "  (incl. storage-element pull)", "-",
              strings::human_duration_s(grid.stage_dataset_s).c_str());
  std::printf("%-44s %-16s %-16s\n", "Stage code (15 kB bundle)", "-",
              strings::human_duration_s(grid.stage_code_s).c_str());
  std::printf("%-44s %-16s %-16s\n", "Analysis",
              strings::human_duration_s(local.analysis_s).c_str(),
              strings::human_duration_s(grid.analysis_s).c_str());
  std::printf("%-44s %-16s %-16s\n", "Total", strings::human_duration_s(local.total_s).c_str(),
              strings::human_duration_s(grid.total_s).c_str());

  std::printf("\npaper reported:  local total 45 min, grid total 4 min 19 s (+63 s LAN pull)\n");
  std::printf("speedup: %.1fx (paper: ~10.4x)\n", local.total_s / grid.total_s);
  return 0;
}
