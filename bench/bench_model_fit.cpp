// Re-derives the paper's fitted equations from simulated measurements —
// the same procedure the authors applied to their testbed numbers
// ("The following equations are fitted from the above measurements").
//
// We sweep the simulator over X and N, then least-squares fit each
// pipeline stage's published functional form and print the recovered
// coefficients next to the paper's.
#include <cstdio>
#include <vector>

#include "perf/paper_model.hpp"
#include "perf/scenario.hpp"

using namespace ipa;

int main() {
  const perf::SiteCalibration cal;

  // --- local: T = a·X --------------------------------------------------------
  std::vector<double> xs, move_ys, analyze_ys, total_ys;
  for (double mb = 20; mb <= 1000; mb += 70) {
    const auto local = perf::simulate_local_run(cal, mb);
    xs.push_back(mb);
    move_ys.push_back(local.move_s);
    analyze_ys.push_back(local.analysis_s);
    total_ys.push_back(local.total_s);
  }
  const int n = static_cast<int>(xs.size());
  std::printf("local workflow, fitted to T = a*X over X in [20, 1000] MB:\n");
  std::printf("  %-24s sim a=%-8.3f paper a=%.2f  (s/MB)\n", "WAN move",
              perf::fit_proportional(xs.data(), move_ys.data(), n), 6.2);
  std::printf("  %-24s sim a=%-8.3f paper a=%.2f\n", "single-CPU analysis",
              perf::fit_proportional(xs.data(), analyze_ys.data(), n), 5.3);
  std::printf("  %-24s sim a=%-8.3f paper a=%.2f\n", "total",
              perf::fit_proportional(xs.data(), total_ys.data(), n), 11.5);
  std::printf("  (simulator is calibrated to Table 1's measured 32 min WAN / 13 min\n"
              "   analysis, which disagree with the paper's own 6.2/5.3 coefficients;\n"
              "   see EXPERIMENTS.md)\n\n");

  // --- grid stages at X = 471, varying N ---------------------------------------
  std::vector<double> inv_n, move_parts, analysis;
  for (const int nodes : {1, 2, 3, 4, 6, 8, 12, 16}) {
    const auto grid = perf::simulate_grid_run(cal, 471.0, nodes);
    inv_n.push_back(1.0 / nodes);
    move_parts.push_back(grid.move_parts_s);
    analysis.push_back(grid.analysis_s);
  }
  const int m = static_cast<int>(inv_n.size());
  const perf::LinearFit parts_fit = perf::fit_linear(inv_n.data(), move_parts.data(), m);
  const perf::LinearFit analysis_fit = perf::fit_linear(inv_n.data(), analysis.data(), m);

  std::printf("grid stages at X = 471 MB, fitted to T = c + d/N:\n");
  std::printf("  %-24s sim c=%-7.1f d=%-7.1f  paper c=46  d=62   (r2=%.4f)\n", "move parts",
              parts_fit.intercept, parts_fit.slope, parts_fit.r2);
  std::printf("  %-24s sim c=%-7.1f d=%-7.1f  paper equation: 5.3*471/N = 2497/N (!)\n",
              "analysis", analysis_fit.intercept, analysis_fit.slope);
  std::printf("  (the paper's own analysis fit contradicts its Table 2: 2497/N predicts\n"
              "   156 s at N=16 where the paper measured 78 s. Our calibration targets\n"
              "   the measured endpoints 330 s @ 1 node, 78 s @ 16 nodes instead.)\n\n");

  // --- grid linear-in-X stages ---------------------------------------------------
  std::vector<double> gx, move_whole, split;
  for (double mb = 50; mb <= 1000; mb += 95) {
    const auto grid = perf::simulate_grid_run(cal, mb, 8);
    gx.push_back(mb);
    move_whole.push_back(grid.move_whole_s);
    split.push_back(grid.split_s);
  }
  const int g = static_cast<int>(gx.size());
  const perf::LinearFit whole_fit = perf::fit_linear(gx.data(), move_whole.data(), g);
  const perf::LinearFit split_fit = perf::fit_linear(gx.data(), split.data(), g);
  std::printf("grid stages at N = 8, fitted to T = a*X + b:\n");
  std::printf("  %-24s sim a=%-7.3f  paper a=0.13 (s/MB)   r2=%.4f\n", "move whole (LAN)",
              whole_fit.slope, whole_fit.r2);
  std::printf("  %-24s sim a=%-7.3f  paper a=0.25 (s/MB)   r2=%.4f\n", "split",
              split_fit.slope, split_fit.r2);
  return 0;
}
