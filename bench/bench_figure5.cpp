// Reproduces paper Figure 5: "Analysis times (gold = local analysis,
// blue = Grid) as a function of dataset size and number of compute nodes"
// — the two surfaces T_local(X) and T_grid(X, N) from the paper's fitted
// equations, plus the crossover analysis behind the paper's two main
// conclusions:
//   1. for datasets larger than ~10 MB the WAN transfer dominates and the
//      grid wins, and
//   2. long analyses gain the 1/N engine speedup.
#include <cstdio>

#include "perf/paper_model.hpp"
#include "perf/scenario.hpp"
#include "viz/chart.hpp"
#include "viz/render.hpp"

using namespace ipa;

int main() {
  const int node_grid[] = {1, 2, 4, 8, 16, 32};
  const double size_grid[] = {1, 2, 5, 10, 20, 50, 100, 200, 471, 1000};

  std::printf("Figure 5 surfaces (paper equations): T_local(X) and T_grid(X, N) [s]\n\n");
  std::printf("%8s | %9s |", "X [MB]", "local");
  for (const int n : node_grid) std::printf(" grid N=%-4d|", n);
  std::printf("\n---------+-----------+");
  for (std::size_t i = 0; i < std::size(node_grid); ++i) std::printf("------------+");
  std::printf("\n");
  for (const double mb : size_grid) {
    std::printf("%8g | %9.0f |", mb, perf::PaperModel::t_local(mb));
    for (const int n : node_grid) {
      std::printf(" %10.0f |", perf::PaperModel::t_grid(mb, n));
    }
    std::printf("\n");
  }

  std::printf("\ncrossover dataset size (grid becomes faster than local):\n");
  for (const int n : node_grid) {
    std::printf("  N=%-3d : X = %.1f MB\n", n, perf::PaperModel::crossover_mb(n));
  }
  std::printf("(paper: \"for large dataset (> ~10 MB) ... it is much better to use the"
              " Grid\")\n");

  // The same qualitative surface from the calibrated simulator: who wins.
  std::printf("\nsimulator cross-check: winner by (X, N)  [G = grid, L = local]\n");
  const perf::SiteCalibration cal;
  std::printf("%8s |", "X [MB]");
  for (const int n : node_grid) std::printf(" N=%-3d|", n);
  std::printf("\n");
  for (const double mb : size_grid) {
    std::printf("%8g |", mb);
    const double local = perf::simulate_local_run(cal, mb).total_s;
    for (const int n : node_grid) {
      const double grid = perf::simulate_grid_run(cal, mb, n).total_s;
      std::printf("   %c  |", grid < local ? 'G' : 'L');
    }
    std::printf("\n");
  }
  std::printf("(site maximum is 16 nodes; N=32 is clamped, matching the paper's"
              " Grid-VO policy cap)\n");

  // Render the figure itself: time vs dataset size, one curve per N, plus
  // the local curve — the 2-D projection of the paper's two surfaces.
  {
    std::vector<viz::Series> series;
    viz::Series local{"local", {}, {}, "#c9a227"};  // the paper's gold
    for (const double mb : size_grid) {
      local.xs.push_back(mb);
      local.ys.push_back(perf::PaperModel::t_local(mb));
    }
    series.push_back(std::move(local));
    int shade = 0;
    for (const int n : {1, 4, 16}) {
      viz::Series grid;
      grid.label = "grid N=" + std::to_string(n);
      grid.color = shade == 0 ? "#9dc3e6" : (shade == 1 ? "#4472c4" : "#1f3864");
      ++shade;
      for (const double mb : size_grid) {
        grid.xs.push_back(mb);
        grid.ys.push_back(perf::PaperModel::t_grid(mb, n));
      }
      series.push_back(std::move(grid));
    }
    viz::ChartOptions options;
    options.title = "Figure 5: analysis time vs dataset size (gold=local, blues=grid)";
    options.x_label = "dataset size [MB]";
    options.y_label = "total time [s]";
    options.log_x = true;
    options.log_y = true;
    auto svg = viz::svg_line_chart(series, options);
    if (svg.is_ok() && viz::write_file("figure5.svg", *svg).is_ok()) {
      std::printf("\nwrote figure5.svg (log-log projection of the two surfaces)\n");
    }
  }
  return 0;
}
