// Dataset Catalog Service costs: browse and metadata-query throughput vs
// catalog size (paper §2.1: the catalog must support browsing plus "search
// based on a query pattern").
#include <benchmark/benchmark.h>

#include "catalog/catalog.hpp"
#include "common/strings.hpp"

using namespace ipa;

namespace {

catalog::Catalog make_catalog(int datasets) {
  catalog::Catalog cat;
  for (int i = 0; i < datasets; ++i) {
    const int year = 2000 + i % 7;
    const int run = i;
    (void)cat.add(strings::format("lc/%d/run%d", year, run), "ds-" + std::to_string(i),
                  {{"experiment", i % 3 == 0 ? "LC" : "other"},
                   {"size_mb", std::to_string((i * 37) % 1000)},
                   {"detector", i % 2 ? "sid" : "ld"}});
  }
  return cat;
}

void BM_CatalogSearch(benchmark::State& state) {
  const catalog::Catalog cat = make_catalog(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto hits = cat.search("experiment == 'LC' && size_mb > 400");
    if (!hits.is_ok()) {
      state.SkipWithError("search failed");
      break;
    }
    benchmark::DoNotOptimize(*hits);
  }
  state.counters["datasets"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CatalogSearch)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CatalogGlobSearch(benchmark::State& state) {
  const catalog::Catalog cat = make_catalog(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto hits = cat.search("name like 'run1*' || path like 'lc/2004/*'");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_CatalogGlobSearch)->Arg(1000)->Arg(10000);

void BM_CatalogBrowse(benchmark::State& state) {
  const catalog::Catalog cat = make_catalog(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto listing = cat.browse("lc/2003");
    benchmark::DoNotOptimize(listing);
  }
}
BENCHMARK(BM_CatalogBrowse)->Arg(1000)->Arg(10000);

void BM_QueryCompile(benchmark::State& state) {
  for (auto _ : state) {
    auto query = catalog::Query::parse(
        "experiment == 'LC' && (size_mb > 100 || name like 'higgs*') && !obsolete");
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_QueryCompile);

void BM_CatalogXmlRoundTrip(benchmark::State& state) {
  const catalog::Catalog cat = make_catalog(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const std::string text = cat.to_xml().to_string();
    auto doc = xml::parse(text);
    auto back = catalog::Catalog::from_xml(*doc);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_CatalogXmlRoundTrip)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
