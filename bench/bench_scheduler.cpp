// The paper's site requirement ablation: "the key additional requirements
// to the standard Grid are a dedicated timely scheduler queue ..." (§1/§6).
//
// Compares mean queue wait (virtual time) for interactive sessions under:
//   - a dedicated interactive queue vs sharing the batch queue, and
//   - FIFO vs fair-share dispatch under multi-user contention.
#include <cstdio>

#include "perf/scenario.hpp"

using namespace ipa;

int main() {
  std::printf("Scheduler ablation (virtual-time simulation)\n\n");

  std::printf("mean wait [s] vs contention, 16-node queue, 4-node jobs, 100 s holds:\n");
  std::printf("%-8s | %-10s | %-10s\n", "users", "FIFO", "fair-share");
  std::printf("---------+------------+-----------\n");
  for (const int users : {2, 4, 8, 16, 32}) {
    const double fifo = perf::simulate_queue_wait(gridsim::DispatchPolicy::kFifo, 16, users,
                                                  4, 100);
    const double fair = perf::simulate_queue_wait(gridsim::DispatchPolicy::kFairShare, 16,
                                                  users, 4, 100);
    std::printf("%-8d | %-10.1f | %-10.1f\n", users, fifo, fair);
  }

  std::printf("\ndedicated interactive queue vs shared batch queue\n");
  std::printf("(8 interactive users needing 4 nodes for 100 s):\n");
  const double dedicated =
      perf::simulate_queue_wait(gridsim::DispatchPolicy::kFifo, 16, 8, 4, 100);
  // Shared: the same queue also carries 8 long batch jobs (16 nodes, 1 h).
  // Model: batch jobs arrive first and serialize everything behind them.
  {
    gridsim::Simulation sim;
    gridsim::Scheduler scheduler(sim);
    (void)scheduler.add_queue({.name = "shared",
                               .nodes = 16,
                               .node_speed_mhz = 866,
                               .dispatch_latency_s = 0,
                               .policy = gridsim::DispatchPolicy::kFifo});
    // Two batch jobs ahead of the interactive users.
    for (int b = 0; b < 2; ++b) {
      (void)scheduler.submit("shared", "batch", 16,
                             [&sim, &scheduler](const gridsim::Scheduler::Grant& grant) {
                               sim.schedule(3600.0, [&scheduler, id = grant.job_id] {
                                 (void)scheduler.release(id);
                               });
                             });
    }
    double total_wait = 0;
    int granted = 0;
    for (int u = 0; u < 8; ++u) {
      const double submit_at = 1.0 * u;
      sim.schedule(submit_at, [&, submit_at] {
        (void)scheduler.submit(
            "shared", "user" + std::to_string(u), 4,
            [&, submit_at](const gridsim::Scheduler::Grant& grant) {
              total_wait += grant.granted_at - submit_at;
              ++granted;
              sim.schedule(100.0, [&scheduler, id = grant.job_id] {
                (void)scheduler.release(id);
              });
            });
      });
    }
    sim.run();
    const double shared = granted ? total_wait / granted : 0;
    std::printf("%-28s mean wait %8.1f s\n", "dedicated interactive queue:", dedicated);
    std::printf("%-28s mean wait %8.1f s  (behind two 1-hour batch jobs)\n",
                "shared batch queue:", shared);
    std::printf("\ndedicated-queue advantage: %.0fx lower wait — the paper's 'fast\n"
                "processing queue' requirement quantified.\n",
                shared / (dedicated > 0 ? dedicated : 1.0));
  }
  return 0;
}
