// AIDA micro-costs: histogram fill, merge and (de)serialization — the three
// operations on the engine -> manager -> client hot path.
#include <benchmark/benchmark.h>

#include "aida/histogram1d.hpp"
#include "aida/histogram2d.hpp"
#include "aida/tree.hpp"
#include "common/rng.hpp"

using namespace ipa;

namespace {

void BM_Fill1D(benchmark::State& state) {
  auto hist = aida::Histogram1D::create("h", static_cast<int>(state.range(0)), 0, 100);
  Rng rng(1);
  // Pre-draw values so the RNG is not part of the measurement.
  std::vector<double> values(4096);
  for (double& v : values) v = rng.uniform(-10, 110);
  std::size_t i = 0;
  for (auto _ : state) {
    hist->fill(values[i++ & 4095]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Fill1D)->Arg(50)->Arg(1000);

void BM_FillN1D(benchmark::State& state) {
  // Bulk fill used by the batched engine path; items = individual fills so
  // throughput is directly comparable with BM_Fill1D.
  auto hist = aida::Histogram1D::create("h", static_cast<int>(state.range(0)), 0, 100);
  Rng rng(1);
  std::vector<double> values(4096);
  for (double& v : values) v = rng.uniform(-10, 110);
  for (auto _ : state) {
    hist->fill_n(values);
    benchmark::DoNotOptimize(*hist);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_FillN1D)->Arg(50)->Arg(1000);

void BM_Fill2D(benchmark::State& state) {
  auto hist = aida::Histogram2D::create("h", 50, 0, 100, 50, 0, 100);
  Rng rng(1);
  std::vector<double> values(4096);
  for (double& v : values) v = rng.uniform(0, 100);
  std::size_t i = 0;
  for (auto _ : state) {
    hist->fill(values[i & 4095], values[(i + 1) & 4095]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Fill2D);

void BM_Merge1D(benchmark::State& state) {
  const int bins = static_cast<int>(state.range(0));
  auto a = aida::Histogram1D::create("h", bins, 0, 100);
  auto b = aida::Histogram1D::create("h", bins, 0, 100);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    a->fill(rng.uniform(0, 100));
    b->fill(rng.uniform(0, 100));
  }
  for (auto _ : state) {
    auto copy = *a;
    benchmark::DoNotOptimize(copy.merge(*b));
  }
}
BENCHMARK(BM_Merge1D)->Arg(50)->Arg(1000)->Arg(10000);

void BM_TreeSerialize(benchmark::State& state) {
  aida::Tree tree;
  Rng rng(1);
  for (int h = 0; h < static_cast<int>(state.range(0)); ++h) {
    auto hist = aida::Histogram1D::create("h" + std::to_string(h), 100, 0, 100);
    for (int i = 0; i < 500; ++i) hist->fill(rng.uniform(0, 100));
    tree.put("/d/h" + std::to_string(h), std::move(*hist));
  }
  for (auto _ : state) {
    auto bytes = tree.serialize();
    benchmark::DoNotOptimize(bytes);
    state.counters["snapshot_bytes"] = static_cast<double>(bytes.size());
  }
}
BENCHMARK(BM_TreeSerialize)->Arg(1)->Arg(8)->Arg(64);

void BM_TreeDeserialize(benchmark::State& state) {
  aida::Tree tree;
  Rng rng(1);
  for (int h = 0; h < static_cast<int>(state.range(0)); ++h) {
    auto hist = aida::Histogram1D::create("h" + std::to_string(h), 100, 0, 100);
    for (int i = 0; i < 500; ++i) hist->fill(rng.uniform(0, 100));
    tree.put("/d/h" + std::to_string(h), std::move(*hist));
  }
  const ser::Bytes bytes = tree.serialize();
  for (auto _ : state) {
    auto back = aida::Tree::deserialize(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_TreeDeserialize)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
