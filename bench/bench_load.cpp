// Multi-user interactive load harness with SLO gating.
//
// Drives N simulated analysts (closed-loop, seeded mixed scenario: browse ->
// session -> stage dataset + PawScript -> run -> live-poll /status ->
// hot-reload -> close) against a real in-process site — the same ManagerNode,
// HTTP/SOAP + RPC servers and analysis engines production code runs — then
// gates the run on bench/slo.json: client-side per-step p50/p95/p99, the
// server's six-phase histograms scraped from GET /metrics, and scenario-level
// failure/degradation rates. Exit code 1 on any violation.
//
// Soak mode (--soak) re-homes the site's RPC fabric onto the chaos transport
// (drop/delay/disconnect faults), turning graceful degradation into a gated
// property via the soak profiles' looser allowances.
//
//   bench_load --users 256 --profile interactive
//   bench_load --users 16 --iterations 1 --profile smoke --seed 2006
//   bench_load --users 12 --soak --profile soak_smoke
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "client/grid_client.hpp"
#include "common/rng.hpp"
#include "http/http.hpp"
#include "loadgen/loadgen.hpp"
#include "loadgen/promparse.hpp"
#include "loadgen/scenario.hpp"
#include "loadgen/slo.hpp"
#include "physics/event_gen.hpp"
#include "services/manager.hpp"

#ifndef IPA_SLO_DEFAULT
#define IPA_SLO_DEFAULT "bench/slo.json"
#endif

namespace {

using namespace ipa;

struct Flags {
  int users = 256;
  int iterations = 1;
  int drivers = 8;
  int nodes = 1;
  int records = 1500;
  std::uint64_t seed = 2006;
  double duration_s = 600;
  double think_s = 0.05;
  double poll_interval_s = 0.02;
  std::string profile = "interactive";
  std::string slo_path = IPA_SLO_DEFAULT;
  std::string report_path;
  bool soak = false;
  std::string chaos =
      "seed=7&drop=0.02&delay_p=0.05&delay_ms=5&disconnect=0.02&half_open=0.005";
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--users N] [--iterations N] [--drivers N] [--nodes N]\n"
               "          [--records N] [--seed S] [--duration SECONDS]\n"
               "          [--think S] [--poll-interval S]\n"
               "          [--profile NAME] [--slo PATH] [--report PATH]\n"
               "          [--soak] [--chaos QUERY]\n",
               argv0);
}

bool parse_flags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* value = nullptr;
    if (arg == "--soak") {
      flags.soak = true;
    } else if (arg == "--users" && (value = next())) {
      flags.users = std::atoi(value);
    } else if (arg == "--iterations" && (value = next())) {
      flags.iterations = std::atoi(value);
    } else if (arg == "--drivers" && (value = next())) {
      flags.drivers = std::atoi(value);
    } else if (arg == "--nodes" && (value = next())) {
      flags.nodes = std::atoi(value);
    } else if (arg == "--records" && (value = next())) {
      flags.records = std::atoi(value);
    } else if (arg == "--seed" && (value = next())) {
      flags.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--duration" && (value = next())) {
      flags.duration_s = std::atof(value);
    } else if (arg == "--think" && (value = next())) {
      flags.think_s = std::atof(value);
    } else if (arg == "--poll-interval" && (value = next())) {
      flags.poll_interval_s = std::atof(value);
    } else if (arg == "--profile" && (value = next())) {
      flags.profile = value;
    } else if (arg == "--slo" && (value = next())) {
      flags.slo_path = value;
    } else if (arg == "--report" && (value = next())) {
      flags.report_path = value;
    } else if (arg == "--chaos" && (value = next())) {
      flags.chaos = value;
    } else {
      usage(argv[0]);
      return false;
    }
  }
  if (flags.users < 1 || flags.iterations < 1 || flags.drivers < 1 || flags.nodes < 1) {
    std::fprintf(stderr, "bench_load: --users/--iterations/--drivers/--nodes must be >= 1\n");
    return false;
  }
  return true;
}

// The hot-reload target: a cheaper second-pass analysis, as an analyst would
// iterate after a first look at the spectrum.
const char* kReloadScript = R"paw(
func begin(tree) {
  tree.book_h1("/v2/ntrk", 30, 0, 60, "candidate multiplicity v2");
}
func process(event, tree) {
  tree.fill("/v2/ntrk", len(event.get("px")));
}
)paw";

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return not_found("bench_load: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse_flags(argc, argv, flags)) return 2;

  // Load + parse the SLO profile up front: a typo'd profile name should
  // fail in seconds, not after a multi-minute run.
  auto slo_text = read_file(flags.slo_path);
  if (!slo_text.is_ok()) {
    std::fprintf(stderr, "%s\n", slo_text.status().to_string().c_str());
    return 2;
  }
  auto slo_doc = loadgen::Json::parse(*slo_text);
  if (!slo_doc.is_ok()) {
    std::fprintf(stderr, "bench_load: %s: %s\n", flags.slo_path.c_str(),
                 slo_doc.status().to_string().c_str());
    return 2;
  }
  auto profile = loadgen::parse_profile(*slo_doc, flags.profile);
  if (!profile.is_ok()) {
    std::fprintf(stderr, "bench_load: %s\n", profile.status().to_string().c_str());
    return 2;
  }

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("ipa-load-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  struct Cleanup {
    std::filesystem::path dir;
    ~Cleanup() {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  } cleanup{dir};

  const std::string dataset_path = (dir / "load.ipd").string();
  auto dataset = physics::generate_dataset(dataset_path, "load",
                                           static_cast<std::uint64_t>(flags.records),
                                           {}, flags.seed);
  if (!dataset.is_ok()) {
    std::fprintf(stderr, "bench_load: dataset: %s\n", dataset.status().to_string().c_str());
    return 2;
  }

  services::ManagerConfig config;
  config.staging_dir = (dir / "staging").string();
  // The HTTP/SOAP side rides the epoll reactor: open keep-alive connections
  // cost no worker, so the pool is a small fixed CPU-bound dispatch crew no
  // matter how many users hold sockets. Only the queue still scales — a
  // poll burst from every user at once must be absorbed, not 503'd.
  config.soap_pool.max_workers = 16;
  config.soap_pool.queue_capacity = static_cast<std::size_t>(flags.users) * 2 + 64;
  // The engine RPC fabric is inproc (reader-thread path, one worker pinned
  // per live channel), so that pool still scales with the user count.
  config.rpc_pool.max_workers =
      static_cast<std::size_t>(flags.users) * (static_cast<std::size_t>(flags.nodes) + 1) + 32;
  config.rpc_pool.queue_capacity = static_cast<std::size_t>(flags.users) + 64;
  // One physical core serves hundreds of threads here: generous liveness
  // windows keep scheduling hiccups from being misread as dead engines.
  config.heartbeat_interval_s = 0.25;
  config.heartbeat_timeout_s = 20.0;
  config.monitor_interval_s = 1.0;
  config.engine_config.snapshot_every = 256;
  if (flags.soak) {
    // Re-home the whole RPC fabric (engine links, heartbeats, result
    // polling) onto the fault-injecting transport. Endpoint construction is
    // all it takes: every dial through this URI gets a seeded fault stream.
    auto chaos = Uri::parse("chaos+inproc://load-soak?" + flags.chaos);
    if (!chaos.is_ok()) {
      std::fprintf(stderr, "bench_load: --chaos: %s\n", chaos.status().to_string().c_str());
      return 2;
    }
    config.rpc_endpoint = *chaos;
  }

  auto manager = services::ManagerNode::start(std::move(config));
  if (!manager.is_ok()) {
    std::fprintf(stderr, "bench_load: manager: %s\n", manager.status().to_string().c_str());
    return 2;
  }
  const Status published = (*manager)->publish_dataset(
      "lc/load", "ds-load", {{"experiment", "LC"}, {"purpose", "load"}}, dataset_path);
  if (!published.is_ok()) {
    std::fprintf(stderr, "bench_load: publish: %s\n", published.to_string().c_str());
    return 2;
  }

  const std::string base = (*manager)->authority().issue("cn=load", {"analysis"}, 7200);
  auto proxy = client::make_proxy((*manager)->authority(), base, 7200);
  if (!proxy.is_ok()) {
    std::fprintf(stderr, "bench_load: proxy: %s\n", proxy.status().to_string().c_str());
    return 2;
  }

  loadgen::ScenarioOptions scenario;
  scenario.catalog_path = "lc";  // folder holding the published lc/load node
  scenario.dataset_id = "ds-load";
  scenario.nodes_per_session = flags.nodes;
  scenario.iterations = flags.iterations;
  scenario.think_time_s = flags.think_s;
  scenario.poll_interval_s = flags.poll_interval_s;
  scenario.script_v1 = physics::higgs_script();
  scenario.script_v2 = kReloadScript;

  Rng seeder(flags.seed);
  std::vector<std::unique_ptr<loadgen::SimulatedUser>> users;
  users.reserve(static_cast<std::size_t>(flags.users));
  for (int i = 0; i < flags.users; ++i) {
    users.push_back(std::make_unique<loadgen::SimulatedUser>(
        i, (*manager)->soap_endpoint(), *proxy, scenario, seeder.next()));
  }

  loadgen::DriverOptions driver_options;
  driver_options.driver_threads = flags.drivers;
  driver_options.max_duration_s = flags.duration_s;
  loadgen::LoadDriver driver(driver_options, std::move(users));

  std::printf("bench_load: %d users x %d iterations, %d driver threads, seed %llu%s\n",
              flags.users, flags.iterations, flags.drivers,
              static_cast<unsigned long long>(flags.seed),
              flags.soak ? " [soak: chaos rpc fabric]" : "");
  const loadgen::LoadReport report = driver.run();

  // Final /metrics scrape: the server-side half of the SLO evidence, plus
  // the contention diagnostics (queue delay, lock waits) for the report.
  loadgen::ServerScrape scrape;
  const Uri soap = (*manager)->soap_endpoint();
  auto scraper = http::Client::connect(soap.host, soap.port, 10.0);
  if (scraper.is_ok()) {
    auto metrics = scraper->get("/metrics", 30.0);
    if (metrics.is_ok() && metrics->status == 200) {
      scrape = loadgen::parse_server_scrape(metrics->body);
    } else {
      std::fprintf(stderr, "bench_load: /metrics scrape failed%s\n",
                   metrics.is_ok() ? (" (status " + std::to_string(metrics->status) + ")").c_str()
                                   : metrics.status().to_string().c_str());
    }
  }

  const loadgen::SloResult verdict = loadgen::evaluate(*profile, report, scrape);
  std::fputs(loadgen::render_report_text(*profile, report, scrape, verdict).c_str(), stdout);

  if (!flags.report_path.empty()) {
    std::ofstream out(flags.report_path, std::ios::binary);
    out << loadgen::render_report_json(*profile, report, scrape, verdict);
    if (!out) {
      std::fprintf(stderr, "bench_load: cannot write %s\n", flags.report_path.c_str());
    }
  }

  (*manager)->stop();
  return verdict.ok() ? 0 : 1;
}
