// Staging-pipeline throughput: the single-pass parallel split and the
// session's concurrent seat fan-out, at 1/4/16 seats.
//
// The fan-out benches model the paper's parallel-transfer claim with a
// fixed per-seat latency (a 2 ms sleep standing in for one staging RPC):
// SerialFanOut pays it once per seat, FanOut pays it once per operation.
// The BENCH_batch.json gate on FanOut/16 sits above anything a serialized
// fan-out could reach, so a regression to one-seat-at-a-time fails the gate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "data/splitter.hpp"
#include "physics/event_gen.hpp"
#include "services/session.hpp"

using namespace ipa;

namespace {

constexpr auto kSeatLatency = std::chrono::milliseconds(2);

/// One staged engine whose every operation costs a fixed latency.
class DelayHandle final : public services::EngineHandle {
 public:
  explicit DelayHandle(std::string id) : id_(std::move(id)) {}

  const std::string& engine_id() const override { return id_; }
  Status stage_dataset(const std::string&) override { return wait(); }
  Status stage_code(const engine::CodeBundle&) override { return wait(); }
  Status control(services::ControlVerb, std::uint64_t) override { return wait(); }
  services::EngineReport report() const override {
    services::EngineReport report;
    report.engine_id = id_;
    return report;
  }

 private:
  static Status wait() {
    std::this_thread::sleep_for(kSeatLatency);
    return Status::ok();
  }

  std::string id_;
};

data::SplitResult fake_split(int parts) {
  data::SplitResult split;
  for (int i = 0; i < parts; ++i) {
    data::PartInfo part;
    part.path = "part-" + std::to_string(i);
    split.parts.push_back(std::move(part));
  }
  return split;
}

std::shared_ptr<services::Session> make_session(int seats) {
  auto session = std::make_shared<services::Session>("bench", "bench", seats, "interactive");
  std::vector<std::unique_ptr<services::EngineHandle>> engines;
  for (int i = 0; i < seats; ++i) {
    const std::string id = "eng-" + std::to_string(i);
    session->mark_ready(id);
    engines.push_back(std::make_unique<DelayHandle>(id));
  }
  if (!session->attach_engines(std::move(engines)).is_ok()) return nullptr;
  if (!session->distribute_parts(fake_split(seats)).is_ok()) return nullptr;
  return session;
}

/// Parallel fan-out: one control verb across N seats per iteration.
void BM_FanOut(benchmark::State& state) {
  const int seats = static_cast<int>(state.range(0));
  auto session = make_session(seats);
  if (!session) {
    state.SkipWithError("session setup failed");
    return;
  }
  for (auto _ : state) {
    if (!session->control(services::ControlVerb::kPause).is_ok()) {
      state.SkipWithError("control failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["seats"] = seats;
  (void)session->close();
}
BENCHMARK(BM_FanOut)->Arg(1)->Arg(4)->Arg(16)->UseRealTime();

/// Serial baseline: the pre-parallel fan-out, one seat after another. Kept
/// runnable so the parallel speedup stays measurable on any machine.
void BM_SerialFanOut(benchmark::State& state) {
  const int seats = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<services::EngineHandle>> engines;
  for (int i = 0; i < seats; ++i) {
    engines.push_back(std::make_unique<DelayHandle>("eng-" + std::to_string(i)));
  }
  for (auto _ : state) {
    for (auto& engine : engines) {
      if (!engine->control(services::ControlVerb::kPause, 0).is_ok()) {
        state.SkipWithError("control failed");
        return;
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["seats"] = seats;
}
BENCHMARK(BM_SerialFanOut)->Arg(1)->Arg(4)->Arg(16)->UseRealTime();

/// Code staging through the same parallel path (code_stage phase twin).
void BM_StageCode(benchmark::State& state) {
  const int seats = static_cast<int>(state.range(0));
  auto session = make_session(seats);
  if (!session) {
    state.SkipWithError("session setup failed");
    return;
  }
  engine::CodeBundle bundle;
  bundle.name = "bench";
  bundle.source = "func process(event, tree) {}";
  for (auto _ : state) {
    if (!session->stage_code(bundle).is_ok()) {
      state.SkipWithError("stage_code failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["seats"] = seats;
  (void)session->close();
}
BENCHMARK(BM_StageCode)->Arg(1)->Arg(4)->Arg(16)->UseRealTime();

// --- single-pass split -----------------------------------------------------

class StagingSplitFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (!source_.empty()) return;
    dir_ = std::filesystem::temp_directory_path() / "ipa-bench-staging";
    std::filesystem::create_directories(dir_);
    source_ = (dir_ / "src.ipd").string();
    (void)physics::generate_dataset(source_, "bench", 20000);
    bytes_ = std::filesystem::file_size(source_);
  }

  static std::filesystem::path dir_;
  static std::string source_;
  static std::uintmax_t bytes_;
};

std::filesystem::path StagingSplitFixture::dir_;
std::string StagingSplitFixture::source_;
std::uintmax_t StagingSplitFixture::bytes_ = 0;

BENCHMARK_DEFINE_F(StagingSplitFixture, SinglePassSplit)(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  int round = 0;
  for (auto _ : state) {
    const std::string prefix = (dir_ / ("out" + std::to_string(round++))).string();
    auto split = data::split_dataset(source_, prefix, parts);
    if (!split.is_ok()) {
      state.SkipWithError("split failed");
      break;
    }
    benchmark::DoNotOptimize(*split);
    state.PauseTiming();
    for (const auto& part : split->parts) std::filesystem::remove(part.path);
    state.ResumeTiming();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes_));
  state.counters["parts"] = parts;
}
BENCHMARK_REGISTER_F(StagingSplitFixture, SinglePassSplit)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
