// The paper's §2.5 bottleneck claim: "the component that performs the
// merging ... will become a bottleneck if there are a large number of
// [engines]. The system should ... accommodate a sub-level of components
// that performs the merging."
//
// Measures the AIDA manager's merge cost vs engine count, flat vs the
// two-level (fan-in 8) hierarchy, and tree size.
#include <benchmark/benchmark.h>

#include "aida/histogram1d.hpp"
#include "common/rng.hpp"
#include "services/aida_manager.hpp"

using namespace ipa;

namespace {

ser::Bytes make_snapshot(std::uint64_t seed, int histograms, int bins) {
  aida::Tree tree;
  Rng rng(seed);
  for (int h = 0; h < histograms; ++h) {
    auto hist = aida::Histogram1D::create("h" + std::to_string(h), bins, 0, 100);
    for (int i = 0; i < 200; ++i) hist->fill(rng.uniform(0, 100));
    tree.put("/dir/h" + std::to_string(h), std::move(*hist));
  }
  return tree.serialize();
}

void run_merge(benchmark::State& state, std::size_t fan_in) {
  const int engines = static_cast<int>(state.range(0));
  const int histograms = static_cast<int>(state.range(1));
  std::vector<ser::Bytes> snapshots;
  for (int e = 0; e < engines; ++e) {
    snapshots.push_back(make_snapshot(static_cast<std::uint64_t>(e) + 1, histograms, 100));
  }
  std::uint64_t version = 0;
  for (auto _ : state) {
    state.PauseTiming();
    services::AidaManager manager(fan_in);
    (void)manager.open_session("s");
    for (int e = 0; e < engines; ++e) {
      services::PushRequest request;
      request.session_id = "s";
      request.report.engine_id = "e" + std::to_string(e);
      request.snapshot = snapshots[static_cast<std::size_t>(e)];
      (void)manager.push(request);
    }
    state.ResumeTiming();
    auto poll = manager.poll("s", version);
    if (!poll.is_ok() || !poll->changed) {
      state.SkipWithError("poll failed");
      break;
    }
    benchmark::DoNotOptimize(poll->merged);
  }
  state.counters["engines"] = engines;
  state.counters["hists"] = histograms;
}

void BM_MergeFlat(benchmark::State& state) { run_merge(state, 0); }
void BM_MergeHierarchical(benchmark::State& state) { run_merge(state, 8); }

BENCHMARK(BM_MergeFlat)
    ->Args({2, 8})
    ->Args({8, 8})
    ->Args({16, 8})
    ->Args({64, 8})
    ->Args({16, 64});
BENCHMARK(BM_MergeHierarchical)
    ->Args({2, 8})
    ->Args({8, 8})
    ->Args({16, 8})
    ->Args({64, 8})
    ->Args({16, 64});

// Incremental-poll cost when nothing changed (the common polling case).
void BM_PollUnchanged(benchmark::State& state) {
  services::AidaManager manager;
  (void)manager.open_session("s");
  services::PushRequest request;
  request.session_id = "s";
  request.report.engine_id = "e0";
  request.snapshot = make_snapshot(1, 8, 100);
  (void)manager.push(request);
  const auto first = manager.poll("s", 0);
  const std::uint64_t version = first->version;
  for (auto _ : state) {
    auto poll = manager.poll("s", version);
    benchmark::DoNotOptimize(poll);
  }
}
BENCHMARK(BM_PollUnchanged);

}  // namespace

BENCHMARK_MAIN();
