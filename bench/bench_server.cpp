// Server-core capacity gate: proves the epoll reactor removed the
// thread-per-connection wall.
//
// Phase "baseline" measures HTTP keep-alive latency with as many concurrent
// clients as the worker pool has threads — the old architecture's ceiling,
// where every open socket cost a dedicated thread. Phase "capacity" then
// parks a crowd of idle keep-alive connections on the same server (each
// costs the reactor a few KB, never a thread) and re-measures the active
// clients' latency through the crowd. Phase "mux" drives concurrent RPC
// calls through ONE multiplexed TCP connection.
//
// Gates (exit 1 on violation, --no-gate to just measure):
//   - held open connections >= 10x the worker-pool thread count
//   - active p99 with the idle crowd parked <= max(2x baseline, +5ms)
//
//   bench_server                      # full run (~8k connections)
//   bench_server --conns 512 --requests 200   # ctest smoke tier
//   bench_server --out results.json   # google-benchmark-style JSON for
//                                     # tools/bench_diff.py gating
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "http/http.hpp"
#include "net/worker_pool.hpp"
#include "rpc/rpc.hpp"

namespace {

using namespace ipa;

struct Flags {
  int conns = 8192;     // idle keep-alive crowd (clamped to the fd limit)
  int active = 0;       // active clients; 0 = same as workers
  int workers = 16;     // ServerWorkerPool threads = old per-connection ceiling
  int requests = 2000;  // requests per active client per phase
  int rpc_threads = 8;  // concurrent callers sharing one mux connection
  std::string out_path;
  bool gate = true;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--conns N] [--active N] [--workers N] [--requests N]\n"
               "          [--rpc-threads N] [--out FILE] [--no-gate]\n",
               argv0);
}

bool parse_flags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* value = nullptr;
    if (arg == "--no-gate") {
      flags.gate = false;
    } else if (arg == "--conns" && (value = next())) {
      flags.conns = std::atoi(value);
    } else if (arg == "--active" && (value = next())) {
      flags.active = std::atoi(value);
    } else if (arg == "--workers" && (value = next())) {
      flags.workers = std::atoi(value);
    } else if (arg == "--requests" && (value = next())) {
      flags.requests = std::atoi(value);
    } else if (arg == "--rpc-threads" && (value = next())) {
      flags.rpc_threads = std::atoi(value);
    } else if (arg == "--out" && (value = next())) {
      flags.out_path = value;
    } else {
      usage(argv[0]);
      return false;
    }
  }
  if (flags.conns < 1 || flags.workers < 1 || flags.requests < 1 || flags.rpc_threads < 1) {
    std::fprintf(stderr, "bench_server: counts must be >= 1\n");
    return false;
  }
  if (flags.active <= 0) flags.active = flags.workers;
  return true;
}

/// Raise the fd soft limit to the hard limit and clamp the idle-connection
/// crowd so client+server fd pairs (2 per connection, in one process) plus
/// slack never exhaust it.
int clamp_to_fd_limit(int requested) {
  struct rlimit lim = {};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return std::min(requested, 1024);
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &lim);
    (void)::getrlimit(RLIMIT_NOFILE, &lim);
  }
  const long budget = (static_cast<long>(lim.rlim_cur) - 200) / 2;
  return static_cast<int>(std::min<long>(requested, std::max(budget, 1L)));
}

struct LatencyStats {
  double p50_us = 0;
  double p99_us = 0;
  double rps = 0;
};

double percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

/// `active` blocking keep-alive clients each issue `requests` GETs; returns
/// pooled client-observed latency percentiles and aggregate throughput.
LatencyStats run_http_clients(const Uri& bound, int active, int requests, bool& ok) {
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(active));
  std::atomic<int> failures{0};
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < active; ++c) {
      threads.emplace_back([&, c] {
        auto client = http::Client::connect(bound.host, bound.port);
        if (!client.is_ok()) {
          failures += requests;
          return;
        }
        auto& samples = lat[static_cast<std::size_t>(c)];
        samples.reserve(static_cast<std::size_t>(requests));
        for (int r = 0; r < requests; ++r) {
          const auto start = std::chrono::steady_clock::now();
          auto resp = client->get("/ping");
          const auto end = std::chrono::steady_clock::now();
          if (!resp.is_ok() || resp->status != 200) {
            ++failures;
            continue;
          }
          samples.push_back(
              std::chrono::duration<double, std::micro>(end - start).count());
        }
      });
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<double> pooled;
  for (auto& samples : lat) pooled.insert(pooled.end(), samples.begin(), samples.end());
  std::sort(pooled.begin(), pooled.end());
  ok = failures.load() == 0 && !pooled.empty();
  LatencyStats stats;
  stats.p50_us = percentile(pooled, 0.50);
  stats.p99_us = percentile(pooled, 0.99);
  stats.rps = wall > 0 ? static_cast<double>(pooled.size()) / wall : 0;
  return stats;
}

struct JsonBench {
  std::string name;
  double items_per_second;
};

void write_json(const std::string& path, const std::vector<JsonBench>& benches) {
  std::ofstream out(path);
  out << "{\n  \"context\": {\"executable\": \"bench_server\"},\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < benches.size(); ++i) {
    out << "    {\"name\": \"" << benches[i].name << "\", \"run_type\": \"iteration\", "
        << "\"items_per_second\": " << benches[i].items_per_second << "}"
        << (i + 1 < benches.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse_flags(argc, argv, flags)) return 2;
  flags.conns = clamp_to_fd_limit(flags.conns);

  net::ServerPoolOptions pool;
  pool.max_workers = static_cast<std::size_t>(flags.workers);
  pool.queue_capacity = static_cast<std::size_t>(flags.workers) * 16;
  http::Server server("127.0.0.1", 0, pool);
  server.route("/ping", [](const http::Request&) { return http::Response::make(200, "pong"); });
  auto bound = server.start();
  if (!bound.is_ok()) {
    std::fprintf(stderr, "bench_server: start: %s\n", bound.status().to_string().c_str());
    return 1;
  }
  std::printf("bench_server: workers=%d active=%d idle-crowd=%d requests=%d\n",
              flags.workers, flags.active, flags.conns, flags.requests);

  // -- Phase 1: baseline -----------------------------------------------------
  // Active clients == worker threads: exactly the load shape the old
  // thread-per-connection server could sustain at its ceiling.
  bool baseline_ok = false;
  const LatencyStats baseline =
      run_http_clients(*bound, flags.active, flags.requests, baseline_ok);
  std::printf("baseline   : p50 %7.0f us  p99 %7.0f us  %8.0f req/s  (%s)\n",
              baseline.p50_us, baseline.p99_us, baseline.rps,
              baseline_ok ? "ok" : "FAILED");

  // -- Phase 2: capacity -----------------------------------------------------
  // Park the idle crowd. Every connection is a live keep-alive socket the
  // server must track; under thread-per-connection this would need
  // `flags.conns` threads and die at pool size.
  std::vector<http::Client> crowd;
  crowd.reserve(static_cast<std::size_t>(flags.conns));
  const auto t_crowd = std::chrono::steady_clock::now();
  for (int i = 0; i < flags.conns; ++i) {
    auto client = http::Client::connect(bound->host, bound->port);
    if (!client.is_ok()) break;
    crowd.push_back(std::move(*client));
    // One request proves each connection is established end-to-end (not a
    // SYN parked in the backlog) before it goes idle.
    if (i < flags.active) {
      if (!crowd.back().get("/ping").is_ok()) break;
    }
  }
  const double crowd_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_crowd).count();
  // Let the accept loop drain the tail of the backlog before counting.
  const auto count_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::size_t held = 0;
  while (std::chrono::steady_clock::now() < count_deadline) {
    held = server.open_connections();
    if (held >= crowd.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::printf("capacity   : %zu connections held open (opened in %.1fs, %.0f conn/s)\n",
              held, crowd_s, crowd_s > 0 ? static_cast<double>(crowd.size()) / crowd_s : 0);

  bool loaded_ok = false;
  const LatencyStats loaded =
      run_http_clients(*bound, flags.active, flags.requests, loaded_ok);
  std::printf("with-crowd : p50 %7.0f us  p99 %7.0f us  %8.0f req/s  (%s)\n",
              loaded.p50_us, loaded.p99_us, loaded.rps, loaded_ok ? "ok" : "FAILED");
  crowd.clear();

  // -- Phase 3: RPC mux ------------------------------------------------------
  // Concurrent callers share one TCP connection; throughput proves frame
  // interleaving works, the connection count proves it really is one stream.
  Uri rpc_endpoint;
  rpc_endpoint.scheme = "tcp";
  rpc_endpoint.host = "127.0.0.1";
  rpc_endpoint.port = 0;
  rpc::RpcServer rpc_server(rpc_endpoint, pool);
  auto service = std::make_shared<rpc::Service>("Bench");
  service->register_method(
      "echo",
      [](const rpc::CallContext&, const ser::Bytes& in) { return Result<ser::Bytes>(in); },
      /*idempotent=*/true);
  rpc_server.add_service(service);
  auto rpc_bound = rpc_server.start();
  double mux_cps = 0;
  bool mux_ok = false;
  std::size_t mux_conns = 0;
  if (rpc_bound.is_ok()) {
    auto client = rpc::RpcClient::connect(*rpc_bound);
    if (client.is_ok()) {
      const ser::Bytes payload(128, 0x5a);
      std::atomic<int> mux_failures{0};
      const int per_thread = std::max(flags.requests / 2, 100);
      const auto t0 = std::chrono::steady_clock::now();
      {
        std::vector<std::jthread> threads;
        for (int t = 0; t < flags.rpc_threads; ++t) {
          threads.emplace_back([&] {
            for (int i = 0; i < per_thread; ++i) {
              if (!client->call("Bench", "echo", payload, "", 30.0).is_ok()) ++mux_failures;
            }
          });
        }
      }
      mux_conns = rpc_server.active_connections();
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      mux_cps = wall > 0
                    ? static_cast<double>(flags.rpc_threads) * per_thread / wall
                    : 0;
      mux_ok = mux_failures.load() == 0 && mux_conns <= 1;
      std::printf("rpc-mux    : %d callers on %zu connection(s), %8.0f calls/s  (%s)\n",
                  flags.rpc_threads, mux_conns, mux_cps, mux_ok ? "ok" : "FAILED");
    }
  }
  rpc_server.stop();
  server.stop();

  if (!flags.out_path.empty()) {
    write_json(flags.out_path,
               {{"ServerCapacity/open_connections", static_cast<double>(held)},
                {"ServerHttp/keepalive_rps", loaded.rps},
                {"ServerMux/calls_per_second", mux_cps}});
  }

  if (!flags.gate) return 0;
  int violations = 0;
  if (!baseline_ok || !loaded_ok || !mux_ok) {
    std::fprintf(stderr, "bench_server: FAIL: a measurement phase had errors\n");
    ++violations;
  }
  const double capacity_ratio =
      static_cast<double>(held) / static_cast<double>(flags.workers);
  if (capacity_ratio < 10.0) {
    std::fprintf(stderr,
                 "bench_server: FAIL: capacity %zu conns / %d workers = %.1fx < 10x\n",
                 held, flags.workers, capacity_ratio);
    ++violations;
  }
  const double p99_budget_us = std::max(baseline.p99_us * 2.0, baseline.p99_us + 5000.0);
  if (loaded.p99_us > p99_budget_us) {
    std::fprintf(stderr,
                 "bench_server: FAIL: p99 with crowd %.0f us > budget %.0f us "
                 "(baseline %.0f us)\n",
                 loaded.p99_us, p99_budget_us, baseline.p99_us);
    ++violations;
  }
  if (violations == 0) {
    std::printf("bench_server: PASS: %.0fx capacity at p99 %+.0f us vs baseline\n",
                capacity_ratio, loaded.p99_us - baseline.p99_us);
    return 0;
  }
  return 1;
}
