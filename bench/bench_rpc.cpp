// Channel ablation: why the paper uses heavyweight SOAP for control but a
// lightweight RMI-style channel for high-frequency histogram polling.
// Measures round-trip cost of binary RPC (inproc + TCP) vs SOAP-over-HTTP
// (TCP), at the payload sizes a polling client actually sees.
#include <benchmark/benchmark.h>

#include "rpc/rpc.hpp"
#include "soap/soap.hpp"

using namespace ipa;

namespace {

ser::Bytes payload_of(std::size_t size) { return ser::Bytes(size, 0x5a); }

std::shared_ptr<rpc::Service> echo_service() {
  auto service = std::make_shared<rpc::Service>("Echo");
  service->register_method("echo", [](const rpc::CallContext&, const ser::Bytes& in) {
    return Result<ser::Bytes>(in);
  });
  return service;
}

void BM_RpcInproc(benchmark::State& state) {
  Uri endpoint;
  endpoint.scheme = "inproc";
  endpoint.host = "bench-rpc-inproc";
  rpc::RpcServer server(endpoint);
  server.add_service(echo_service());
  if (!server.start().is_ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  auto client = rpc::RpcClient::connect(server.endpoint());
  const ser::Bytes payload = payload_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto reply = client->call("Echo", "echo", payload);
    if (!reply.is_ok()) {
      state.SkipWithError("call failed");
      break;
    }
    benchmark::DoNotOptimize(*reply);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
  server.stop();
}
BENCHMARK(BM_RpcInproc)->Arg(64)->Arg(4096)->Arg(65536);

void BM_RpcTcp(benchmark::State& state) {
  Uri endpoint = Uri::parse("tcp://127.0.0.1:0").value();
  rpc::RpcServer server(endpoint);
  server.add_service(echo_service());
  auto bound = server.start();
  if (!bound.is_ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  auto client = rpc::RpcClient::connect(*bound);
  const ser::Bytes payload = payload_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto reply = client->call("Echo", "echo", payload);
    if (!reply.is_ok()) {
      state.SkipWithError("call failed");
      break;
    }
    benchmark::DoNotOptimize(*reply);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
  server.stop();
}
BENCHMARK(BM_RpcTcp)->Arg(64)->Arg(4096)->Arg(65536);

void BM_SoapTcp(benchmark::State& state) {
  soap::SoapServer server("127.0.0.1", 0);
  server.register_operation("Echo", "echo",
                            [](const soap::SoapContext&, const xml::Node& args) {
                              xml::Node reply("ipa:echoResponse");
                              reply.set_text(args.text());
                              return Result<xml::Node>(std::move(reply));
                            });
  auto bound = server.start();
  if (!bound.is_ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  auto client = soap::SoapClient::connect(*bound);
  const std::string body(static_cast<std::size_t>(state.range(0)), 'z');
  for (auto _ : state) {
    xml::Node args("ipa:echo");
    args.set_text(body);
    auto reply = client->call("Echo", "echo", std::move(args));
    if (!reply.is_ok()) {
      state.SkipWithError("call failed");
      break;
    }
    benchmark::DoNotOptimize(*reply);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(body.size()));
  server.stop();
}
BENCHMARK(BM_SoapTcp)->Arg(64)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
