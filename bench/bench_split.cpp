// Splitter throughput vs part count — the functional twin of Table 2's
// "split" column ("the splitter must iterate through the entire dataset in
// all cases and only has a very small input/output overhead for the number
// of split files").
#include <benchmark/benchmark.h>

#include <filesystem>

#include "data/splitter.hpp"
#include "physics/event_gen.hpp"

using namespace ipa;

namespace {

class SplitFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (!source_.empty()) return;
    dir_ = std::filesystem::temp_directory_path() / "ipa-bench-split";
    std::filesystem::create_directories(dir_);
    source_ = (dir_ / "src.ipd").string();
    (void)physics::generate_dataset(source_, "bench", 20000);
    bytes_ = std::filesystem::file_size(source_);
  }

  static std::filesystem::path dir_;
  static std::string source_;
  static std::uintmax_t bytes_;
};

std::filesystem::path SplitFixture::dir_;
std::string SplitFixture::source_;
std::uintmax_t SplitFixture::bytes_ = 0;

BENCHMARK_DEFINE_F(SplitFixture, Split)(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  int round = 0;
  for (auto _ : state) {
    const std::string prefix = (dir_ / ("out" + std::to_string(round++))).string();
    auto split = data::split_dataset(source_, prefix, parts);
    if (!split.is_ok()) {
      state.SkipWithError("split failed");
      break;
    }
    benchmark::DoNotOptimize(*split);
    state.PauseTiming();
    for (const auto& part : split->parts) std::filesystem::remove(part.path);
    state.ResumeTiming();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes_));
  state.counters["parts"] = parts;
}
BENCHMARK_REGISTER_F(SplitFixture, Split)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

// Sequential read throughput: the splitter's lower bound.
BENCHMARK_DEFINE_F(SplitFixture, SequentialRead)(benchmark::State& state) {
  for (auto _ : state) {
    auto reader = data::DatasetReader::open(source_);
    if (!reader.is_ok()) {
      state.SkipWithError("open failed");
      break;
    }
    std::uint64_t total = 0;
    for (std::uint64_t i = 0; i < reader->size(); ++i) {
      auto record = reader->next();
      total += record.is_ok() ? (*record).field_count() : 0;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes_));
}
BENCHMARK_REGISTER_F(SplitFixture, SequentialRead);

}  // namespace

BENCHMARK_MAIN();
