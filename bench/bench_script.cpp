// The interpreted-code tax: per-event cost of the PawScript Higgs analysis
// vs its natively compiled twin (the paper ships PNUTS scripts but notes
// Java classes as the fast path; C++ plugins play that role here).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "engine/analyzer.hpp"
#include "physics/event_gen.hpp"

using namespace ipa;

namespace {

std::vector<data::Record> make_events(int n) {
  Rng rng(7);
  std::vector<data::Record> events;
  events.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    events.push_back(physics::generate_event(rng, {}, static_cast<std::uint64_t>(i)));
  }
  return events;
}

void BM_ScriptAnalyzer(benchmark::State& state) {
  const auto events = make_events(512);
  auto analyzer = engine::make_analyzer(
      {engine::CodeBundle::Kind::kScript, "higgs", physics::higgs_script()});
  aida::Tree tree;
  (void)(*analyzer)->begin(tree);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*analyzer)->process(events[i++ & 511], tree));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScriptAnalyzer);

void BM_NativeAnalyzer(benchmark::State& state) {
  physics::register_higgs_plugin();
  const auto events = make_events(512);
  auto analyzer =
      engine::make_analyzer({engine::CodeBundle::Kind::kPlugin, "higgs", "higgs-mass"});
  aida::Tree tree;
  (void)(*analyzer)->begin(tree);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*analyzer)->process(events[i++ & 511], tree));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NativeAnalyzer);

// Script compile cost: what a hot-reload actually pays.
void BM_ScriptCompile(benchmark::State& state) {
  for (auto _ : state) {
    auto analyzer = engine::ScriptAnalyzer::compile(physics::higgs_script());
    benchmark::DoNotOptimize(analyzer);
  }
}
BENCHMARK(BM_ScriptCompile);

// Raw interpreter dispatch: a numeric inner loop per call.
void BM_ScriptArithmetic(benchmark::State& state) {
  script::Interp interp;
  (void)interp.load(R"(
func work(n) {
  let total = 0;
  for (let i = 0; i < n; i += 1) { total += i * 2 - 1; }
  return total;
}
)");
  for (auto _ : state) {
    auto result = interp.call("work", {script::Value(100.0)});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ScriptArithmetic);

}  // namespace

BENCHMARK_MAIN();
