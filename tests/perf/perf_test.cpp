#include <gtest/gtest.h>

#include "perf/paper_model.hpp"
#include "perf/scenario.hpp"

namespace ipa::perf {
namespace {

// --- published-equation model ------------------------------------------------

TEST(PaperModel, LocalIsElevenPointFiveX) {
  EXPECT_DOUBLE_EQ(PaperModel::t_local(1.0), 11.5);
  EXPECT_DOUBLE_EQ(PaperModel::t_local(471.0), 11.5 * 471);
}

TEST(PaperModel, GridEquationMatchesExpandedForm) {
  for (const double mb : {1.0, 10.0, 471.0, 1000.0}) {
    for (const int n : {1, 2, 4, 8, 16}) {
      const double expanded = 0.38 * mb + 53.0 + (62.0 + 5.3 * mb) / n;
      EXPECT_NEAR(PaperModel::t_grid(mb, n), expanded, 1e-9);
    }
  }
}

TEST(PaperModel, GridBeatsLocalForLargeDatasets) {
  // The paper's headline claim: "for large dataset (> ~10 MB) ... it is
  // much better to use the Grid".
  for (const int n : {1, 2, 4, 8, 16}) {
    EXPECT_LT(PaperModel::t_grid(100.0, n), PaperModel::t_local(100.0)) << "n=" << n;
    EXPECT_LT(PaperModel::t_grid(471.0, n), PaperModel::t_local(471.0)) << "n=" << n;
  }
  // And tiny datasets prefer local (overheads dominate).
  EXPECT_GT(PaperModel::t_grid(1.0, 16), PaperModel::t_local(1.0));
}

TEST(PaperModel, CrossoverIsAroundTenMb) {
  for (const int n : {2, 4, 8, 16}) {
    const double x = PaperModel::crossover_mb(n);
    EXPECT_GT(x, 4.0) << "n=" << n;
    EXPECT_LT(x, 25.0) << "n=" << n;
    // At the crossover the two costs are equal.
    EXPECT_NEAR(PaperModel::t_grid(x, n), PaperModel::t_local(x), 1e-6);
  }
}

TEST(PaperModel, AnalysisScalesAsOneOverN) {
  const double full = PaperModel::t_analyze_grid(471, 1);
  EXPECT_NEAR(PaperModel::t_analyze_grid(471, 16), full / 16, 1e-9);
}

TEST(Fitting, LinearRecoversKnownLine) {
  const double xs[] = {1, 2, 3, 4, 5};
  double ys[5];
  for (int i = 0; i < 5; ++i) ys[i] = 3.5 * xs[i] + 7.0;
  const LinearFit fit = fit_linear(xs, ys, 5);
  EXPECT_NEAR(fit.slope, 3.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Fitting, ProportionalRecoversSlope) {
  const double xs[] = {1, 10, 100};
  const double ys[] = {11.5, 115, 1150};
  EXPECT_NEAR(fit_proportional(xs, ys, 3), 11.5, 1e-9);
}

// --- calibrated simulator ------------------------------------------------------

class ScenarioTest : public ::testing::Test {
 protected:
  SiteCalibration cal_;
};

TEST_F(ScenarioTest, Table1LocalColumnReproduced) {
  // Paper Table 1 local: get dataset 32 min, analysis 13 min, total 45 min.
  const LocalRunBreakdown local = simulate_local_run(cal_, 471.0);
  EXPECT_NEAR(local.move_s, 1920.0, 1920 * 0.02);
  EXPECT_NEAR(local.analysis_s, 780.0, 780 * 0.02);
  EXPECT_NEAR(local.total_s, 2700.0, 2700 * 0.02);
}

TEST_F(ScenarioTest, Table1GridColumnReproduced) {
  // Paper Table 1 grid (16 nodes): stage 174 s, code 7 s, analysis 258 s,
  // total 4 min 19 s. Our calibration targets the same breakdown within a
  // reasonable band (the stage column combines the Table 2 components).
  const GridRunBreakdown grid = simulate_grid_run(cal_, 471.0, 16);
  EXPECT_NEAR(grid.stage_dataset_s, 174.0 + 63.0, 80.0);  // see EXPERIMENTS.md
  EXPECT_NEAR(grid.stage_code_s, 7.0, 0.5);
  EXPECT_LT(grid.analysis_s, 780.0 / 2);  // far faster than local
  EXPECT_LT(grid.total_s, 2700.0 / 5);    // and the total beats 45 min by >5x
}

TEST_F(ScenarioTest, Table2MoveWholeConstantInNodes) {
  for (const int n : {1, 2, 4, 8, 16}) {
    const GridRunBreakdown run = simulate_grid_run(cal_, 471.0, n);
    EXPECT_NEAR(run.move_whole_s, 63.0, 1.0) << "n=" << n;
  }
}

TEST_F(ScenarioTest, Table2SplitNearlyConstantInNodes) {
  const GridRunBreakdown one = simulate_grid_run(cal_, 471.0, 1);
  const GridRunBreakdown sixteen = simulate_grid_run(cal_, 471.0, 16);
  EXPECT_NEAR(one.split_s, 118.0, 5.0);
  EXPECT_NEAR(sixteen.split_s, 122.0, 5.0);
  // "The splitting varies little with the number of nodes."
  EXPECT_LT(std::abs(sixteen.split_s - one.split_s), 10.0);
}

TEST_F(ScenarioTest, Table2MovePartsDecreasesWithNodes) {
  // Paper: 105, 77, 70, 65, 50 for N = 1, 2, 4, 8, 16.
  const double expected[] = {105, 77, 70, 65, 50};
  const int nodes[] = {1, 2, 4, 8, 16};
  double prev = 1e9;
  for (int i = 0; i < 5; ++i) {
    const GridRunBreakdown run = simulate_grid_run(cal_, 471.0, nodes[i]);
    EXPECT_LT(run.move_parts_s, prev + 1e-9) << "n=" << nodes[i];
    // Within 20% of the measured column.
    EXPECT_NEAR(run.move_parts_s, expected[i], expected[i] * 0.20) << "n=" << nodes[i];
    prev = run.move_parts_s;
  }
}

TEST_F(ScenarioTest, Table2AnalysisEndpointsAndMonotonicity) {
  // Calibrated to hit the 1-node and 16-node measurements; the curve must
  // decrease monotonically in between (paper: "decreases with the number
  // of processors ... not 1/16th").
  const GridRunBreakdown one = simulate_grid_run(cal_, 471.0, 1);
  const GridRunBreakdown sixteen = simulate_grid_run(cal_, 471.0, 16);
  EXPECT_NEAR(one.analysis_s, 330.0, 10.0);
  EXPECT_NEAR(sixteen.analysis_s, 78.0, 5.0);
  double prev = 1e18;
  for (const int n : {1, 2, 4, 8, 16}) {
    const double t = simulate_grid_run(cal_, 471.0, n).analysis_s;
    EXPECT_LT(t, prev) << "n=" << n;
    prev = t;
  }
  // Speedup is sub-linear: 16 nodes give ~4.2x, not 16x.
  const double speedup = one.analysis_s / sixteen.analysis_s;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 6.0);
}

TEST_F(ScenarioTest, GridWinsForLargeDataAndLosesForTiny) {
  // Figure 5's qualitative content, from the simulator rather than the
  // published equations.
  EXPECT_LT(simulate_grid_run(cal_, 471.0, 16).total_s,
            simulate_local_run(cal_, 471.0).total_s);
  EXPECT_LT(simulate_grid_run(cal_, 100.0, 8).total_s,
            simulate_local_run(cal_, 100.0).total_s);
  EXPECT_GT(simulate_grid_run(cal_, 1.0, 16).total_s, simulate_local_run(cal_, 1.0).total_s);
}

TEST_F(ScenarioTest, NodesClampedToSiteMaximum) {
  const GridRunBreakdown at_max = simulate_grid_run(cal_, 471.0, 16);
  const GridRunBreakdown beyond = simulate_grid_run(cal_, 471.0, 64);
  EXPECT_NEAR(at_max.total_s, beyond.total_s, 1e-9);
}

TEST(QueueWait, FairShareReducesMeanWaitUnderContention) {
  // 8 users, 4-node jobs on a 16-node queue, 100 s holds: both policies
  // serialize somewhat; fair-share must not be worse than FIFO here and
  // both must show non-trivial waits.
  const double fifo = simulate_queue_wait(gridsim::DispatchPolicy::kFifo, 16, 8, 4, 100);
  const double fair = simulate_queue_wait(gridsim::DispatchPolicy::kFairShare, 16, 8, 4, 100);
  EXPECT_GT(fifo, 10.0);
  EXPECT_LE(fair, fifo * 1.05);
}

TEST(QueueWait, EmptyQueueHasNoWait) {
  EXPECT_NEAR(simulate_queue_wait(gridsim::DispatchPolicy::kFifo, 16, 1, 4, 10), 0.0, 1e-9);
}

}  // namespace
}  // namespace ipa::perf
