#include "serialize/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ipa::ser {
namespace {

TEST(Serialize, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.boolean().value());
  EXPECT_FALSE(r.boolean().value());
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, F64RoundTripExact) {
  const double cases[] = {0.0,
                          -0.0,
                          1.5,
                          -3.25,
                          471e6,
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::infinity()};
  for (const double v : cases) {
    Writer w;
    w.f64(v);
    Reader r(w.data());
    EXPECT_EQ(r.f64().value(), v);
  }
  // NaN round-trips as NaN.
  Writer w;
  w.f64(std::numeric_limits<double>::quiet_NaN());
  Reader r(w.data());
  EXPECT_TRUE(std::isnan(r.f64().value()));
}

TEST(Serialize, VarintRoundTrip) {
  const std::uint64_t cases[] = {0, 1, 127, 128, 300, 16383, 16384,
                                 0xffffffffULL, ~0ULL};
  for (const std::uint64_t v : cases) {
    Writer w;
    w.varint(v);
    Reader r(w.data());
    EXPECT_EQ(r.varint().value(), v) << v;
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Serialize, VarintCompactness) {
  Writer w;
  w.varint(127);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(128);
  EXPECT_EQ(w2.size(), 2u);
  Writer w3;
  w3.varint(~0ULL);
  EXPECT_EQ(w3.size(), 10u);
}

TEST(Serialize, SignedVarintRoundTrip) {
  const std::int64_t cases[] = {0, -1, 1, -64, 63, -65, 12345, -12345,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : cases) {
    Writer w;
    w.svarint(v);
    Reader r(w.data());
    EXPECT_EQ(r.svarint().value(), v) << v;
  }
}

TEST(Serialize, ZigzagSmallMagnitudesAreSmall) {
  Writer w;
  w.svarint(-1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Serialize, StringRoundTrip) {
  Writer w;
  w.string("higgs \0 analysis");
  w.string("");
  std::string long_str(100000, 'x');
  w.string(long_str);
  Reader r(w.data());
  EXPECT_EQ(r.string().value(), "higgs ");  // literal truncates at NUL
  EXPECT_EQ(r.string().value(), "");
  EXPECT_EQ(r.string().value(), long_str);
}

TEST(Serialize, StringWithEmbeddedNul) {
  Writer w;
  const std::string s{"a\0b", 3};
  w.string(s);
  Reader r(w.data());
  EXPECT_EQ(r.string().value(), s);
}

TEST(Serialize, BytesRoundTrip) {
  Writer w;
  const Bytes payload = {0x00, 0xff, 0x7f, 0x80};
  w.bytes(payload);
  Reader r(w.data());
  EXPECT_EQ(r.bytes().value(), payload);
}

TEST(Serialize, VectorRoundTrip) {
  Writer w;
  const std::vector<std::uint64_t> xs = {1, 1000, 100000};
  w.vector(xs, [](Writer& ww, std::uint64_t v) { ww.varint(v); });
  Reader r(w.data());
  const auto back = r.vector<std::uint64_t>([](Reader& rr) { return rr.varint(); });
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, xs);
}

TEST(Serialize, StringMapRoundTrip) {
  Writer w;
  const std::map<std::string, std::string> m = {
      {"experiment", "LC"}, {"run", "7"}, {"detector", "sid"}};
  w.string_map(m);
  Reader r(w.data());
  EXPECT_EQ(r.string_map().value(), m);
}

TEST(Serialize, TruncatedFixedWidthFails) {
  Writer w;
  w.u32(42);
  Bytes truncated(w.data().begin(), w.data().begin() + 2);
  Reader r(truncated);
  EXPECT_EQ(r.u32().status().code(), StatusCode::kDataLoss);
}

TEST(Serialize, TruncatedStringFails) {
  Writer w;
  w.string("hello world");
  Bytes truncated(w.data().begin(), w.data().begin() + 5);
  Reader r(truncated);
  EXPECT_EQ(r.string().status().code(), StatusCode::kDataLoss);
}

TEST(Serialize, OversizedLengthRejectedWithoutAllocating) {
  Writer w;
  w.varint(Reader::kMaxFieldLen + 1);
  Reader r(w.data());
  EXPECT_EQ(r.string().status().code(), StatusCode::kDataLoss);
}

TEST(Serialize, UnterminatedVarintFails) {
  Bytes bad = {0x80, 0x80, 0x80};  // continuation bits never end
  Reader r(bad);
  EXPECT_EQ(r.varint().status().code(), StatusCode::kDataLoss);
}

TEST(Serialize, VarintOverflowRejected) {
  Bytes bad(11, 0xff);  // 11 continuation bytes > max 10 for 64-bit
  Reader r(bad);
  EXPECT_FALSE(r.varint().is_ok());
}

TEST(Serialize, BadBoolByteRejected) {
  Bytes bad = {2};
  Reader r(bad);
  EXPECT_EQ(r.boolean().status().code(), StatusCode::kDataLoss);
}

TEST(Serialize, SkipAndRemaining) {
  Writer w;
  w.u32(1);
  w.u32(2);
  Reader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  EXPECT_TRUE(r.skip(4).is_ok());
  EXPECT_EQ(r.u32().value(), 2u);
  EXPECT_FALSE(r.skip(1).is_ok());
}

TEST(Serialize, MixedMessageRoundTrip) {
  // Shape of a typical RPC payload: id, method, params map, opaque body.
  Writer w;
  w.string("sess-00ab12");
  w.string("submitAnalysis");
  w.string_map({{"dataset", "lc-run7"}, {"nodes", "16"}});
  w.bytes({1, 2, 3});
  w.f64(471.0);

  Reader r(w.data());
  EXPECT_EQ(r.string().value(), "sess-00ab12");
  EXPECT_EQ(r.string().value(), "submitAnalysis");
  const auto params = r.string_map().value();
  EXPECT_EQ(params.at("nodes"), "16");
  EXPECT_EQ(r.bytes().value(), (Bytes{1, 2, 3}));
  EXPECT_DOUBLE_EQ(r.f64().value(), 471.0);
  EXPECT_TRUE(r.at_end());
}

}  // namespace
}  // namespace ipa::ser
