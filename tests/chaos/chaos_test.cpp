// Chaos suite: the real stack (RPC, SOAP, manager, engines, client) run
// under the chaos+ fault-injecting transport with FIXED seeds, so every
// scenario is reproducible — same seed, same fault schedule, same outcome.
//
// The invariant under test everywhere: a session under fault injection
// completes or degrades to a flagged partial result. It never hangs (each
// scenario is deadline-bounded and the ctest TIMEOUT backstops it) and
// never crashes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <thread>

#include "client/grid_client.hpp"
#include "common/rng.hpp"
#include "net/fault.hpp"
#include "rpc/rpc.hpp"
#include "services/manager.hpp"
#include "soap/soap.hpp"

namespace ipa {
namespace {

const char* kCountScript = R"(
func begin(tree) { tree.book_h1("/n", 1, 0, 1); }
func process(event, tree) { tree.fill("/n", 0.5); }
)";

/// Fresh chaos endpoint with a unique inproc host, so per-endpoint dial
/// ordinals (and thus fault schedules) never depend on test order.
Uri chaos_endpoint(const std::string& tag, std::map<std::string, std::string> query) {
  static std::atomic<int> counter{0};
  Uri uri;
  uri.scheme = "chaos+inproc";
  uri.host = "chaos-" + tag + "-" + std::to_string(counter.fetch_add(1));
  uri.query = std::move(query);
  return uri;
}

ser::Bytes payload_of(std::string_view s) { return ser::Bytes(s.begin(), s.end()); }

/// One idempotent echo method; `count` observes server-side executions.
std::shared_ptr<rpc::Service> make_echo_service(std::atomic<int>* count = nullptr) {
  auto service = std::make_shared<rpc::Service>("Chaos");
  service->register_method(
      "echo",
      [count](const rpc::CallContext&, const ser::Bytes& in) {
        if (count != nullptr) ++*count;
        return Result<ser::Bytes>(in);
      },
      /*idempotent=*/true);
  return service;
}

/// Aggressive retry policy for fault-heavy unit scenarios: fail attempts
/// fast, back off briefly, try often.
rpc::RetryPolicy chaos_retry_policy() {
  rpc::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_s = 0.001;
  policy.max_backoff_s = 0.01;
  policy.attempt_timeout_s = 0.1;
  return policy;
}

// --- schedule determinism --------------------------------------------------

TEST(ChaosSchedule, SameSeedSameSchedule) {
  net::FaultPolicy policy;
  policy.seed = 42;
  policy.disconnect_prob = 0.02;
  policy.drop_prob = 0.2;
  policy.truncate_prob = 0.1;
  policy.delay_prob = 0.3;
  const auto a = net::preview_schedule(policy, /*ordinal=*/0, 256);
  const auto b = net::preview_schedule(policy, /*ordinal=*/0, 256);
  EXPECT_EQ(a, b);
  // Faults actually fire at these probabilities.
  EXPECT_TRUE(std::any_of(a.begin(), a.end(),
                          [](net::Fault f) { return f != net::Fault::kNone; }));
  // Different connection ordinal or different seed: different schedule.
  EXPECT_NE(a, net::preview_schedule(policy, /*ordinal=*/1, 256));
  net::FaultPolicy reseeded = policy;
  reseeded.seed = 43;
  EXPECT_NE(a, net::preview_schedule(reseeded, /*ordinal=*/0, 256));
}

TEST(ChaosSchedule, PolicyParsesFromEndpointQuery) {
  auto uri = Uri::parse(
      "chaos+inproc://mgr?seed=9&drop=0.25&truncate=0.5&delay_p=0.75&delay_ms=12"
      "&disconnect=0.125&disconnect_after=7&fail_first=3");
  ASSERT_TRUE(uri.is_ok());
  auto policy = net::FaultPolicy::from_uri(*uri);
  ASSERT_TRUE(policy.is_ok()) << policy.status().to_string();
  EXPECT_EQ(policy->seed, 9u);
  EXPECT_DOUBLE_EQ(policy->drop_prob, 0.25);
  EXPECT_DOUBLE_EQ(policy->truncate_prob, 0.5);
  EXPECT_DOUBLE_EQ(policy->delay_prob, 0.75);
  EXPECT_DOUBLE_EQ(policy->delay_s, 0.012);
  EXPECT_DOUBLE_EQ(policy->disconnect_prob, 0.125);
  EXPECT_EQ(policy->disconnect_after_frames, 7u);
  EXPECT_EQ(policy->fail_first_connections, 3);

  auto bad = Uri::parse("chaos+inproc://mgr?drop=not-a-number");
  ASSERT_TRUE(bad.is_ok());
  EXPECT_FALSE(net::FaultPolicy::from_uri(*bad).is_ok());
}

// --- RPC path scenarios ----------------------------------------------------

TEST(ChaosRpc, DroppedFramesAreRetriedToSuccess) {
  rpc::RpcServer server(chaos_endpoint("drop", {{"seed", "7"}, {"drop", "0.1"}}));
  std::atomic<int> executed{0};
  server.add_service(make_echo_service(&executed));
  ASSERT_TRUE(server.start().is_ok());

  auto client = rpc::RpcClient::connect(server.endpoint(), 5.0, chaos_retry_policy());
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  for (int i = 0; i < 40; ++i) {
    const std::string msg = "drop-" + std::to_string(i);
    auto reply = client->call("Chaos", "echo", payload_of(msg), "", 10.0);
    ASSERT_TRUE(reply.is_ok()) << i << ": " << reply.status().to_string();
    EXPECT_EQ(*reply, payload_of(msg));
  }
  // Lost requests mean retries, and every execution was observed at least
  // once (drops can cost a duplicate execution, never a lost result).
  EXPECT_GE(executed.load(), 40);
  server.stop();
}

TEST(ChaosRpc, TruncatedFramesAreDetectedAndRetried) {
  rpc::RpcServer server(chaos_endpoint("trunc", {{"seed", "5"}, {"truncate", "0.08"}}));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());

  auto client = rpc::RpcClient::connect(server.endpoint(), 5.0, chaos_retry_policy());
  ASSERT_TRUE(client.is_ok());
  for (int i = 0; i < 40; ++i) {
    const std::string msg = std::string(512, 'x') + std::to_string(i);
    auto reply = client->call("Chaos", "echo", payload_of(msg), "", 10.0);
    ASSERT_TRUE(reply.is_ok()) << i << ": " << reply.status().to_string();
    EXPECT_EQ(*reply, payload_of(msg));
  }
  server.stop();
}

TEST(ChaosRpc, DisconnectEveryFewFramesForcesReconnects) {
  rpc::RpcServer server(
      chaos_endpoint("cut", {{"seed", "3"}, {"disconnect_after", "5"}}));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());

  auto client = rpc::RpcClient::connect(server.endpoint(), 5.0, chaos_retry_policy());
  ASSERT_TRUE(client.is_ok());
  for (int i = 0; i < 25; ++i) {
    auto reply = client->call("Chaos", "echo", payload_of("cut"), "", 10.0);
    ASSERT_TRUE(reply.is_ok()) << i << ": " << reply.status().to_string();
  }
  // 25 calls across connections that die after 5 frames each.
  EXPECT_GE(client->stats().reconnects, 3u);
  EXPECT_GE(client->stats().retries, 3u);
  server.stop();
}

TEST(ChaosRpc, FirstConnectionsDyingStillConverges) {
  rpc::RpcServer server(chaos_endpoint("young", {{"seed", "1"}, {"fail_first", "2"}}));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());

  auto client = rpc::RpcClient::connect(server.endpoint(), 5.0, chaos_retry_policy());
  ASSERT_TRUE(client.is_ok());
  // Connections 0 and 1 die on their first send; the call must survive both.
  auto reply = client->call("Chaos", "echo", payload_of("persist"), "", 10.0);
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_GE(client->stats().reconnects, 2u);
  server.stop();
}

TEST(ChaosRpc, DelayMakesCallsSlowNotPartial) {
  rpc::RpcServer server(chaos_endpoint(
      "slow", {{"seed", "2"}, {"delay_p", "0.5"}, {"delay_ms", "5"}}));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());

  auto client = rpc::RpcClient::connect(server.endpoint(), 5.0, chaos_retry_policy());
  ASSERT_TRUE(client.is_ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client->call("Chaos", "echo", payload_of("zzz"), "", 10.0).is_ok());
  }
  // Delays alone are absorbed as latency: no retry, no reconnect.
  EXPECT_EQ(client->stats().retries, 0u);
  EXPECT_EQ(client->stats().reconnects, 0u);
  server.stop();
}

// --- SOAP path -------------------------------------------------------------

TEST(ChaosSoap, StaleConnectionIsRedialedAndReplayed) {
  soap::SoapServer server("127.0.0.1", 0);
  server.register_operation("Probe", "ping",
                            [](const soap::SoapContext&, const xml::Node&) {
                              xml::Node reply("ipa:pong");
                              return Result<xml::Node>(std::move(reply));
                            });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());

  auto client = soap::SoapClient::connect(*bound);
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(client->call("Probe", "ping", xml::Node("ipa:ping")).is_ok());

  // Sever the keep-alive connection between calls — the classic idle-drop.
  client->drop_connection();
  auto reply = client->call("Probe", "ping", xml::Node("ipa:ping"));
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(client->reconnects(), 1u);
  server.stop();
}

// --- full-stack sessions under chaos ---------------------------------------

class ChaosGridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ipa-chaos-" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::create_directories(dir_);
    Rng rng(1);
    std::vector<data::Record> records;
    for (std::uint64_t i = 0; i < 1000; ++i) {
      data::Record record(i);
      record.set("x", rng.uniform());
      records.push_back(std::move(record));
    }
    dataset_ = (dir_ / "d.ipd").string();
    ASSERT_TRUE(data::write_dataset(dataset_, "d", records).is_ok());
  }

  void TearDown() override {
    if (manager_) manager_->stop();
    manager_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Manager whose whole RMI plane (worker pushes, heartbeats, client
  /// polling) runs over the given endpoint.
  void start_manager(Uri rpc_endpoint) {
    services::ManagerConfig config;
    config.staging_dir = (dir_ / "staging").string();
    config.engine_config.snapshot_every = 200;
    config.rpc_endpoint = std::move(rpc_endpoint);
    config.heartbeat_timeout_s = 2.0;  // fault-induced gaps are not death
    auto manager = services::ManagerNode::start(std::move(config));
    ASSERT_TRUE(manager.is_ok()) << manager.status().to_string();
    manager_ = std::move(*manager);
    ASSERT_TRUE(manager_->publish_dataset("d/d1", "ds-1", {}, dataset_).is_ok());
    token_ = manager_->authority().issue("cn=user", {"analysis"}, 3600);
  }

  /// Run one 2-engine count session to completion; returns entry count.
  Result<std::uint64_t> run_session(client::GridClient& client) {
    IPA_ASSIGN_OR_RETURN(auto session, client.create_session(2));
    IPA_RETURN_IF_ERROR(session.activate());
    IPA_RETURN_IF_ERROR(session.select_dataset("ds-1").status());
    IPA_RETURN_IF_ERROR(session.stage_script("count", kCountScript));
    IPA_ASSIGN_OR_RETURN(auto tree, session.run_to_completion(45.0));
    IPA_ASSIGN_OR_RETURN(auto* hist, tree.histogram1d("/n"));
    const std::uint64_t entries = hist->entries();
    IPA_RETURN_IF_ERROR(session.close());
    return entries;
  }

  std::filesystem::path dir_;
  std::string dataset_;
  std::unique_ptr<services::ManagerNode> manager_;
  std::string token_;
};

TEST_F(ChaosGridTest, FullSessionOverFaultyRmiPlaneCompletes) {
  start_manager(chaos_endpoint(
      "rmi", {{"seed", "11"}, {"drop", "0.02"}, {"delay_p", "0.1"}, {"delay_ms", "1"}}));
  auto client = client::GridClient::connect(manager_->soap_endpoint(), token_);
  ASSERT_TRUE(client.is_ok());
  auto entries = run_session(*client);
  ASSERT_TRUE(entries.is_ok()) << entries.status().to_string();
  EXPECT_EQ(*entries, 1000u);
}

TEST_F(ChaosGridTest, FaultyPollingPathCompletesViaRetry) {
  // Faults only between client and manager: the engines' side is clean.
  start_manager(Uri{});
  auto client = client::GridClient::connect(manager_->soap_endpoint(), token_);
  ASSERT_TRUE(client.is_ok());
  client->set_rmi_retry_policy(chaos_retry_policy());
  client->set_rmi_decorator([](const Uri& rmi) {
    Uri chaos = rmi;
    chaos.scheme = "chaos+inproc";
    chaos.query = {{"seed", "13"}, {"drop", "0.1"}};
    return chaos;
  });
  auto entries = run_session(*client);
  ASSERT_TRUE(entries.is_ok()) << entries.status().to_string();
  EXPECT_EQ(*entries, 1000u);
}

TEST_F(ChaosGridTest, SeededFailureMatrixCompletesOrDegrades) {
  // Kitchen sink: drops, truncation, delays and periodic disconnects on the
  // whole RMI plane, across three seeds. Every session must terminate with
  // either the complete result or a flagged degraded one.
  for (const char* seed : {"101", "102", "103"}) {
    SCOPED_TRACE(std::string("seed=") + seed);
    start_manager(chaos_endpoint("matrix", {{"seed", seed},
                                            {"drop", "0.05"},
                                            {"truncate", "0.02"},
                                            {"delay_p", "0.2"},
                                            {"delay_ms", "2"},
                                            {"disconnect_after", "40"}}));
    auto client = client::GridClient::connect(manager_->soap_endpoint(), token_);
    ASSERT_TRUE(client.is_ok());
    auto session = client->create_session(2);
    ASSERT_TRUE(session.is_ok());
    ASSERT_TRUE(session->activate().is_ok());
    ASSERT_TRUE(session->select_dataset("ds-1").is_ok());
    ASSERT_TRUE(session->stage_script("count", kCountScript).is_ok());
    auto tree = session->run_to_completion(45.0);
    ASSERT_TRUE(tree.is_ok()) << tree.status().to_string();
    auto hist = tree->histogram1d("/n");
    ASSERT_TRUE(hist.is_ok());
    if (session->degraded()) {
      EXPECT_LT((*hist)->entries(), 1000u);  // partial, and flagged as such
    } else {
      EXPECT_EQ((*hist)->entries(), 1000u);  // complete despite the faults
    }
    EXPECT_TRUE(session->close().is_ok());
    manager_->stop();
    manager_.reset();
  }
}

TEST_F(ChaosGridTest, DroppedPollingConnectionRecoversMidSession) {
  start_manager(Uri{});
  auto client = client::GridClient::connect(manager_->soap_endpoint(), token_);
  ASSERT_TRUE(client.is_ok());
  auto session = client->create_session(2);
  ASSERT_TRUE(session.is_ok());
  ASSERT_TRUE(session->activate().is_ok());
  ASSERT_TRUE(session->select_dataset("ds-1").is_ok());
  ASSERT_TRUE(session->stage_script("count", kCountScript).is_ok());
  ASSERT_TRUE(session->run().is_ok());
  // Repeatedly sever the polling connection while the run is in flight.
  for (int i = 0; i < 5; ++i) {
    session->drop_connections();
    auto update = session->poll();
    ASSERT_TRUE(update.is_ok()) << i << ": " << update.status().to_string();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Poll (over yet more re-dials) until both engines report done.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  client::PollUpdate last;
  while (std::chrono::steady_clock::now() < deadline) {
    auto update = session->poll();
    ASSERT_TRUE(update.is_ok()) << update.status().to_string();
    last.engines = std::move(update->engines);
    if (last.all_engines_done(2)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(last.all_engines_done(2));
  EXPECT_FALSE(last.any_engine_failed());
  EXPECT_GE(session->rmi_stats().reconnects, 5u);
  EXPECT_FALSE(session->degraded());
  EXPECT_TRUE(session->close().is_ok());
}

}  // namespace
}  // namespace ipa
