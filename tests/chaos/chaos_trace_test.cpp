// Trace propagation under fault injection: span context must ride the RPC
// frame trailer through drops, truncation and reconnects, with one child
// span per attempt, and the fault transport must account for every injected
// fault in the metrics registry.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "common/uri.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/rpc.hpp"

namespace ipa {
namespace {

Uri trace_chaos_endpoint(const std::string& tag,
                         std::map<std::string, std::string> query) {
  static std::atomic<int> counter{0};
  Uri uri;
  uri.scheme = "chaos+inproc";
  uri.host = "chaos-trace-" + tag + "-" + std::to_string(counter.fetch_add(1));
  uri.query = std::move(query);
  return uri;
}

rpc::RetryPolicy fast_retry_policy() {
  rpc::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_s = 0.001;
  policy.max_backoff_s = 0.01;
  policy.attempt_timeout_s = 0.1;
  return policy;
}

/// Echo service that records the trace context each execution ran under.
std::shared_ptr<rpc::Service> make_tracing_echo(ipa::Mutex* mutex,
                                                std::vector<obs::TraceContext>* seen) {
  auto service = std::make_shared<rpc::Service>("Chaos");
  service->register_method(
      "echo",
      [mutex, seen](const rpc::CallContext&, const ser::Bytes& in) {
        ipa::LockGuard lock(*mutex);
        seen->push_back(obs::current_trace());
        return Result<ser::Bytes>(in);
      },
      /*idempotent=*/true);
  return service;
}

std::uint64_t fault_injection_total() {
  std::uint64_t total = 0;
  for (const auto& family : obs::Registry::global().snapshot()) {
    if (family.name != "ipa_fault_injected_total") continue;
    for (const auto& series : family.series) {
      total += static_cast<std::uint64_t>(series.value);
    }
  }
  return total;
}

TEST(ChaosTrace, ContextSurvivesDroppedFramesAndRetries) {
  rpc::RpcServer server(
      trace_chaos_endpoint("prop", {{"seed", "7"}, {"drop", "0.12"}}));
  ipa::Mutex mutex;
  std::vector<obs::TraceContext> seen;
  server.add_service(make_tracing_echo(&mutex, &seen));
  ASSERT_TRUE(server.start().is_ok());

  auto client = rpc::RpcClient::connect(server.endpoint(), 5.0, fast_retry_policy());
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();

  std::uint64_t trace_id = 0;
  constexpr int kCalls = 30;
  {
    // All calls run under one client-side root span, so every context that
    // reaches the server must carry this trace id.
    obs::ScopedSpan root("chaos-trace-test");
    trace_id = root.context().trace_id;
    for (int i = 0; i < kCalls; ++i) {
      const std::string msg = "trace-" + std::to_string(i);
      auto reply =
          client->call("Chaos", "echo", ser::Bytes(msg.begin(), msg.end()), "", 10.0);
      ASSERT_TRUE(reply.is_ok()) << i << ": " << reply.status().to_string();
    }
  }

  // Drops forced at least one retry, so some executions are replays.
  EXPECT_GE(client->stats().retries, 1u);
  ipa::LockGuard lock(mutex);
  EXPECT_GE(seen.size(), static_cast<std::size_t>(kCalls));
  for (const obs::TraceContext& context : seen) {
    EXPECT_TRUE(context.valid());
    EXPECT_EQ(context.trace_id, trace_id);
  }
  server.stop();
}

TEST(ChaosTrace, EveryAttemptIsItsOwnChildSpan) {
  rpc::RpcServer server(
      trace_chaos_endpoint("attempt", {{"seed", "19"}, {"drop", "0.15"}}));
  ipa::Mutex mutex;
  std::vector<obs::TraceContext> seen;
  server.add_service(make_tracing_echo(&mutex, &seen));
  ASSERT_TRUE(server.start().is_ok());

  auto client = rpc::RpcClient::connect(server.endpoint(), 5.0, fast_retry_policy());
  ASSERT_TRUE(client.is_ok());

  std::uint64_t trace_id = 0;
  constexpr int kCalls = 30;
  {
    obs::ScopedSpan root("chaos-attempt-test");
    trace_id = root.context().trace_id;
    for (int i = 0; i < kCalls; ++i) {
      ASSERT_TRUE(client->call("Chaos", "echo", ser::Bytes{}, "", 10.0).is_ok()) << i;
    }
  }
  ASSERT_GE(client->stats().retries, 1u) << "seed produced no retries";

  // Partition this trace's spans by name.
  std::size_t calls = 0;
  std::vector<obs::SpanRecord> attempts;
  std::vector<obs::SpanRecord> dispatches;
  std::set<std::uint64_t> call_span_ids;
  for (const auto& span : obs::SpanRing::global().snapshot()) {
    if (span.trace_id != trace_id) continue;
    if (span.name == "rpc.call.Chaos.echo") {
      ++calls;
      call_span_ids.insert(span.span_id);
    } else if (span.name == "rpc.attempt") {
      attempts.push_back(span);
    } else if (span.name == "rpc.Chaos.echo") {
      dispatches.push_back(span);
    }
  }
  EXPECT_EQ(calls, static_cast<std::size_t>(kCalls));
  // Retries mean strictly more attempt spans than calls, each parented by
  // its call span.
  EXPECT_GT(attempts.size(), static_cast<std::size_t>(kCalls));
  std::set<std::uint64_t> attempt_span_ids;
  for (const auto& attempt : attempts) {
    EXPECT_TRUE(call_span_ids.count(attempt.parent_id))
        << "attempt span not parented by a call span";
    attempt_span_ids.insert(attempt.span_id);
  }
  // Server dispatch spans hang off the specific attempt that reached them.
  EXPECT_FALSE(dispatches.empty());
  for (const auto& dispatch : dispatches) {
    EXPECT_TRUE(attempt_span_ids.count(dispatch.parent_id))
        << "dispatch span not parented by an attempt span";
  }
  server.stop();
}

TEST(ChaosTrace, InjectedFaultsAreCounted) {
  const std::uint64_t before = fault_injection_total();
  rpc::RpcServer server(trace_chaos_endpoint(
      "count", {{"seed", "23"}, {"drop", "0.2"}, {"delay_p", "0.2"}, {"delay_ms", "1"}}));
  ipa::Mutex mutex;
  std::vector<obs::TraceContext> seen;
  server.add_service(make_tracing_echo(&mutex, &seen));
  ASSERT_TRUE(server.start().is_ok());

  auto client = rpc::RpcClient::connect(server.endpoint(), 5.0, fast_retry_policy());
  ASSERT_TRUE(client.is_ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client->call("Chaos", "echo", ser::Bytes{}, "", 10.0).is_ok()) << i;
  }
  server.stop();
  EXPECT_GT(fault_injection_total(), before)
      << "fault transport injected nothing the registry saw";
}

}  // namespace
}  // namespace ipa
