// Degenerate-peer chaos: slow-loris header drippers and half-open sockets
// (a peer that vanished without FIN). Neither costs the event-driven servers
// a thread, and both must be reaped by the reactor's idle timeout while
// healthy traffic keeps flowing. The client side is exercised through the
// fault transport's sticky half-open mode: calls must heal by re-dialing,
// never wedge.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "http/http.hpp"
#include "net/fault.hpp"
#include "net/worker_pool.hpp"
#include "obs/metrics.hpp"
#include "rpc/rpc.hpp"

namespace ipa {
namespace {

template <typename Pred>
bool wait_until(Pred pred, double timeout_s = 5.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

int raw_connect(const Uri& bound) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(bound.port);
  if (::inet_pton(AF_INET, bound.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

Uri chaos_endpoint(const std::string& tag, std::map<std::string, std::string> query) {
  static std::atomic<int> counter{0};
  Uri uri;
  uri.scheme = "chaos+inproc";
  uri.host = "reaper-" + tag + "-" + std::to_string(counter.fetch_add(1));
  uri.query = std::move(query);
  return uri;
}

ser::Bytes payload_of(std::string_view s) { return ser::Bytes(s.begin(), s.end()); }

std::shared_ptr<rpc::Service> make_echo_service() {
  auto service = std::make_shared<rpc::Service>("Reaper");
  service->register_method(
      "echo",
      [](const rpc::CallContext&, const ser::Bytes& in) { return Result<ser::Bytes>(in); },
      /*idempotent=*/true);
  return service;
}

TEST(ChaosReaper, PreviewScheduleHonorsHalfOpenProbability) {
  net::FaultPolicy policy;
  policy.half_open_prob = 1.0;
  for (const net::Fault fault : net::preview_schedule(policy, /*ordinal=*/0, 8)) {
    EXPECT_EQ(fault, net::Fault::kHalfOpen);
  }
}

TEST(ChaosReaper, HalfOpenAfterFramesIsDeterministic) {
  net::FaultPolicy policy;
  policy.half_open_after_frames = 2;
  const auto schedule = net::preview_schedule(policy, /*ordinal=*/0, 5);
  EXPECT_EQ(schedule[0], net::Fault::kNone);
  EXPECT_EQ(schedule[1], net::Fault::kNone);
  EXPECT_EQ(schedule[2], net::Fault::kHalfOpen);
  EXPECT_EQ(schedule[3], net::Fault::kHalfOpen);
  EXPECT_EQ(schedule[4], net::Fault::kHalfOpen);
}

TEST(ChaosReaper, HalfOpenPolicyParsesFromEndpointQuery) {
  Uri uri = chaos_endpoint("parse", {{"half_open", "0.25"}, {"half_open_after", "7"}});
  auto policy = net::FaultPolicy::from_uri(uri);
  ASSERT_TRUE(policy.is_ok()) << policy.status().to_string();
  EXPECT_DOUBLE_EQ(policy->half_open_prob, 0.25);
  EXPECT_EQ(policy->half_open_after_frames, 7u);

  EXPECT_FALSE(
      net::FaultPolicy::from_uri(chaos_endpoint("bad", {{"half_open", "1.5"}})).is_ok());
}

TEST(ChaosReaper, SlowLorisHeaderDripperIsReaped) {
  net::ServerPoolOptions pool;
  pool.idle_timeout_s = 0.3;
  http::Server server("127.0.0.1", 0, pool);
  server.route("/ok", [](const http::Request&) { return http::Response::make(200, "fine"); });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());

  const int loris = raw_connect(*bound);
  ASSERT_GE(loris, 0);
  // Classic slow-loris: a valid start line, then header bytes dribbled too
  // slowly to ever finish the request. Drips inside the idle window keep the
  // connection alive...
  const std::string drip = "GET /ok HTTP/1.1\r\n";
  for (char c : drip.substr(0, 6)) {
    ASSERT_EQ(::send(loris, &c, 1, MSG_NOSIGNAL), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  EXPECT_EQ(server.open_connections(), 1u);

  // ...but going quiet past the window gets the socket reaped without a
  // worker ever being tied up, and healthy clients never notice.
  ASSERT_TRUE(wait_until([&] { return server.open_connections() == 0; }))
      << "slow-loris connection was not reaped";

  auto client = http::Client::connect(bound->host, bound->port);
  ASSERT_TRUE(client.is_ok());
  auto resp = client->get("/ok");
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(resp->status, 200);
  ::close(loris);
  server.stop();
}

TEST(ChaosReaper, HalfOpenRpcSocketIsReaped) {
  auto& reaped = obs::Registry::global().counter("ipa_reactor_idle_reaped_total",
                                                 {{"reactor", "rpc"}});
  const auto reaped_before = reaped.value();

  net::ServerPoolOptions pool;
  pool.idle_timeout_s = 0.3;
  Uri endpoint;
  endpoint.scheme = "tcp";
  endpoint.host = "127.0.0.1";
  endpoint.port = 0;
  rpc::RpcServer server(endpoint, pool);
  server.add_service(make_echo_service());
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());

  // A peer that connects, sends half a length prefix and then vanishes
  // without FIN: from the server's side the socket simply never speaks
  // again. Only the idle reaper can reclaim it.
  const int ghost = raw_connect(*bound);
  ASSERT_GE(ghost, 0);
  ASSERT_EQ(::send(ghost, "\x08\x00", 2, MSG_NOSIGNAL), 2);
  ASSERT_TRUE(wait_until([&] { return server.active_connections() == 1; }));

  ASSERT_TRUE(wait_until([&] { return server.active_connections() == 0; }))
      << "half-open connection was not reaped";
  EXPECT_GE(reaped.value(), reaped_before + 1);

  auto client = rpc::RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok());
  auto reply = client->call("Reaper", "echo", payload_of("alive"), "", 5.0);
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  ::close(ghost);
  server.stop();
}

TEST(ChaosReaper, RpcClientHealsFromHalfOpenLink) {
  rpc::RpcServer server(chaos_endpoint("heal", {{"half_open_after", "2"}}));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());

  rpc::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_s = 0.001;
  policy.max_backoff_s = 0.01;
  policy.attempt_timeout_s = 0.15;
  auto client = rpc::RpcClient::connect(server.endpoint(), 5.0, policy);
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();

  // Every connection goes half-open after two delivered frames: sends keep
  // "succeeding" into the void and nothing ever comes back. Each call must
  // still complete — the attempt timeout detects the dead link (no other
  // call in flight to vouch for it) and the retry re-dials.
  for (int i = 0; i < 6; ++i) {
    auto reply =
        client->call("Reaper", "echo", payload_of("seq-" + std::to_string(i)), "", 10.0);
    ASSERT_TRUE(reply.is_ok()) << "call " << i << ": " << reply.status().to_string();
  }
  EXPECT_GE(client->stats().reconnects, 2u);
  EXPECT_GE(client->stats().retries, 2u);
  server.stop();
}

}  // namespace
}  // namespace ipa
