#include <gtest/gtest.h>

#include <string>

#include "crypto/encoding.hpp"
#include "crypto/sha256.hpp"

namespace ipa::crypto {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (const char c : msg) h.update(&c, 1);
  EXPECT_EQ(to_hex(h.finish()), to_hex(Sha256::hash(msg)));
}

TEST(Sha256, ExactBlockBoundary) {
  const std::string msg55(55, 'x');  // padding fits in one block
  const std::string msg56(56, 'x');  // padding forces a second block
  const std::string msg64(64, 'x');  // exactly one block of data
  EXPECT_NE(to_hex(Sha256::hash(msg55)), to_hex(Sha256::hash(msg56)));
  EXPECT_EQ(to_hex(Sha256::hash(msg64)).size(), 64u);
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update("first");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// RFC 4231 test vectors.
TEST(Hmac, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(to_hex(hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const std::string key(131, '\xaa');
  EXPECT_EQ(to_hex(hmac_sha256(key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  EXPECT_NE(to_hex(hmac_sha256("key1", "msg")), to_hex(hmac_sha256("key2", "msg")));
}

TEST(Hmac, DigestEqualConstantTimeSemantics) {
  const Digest256 a = Sha256::hash("a");
  const Digest256 b = Sha256::hash("b");
  EXPECT_TRUE(digest_equal(a, a));
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(""), "");
  EXPECT_EQ(base64_encode("f"), "Zg==");
  EXPECT_EQ(base64_encode("fo"), "Zm8=");
  EXPECT_EQ(base64_encode("foo"), "Zm9v");
  EXPECT_EQ(base64_encode("foob"), "Zm9vYg==");
  EXPECT_EQ(base64_encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");
}

TEST(Base64, DecodeRoundTrip) {
  for (const std::string& msg : {std::string(""), std::string("x"), std::string("higgs"),
                                 std::string("\x00\xff\x7f\x80", 4)}) {
    const auto decoded = base64_decode(base64_encode(msg));
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(*decoded, msg);
  }
}

TEST(Base64, RejectsBadInput) {
  EXPECT_FALSE(base64_decode("abc").is_ok());       // not multiple of 4
  EXPECT_FALSE(base64_decode("ab!@").is_ok());      // invalid chars
  EXPECT_FALSE(base64_decode("=abc").is_ok());      // misplaced padding
  EXPECT_FALSE(base64_decode("ab=c").is_ok());      // data after padding
  EXPECT_FALSE(base64_decode("a===").is_ok());      // too much padding
}

TEST(Base64, BinaryVectorOverload) {
  const std::vector<std::uint8_t> data = {0, 1, 2, 253, 254, 255};
  const auto decoded = base64_decode(base64_encode(data));
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded->size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>((*decoded)[i]), data[i]);
  }
}

TEST(Hex, RoundTrip) {
  const std::string msg{"\x00\x7f\x80\xff", 4};
  EXPECT_EQ(hex_encode(msg), "007f80ff");
  const auto back = hex_decode("007f80ff");
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, msg);
}

TEST(Hex, DecodeAcceptsUppercase) {
  EXPECT_EQ(hex_decode("DEADBEEF").value(), hex_decode("deadbeef").value());
}

TEST(Hex, RejectsBadInput) {
  EXPECT_FALSE(hex_decode("abc").is_ok());   // odd length
  EXPECT_FALSE(hex_decode("zz").is_ok());    // invalid chars
}

}  // namespace
}  // namespace ipa::crypto
