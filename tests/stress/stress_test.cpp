// Thread-safety stress: hammer the concurrent surfaces (engine controls,
// AIDA manager pushes/polls, RPC fan-in, concurrent dataset readers) from
// many threads at once. These tests assert invariants, not timing.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "rpc/rpc.hpp"
#include "services/aida_manager.hpp"

namespace ipa {
namespace {

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ipa-stress-" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::create_directories(dir_);
    dataset_ = (dir_ / "d.ipd").string();
    Rng rng(1);
    std::vector<data::Record> records;
    for (std::uint64_t i = 0; i < 2000; ++i) {
      data::Record record(i);
      record.set("x", rng.uniform());
      records.push_back(std::move(record));
    }
    ASSERT_TRUE(data::write_dataset(dataset_, "d", records).is_ok());
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
  std::string dataset_;
};

TEST_F(StressTest, RandomConcurrentEngineControlsNeverCrash) {
  engine::AnalysisEngine engine({.snapshot_every = 100, .interp = {}});
  ASSERT_TRUE(engine.stage_dataset(dataset_).is_ok());
  ASSERT_TRUE(engine
                  .stage_code({engine::CodeBundle::Kind::kScript, "s",
                               "func begin(tree) { tree.book_h1(\"/h\", 4, 0, 1); }\n"
                               "func process(event, tree) { tree.fill(\"/h\", "
                               "event.num(\"x\")); }"})
                  .is_ok());

  std::atomic<bool> stop{false};
  std::vector<std::jthread> drivers;
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 100);
      while (!stop.load()) {
        switch (rng.uniform_u64(0, 5)) {
          case 0: (void)engine.run(); break;
          case 1: (void)engine.pause(); break;
          case 2: (void)engine.stop(); break;
          case 3: (void)engine.rewind(); break;
          case 4: (void)engine.run_records(50); break;
          default: {
            // Concurrent reads of results and progress.
            const auto tree = engine.tree_copy();
            const auto progress = engine.progress();
            EXPECT_LE(progress.processed, progress.total + 1);
            (void)tree;
          }
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop = true;
  drivers.clear();

  // The engine must still be fully functional afterwards.
  if (engine.state() == engine::EngineState::kRunning) (void)engine.stop();
  ASSERT_TRUE(engine.rewind().is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  const auto done = engine.wait();
  EXPECT_EQ(done.state, engine::EngineState::kFinished) << done.error;
  EXPECT_EQ((*engine.tree_copy().histogram1d("/h"))->entries(), 2000u);
}

TEST_F(StressTest, ConcurrentPushersAndPollers) {
  services::AidaManager manager;
  ASSERT_TRUE(manager.open_session("s").is_ok());

  constexpr int kPushers = 4, kPushesEach = 100;
  std::atomic<bool> stop{false};
  std::atomic<int> poll_errors{0};

  std::jthread poller([&] {
    std::uint64_t version = 0;
    while (!stop.load()) {
      auto poll = manager.poll("s", version);
      if (!poll.is_ok()) {
        ++poll_errors;
        continue;
      }
      if (poll->changed) {
        version = poll->version;
        auto tree = aida::Tree::deserialize(poll->merged);
        if (!tree.is_ok()) ++poll_errors;
      }
    }
  });

  {
    std::vector<std::jthread> pushers;
    for (int p = 0; p < kPushers; ++p) {
      pushers.emplace_back([&, p] {
        Rng rng(static_cast<std::uint64_t>(p));
        for (int i = 0; i < kPushesEach; ++i) {
          aida::Tree tree;
          auto hist = aida::Histogram1D::create("h", 10, 0, 1);
          for (int f = 0; f <= i; ++f) hist->fill(rng.uniform());
          tree.put("/h", std::move(*hist));
          services::PushRequest request;
          request.session_id = "s";
          request.report.engine_id = "e" + std::to_string(p);
          request.report.processed = static_cast<std::uint64_t>(i + 1);
          request.snapshot = tree.serialize();
          ASSERT_TRUE(manager.push(request).is_ok());
        }
      });
    }
  }
  stop = true;
  poller.join();
  EXPECT_EQ(poll_errors.load(), 0);

  // Final merge: each engine's last snapshot has kPushesEach fills.
  auto final_poll = manager.poll("s", 0);
  ASSERT_TRUE(final_poll.is_ok());
  auto tree = aida::Tree::deserialize(final_poll->merged);
  ASSERT_TRUE(tree.is_ok());
  EXPECT_EQ((*tree->histogram1d("/h"))->entries(),
            static_cast<std::uint64_t>(kPushers * kPushesEach));
}

TEST_F(StressTest, RpcServerSurvivesManyShortLivedClients) {
  Uri endpoint;
  endpoint.scheme = "inproc";
  endpoint.host = "stress-rpc";
  rpc::RpcServer server(endpoint);
  auto service = std::make_shared<rpc::Service>("S");
  std::atomic<int> handled{0};
  service->register_method("m", [&](const rpc::CallContext&, const ser::Bytes& in) {
    ++handled;
    return Result<ser::Bytes>(in);
  });
  server.add_service(std::move(service));
  ASSERT_TRUE(server.start().is_ok());

  constexpr int kThreads = 6, kConnectsEach = 30;
  {
    std::vector<std::jthread> clients;
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&] {
        for (int c = 0; c < kConnectsEach; ++c) {
          auto client = rpc::RpcClient::connect(server.endpoint());
          if (!client.is_ok()) continue;
          auto reply = client->call("S", "m", {1, 2, 3});
          EXPECT_TRUE(reply.is_ok());
          client->close();  // immediate teardown
        }
      });
    }
  }
  EXPECT_EQ(handled.load(), kThreads * kConnectsEach);
  server.stop();
}

TEST_F(StressTest, IndependentReadersShareOneFile) {
  constexpr int kReaders = 6;
  std::atomic<int> mismatches{0};
  {
    std::vector<std::jthread> readers;
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        auto reader = data::DatasetReader::open(dataset_);
        if (!reader.is_ok()) {
          ++mismatches;
          return;
        }
        Rng rng(static_cast<std::uint64_t>(t));
        for (int i = 0; i < 200; ++i) {
          const std::uint64_t index = rng.uniform_u64(0, reader->size() - 1);
          auto record = reader->read(index);
          if (!record.is_ok() || record->index() != index) ++mismatches;
        }
      });
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(StressTest, SnapshotHandlerRunsConcurrentlyWithTreeReads) {
  engine::AnalysisEngine engine({.snapshot_every = 10, .interp = {}});
  std::atomic<int> snapshots{0};
  engine.set_snapshot_handler([&](const ser::Bytes& bytes, const engine::Progress&) {
    auto tree = aida::Tree::deserialize(bytes);
    EXPECT_TRUE(tree.is_ok());
    ++snapshots;
  });
  ASSERT_TRUE(engine.stage_dataset(dataset_).is_ok());
  ASSERT_TRUE(engine
                  .stage_code({engine::CodeBundle::Kind::kScript, "s",
                               "func begin(tree) { tree.book_h1(\"/h\", 4, 0, 1); }\n"
                               "func process(event, tree) { tree.fill(\"/h\", 0.5); }"})
                  .is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  // Concurrent snapshot reads from this thread while the engine runs (the
  // loop may see zero iterations if the engine finishes first; the read
  // below is unconditional so the concurrent-read path always executes).
  while (engine.state() == engine::EngineState::kRunning) {
    EXPECT_TRUE(aida::Tree::deserialize(engine.snapshot()).is_ok());
  }
  EXPECT_TRUE(aida::Tree::deserialize(engine.snapshot()).is_ok());
  EXPECT_EQ(engine.wait().state, engine::EngineState::kFinished);
  EXPECT_GE(snapshots.load(), 100);
}

}  // namespace
}  // namespace ipa
