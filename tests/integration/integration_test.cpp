// End-to-end tests: manager node + client over real transports, walking the
// paper's full four-step flow (connect/auth → session → dataset → analyze →
// merged results).
#include <gtest/gtest.h>

#include <filesystem>

#include "client/grid_client.hpp"
#include "common/rng.hpp"
#include "services/manager.hpp"

namespace ipa {
namespace {

const char* kMassScript = R"(
func begin(tree) {
  tree.book_h1("/mass", 50, 0, 200, "invariant mass");
  tree.book_h1("/ntrk", 20, 0, 40, "track multiplicity");
}
func process(event, tree) {
  tree.fill("/mass", event.num("mass"));
  tree.fill("/ntrk", event.num("ntrk"));
}
)";

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ipa-int-" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::create_directories(dir_);

    // A small record-based dataset with a peak at mass ~ 91.
    Rng rng(2006);
    std::vector<data::Record> records;
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      data::Record record(i);
      record.set("mass", rng.bernoulli(0.3) ? rng.breit_wigner(91.2, 2.5)
                                            : rng.uniform(0.0, 200.0));
      record.set("ntrk", static_cast<std::int64_t>(rng.uniform_u64(2, 30)));
      records.push_back(std::move(record));
    }
    dataset_path_ = (dir_ / "zpole.ipd").string();
    ASSERT_TRUE(data::write_dataset(dataset_path_, "zpole", records).is_ok());

    services::ManagerConfig config;
    config.staging_dir = (dir_ / "staging").string();
    config.engine_config.snapshot_every = 500;
    auto manager = services::ManagerNode::start(std::move(config));
    ASSERT_TRUE(manager.is_ok()) << manager.status().to_string();
    manager_ = std::move(*manager);
    ASSERT_TRUE(manager_
                    ->publish_dataset("lc/2006/zpole", "ds-zpole",
                                      {{"experiment", "LC"}, {"year", "2006"}}, dataset_path_)
                    .is_ok());

    // User credential + delegated proxy (the JAS proxy plug-in step).
    const std::string base =
        manager_->authority().issue("cn=alice", {"analysis"}, 3600);
    auto proxy = client::make_proxy(manager_->authority(), base);
    ASSERT_TRUE(proxy.is_ok());
    proxy_ = *proxy;
  }

  void TearDown() override {
    manager_->stop();
    manager_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  client::GridClient connect() {
    auto client = client::GridClient::connect(manager_->soap_endpoint(), proxy_);
    EXPECT_TRUE(client.is_ok()) << client.status().to_string();
    return std::move(*client);
  }

  static constexpr std::uint64_t kRecords = 3000;
  std::filesystem::path dir_;
  std::string dataset_path_;
  std::unique_ptr<services::ManagerNode> manager_;
  std::string proxy_;
};

TEST_F(IntegrationTest, FullAnalysisFlow) {
  client::GridClient client = connect();

  // Step 2 of the paper's flow: browse the catalog.
  auto root = client.browse("");
  ASSERT_TRUE(root.is_ok());
  EXPECT_EQ(root->folders, std::vector<std::string>{"lc"});
  auto level = client.browse("lc/2006");
  ASSERT_TRUE(level.is_ok());
  ASSERT_EQ(level->datasets.size(), 1u);
  EXPECT_EQ(level->datasets[0].id, "ds-zpole");
  EXPECT_EQ(level->datasets[0].metadata.at("records"), std::to_string(kRecords));

  // Create session, activate engines.
  auto session = client.create_session(4);
  ASSERT_TRUE(session.is_ok()) << session.status().to_string();
  EXPECT_EQ(session->info().granted_nodes, 4);
  EXPECT_EQ(session->info().queue, "interactive");
  ASSERT_TRUE(session->activate().is_ok());

  // Stage dataset + code.
  auto staged = session->select_dataset("ds-zpole");
  ASSERT_TRUE(staged.is_ok()) << staged.status().to_string();
  EXPECT_EQ(staged->parts, 4);
  EXPECT_EQ(staged->records, kRecords);
  ASSERT_TRUE(session->stage_script("mass-v1", kMassScript).is_ok());

  // Run to completion while watching intermediate updates.
  int updates = 0;
  auto tree = session->run_to_completion(60.0, [&](const client::PollUpdate&) { ++updates; });
  ASSERT_TRUE(tree.is_ok()) << tree.status().to_string();
  EXPECT_GE(updates, 1);

  auto mass = tree->histogram1d("/mass");
  ASSERT_TRUE(mass.is_ok());
  EXPECT_EQ((*mass)->entries(), kRecords);
  // The Z-like peak must land near 91.
  EXPECT_NEAR((*mass)->axis().bin_center((*mass)->max_bin()), 91.2, 4.0);
  auto ntrk = tree->histogram1d("/ntrk");
  ASSERT_TRUE(ntrk.is_ok());
  EXPECT_EQ((*ntrk)->entries(), kRecords);

  ASSERT_TRUE(session->close().is_ok());
  EXPECT_EQ(manager_->active_sessions(), 0u);
}

TEST_F(IntegrationTest, MergedResultEqualsSingleEngineRun) {
  client::GridClient client = connect();

  const auto run_with = [&](int nodes) -> aida::Tree {
    auto session = client.create_session(nodes);
    EXPECT_TRUE(session.is_ok());
    EXPECT_TRUE(session->activate().is_ok());
    EXPECT_TRUE(session->select_dataset("ds-zpole").is_ok());
    EXPECT_TRUE(session->stage_script("mass", kMassScript).is_ok());
    auto tree = session->run_to_completion(60.0);
    EXPECT_TRUE(tree.is_ok()) << tree.status().to_string();
    EXPECT_TRUE(session->close().is_ok());
    return tree.is_ok() ? std::move(*tree) : aida::Tree();
  };

  aida::Tree one = run_with(1);
  aida::Tree four = run_with(4);
  auto h1 = one.histogram1d("/mass");
  auto h4 = four.histogram1d("/mass");
  ASSERT_TRUE(h1.is_ok() && h4.is_ok());
  EXPECT_EQ((*h1)->entries(), (*h4)->entries());
  for (int i = 0; i < 50; ++i) {
    EXPECT_NEAR((*h1)->bin_height(i), (*h4)->bin_height(i), 1e-9) << "bin " << i;
  }
}

TEST_F(IntegrationTest, InteractiveControlsAndReload) {
  client::GridClient client = connect();
  auto session = client.create_session(2);
  ASSERT_TRUE(session.is_ok());
  ASSERT_TRUE(session->activate().is_ok());
  ASSERT_TRUE(session->select_dataset("ds-zpole").is_ok());
  ASSERT_TRUE(session->stage_script("v1", kMassScript).is_ok());

  // Bounded run: each engine processes exactly 200 records then pauses.
  ASSERT_TRUE(session->run_records(200).is_ok());
  client::PollUpdate update;
  for (int i = 0; i < 500; ++i) {
    auto poll = session->poll();
    ASSERT_TRUE(poll.is_ok());
    update = std::move(*poll);
    bool all_paused = update.engines.size() == 2;
    for (const auto& report : update.engines) {
      all_paused = all_paused && report.state == engine::EngineState::kPaused;
    }
    if (all_paused) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(update.total_processed(), 400u);  // 2 engines x 200

  // Hot-reload a different algorithm, rewind and re-run to completion.
  const char* kV2 = R"(
func begin(tree) { tree.book_h1("/half", 25, 0, 100); }
func process(event, tree) { tree.fill("/half", event.num("mass") / 2); }
)";
  ASSERT_TRUE(session->rewind().is_ok());
  ASSERT_TRUE(session->stage_script("v2", kV2).is_ok());
  auto tree = session->run_to_completion(60.0);
  ASSERT_TRUE(tree.is_ok()) << tree.status().to_string();
  EXPECT_FALSE(tree->find("/mass").is_ok());  // old results gone
  auto half = tree->histogram1d("/half");
  ASSERT_TRUE(half.is_ok());
  EXPECT_EQ((*half)->entries(), kRecords);
  ASSERT_TRUE(session->close().is_ok());
}

TEST_F(IntegrationTest, SearchAndLocate) {
  client::GridClient client = connect();
  auto hits = client.search("experiment == \"LC\" && records >= 1000");
  ASSERT_TRUE(hits.is_ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].id, "ds-zpole");

  auto location = client.locate("ds-zpole");
  ASSERT_TRUE(location.is_ok());
  EXPECT_EQ(location->first, "file://" + dataset_path_);
}

TEST_F(IntegrationTest, AuthRejectsBadAndExpiredTokens) {
  // Garbage token: connection succeeds (transport-level), calls fail.
  auto client = client::GridClient::connect(manager_->soap_endpoint(), "garbage.token");
  ASSERT_TRUE(client.is_ok());
  const auto denied = client->browse("");
  ASSERT_FALSE(denied.is_ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kUnauthenticated);

  // Valid token from a different VO secret is also rejected.
  security::CredentialAuthority imposter("ipa-vo", "wrong-secret");
  auto forged = client::GridClient::connect(manager_->soap_endpoint(),
                                            imposter.issue("cn=eve", {"analysis"}, 3600));
  ASSERT_TRUE(forged.is_ok());
  EXPECT_EQ(forged->browse("").status().code(), StatusCode::kUnauthenticated);
}

TEST_F(IntegrationTest, VoPolicyCapsNodes) {
  // Student role is capped at 2 nodes on the batch queue.
  const std::string student_base =
      manager_->authority().issue("cn=bob", {"student"}, 3600);
  auto proxy = client::make_proxy(manager_->authority(), student_base);
  ASSERT_TRUE(proxy.is_ok());
  auto client = client::GridClient::connect(manager_->soap_endpoint(), *proxy);
  ASSERT_TRUE(client.is_ok());
  auto session = client->create_session(16);
  ASSERT_TRUE(session.is_ok());
  EXPECT_EQ(session->info().granted_nodes, 2);
  EXPECT_EQ(session->info().queue, "batch");
  ASSERT_TRUE(session->close().is_ok());
}

TEST_F(IntegrationTest, NoRoleIsDenied) {
  const std::string visitor = manager_->authority().issue("cn=carol", {"visitor"}, 3600);
  auto client = client::GridClient::connect(manager_->soap_endpoint(), visitor);
  ASSERT_TRUE(client.is_ok());
  const auto session = client->create_session(4);
  ASSERT_FALSE(session.is_ok());
  EXPECT_EQ(session.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(IntegrationTest, SessionIsolationBetweenUsers) {
  client::GridClient alice = connect();
  auto alice_session = alice.create_session(1);
  ASSERT_TRUE(alice_session.is_ok());

  // Bob cannot drive Alice's session resource.
  const std::string bob_base = manager_->authority().issue("cn=bob", {"analysis"}, 3600);
  auto bob = client::GridClient::connect(manager_->soap_endpoint(), bob_base);
  ASSERT_TRUE(bob.is_ok());
  auto bob_session = bob->create_session(1);
  ASSERT_TRUE(bob_session.is_ok());
  // Forge: swap Bob's session id for Alice's by calling through SOAP directly.
  auto soap = soap::SoapClient::connect(manager_->soap_endpoint());
  ASSERT_TRUE(soap.is_ok());
  soap->set_token(bob_base);
  const auto denied = soap->call(services::kSessionService, "activate",
                                 xml::Node("ipa:activate"),
                                 alice_session->info().session_id);
  ASSERT_FALSE(denied.is_ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  ASSERT_TRUE(alice_session->close().is_ok());
  ASSERT_TRUE(bob_session->close().is_ok());
}

TEST_F(IntegrationTest, SelectUnknownDatasetFails) {
  client::GridClient client = connect();
  auto session = client.create_session(2);
  ASSERT_TRUE(session.is_ok());
  ASSERT_TRUE(session->activate().is_ok());
  const auto staged = session->select_dataset("ds-ghost");
  ASSERT_FALSE(staged.is_ok());
  EXPECT_EQ(staged.status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(session->close().is_ok());
}

TEST_F(IntegrationTest, BadScriptReportedAtStaging) {
  client::GridClient client = connect();
  auto session = client.create_session(1);
  ASSERT_TRUE(session.is_ok());
  ASSERT_TRUE(session->activate().is_ok());
  ASSERT_TRUE(session->select_dataset("ds-zpole").is_ok());
  const Status bad = session->stage_script("broken", "func process( {");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  // Session remains usable with a fixed script.
  ASSERT_TRUE(session->stage_script("fixed", kMassScript).is_ok());
  ASSERT_TRUE(session->close().is_ok());
}

TEST_F(IntegrationTest, ControlBeforeStagingFails) {
  client::GridClient client = connect();
  auto session = client.create_session(1);
  ASSERT_TRUE(session.is_ok());
  ASSERT_TRUE(session->activate().is_ok());
  EXPECT_EQ(session->run().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session->close().is_ok());
}

}  // namespace
}  // namespace ipa
