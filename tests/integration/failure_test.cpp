// Failure injection and concurrency: what happens when the grid machinery
// breaks under a session, and whether independent sessions stay isolated
// while running simultaneously.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "client/grid_client.hpp"
#include "common/rng.hpp"
#include "services/manager.hpp"

namespace ipa {
namespace {

const char* kCountScript = R"(
func begin(tree) { tree.book_h1("/n", 1, 0, 1); }
func process(event, tree) { tree.fill("/n", 0.5); }
)";

// Slow enough that a 2-engine run over 1000 records is still in flight when
// a test kills an engine or closes the session.
const char* kSlowScript = R"(
func begin(tree) { tree.book_h1("/n", 1, 0, 1); }
func process(event, tree) {
  let x = 0;
  for (let i = 0; i < 3000; i += 1) { x += i; }
  tree.fill("/n", 0.5);
}
)";

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ipa-fail-" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::create_directories(dir_);
    Rng rng(1);
    std::vector<data::Record> records;
    for (std::uint64_t i = 0; i < 1000; ++i) {
      data::Record record(i);
      record.set("x", rng.uniform());
      records.push_back(std::move(record));
    }
    dataset_ = (dir_ / "d.ipd").string();
    ASSERT_TRUE(data::write_dataset(dataset_, "d", records).is_ok());
    start_manager(/*restart_lost_engines=*/true);
  }

  /// (Re)start the manager with aggressive liveness timing so dead-engine
  /// tests converge quickly.
  void start_manager(bool restart_lost_engines) {
    if (manager_) {
      manager_->stop();
      manager_.reset();
    }
    services::ManagerConfig config;
    config.staging_dir = (dir_ / "staging").string();
    config.engine_config.snapshot_every = 200;
    config.heartbeat_timeout_s = 0.4;
    config.monitor_interval_s = 0.1;
    config.restart_lost_engines = restart_lost_engines;
    auto manager = services::ManagerNode::start(std::move(config));
    ASSERT_TRUE(manager.is_ok());
    manager_ = std::move(*manager);
    ASSERT_TRUE(manager_->publish_dataset("d/d1", "ds-1", {}, dataset_).is_ok());
    token_ = manager_->authority().issue("cn=user", {"analysis"}, 3600);
  }

  void TearDown() override {
    manager_->stop();
    manager_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Poll until every engine is finished, failed or lost; returns the last
  /// update seen. Fails the test on timeout.
  client::PollUpdate poll_until_done(client::GridSession& session, std::size_t engines,
                                     double timeout_s) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
    client::PollUpdate last;
    while (std::chrono::steady_clock::now() < deadline) {
      auto update = session.poll();
      if (update.is_ok()) {
        if (update->changed) last.merged = std::move(update->merged);
        last.version = update->version;
        last.engines = std::move(update->engines);
        if (last.all_engines_done(engines)) return last;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "engines did not finish within " << timeout_s << "s";
    return last;
  }

  std::filesystem::path dir_;
  std::string dataset_;
  std::unique_ptr<services::ManagerNode> manager_;
  std::string token_;
};

/// A compute element that refuses to start engines (queue down / GRAM
/// failure).
class BrokenComputeElement final : public services::ComputeElement {
 public:
  Result<std::unique_ptr<services::EngineHandle>> start_engine(const std::string&,
                                                               const std::string&,
                                                               const Uri&) override {
    return unavailable("GRAM: job manager contact failed");
  }
};

/// Starts fewer engines than requested (partial node failure).
class PartialComputeElement final : public services::ComputeElement {
 public:
  Result<std::unique_ptr<services::EngineHandle>> start_engine(
      const std::string& session_id, const std::string& engine_id,
      const Uri& endpoint) override {
    return inner_.start_engine(session_id, engine_id, endpoint);
  }

  Result<std::vector<std::unique_ptr<services::EngineHandle>>> start_engines(
      const std::string& session_id, int count, const Uri& endpoint) override {
    return inner_.start_engines(session_id, count > 1 ? count - 1 : count, endpoint);
  }

 private:
  services::LocalComputeElement inner_;
};

TEST_F(FailureTest, ActivateSurfacesComputeElementFailure) {
  manager_->set_compute_element(std::make_unique<BrokenComputeElement>());
  auto client = client::GridClient::connect(manager_->soap_endpoint(), token_);
  auto session = client->create_session(2);
  ASSERT_TRUE(session.is_ok());
  const Status failed = session->activate();
  ASSERT_FALSE(failed.is_ok());
  EXPECT_NE(failed.message().find("GRAM"), std::string::npos);
  // The session resource still exists and can be closed cleanly.
  EXPECT_TRUE(session->close().is_ok());
}

TEST_F(FailureTest, PartialEngineStartupIsRejected) {
  manager_->set_compute_element(std::make_unique<PartialComputeElement>());
  auto client = client::GridClient::connect(manager_->soap_endpoint(), token_);
  auto session = client->create_session(4);
  ASSERT_TRUE(session.is_ok());
  const Status failed = session->activate();
  // 3 of 4 engines came up: the session must refuse to run degraded
  // rather than silently analyze 3/4 of the data.
  ASSERT_FALSE(failed.is_ok());
  EXPECT_TRUE(session->close().is_ok());
}

TEST_F(FailureTest, EngineFailureMidRunReachesClient) {
  auto client = client::GridClient::connect(manager_->soap_endpoint(), token_);
  auto session = client->create_session(2);
  ASSERT_TRUE(session.is_ok());
  ASSERT_TRUE(session->activate().is_ok());
  ASSERT_TRUE(session->select_dataset("ds-1").is_ok());
  // Script that dies on a record index it will hit in every part.
  const char* kDies = R"(
func begin(tree) { tree.book_h1("/n", 1, 0, 1); }
func process(event, tree) {
  tree.fill("/n", 0.5);
  if (event.num("x") > 0.9) { return [1][5]; }  // out-of-range error
}
)";
  ASSERT_TRUE(session->stage_script("dies", kDies).is_ok());
  const auto result = session->run_to_completion(30.0);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_NE(result.status().message().find("out of range"), std::string::npos)
      << result.status().message();

  // Recovery: fix the script, rewind, rerun.
  ASSERT_TRUE(session->rewind().is_ok());
  ASSERT_TRUE(session->stage_script("fixed", kCountScript).is_ok());
  auto tree = session->run_to_completion(30.0);
  ASSERT_TRUE(tree.is_ok()) << tree.status().to_string();
  EXPECT_DOUBLE_EQ((*tree->histogram1d("/n"))->bin_height(0), 1000.0);
  ASSERT_TRUE(session->close().is_ok());
}

TEST_F(FailureTest, TwoSessionsRunConcurrently) {
  // Two users analyze the same dataset at the same time; results must be
  // complete and independent.
  const std::string token_b = manager_->authority().issue("cn=other", {"analysis"}, 3600);

  auto run_session = [&](const std::string& token, double scale) -> double {
    auto client = client::GridClient::connect(manager_->soap_endpoint(), token);
    if (!client.is_ok()) return -1;
    auto session = client->create_session(2);
    if (!session.is_ok()) return -1;
    if (!session->activate().is_ok()) return -2;
    if (!session->select_dataset("ds-1").is_ok()) return -3;
    const std::string script =
        "func begin(tree) { tree.book_h1(\"/s\", 1, 0, 10); }\n"
        "func process(event, tree) { tree.fill(\"/s\", " +
        std::to_string(scale) + "); }\n";
    if (!session->stage_script("s", script).is_ok()) return -4;
    auto tree = session->run_to_completion(60.0);
    if (!tree.is_ok()) return -5;
    auto hist = tree->histogram1d("/s");
    const double entries = static_cast<double>((*hist)->entries());
    (void)session->close();
    return entries;
  };

  double result_a = 0, result_b = 0;
  {
    std::jthread a([&] { result_a = run_session(token_, 1.0); });
    std::jthread b([&] { result_b = run_session(token_b, 2.0); });
  }
  EXPECT_DOUBLE_EQ(result_a, 1000.0);
  EXPECT_DOUBLE_EQ(result_b, 1000.0);
  EXPECT_EQ(manager_->active_sessions(), 0u);
}

TEST_F(FailureTest, CloseWhileRunningShutsEnginesDown) {
  auto client = client::GridClient::connect(manager_->soap_endpoint(), token_);
  auto session = client->create_session(2);
  ASSERT_TRUE(session.is_ok());
  ASSERT_TRUE(session->activate().is_ok());
  ASSERT_TRUE(session->select_dataset("ds-1").is_ok());
  // Slow script so the session is definitely still running at close.
  const char* kSlow = R"(
func begin(tree) { tree.book_h1("/n", 1, 0, 1); }
func process(event, tree) {
  let x = 0;
  for (let i = 0; i < 3000; i += 1) { x += i; }
  tree.fill("/n", 0.5);
}
)";
  ASSERT_TRUE(session->stage_script("slow", kSlow).is_ok());
  ASSERT_TRUE(session->run().is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(session->close().is_ok());
  EXPECT_EQ(manager_->active_sessions(), 0u);
  // Manager survives and can host a fresh session afterwards.
  auto again = client->create_session(1);
  ASSERT_TRUE(again.is_ok());
  EXPECT_TRUE(again->close().is_ok());
}

TEST_F(FailureTest, EngineKilledMidRunIsRestarted) {
  // An engine dies mid-run; the heartbeat monitor restarts it on the same
  // compute slot, re-stages data + code, replays the run verb, and the
  // session still produces the COMPLETE result.
  auto client = client::GridClient::connect(manager_->soap_endpoint(), token_);
  auto session = client->create_session(2);
  ASSERT_TRUE(session.is_ok());
  ASSERT_TRUE(session->activate().is_ok());
  ASSERT_TRUE(session->select_dataset("ds-1").is_ok());
  ASSERT_TRUE(session->stage_script("slow", kSlowScript).is_ok());
  ASSERT_TRUE(session->run().is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  const std::string session_id = session->info().session_id;
  ASSERT_TRUE(manager_->kill_engine(session_id, session_id + "-eng0").is_ok());

  auto last = poll_until_done(*session, 2, 30.0);
  EXPECT_FALSE(last.any_engine_failed());
  // The restarted engine reran its whole part, so nothing is missing.
  auto hist = last.merged.histogram1d("/n");
  ASSERT_TRUE(hist.is_ok());
  EXPECT_EQ((*hist)->entries(), 1000u);
  EXPECT_TRUE(session->close().is_ok());
}

TEST_F(FailureTest, EngineKilledWithRestartDisabledDegrades) {
  // Same death, but the site policy forbids restarts: the session must
  // complete DEGRADED — partial merged result, explicitly flagged — rather
  // than hang or fail.
  start_manager(/*restart_lost_engines=*/false);
  auto client = client::GridClient::connect(manager_->soap_endpoint(), token_);
  auto session = client->create_session(2);
  ASSERT_TRUE(session.is_ok());
  ASSERT_TRUE(session->activate().is_ok());
  ASSERT_TRUE(session->select_dataset("ds-1").is_ok());
  ASSERT_TRUE(session->stage_script("slow", kSlowScript).is_ok());
  ASSERT_TRUE(session->run().is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  const std::string session_id = session->info().session_id;
  ASSERT_TRUE(manager_->kill_engine(session_id, session_id + "-eng0").is_ok());

  auto last = poll_until_done(*session, 2, 30.0);
  EXPECT_TRUE(last.degraded());
  EXPECT_FALSE(last.any_engine_failed());
  EXPECT_TRUE(session->degraded());
  // The surviving engine's part is all there; the dead engine contributes
  // at most its last snapshot. The byte-balanced split may hand the
  // survivor slightly fewer than half of the 1000 records (frame sizes,
  // not record counts, are equalized), hence the margin below 500.
  auto hist = last.merged.histogram1d("/n");
  ASSERT_TRUE(hist.is_ok());
  EXPECT_GE((*hist)->entries(), 450u);
  EXPECT_LT((*hist)->entries(), 1000u);
  EXPECT_TRUE(session->close().is_ok());
}

TEST_F(FailureTest, ManagerStopWithLiveSessionsIsClean) {
  auto client = client::GridClient::connect(manager_->soap_endpoint(), token_);
  auto session = client->create_session(2);
  ASSERT_TRUE(session.is_ok());
  ASSERT_TRUE(session->activate().is_ok());
  ASSERT_TRUE(session->select_dataset("ds-1").is_ok());
  ASSERT_TRUE(session->stage_script("s", kCountScript).is_ok());
  ASSERT_TRUE(session->run().is_ok());
  manager_->stop();  // hard site shutdown under a running session
  // Client calls now fail but do not hang or crash.
  const auto status = session->poll();
  EXPECT_FALSE(status.is_ok());
}

TEST_F(FailureTest, PollWithForeignSessionIdFails) {
  auto client = client::GridClient::connect(manager_->soap_endpoint(), token_);
  auto session = client->create_session(1);
  ASSERT_TRUE(session.is_ok());
  // Raw RMI poll with a bogus session id.
  auto rmi = rpc::RpcClient::connect(session->info().rmi_endpoint);
  ASSERT_TRUE(rmi.is_ok());
  auto reply = rmi->call(services::kAidaManagerService, "poll",
                         services::encode_poll_request("sess-bogus", 0));
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(session->close().is_ok());
}

}  // namespace
}  // namespace ipa
