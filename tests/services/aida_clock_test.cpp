// AidaManager against an injected ManualClock: engine liveness and merge
// timing run on Clock, not wall time, so staleness is fully deterministic.
#include <gtest/gtest.h>

#include "aida/histogram1d.hpp"
#include "common/clock.hpp"
#include "services/aida_manager.hpp"
#include "services/protocol.hpp"

namespace ipa::services {
namespace {

PushRequest clocked_push(const std::string& session, const std::string& engine) {
  PushRequest request;
  request.session_id = session;
  request.report.engine_id = engine;
  request.report.state = engine::EngineState::kRunning;
  aida::Tree tree;
  auto hist = aida::Histogram1D::create("x", 10, 0, 10);
  hist->fill(5.0);
  tree.put("/x", std::move(*hist));
  request.snapshot = tree.serialize();
  return request;
}

TEST(AidaManagerClock, StalenessFollowsTheInjectedClock) {
  ManualClock clock(100.0);
  AidaManager manager(/*merge_fan_in=*/0, clock);
  ASSERT_TRUE(manager.open_session("s1").is_ok());
  ASSERT_TRUE(manager.push(clocked_push("s1", "e0")).is_ok());

  // Just under the timeout: still alive.
  clock.advance(0.9);
  EXPECT_TRUE(manager.stale_engines("s1", 1.0).empty());
  // Past it: stale — no real sleeping involved.
  clock.advance(0.2);
  const auto stale = manager.stale_engines("s1", 1.0);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "e0");
}

TEST(AidaManagerClock, HeartbeatRefreshesAtVirtualTime) {
  ManualClock clock;
  AidaManager manager(0, clock);
  ASSERT_TRUE(manager.open_session("s1").is_ok());
  ASSERT_TRUE(manager.push(clocked_push("s1", "e0")).is_ok());

  clock.advance(10.0);
  manager.heartbeat("s1", "e0");  // stamped at t=10
  clock.advance(0.5);
  EXPECT_TRUE(manager.stale_engines("s1", 1.0).empty());
  clock.advance(1.0);
  EXPECT_EQ(manager.stale_engines("s1", 1.0).size(), 1u);
}

TEST(AidaManagerClock, MergeSecondsAccumulatesOnTheInjectedClock) {
  ManualClock clock;
  AidaManager manager(0, clock);
  ASSERT_TRUE(manager.open_session("s1").is_ok());
  ASSERT_TRUE(manager.push(clocked_push("s1", "e0")).is_ok());

  EXPECT_DOUBLE_EQ(manager.merge_seconds("s1"), 0.0);
  auto poll = manager.poll("s1", 0);
  ASSERT_TRUE(poll.is_ok());
  EXPECT_TRUE(poll->changed);
  // The clock never advanced during the merge, so the measured phase time
  // is exactly zero — deterministically, not approximately.
  EXPECT_DOUBLE_EQ(manager.merge_seconds("s1"), 0.0);
  EXPECT_DOUBLE_EQ(manager.merge_seconds("no-such-session"), 0.0);
}

}  // namespace
}  // namespace ipa::services
