// Regression tests for fields the thread-safety audit found guarded by
// nothing: Session's dataset id was a bare string returned by reference
// while SOAP worker threads could rewrite it mid-read, and RpcClient's
// auth token / retry policy accessors bypassed the channel lock. All are
// now lock-protected, return by value, and these tests hammer the
// read/write paths concurrently so a regression shows up under TSan (and
// as torn values even without it).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "rpc/rpc.hpp"
#include "services/session.hpp"

namespace ipa::services {
namespace {

TEST(SessionGuard, DatasetIdSurvivesConcurrentRewrites) {
  Session session("sess-1", "alice", 2, "interactive");
  // Two writers flip between distinct long values; readers must only ever
  // observe one of them (or the initial empty), never a torn mixture.
  const std::string a(64, 'a');
  const std::string b(64, 'b');
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 2000; ++i) session.set_dataset_id(w == 0 ? a : b);
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        const std::string seen = session.dataset_id();
        if (!seen.empty() && seen != a && seen != b) ++bad;
      }
    });
  }
  threads[0].join();
  threads[1].join();
  stop = true;
  threads[2].join();
  threads[3].join();
  EXPECT_EQ(bad.load(), 0);
  const std::string final_id = session.dataset_id();
  EXPECT_TRUE(final_id == a || final_id == b);
}

TEST(SessionGuard, RpcClientTokenAndPolicyAreLockProtected) {
  // A started-but-idle inproc endpoint to dial.
  Uri endpoint;
  endpoint.scheme = "inproc";
  endpoint.host = "session-guard-test";
  auto listener = net::listen(endpoint);
  ASSERT_TRUE(listener.is_ok());

  auto client = rpc::RpcClient::connect(endpoint);
  ASSERT_TRUE(client.is_ok());

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  const std::string tok_a(48, 'x');
  const std::string tok_b(48, 'y');
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int i = 0; i < 2000; ++i) {
      client->set_auth_token(i % 2 ? tok_a : tok_b);
      rpc::RetryPolicy policy;
      policy.max_attempts = 1 + i % 7;
      client->set_retry_policy(policy);
    }
  });
  threads.emplace_back([&] {
    while (!stop.load()) {
      const std::string seen = client->auth_token();
      if (!seen.empty() && seen != tok_a && seen != tok_b) ++bad;
      const rpc::RetryPolicy policy = client->retry_policy();
      if (policy.max_attempts < 1 || policy.max_attempts > 7) ++bad;
    }
  });
  threads[0].join();
  stop = true;
  threads[1].join();
  EXPECT_EQ(bad.load(), 0);
  (*listener)->close();
}

}  // namespace
}  // namespace ipa::services
