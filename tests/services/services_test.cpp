#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "aida/histogram1d.hpp"
#include "client/grid_client.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "http/http.hpp"
#include "services/aida_manager.hpp"
#include "services/locator.hpp"
#include "services/manager.hpp"
#include "services/protocol.hpp"

namespace ipa::services {
namespace {

ser::Bytes snapshot_with(double fill_value, int count) {
  aida::Tree tree;
  auto hist = aida::Histogram1D::create("mass", 10, 0, 100);
  for (int i = 0; i < count; ++i) hist->fill(fill_value);
  tree.put("/mass", std::move(*hist));
  return tree.serialize();
}

PushRequest make_push(const std::string& session, const std::string& engine, double value,
                      int count) {
  PushRequest request;
  request.session_id = session;
  request.report.engine_id = engine;
  request.report.state = engine::EngineState::kRunning;
  request.report.processed = static_cast<std::uint64_t>(count);
  request.report.total = 100;
  request.snapshot = snapshot_with(value, count);
  return request;
}

TEST(AidaManager, MergesEngineContributions) {
  AidaManager manager;
  ASSERT_TRUE(manager.open_session("s1").is_ok());
  ASSERT_TRUE(manager.push(make_push("s1", "e0", 15.0, 3)).is_ok());
  ASSERT_TRUE(manager.push(make_push("s1", "e1", 15.0, 4)).is_ok());

  auto poll = manager.poll("s1", 0);
  ASSERT_TRUE(poll.is_ok());
  EXPECT_TRUE(poll->changed);
  EXPECT_EQ(poll->engines.size(), 2u);
  auto tree = aida::Tree::deserialize(poll->merged);
  ASSERT_TRUE(tree.is_ok());
  EXPECT_DOUBLE_EQ((*(*tree).histogram1d("/mass"))->bin_height(1), 7.0);
}

TEST(AidaManager, LatestSnapshotPerEngineWins) {
  AidaManager manager;
  ASSERT_TRUE(manager.open_session("s1").is_ok());
  ASSERT_TRUE(manager.push(make_push("s1", "e0", 15.0, 3)).is_ok());
  ASSERT_TRUE(manager.push(make_push("s1", "e0", 15.0, 10)).is_ok());  // replaces, not adds
  auto poll = manager.poll("s1", 0);
  ASSERT_TRUE(poll.is_ok());
  auto tree = aida::Tree::deserialize(poll->merged);
  EXPECT_DOUBLE_EQ((*(*tree).histogram1d("/mass"))->bin_height(1), 10.0);
}

TEST(AidaManager, PollVersioningSuppressesUnchanged) {
  AidaManager manager;
  ASSERT_TRUE(manager.open_session("s1").is_ok());
  ASSERT_TRUE(manager.push(make_push("s1", "e0", 5.0, 1)).is_ok());

  auto first = manager.poll("s1", 0);
  ASSERT_TRUE(first.is_ok());
  EXPECT_TRUE(first->changed);
  const std::uint64_t version = first->version;

  auto second = manager.poll("s1", version);
  ASSERT_TRUE(second.is_ok());
  EXPECT_FALSE(second->changed);
  EXPECT_TRUE(second->merged.empty());

  ASSERT_TRUE(manager.push(make_push("s1", "e0", 5.0, 2)).is_ok());
  auto third = manager.poll("s1", version);
  ASSERT_TRUE(third.is_ok());
  EXPECT_TRUE(third->changed);
  EXPECT_GT(third->version, version);
}

TEST(AidaManager, HierarchicalMergeMatchesFlat) {
  AidaManager flat(0);
  AidaManager hierarchical(4);
  ASSERT_TRUE(flat.open_session("s").is_ok());
  ASSERT_TRUE(hierarchical.open_session("s").is_ok());
  for (int e = 0; e < 16; ++e) {
    const auto push = make_push("s", "e" + std::to_string(e), 25.0, e + 1);
    ASSERT_TRUE(flat.push(push).is_ok());
    ASSERT_TRUE(hierarchical.push(push).is_ok());
  }
  auto flat_poll = flat.poll("s", 0);
  auto hier_poll = hierarchical.poll("s", 0);
  ASSERT_TRUE(flat_poll.is_ok() && hier_poll.is_ok());
  auto flat_tree = aida::Tree::deserialize(flat_poll->merged);
  auto hier_tree = aida::Tree::deserialize(hier_poll->merged);
  // Total fills: 1+2+...+16 = 136, identical either way.
  EXPECT_DOUBLE_EQ((*(*flat_tree).histogram1d("/mass"))->bin_height(2), 136.0);
  EXPECT_DOUBLE_EQ((*(*hier_tree).histogram1d("/mass"))->bin_height(2), 136.0);
}

TEST(AidaManager, RejectsUnknownSessionAndBadSnapshot) {
  AidaManager manager;
  EXPECT_EQ(manager.push(make_push("ghost", "e0", 1.0, 1)).code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.poll("ghost", 0).status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(manager.open_session("s").is_ok());
  PushRequest bad = make_push("s", "e0", 1.0, 1);
  bad.snapshot = {0xde, 0xad};
  EXPECT_FALSE(manager.push(bad).is_ok());
}

TEST(AidaManager, ResetClearsContributions) {
  AidaManager manager;
  ASSERT_TRUE(manager.open_session("s").is_ok());
  ASSERT_TRUE(manager.push(make_push("s", "e0", 5.0, 5)).is_ok());
  ASSERT_TRUE(manager.reset_session("s").is_ok());
  auto poll = manager.poll("s", 0);
  ASSERT_TRUE(poll.is_ok());
  EXPECT_TRUE(poll->changed);  // version bumped by the reset
  auto tree = aida::Tree::deserialize(poll->merged);
  ASSERT_TRUE(tree.is_ok());
  EXPECT_TRUE(tree->empty());
}

TEST(AidaManager, SessionLifecycle) {
  AidaManager manager;
  ASSERT_TRUE(manager.open_session("s").is_ok());
  EXPECT_EQ(manager.open_session("s").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(manager.session_count(), 1u);
  ASSERT_TRUE(manager.close_session("s").is_ok());
  EXPECT_EQ(manager.close_session("s").code(), StatusCode::kNotFound);
}

TEST(Locator, RegisterLocateUnregister) {
  Locator locator;
  DatasetLocation location;
  location.location = Uri::parse("file:///data/run7.ipd").value();
  location.splitter = "splitter-0";
  ASSERT_TRUE(locator.register_dataset("ds-1", location).is_ok());
  EXPECT_EQ(locator.register_dataset("ds-1", location).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(locator.register_dataset("", location).code(), StatusCode::kInvalidArgument);

  auto found = locator.locate("ds-1");
  ASSERT_TRUE(found.is_ok());
  EXPECT_EQ(found->location.path, "/data/run7.ipd");
  EXPECT_EQ(found->splitter, "splitter-0");
  EXPECT_EQ(locator.locate("ds-2").status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(locator.unregister_dataset("ds-1").is_ok());
  EXPECT_EQ(locator.unregister_dataset("ds-1").code(), StatusCode::kNotFound);
}

TEST(Protocol, PushRoundTrip) {
  const PushRequest request = make_push("sess-1", "eng-3", 42.0, 7);
  auto decoded = decode_push(encode_push(request));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded->session_id, "sess-1");
  EXPECT_EQ(decoded->report.engine_id, "eng-3");
  EXPECT_EQ(decoded->report.processed, 7u);
  EXPECT_EQ(decoded->snapshot, request.snapshot);
}

TEST(Protocol, PollRoundTrip) {
  PollResponse response;
  response.version = 12;
  response.changed = true;
  response.merged = snapshot_with(10.0, 2);
  EngineReport report;
  report.engine_id = "e0";
  report.state = engine::EngineState::kFailed;
  report.error = "boom";
  response.engines.push_back(report);

  auto decoded = decode_poll_response(encode_poll_response(response));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded->version, 12u);
  EXPECT_TRUE(decoded->changed);
  EXPECT_EQ(decoded->merged, response.merged);
  ASSERT_EQ(decoded->engines.size(), 1u);
  EXPECT_EQ(decoded->engines[0].state, engine::EngineState::kFailed);
  EXPECT_EQ(decoded->engines[0].error, "boom");
}

TEST(Protocol, PollRequestAndReadyRoundTrip) {
  auto poll_req = decode_poll_request(encode_poll_request("s9", 77));
  ASSERT_TRUE(poll_req.is_ok());
  EXPECT_EQ(poll_req->first, "s9");
  EXPECT_EQ(poll_req->second, 77u);

  auto ready = decode_ready(encode_ready("s9", "e4"));
  ASSERT_TRUE(ready.is_ok());
  EXPECT_EQ(ready->first, "s9");
  EXPECT_EQ(ready->second, "e4");
}

TEST(Protocol, VerbParsing) {
  EXPECT_EQ(parse_verb("run").value(), ControlVerb::kRun);
  EXPECT_EQ(parse_verb("rewind").value(), ControlVerb::kRewind);
  EXPECT_EQ(parse_verb("run_records").value(), ControlVerb::kRunRecords);
  EXPECT_FALSE(parse_verb("dance").is_ok());
  EXPECT_EQ(to_string(ControlVerb::kPause), "pause");
}

TEST(Protocol, EngineStateParsing) {
  EXPECT_EQ(parse_engine_state("finished").value(), engine::EngineState::kFinished);
  EXPECT_FALSE(parse_engine_state("bogus").is_ok());
}

// Session bookkeeping under contention: several threads race full
// open -> stage -> run -> poll -> close lifecycles against ONE manager. Every
// lifecycle must finish, and afterwards no session may leak — neither in the
// in-memory registry nor on the public GET /status listing.
TEST(ManagerLifecycle, ConcurrentSessionsDrainCompletely) {
  const char* kScript = R"(
func begin(tree) { tree.book_h1("/mass", 20, 0, 200); }
func process(event, tree) { tree.fill("/mass", event.num("mass")); }
)";
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ipa-services-lifecycle-race";
  std::filesystem::create_directories(dir);

  Rng rng(7);
  std::vector<data::Record> records;
  for (std::uint64_t i = 0; i < 600; ++i) {
    data::Record record(i);
    record.set("mass", rng.uniform(0.0, 200.0));
    records.push_back(std::move(record));
  }
  const std::string path = (dir / "race.ipd").string();
  ASSERT_TRUE(data::write_dataset(path, "race", records).is_ok());

  ManagerConfig config;
  config.staging_dir = (dir / "staging").string();
  config.engine_config.snapshot_every = 200;
  config.heartbeat_timeout_s = 15.0;  // one-core CI box: tolerate scheduling gaps
  auto manager = ManagerNode::start(std::move(config));
  ASSERT_TRUE(manager.is_ok()) << manager.status().to_string();
  ASSERT_TRUE(
      (*manager)->publish_dataset("svc/race", "ds-race", {{"experiment", "SVC"}}, path)
          .is_ok());
  const std::string base = (*manager)->authority().issue("cn=race", {"analysis"}, 3600);
  auto proxy = client::make_proxy((*manager)->authority(), base);
  ASSERT_TRUE(proxy.is_ok());

  constexpr int kThreads = 4;
  constexpr int kLifecyclesPerThread = 2;
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kLifecyclesPerThread; ++round) {
        auto grid = client::GridClient::connect((*manager)->soap_endpoint(), *proxy);
        ASSERT_TRUE(grid.is_ok()) << "t" << t << " r" << round << ": "
                                  << grid.status().to_string();
        auto session = grid->create_session(1);
        ASSERT_TRUE(session.is_ok()) << session.status().to_string();
        EXPECT_TRUE(session->activate().is_ok());
        EXPECT_TRUE(session->select_dataset("ds-race").is_ok());
        EXPECT_TRUE(session->stage_script("race", kScript).is_ok());
        auto tree = session->run_to_completion(120.0);
        EXPECT_TRUE(tree.is_ok()) << tree.status().to_string();
        EXPECT_TRUE(session->close().is_ok());
        completed.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(completed.load(), kThreads * kLifecyclesPerThread);
  EXPECT_EQ((*manager)->active_sessions(), 0u);

  const Uri endpoint = (*manager)->soap_endpoint();
  auto conn = http::Client::connect(endpoint.host, endpoint.port);
  ASSERT_TRUE(conn.is_ok()) << conn.status().to_string();
  auto status = conn->get("/status");
  ASSERT_TRUE(status.is_ok()) << status.status().to_string();
  EXPECT_EQ(status->status, 200);
  EXPECT_NE(status->body.find("\"sessions\":[]"), std::string::npos)
      << "leaked sessions: " << status->body;

  (*manager)->stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace ipa::services
