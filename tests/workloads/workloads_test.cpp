#include "workloads/workloads.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "engine/engine.hpp"

namespace ipa::workloads {
namespace {

TEST(Dna, ReadShapeAndComposition) {
  Rng rng(1);
  DnaConfig config;
  const data::Record read = generate_read(rng, config, 5);
  EXPECT_EQ(read.index(), 5u);
  const std::string seq = read.str_or("seq");
  EXPECT_EQ(static_cast<int>(seq.size()), config.read_length);
  for (const char base : seq) {
    EXPECT_TRUE(base == 'A' || base == 'C' || base == 'G' || base == 'T') << base;
  }
  EXPECT_GT(read.real_or("quality"), 0.0);
}

TEST(Dna, GcContentMatchesConfig) {
  Rng rng(3);
  DnaConfig config;
  config.gc_content = 0.6;
  config.motif_rate = 0.0;
  double total = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    total += gc_fraction(generate_read(rng, config, static_cast<std::uint64_t>(i)).str_or("seq"));
  }
  EXPECT_NEAR(total / n, 0.6, 0.02);
}

TEST(Dna, MotifPlantedAtRate) {
  Rng rng(5);
  DnaConfig config;
  config.motif_rate = 0.5;
  int with_motif = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const std::string seq =
        generate_read(rng, config, static_cast<std::uint64_t>(i)).str_or("seq");
    if (count_motif(seq, config.motif) > 0) ++with_motif;
  }
  // Planted rate plus rare random occurrences.
  EXPECT_NEAR(static_cast<double>(with_motif) / n, 0.5, 0.06);
}

TEST(Dna, Helpers) {
  EXPECT_DOUBLE_EQ(gc_fraction("GGCC"), 1.0);
  EXPECT_DOUBLE_EQ(gc_fraction("AATT"), 0.0);
  EXPECT_DOUBLE_EQ(gc_fraction(""), 0.0);
  EXPECT_EQ(count_motif("GATTACAGATTACA", "GATTACA"), 2);
  EXPECT_EQ(count_motif("AAAA", "GATTACA"), 0);
  EXPECT_EQ(count_motif("AAAA", ""), 0);
}

TEST(Stocks, TickShapeAndWalk) {
  StockTickGenerator generator({}, 7);
  double last_ts = -1;
  for (int i = 0; i < 100; ++i) {
    const data::Record tick = generator.next();
    EXPECT_FALSE(tick.str_or("symbol").empty());
    EXPECT_GT(tick.real_or("price"), 0.0);
    EXPECT_GE(tick.int_or("volume"), 1);
    EXPECT_GT(static_cast<double>(tick.int_or("ts")), last_ts);
    last_ts = static_cast<double>(tick.int_or("ts"));
  }
}

TEST(Stocks, PricesStayPerSymbolContinuous) {
  StockConfig config;
  config.symbols = {"ONE"};
  config.volatility = 0.01;
  StockTickGenerator generator(config, 11);
  double prev = generator.next().real_or("price");
  for (int i = 0; i < 200; ++i) {
    const double price = generator.next().real_or("price");
    // 1% log-sigma: consecutive ticks stay within ~5%.
    EXPECT_NEAR(price / prev, 1.0, 0.05);
    prev = price;
  }
}

class WorkloadDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "ipa-wl-test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  aida::Tree run_engine(const std::string& dataset, const char* script) {
    engine::AnalysisEngine eng;
    EXPECT_TRUE(eng.stage_dataset(dataset).is_ok());
    EXPECT_TRUE(eng.stage_code({engine::CodeBundle::Kind::kScript, "wl", script}).is_ok());
    EXPECT_TRUE(eng.run().is_ok());
    const auto done = eng.wait();
    EXPECT_EQ(done.state, engine::EngineState::kFinished) << done.error;
    return eng.tree_copy();
  }

  std::filesystem::path dir_;
};

TEST_F(WorkloadDatasetTest, DnaScriptAnalyzesReads) {
  const std::string path = (dir_ / "dna.ipd").string();
  DnaConfig config;
  config.motif_rate = 0.4;
  ASSERT_TRUE(generate_dna_dataset(path, "reads", 300, config, 3).is_ok());

  aida::Tree tree = run_engine(path, dna_script());
  auto gc = tree.histogram1d("/dna/gc");
  ASSERT_TRUE(gc.is_ok());
  EXPECT_EQ((*gc)->entries(), 300u);
  EXPECT_NEAR((*gc)->mean(), 0.42, 0.05);
  auto hits = tree.histogram1d("/dna/motif_hits");
  ASSERT_TRUE(hits.is_ok());
  // ~40% of reads carry >= 1 motif: bin 0 holds < 80% of entries.
  EXPECT_LT((*hits)->bin_height(0), 0.8 * 300);
}

TEST_F(WorkloadDatasetTest, StockScriptComputesVwapInputs) {
  const std::string path = (dir_ / "ticks.ipd").string();
  ASSERT_TRUE(generate_stock_dataset(path, "ticks", 500, {}, 9).is_ok());

  aida::Tree tree = run_engine(path, stock_script());
  auto price = tree.histogram1d("/stocks/price");
  ASSERT_TRUE(price.is_ok());
  EXPECT_EQ((*price)->entries(), 500u);
  auto vwap = tree.tuple("/stocks/vwap");
  ASSERT_TRUE(vwap.is_ok());
  EXPECT_EQ((*vwap)->rows(), 500u);
  auto pv = (*vwap)->column("price_x_volume");
  auto v = (*vwap)->column("volume");
  ASSERT_TRUE(pv.is_ok() && v.is_ok());
  double sum_pv = 0, sum_v = 0;
  for (const double x : *pv) sum_pv += x;
  for (const double x : *v) sum_v += x;
  const double computed_vwap = sum_pv / sum_v;
  EXPECT_GT(computed_vwap, 0.0);
  EXPECT_LT(computed_vwap, 1000.0);
}

TEST_F(WorkloadDatasetTest, GeneratedDatasetsCarryDomainMetadata) {
  const std::string dna = (dir_ / "d.ipd").string();
  const std::string stocks = (dir_ / "s.ipd").string();
  auto dna_info = generate_dna_dataset(dna, "d", 10);
  auto stock_info = generate_stock_dataset(stocks, "s", 10);
  ASSERT_TRUE(dna_info.is_ok() && stock_info.is_ok());
  EXPECT_EQ(dna_info->metadata.at("experiment"), "genome");
  EXPECT_EQ(stock_info->metadata.at("domain"), "finance");
}

}  // namespace
}  // namespace ipa::workloads
