#include <gtest/gtest.h>

#include <vector>

#include "gridsim/link.hpp"
#include "gridsim/scheduler.hpp"
#include "gridsim/sim.hpp"

namespace ipa::gridsim {
namespace {

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(sim.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, EqualTimesAreStable) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, NestedScheduling) {
  Simulation sim;
  double fired_at = -1;
  sim.schedule(1.0, [&] {
    sim.schedule(2.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulation, RunUntilLeavesLaterEventsQueued) {
  Simulation sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(5.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, NegativeDelayClamps) {
  Simulation sim;
  double at = -1;
  sim.schedule(1.0, [&] {
    sim.schedule(-5.0, [&] { at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(at, 1.0);
}

TEST(SharedLink, SingleFlowTimeIsSizeOverRate) {
  Simulation sim;
  SharedLink link(sim, "lan", {.capacity_mbps = 10.0, .per_flow_mbps = 0, .latency_s = 0, .setup_s = 0});
  double done_at = -1;
  link.start_flow(100.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 10.0, 1e-9);
}

TEST(SharedLink, LatencyAndSetupAdd) {
  Simulation sim;
  SharedLink link(sim, "wan", {.capacity_mbps = 10.0, .per_flow_mbps = 0, .latency_s = 1.5, .setup_s = 0.5});
  double done_at = -1;
  link.start_flow(100.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 12.0, 1e-9);
}

TEST(SharedLink, TwoFlowsShareCapacity) {
  Simulation sim;
  SharedLink link(sim, "lan", {.capacity_mbps = 10.0});
  std::vector<double> done;
  link.start_flow(50.0, [&] { done.push_back(sim.now()); });
  link.start_flow(50.0, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Each gets 5 MB/s: both finish at t = 10.
  EXPECT_NEAR(done[0], 10.0, 1e-9);
  EXPECT_NEAR(done[1], 10.0, 1e-9);
}

TEST(SharedLink, LateJoinerSlowsExistingFlow) {
  Simulation sim;
  SharedLink link(sim, "lan", {.capacity_mbps = 10.0});
  double first_done = -1, second_done = -1;
  link.start_flow(100.0, [&] { first_done = sim.now(); });
  sim.schedule(5.0, [&] {
    link.start_flow(25.0, [&] { second_done = sim.now(); });
  });
  sim.run();
  // First flow: 50 MB in 5 s alone, then shares 5 MB/s. Second: 25 MB at 5 MB/s = 5 s.
  EXPECT_NEAR(second_done, 10.0, 1e-9);
  // First has 50 MB left at t=5; shares until t=10 (25 MB moved), then full
  // rate for the last 25 MB: t = 10 + 2.5.
  EXPECT_NEAR(first_done, 12.5, 1e-9);
}

TEST(SharedLink, PerFlowCapLimitsSingleStream) {
  Simulation sim;
  SharedLink link(sim, "lan", {.capacity_mbps = 100.0, .per_flow_mbps = 10.0});
  double done_at = -1;
  link.start_flow(100.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 10.0, 1e-9);  // capped at 10, not 100
}

TEST(SharedLink, ManyCappedFlowsUseAggregate) {
  Simulation sim;
  SharedLink link(sim, "lan", {.capacity_mbps = 100.0, .per_flow_mbps = 10.0});
  int completed = 0;
  double last = 0;
  for (int i = 0; i < 20; ++i) {
    link.start_flow(10.0, [&] {
      ++completed;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(completed, 20);
  // 20 flows x 10 MB = 200 MB; aggregate 100 MB/s but per-flow cap 10 means
  // each flow runs at min(100/20, 10) = 5 MB/s: 10 MB takes 2 s.
  EXPECT_NEAR(last, 2.0, 1e-9);
}

TEST(SharedLink, ZeroByteFlowCompletesAfterPreamble) {
  Simulation sim;
  SharedLink link(sim, "lan", {.capacity_mbps = 10.0, .per_flow_mbps = 0, .latency_s = 0.25, .setup_s = 0.75});
  double done_at = -1;
  link.start_flow(0.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST(SerialStage, FifoAtFixedRate) {
  Simulation sim;
  SerialStage disk(sim, "disk", 10.0);
  std::vector<double> done;
  disk.submit(50.0, [&] { done.push_back(sim.now()); });
  disk.submit(30.0, [&] { done.push_back(sim.now()); });
  disk.submit(20.0, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_NEAR(done[0], 5.0, 1e-9);
  EXPECT_NEAR(done[1], 8.0, 1e-9);
  EXPECT_NEAR(done[2], 10.0, 1e-9);
}

TEST(SerialStage, IdleGapThenNewWork) {
  Simulation sim;
  SerialStage disk(sim, "disk", 10.0);
  double done_at = -1;
  disk.submit(10.0, [&] {});
  sim.schedule(100.0, [&] {
    disk.submit(10.0, [&] { done_at = sim.now(); });
  });
  sim.run();
  EXPECT_NEAR(done_at, 101.0, 1e-9);  // starts fresh at t=100
}

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(scheduler_
                    .add_queue({.name = "interactive",
                                .nodes = 16,
                                .node_speed_mhz = 866,
                                .dispatch_latency_s = 2.0,
                                .policy = DispatchPolicy::kFifo})
                    .is_ok());
  }
  Simulation sim_;
  Scheduler scheduler_{sim_};
};

TEST_F(SchedulerTest, GrantAfterDispatchLatency) {
  Scheduler::Grant got;
  auto job = scheduler_.submit("interactive", "alice", 4, [&](const Scheduler::Grant& grant) {
    got = grant;
  });
  ASSERT_TRUE(job.is_ok());
  sim_.run();
  EXPECT_EQ(got.node_ids.size(), 4u);
  EXPECT_DOUBLE_EQ(got.node_speed_mhz, 866);
  EXPECT_DOUBLE_EQ(got.granted_at, 2.0);
  EXPECT_EQ(scheduler_.free_nodes("interactive"), 12);
}

TEST_F(SchedulerTest, QueueBlocksUntilRelease) {
  std::uint64_t first_id = 0;
  double second_granted_at = -1;
  auto first = scheduler_.submit("interactive", "alice", 16, [&](const Scheduler::Grant& g) {
    first_id = g.job_id;
    // Hold the whole queue for 100 s.
    sim_.schedule(100.0, [&, id = g.job_id] { ASSERT_TRUE(scheduler_.release(id).is_ok()); });
  });
  ASSERT_TRUE(first.is_ok());
  auto second = scheduler_.submit("interactive", "bob", 8, [&](const Scheduler::Grant& g) {
    second_granted_at = g.granted_at;
  });
  ASSERT_TRUE(second.is_ok());
  // The 16-node job dispatched immediately; only the 8-node job waits.
  EXPECT_EQ(scheduler_.waiting_jobs("interactive"), 1u);
  sim_.run();
  // First grant at t=2, release at t=102, second grant at t=104.
  EXPECT_NEAR(second_granted_at, 104.0, 1e-9);
}

TEST_F(SchedulerTest, RejectsOversizeAndUnknownQueue) {
  EXPECT_EQ(scheduler_.submit("interactive", "alice", 17, nullptr).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler_.submit("nope", "alice", 1, nullptr).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(scheduler_.submit("interactive", "alice", 0, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SchedulerTest, CancelWaitingJob) {
  // Fill the queue so the next job waits.
  ASSERT_TRUE(scheduler_.submit("interactive", "a", 16, nullptr).is_ok());
  auto waiting = scheduler_.submit("interactive", "b", 1, [](const Scheduler::Grant&) {
    FAIL() << "cancelled job must not be granted";
  });
  ASSERT_TRUE(waiting.is_ok());
  sim_.run_until(1.0);
  ASSERT_TRUE(scheduler_.cancel(*waiting).is_ok());
  EXPECT_EQ(scheduler_.cancel(*waiting).code(), StatusCode::kNotFound);
  sim_.run();
}

TEST_F(SchedulerTest, ReleaseAccountsUsage) {
  std::uint64_t id = 0;
  ASSERT_TRUE(scheduler_.submit("interactive", "alice", 4, [&](const Scheduler::Grant& g) {
    id = g.job_id;
  }).is_ok());
  sim_.run();
  sim_.schedule(10.0, [&] { ASSERT_TRUE(scheduler_.release(id).is_ok()); });
  sim_.run();
  EXPECT_NEAR(scheduler_.usage("alice"), 4 * 12.0, 1e-9);  // held from t=0 to t=12
  EXPECT_DOUBLE_EQ(scheduler_.usage("nobody"), 0.0);
}

TEST(SchedulerFairShare, HeavyUserYieldsToLightUser) {
  Simulation sim;
  Scheduler scheduler(sim);
  ASSERT_TRUE(scheduler
                  .add_queue({.name = "q",
                              .nodes = 2,
                              .node_speed_mhz = 866,
                              .dispatch_latency_s = 0.0,
                              .policy = DispatchPolicy::kFairShare})
                  .is_ok());

  // Heavy user consumes both nodes for 100 s.
  std::uint64_t heavy_job = 0;
  ASSERT_TRUE(scheduler.submit("q", "heavy", 2, [&](const Scheduler::Grant& g) {
    heavy_job = g.job_id;
    sim.schedule(100.0, [&, id = g.job_id] { ASSERT_TRUE(scheduler.release(id).is_ok()); });
  }).is_ok());

  // While that runs, heavy submits again first, then light submits.
  std::vector<std::string> grant_order;
  sim.schedule(1.0, [&] {
    ASSERT_TRUE(scheduler.submit("q", "heavy", 2, [&](const Scheduler::Grant& g) {
      grant_order.push_back("heavy");
      ASSERT_TRUE(scheduler.release(g.job_id).is_ok());
    }).is_ok());
    ASSERT_TRUE(scheduler.submit("q", "light", 2, [&](const Scheduler::Grant& g) {
      grant_order.push_back("light");
      ASSERT_TRUE(scheduler.release(g.job_id).is_ok());
    }).is_ok());
  });
  sim.run();
  // Fair-share grants light first despite heavy's earlier arrival.
  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[0], "light");
  EXPECT_EQ(grant_order[1], "heavy");
}

TEST(SchedulerFairShare, FifoWouldGrantHeavyFirst) {
  Simulation sim;
  Scheduler scheduler(sim);
  ASSERT_TRUE(scheduler
                  .add_queue({.name = "q",
                              .nodes = 2,
                              .node_speed_mhz = 866,
                              .dispatch_latency_s = 0.0,
                              .policy = DispatchPolicy::kFifo})
                  .is_ok());
  ASSERT_TRUE(scheduler.submit("q", "heavy", 2, [&](const Scheduler::Grant& g) {
    sim.schedule(100.0, [&, id = g.job_id] { ASSERT_TRUE(scheduler.release(id).is_ok()); });
  }).is_ok());
  std::vector<std::string> grant_order;
  sim.schedule(1.0, [&] {
    ASSERT_TRUE(scheduler.submit("q", "heavy", 2, [&](const Scheduler::Grant& g) {
      grant_order.push_back("heavy");
      ASSERT_TRUE(scheduler.release(g.job_id).is_ok());
    }).is_ok());
    ASSERT_TRUE(scheduler.submit("q", "light", 2, [&](const Scheduler::Grant& g) {
      grant_order.push_back("light");
      ASSERT_TRUE(scheduler.release(g.job_id).is_ok());
    }).is_ok());
  });
  sim.run();
  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[0], "heavy");
}

TEST(SchedulerQueues, DuplicateQueueRejected) {
  Simulation sim;
  Scheduler scheduler(sim);
  ASSERT_TRUE(scheduler.add_queue({.name = "q", .nodes = 1}).is_ok());
  EXPECT_EQ(scheduler.add_queue({.name = "q", .nodes = 2}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(scheduler.add_queue({.name = "r", .nodes = 0}).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ipa::gridsim
