// Server-level tests for the event-driven HTTP stack: raw sockets drive the
// wire directly so the cases can pipeline requests, fragment header bytes
// across many writes, and overflow the header cap — behaviours the blocking
// Client wrapper would hide.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "http/http.hpp"
#include "net/worker_pool.hpp"
#include "obs/metrics.hpp"

namespace ipa::http {
namespace {

template <typename Pred>
bool wait_until(Pred pred, double timeout_s = 5.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

/// Blocking TCP connect to the test server; returns the raw fd (-1 on error).
int raw_connect(const Uri& bound) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(bound.port);
  if (::inet_pton(AF_INET, bound.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read until `n` complete HTTP responses have been parsed or the deadline
/// passes; returns the parsed responses (possibly fewer than `n`).
std::vector<Response> read_responses(int fd, std::size_t n, double timeout_s = 5.0) {
  ResponseParser parser;
  std::vector<Response> out;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  while (out.size() < n) {
    Response resp;
    auto got = parser.next(resp);
    if (!got.is_ok()) break;
    if (*got) {
      out.push_back(std::move(resp));
      continue;
    }
    const auto remaining =
        std::chrono::duration<double>(deadline - std::chrono::steady_clock::now());
    const int wait_ms = std::max(0, static_cast<int>(remaining.count() * 1000));
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, wait_ms) <= 0) break;
    char buf[8192];
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r <= 0) break;
    parser.feed(std::string_view(buf, static_cast<std::size_t>(r)));
  }
  return out;
}

bool reads_eof(int fd, double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  for (;;) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, 50) > 0) {
      char buf[4096];
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
    if (std::chrono::steady_clock::now() > deadline) return false;
  }
}

Request simple_get(const std::string& target) {
  Request req;
  req.method = "GET";
  req.target = target;
  req.headers["Host"] = "test";
  return req;
}

TEST(HttpAsyncServer, PipelinedRequestsAnswerInOrder) {
  Server server("127.0.0.1", 0);
  server.route("/a", [](const Request&) { return Response::make(200, "alpha"); });
  server.route("/b", [](const Request&) { return Response::make(200, "beta"); });
  server.route("/c", [](const Request&) { return Response::make(200, "gamma"); });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());

  const int fd = raw_connect(*bound);
  ASSERT_GE(fd, 0);
  // All three requests land in one write; responses must come back complete
  // and in request order even though handlers run on pool workers.
  ASSERT_TRUE(write_all(fd, simple_get("/a").serialize() + simple_get("/b").serialize() +
                                simple_get("/c").serialize()));
  const auto responses = read_responses(fd, 3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].body, "alpha");
  EXPECT_EQ(responses[1].body, "beta");
  EXPECT_EQ(responses[2].body, "gamma");
  ::close(fd);
  server.stop();
}

TEST(HttpAsyncServer, RequestFragmentedAcrossWritesIsParsed) {
  Server server("127.0.0.1", 0);
  server.route("/echo", [](const Request& req) { return Response::make(200, req.body); });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());

  Request req;
  req.method = "POST";
  req.target = "/echo";
  req.headers["Host"] = "test";
  req.body = "fragmented body";
  const std::string wire = req.serialize();

  const int fd = raw_connect(*bound);
  ASSERT_GE(fd, 0);
  // Drip the request in small slices; the incremental parser must reassemble
  // across reads that split the start line, header block and body.
  for (std::size_t off = 0; off < wire.size(); off += 7) {
    ASSERT_TRUE(write_all(fd, std::string_view(wire).substr(off, 7)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto responses = read_responses(fd, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].body, "fragmented body");
  ::close(fd);
  server.stop();
}

TEST(HttpAsyncServer, OversizedHeaderBlockGets400AndClose) {
  Server server("127.0.0.1", 0);
  server.route("/x", [](const Request&) { return Response::make(200, "ok"); });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());

  const int fd = raw_connect(*bound);
  ASSERT_GE(fd, 0);
  std::string junk = "GET /x HTTP/1.1\r\nHost: test\r\n";
  while (junk.size() <= kMaxHeaderBytes) {
    junk += "X-Padding: " + std::string(512, 'p') + "\r\n";
  }
  ASSERT_TRUE(write_all(fd, junk));  // never terminates the header block
  const auto responses = read_responses(fd, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 400);
  EXPECT_TRUE(reads_eof(fd, 5.0));
  ::close(fd);
  server.stop();
}

TEST(HttpAsyncServer, KeepAliveConnectionsTrackedOnGauge) {
  auto& gauge = obs::Registry::global().gauge("ipa_server_open_connections",
                                              {{"server", "http"}});
  const double baseline = gauge.value();

  Server server("127.0.0.1", 0);
  server.route("/k", [](const Request&) { return Response::make(200, "ok"); });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());
  EXPECT_EQ(server.open_connections(), 0u);

  const int fd = raw_connect(*bound);
  ASSERT_GE(fd, 0);
  // Many requests over one keep-alive connection: the gauge counts sockets,
  // not requests.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(write_all(fd, simple_get("/k").serialize()));
    ASSERT_EQ(read_responses(fd, 1).size(), 1u);
  }
  EXPECT_EQ(server.open_connections(), 1u);
  EXPECT_EQ(gauge.value(), baseline + 1.0);
  EXPECT_EQ(server.requests_served(), 10u);

  const int fd2 = raw_connect(*bound);
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(write_all(fd2, simple_get("/k").serialize()));
  ASSERT_EQ(read_responses(fd2, 1).size(), 1u);
  EXPECT_EQ(server.open_connections(), 2u);

  ::close(fd);
  ::close(fd2);
  // Client-side close reaches the reactor as EOF; the gauge must drain.
  EXPECT_TRUE(wait_until([&] { return server.open_connections() == 0; }));
  EXPECT_EQ(gauge.value(), baseline);
  server.stop();
}

TEST(HttpAsyncServer, ConnectionCloseHeaderIsHonored) {
  Server server("127.0.0.1", 0);
  server.route("/bye", [](const Request&) { return Response::make(200, "done"); });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());

  const int fd = raw_connect(*bound);
  ASSERT_GE(fd, 0);
  Request req = simple_get("/bye");
  req.headers["Connection"] = "close";
  ASSERT_TRUE(write_all(fd, req.serialize()));
  const auto responses = read_responses(fd, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].header_or("connection"), "close");
  EXPECT_TRUE(reads_eof(fd, 5.0));
  ::close(fd);
  server.stop();
}

TEST(HttpAsyncServer, StopWithOpenConnectionsIsClean) {
  Server server("127.0.0.1", 0);
  server.route("/s", [](const Request&) { return Response::make(200, "ok"); });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());

  const int fd = raw_connect(*bound);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(write_all(fd, simple_get("/s").serialize()));
  ASSERT_EQ(read_responses(fd, 1).size(), 1u);
  server.stop();  // with a live keep-alive connection parked
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_TRUE(reads_eof(fd, 5.0));
  ::close(fd);
}

}  // namespace
}  // namespace ipa::http
