#include "http/http.hpp"

#include <gtest/gtest.h>

namespace ipa::http {
namespace {

TEST(HttpCodec, SerializeRequestAddsContentLength) {
  Request req;
  req.method = "POST";
  req.target = "/ipa/services";
  req.headers["Content-Type"] = "text/xml";
  req.body = "<x/>";
  const std::string wire = req.serialize();
  EXPECT_NE(wire.find("POST /ipa/services HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n<x/>"), std::string::npos);
}

TEST(HttpCodec, ParseRequestRoundTrip) {
  Request req;
  req.method = "POST";
  req.target = "/a/b?c=1";
  req.headers["SOAPAction"] = "\"Session#create\"";
  req.body = "payload bytes";

  RequestParser parser;
  parser.feed(req.serialize());
  Request out;
  auto got = parser.next(out);
  ASSERT_TRUE(got.is_ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(out.method, "POST");
  EXPECT_EQ(out.target, "/a/b?c=1");
  EXPECT_EQ(out.header_or("soapaction"), "\"Session#create\"");  // case-insensitive
  EXPECT_EQ(out.body, "payload bytes");
}

TEST(HttpCodec, ParseResponseRoundTrip) {
  Response resp = Response::make(404, "nothing here");
  ResponseParser parser;
  parser.feed(resp.serialize());
  Response out;
  auto got = parser.next(out);
  ASSERT_TRUE(got.is_ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(out.status, 404);
  EXPECT_EQ(out.reason, "Not Found");
  EXPECT_EQ(out.body, "nothing here");
}

TEST(HttpCodec, IncrementalFeedByteByByte) {
  Request req;
  req.method = "GET";
  req.target = "/x";
  req.body = "abc";
  const std::string wire = req.serialize();

  RequestParser parser;
  Request out;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.feed(std::string_view(&wire[i], 1));
    auto got = parser.next(out);
    ASSERT_TRUE(got.is_ok());
    EXPECT_FALSE(*got) << "completed too early at byte " << i;
  }
  parser.feed(std::string_view(&wire[wire.size() - 1], 1));
  auto got = parser.next(out);
  ASSERT_TRUE(got.is_ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(out.body, "abc");
}

TEST(HttpCodec, PipelinedMessages) {
  Request a, b;
  a.method = "GET";
  a.target = "/first";
  b.method = "GET";
  b.target = "/second";
  RequestParser parser;
  parser.feed(a.serialize() + b.serialize());
  Request out;
  ASSERT_TRUE(parser.next(out).value());
  EXPECT_EQ(out.target, "/first");
  ASSERT_TRUE(parser.next(out).value());
  EXPECT_EQ(out.target, "/second");
  EXPECT_FALSE(parser.next(out).value());
}

TEST(HttpCodec, MalformedStartLineRejected) {
  RequestParser parser;
  parser.feed("NOT-HTTP\r\n\r\n");
  Request out;
  EXPECT_FALSE(parser.next(out).is_ok());
}

TEST(HttpCodec, BadContentLengthRejected) {
  RequestParser parser;
  parser.feed("GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
  Request out;
  EXPECT_FALSE(parser.next(out).is_ok());
}

TEST(HttpCodec, ChunkedEncodingRejected) {
  ResponseParser parser;
  parser.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n");
  Response out;
  EXPECT_FALSE(parser.next(out).is_ok());
}

TEST(HttpCodec, ResponseReasonWithSpaces) {
  ResponseParser parser;
  parser.feed("HTTP/1.1 500 Internal Server Error\r\nContent-Length: 0\r\n\r\n");
  Response out;
  ASSERT_TRUE(parser.next(out).value());
  EXPECT_EQ(out.status, 500);
  EXPECT_EQ(out.reason, "Internal Server Error");
}

TEST(HttpServer, ServesRoutedRequests) {
  Server server("127.0.0.1", 0);
  server.route("/hello", [](const Request&) { return Response::make(200, "hi there"); });
  server.route("/ipa/*", [](const Request& req) {
    return Response::make(200, "prefix:" + req.target);
  });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());

  auto client = Client::connect(bound->host, bound->port);
  ASSERT_TRUE(client.is_ok());

  auto r1 = client->get("/hello");
  ASSERT_TRUE(r1.is_ok());
  EXPECT_EQ(r1->status, 200);
  EXPECT_EQ(r1->body, "hi there");

  auto r2 = client->get("/ipa/session/create");
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(r2->body, "prefix:/ipa/session/create");

  auto r3 = client->get("/nothing");
  ASSERT_TRUE(r3.is_ok());
  EXPECT_EQ(r3->status, 404);

  server.stop();
}

TEST(HttpServer, KeepAliveReusesConnection) {
  Server server("127.0.0.1", 0);
  server.route("/count", [](const Request&) { return Response::make(200, "ok"); });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());

  auto client = Client::connect(bound->host, bound->port);
  ASSERT_TRUE(client.is_ok());
  for (int i = 0; i < 20; ++i) {
    auto resp = client->get("/count");
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
    EXPECT_EQ(resp->status, 200);
  }
  EXPECT_EQ(server.requests_served(), 20u);
  server.stop();
}

TEST(HttpServer, PostBodyRoundTrip) {
  Server server("127.0.0.1", 0);
  server.route("/echo", [](const Request& req) {
    Response resp = Response::make(200, req.body, req.header_or("Content-Type", "text/plain"));
    return resp;
  });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());

  auto client = Client::connect(bound->host, bound->port);
  ASSERT_TRUE(client.is_ok());
  const std::string body(100000, 'z');
  auto resp = client->post("/echo", body, "application/octet-stream");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->body, body);
  EXPECT_EQ(resp->header_or("content-type"), "application/octet-stream");
  server.stop();
}

TEST(HttpServer, ConcurrentClients) {
  Server server("127.0.0.1", 0);
  server.route("/w", [](const Request&) { return Response::make(200, "done"); });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());

  std::atomic<int> ok{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 5; ++t) {
      threads.emplace_back([&] {
        auto client = Client::connect(bound->host, bound->port);
        if (!client.is_ok()) return;
        for (int i = 0; i < 10; ++i) {
          auto resp = client->get("/w");
          if (resp.is_ok() && resp->status == 200) ++ok;
        }
      });
    }
  }
  EXPECT_EQ(ok.load(), 50);
  server.stop();
}

TEST(HttpServer, HostHeaderAutoFilled) {
  Server server("127.0.0.1", 0);
  std::string seen_host;
  server.route("/h", [&](const Request& req) {
    seen_host = req.header_or("Host");
    return Response::make(200, "");
  });
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());
  auto client = Client::connect(bound->host, bound->port);
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(client->get("/h").is_ok());
  EXPECT_EQ(seen_host, bound->host + ":" + std::to_string(bound->port));
  server.stop();
}

}  // namespace
}  // namespace ipa::http
