#include "script/engine_api.hpp"

#include <gtest/gtest.h>

#include "script/interp.hpp"

namespace ipa::script {
namespace {

class EngineApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    record_.set_index(7);
    record_.set("energy", 91.2);
    record_.set("ntrk", std::int64_t{5});
    record_.set("tag", "signal");
    record_.set("px", data::Value::RealVec{1.0, 2.0, 3.0});
    interp_.set_global("event", Value(make_event_object(&record_)));
    interp_.set_global("tree", Value(make_tree_object(&tree_)));
  }

  Result<Value> run(const std::string& body) {
    const std::string source = "func main() {\n" + body + "\n}";
    IPA_RETURN_IF_ERROR(interp_.load(source));
    return interp_.call("main", {});
  }

  data::Record record_;
  aida::Tree tree_;
  Interp interp_;
};

TEST_F(EngineApiTest, EventFieldAccess) {
  auto result = run(R"(
    let px = event.get("px");
    return event.num("energy") + event.num("ntrk") + px[2] + len(px);
  )");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_DOUBLE_EQ(result->number(), 91.2 + 5 + 3 + 3);
}

TEST_F(EngineApiTest, EventStringAndHasAndIndex) {
  auto result = run(R"(
    if (event.has("tag") && event.str("tag") == "signal" && !event.has("nope")) {
      return event.index();
    }
    return -1;
  )");
  ASSERT_TRUE(result.is_ok());
  EXPECT_DOUBLE_EQ(result->number(), 7.0);
}

TEST_F(EngineApiTest, EventFallbacks) {
  auto result = run(R"(return event.num("absent", -5) + num(event.str("absent", "2"));)");
  ASSERT_TRUE(result.is_ok());
  EXPECT_DOUBLE_EQ(result->number(), -3.0);
}

TEST_F(EngineApiTest, EventGetMissingFieldIsError) {
  EXPECT_FALSE(run(R"(return event.get("absent");)").is_ok());
}

TEST_F(EngineApiTest, UnknownMethodIsError) {
  const auto result = run(R"(return event.teleport();)");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("teleport"), std::string::npos);
}

TEST_F(EngineApiTest, BookAndFillHistogram1D) {
  auto result = run(R"(
    tree.book_h1("/mass", 10, 0, 100);
    tree.fill("/mass", 45);
    tree.fill("/mass", 45, 2);
    tree.fill("/mass", 999);
    return 0;
  )");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  auto hist = tree_.histogram1d("/mass");
  ASSERT_TRUE(hist.is_ok());
  EXPECT_EQ((*hist)->entries(), 3u);
  EXPECT_DOUBLE_EQ((*hist)->bin_height(4), 3.0);
  EXPECT_DOUBLE_EQ((*hist)->overflow(), 1.0);
}

TEST_F(EngineApiTest, BookWithTitle) {
  ASSERT_TRUE(run(R"(tree.book_h1("/m", 5, 0, 1, "dimuon mass"); return 0;)").is_ok());
  EXPECT_EQ((*tree_.histogram1d("/m"))->title(), "dimuon mass");
}

TEST_F(EngineApiTest, BookAndFill2D) {
  ASSERT_TRUE(run(R"(
    tree.book_h2("/xy", 4, 0, 4, 4, 0, 4);
    tree.fill2("/xy", 1.5, 2.5);
    tree.fill2("/xy", 1.5, 2.5, 3);
    return 0;
  )").is_ok());
  auto hist = tree_.histogram2d("/xy");
  ASSERT_TRUE(hist.is_ok());
  EXPECT_DOUBLE_EQ((*hist)->bin_height(1, 2), 4.0);
}

TEST_F(EngineApiTest, BookAndFillProfile) {
  ASSERT_TRUE(run(R"(
    tree.book_prof("/prof", 2, 0, 2);
    tree.fill2("/prof", 0.5, 10);
    tree.fill2("/prof", 0.5, 20);
    return 0;
  )").is_ok());
  auto profile = tree_.profile1d("/prof");
  ASSERT_TRUE(profile.is_ok());
  EXPECT_DOUBLE_EQ((*profile)->bin_mean(0), 15.0);
}

TEST_F(EngineApiTest, BookAndFillCloud) {
  ASSERT_TRUE(run(R"(
    tree.book_cloud("/cloud");
    tree.fill("/cloud", 1);
    tree.fill("/cloud", 2);
    return 0;
  )").is_ok());
  auto cloud = tree_.cloud1d("/cloud");
  ASSERT_TRUE(cloud.is_ok());
  EXPECT_EQ((*cloud)->entries(), 2u);
}

TEST_F(EngineApiTest, BookAndFillTuple) {
  ASSERT_TRUE(run(R"(
    tree.book_tuple("/nt", ["mass", "pt"]);
    tree.fill_row("/nt", [125, 40]);
    tree.fill_row("/nt", [91, 20]);
    return 0;
  )").is_ok());
  auto tuple = tree_.tuple("/nt");
  ASSERT_TRUE(tuple.is_ok());
  EXPECT_EQ((*tuple)->rows(), 2u);
  EXPECT_EQ((*tuple)->column("mass").value(), (std::vector<double>{125, 91}));
}

TEST_F(EngineApiTest, FillKindMismatchReportsKind) {
  const auto result = run(R"(
    tree.book_h2("/xy", 2, 0, 1, 2, 0, 1);
    tree.fill("/xy", 1);
    return 0;
  )");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("Histogram2D"), std::string::npos);
}

TEST_F(EngineApiTest, FillUnbookedPathIsError) {
  EXPECT_FALSE(run(R"(tree.fill("/never-booked", 1); return 0;)").is_ok());
}

TEST_F(EngineApiTest, BookValidatesAxis) {
  EXPECT_FALSE(run(R"(tree.book_h1("/bad", 0, 0, 1); return 0;)").is_ok());
  EXPECT_FALSE(run(R"(tree.book_h1("/bad", 10, 5, 1); return 0;)").is_ok());
}

TEST_F(EngineApiTest, FullAnalysisScriptShape) {
  // The begin/process/end contract the engine drives.
  const char* source = R"(
func begin(tree) {
  tree.book_h1("/e", 20, 0, 200);
}
func process(event, tree) {
  let e = event.num("energy");
  if (e > 50) { tree.fill("/e", e); }
}
func end(tree) { print("analysis complete"); }
)";
  ASSERT_TRUE(interp_.load(source).is_ok());
  Value tree_obj(make_tree_object(&tree_));
  ASSERT_TRUE(interp_.call("begin", {tree_obj}).is_ok());
  Value event_obj(make_event_object(&record_));
  ASSERT_TRUE(interp_.call("process", {event_obj, tree_obj}).is_ok());
  ASSERT_TRUE(interp_.call("end", {tree_obj}).is_ok());
  auto hist = tree_.histogram1d("/e");
  ASSERT_TRUE(hist.is_ok());
  EXPECT_EQ((*hist)->entries(), 1u);
  EXPECT_EQ(interp_.output().back(), "analysis complete");
}

}  // namespace
}  // namespace ipa::script
