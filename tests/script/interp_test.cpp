#include "script/interp.hpp"

#include <gtest/gtest.h>

#include "script/lexer.hpp"
#include "script/parser.hpp"

namespace ipa::script {
namespace {

/// Run `source`, call fn() with args, return the result.
Result<Value> run(const std::string& source, const std::string& fn,
                  std::vector<Value> args = {}) {
  Interp interp;
  IPA_RETURN_IF_ERROR(interp.load(source));
  return interp.call(fn, std::move(args));
}

double run_num(const std::string& source, const std::string& fn = "main") {
  auto result = run(source, fn);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  if (!result.is_ok() || !result->is_number()) return -1e308;
  return result->number();
}

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  auto tokens = lex("let x = 1.5e2 + \"hi\\n\"; // comment\n x <= 3 && !y");
  ASSERT_TRUE(tokens.is_ok());
  std::vector<Tok> kinds;
  for (const auto& token : *tokens) kinds.push_back(token.kind);
  EXPECT_EQ(kinds,
            (std::vector<Tok>{Tok::kLet, Tok::kIdent, Tok::kAssign, Tok::kNumber, Tok::kPlus,
                              Tok::kString, Tok::kSemicolon, Tok::kIdent, Tok::kLe, Tok::kNumber,
                              Tok::kAnd, Tok::kNot, Tok::kIdent, Tok::kEnd}));
  EXPECT_DOUBLE_EQ((*tokens)[3].number, 150.0);
  EXPECT_EQ((*tokens)[5].text, "hi\n");
}

TEST(Lexer, TracksLineNumbers) {
  auto tokens = lex("a\nb\n\nc");
  ASSERT_TRUE(tokens.is_ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[2].line, 4);
}

TEST(Lexer, Errors) {
  EXPECT_FALSE(lex("\"unterminated").is_ok());
  EXPECT_FALSE(lex("a @ b").is_ok());
  EXPECT_FALSE(lex("a & b").is_ok());
  EXPECT_FALSE(lex("\"bad \\q escape\"").is_ok());
}

TEST(Parser, RejectsMalformedPrograms) {
  EXPECT_FALSE(parse("func () {}").is_ok());
  EXPECT_FALSE(parse("func f( {}").is_ok());
  EXPECT_FALSE(parse("func f() { let 1 = 2; }").is_ok());
  EXPECT_FALSE(parse("let x = ;").is_ok());
  EXPECT_FALSE(parse("if (x) {}").is_ok() == false && false);  // if at top level is fine
  EXPECT_FALSE(parse("func f() { x + ; }").is_ok());
  EXPECT_FALSE(parse("func f() { 1 = 2; }").is_ok());
  EXPECT_FALSE(parse("func f() { while (1) x; }").is_ok());  // block required
}

TEST(Interp, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(run_num("func main() { return 2 + 3 * 4; }"), 14.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { return (2 + 3) * 4; }"), 20.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { return 10 / 4; }"), 2.5);
  EXPECT_DOUBLE_EQ(run_num("func main() { return 10 % 3; }"), 1.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { return -3 + 1; }"), -2.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { return 2 - 3 - 4; }"), -5.0);  // left assoc
}

TEST(Interp, DivisionByZeroIsError) {
  const auto result = run("func main() { return 1 / 0; }", "main");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("division by zero"), std::string::npos);
}

TEST(Interp, ComparisonsAndLogic) {
  EXPECT_DOUBLE_EQ(run_num("func main() { if (1 < 2 && 2 <= 2 && 3 > 2 && 3 >= 3) { return 1; } return 0; }"), 1.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { if (\"abc\" < \"abd\") { return 1; } return 0; }"), 1.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { if (1 == 1 && \"a\" == \"a\" && !(1 == 2)) { return 1; } return 0; }"), 1.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { if (nil == nil && !(nil == 0)) { return 1; } return 0; }"), 1.0);
}

TEST(Interp, ShortCircuitEvaluation) {
  // Right side would divide by zero; && must not evaluate it.
  EXPECT_DOUBLE_EQ(run_num("func main() { if (false && 1/0 > 0) { return 1; } return 2; }"), 2.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { if (true || 1/0 > 0) { return 3; } return 4; }"), 3.0);
}

TEST(Interp, VariablesScopesAndAssignment) {
  EXPECT_DOUBLE_EQ(run_num(R"(
func main() {
  let x = 1;
  { let x = 10; x += 5; }   // inner shadows, dies at }
  x += 2;
  x -= 0.5;
  return x;
})"), 2.5);
}

TEST(Interp, AssignmentToUndeclaredFails) {
  const auto result = run("func main() { y = 3; return y; }", "main");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("undeclared"), std::string::npos);
}

TEST(Interp, WhileAndFor) {
  EXPECT_DOUBLE_EQ(run_num(R"(
func main() {
  let total = 0;
  for (let i = 1; i <= 10; i += 1) { total += i; }
  return total;
})"), 55.0);
  EXPECT_DOUBLE_EQ(run_num(R"(
func main() {
  let n = 0;
  while (n < 100) { n += 7; }
  return n;
})"), 105.0);
}

TEST(Interp, BreakAndContinue) {
  EXPECT_DOUBLE_EQ(run_num(R"(
func main() {
  let total = 0;
  for (let i = 0; i < 100; i += 1) {
    if (i % 2 == 0) { continue; }
    if (i > 10) { break; }
    total += i;       // 1+3+5+7+9
  }
  return total;
})"), 25.0);
}

TEST(Interp, FunctionsAndRecursion) {
  EXPECT_DOUBLE_EQ(run_num(R"(
func fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
func main() { return fib(15); })"), 610.0);
}

TEST(Interp, FunctionsAsValues) {
  EXPECT_DOUBLE_EQ(run_num(R"(
func twice(f, x) { return f(f(x)); }
func inc(x) { return x + 1; }
func main() { return twice(inc, 5); })"), 7.0);
}

TEST(Interp, WrongArityReported) {
  const auto result = run("func f(a, b) { return a; } func main() { return f(1); }", "main");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("expects 2"), std::string::npos);
}

TEST(Interp, ListsIndexingAndMutation) {
  EXPECT_DOUBLE_EQ(run_num(R"(
func main() {
  let xs = [1, 2, 3];
  xs[1] = 20;
  push(xs, 4);
  return xs[0] + xs[1] + xs[2] + xs[3] + len(xs);
})"), 32.0);
}

TEST(Interp, ListReferenceSemantics) {
  EXPECT_DOUBLE_EQ(run_num(R"(
func add_one(xs) { push(xs, 1); return 0; }
func main() {
  let xs = [];
  add_one(xs);
  add_one(xs);
  return len(xs);
})"), 2.0);
}

TEST(Interp, IndexOutOfRangeIsError) {
  EXPECT_FALSE(run("func main() { let xs = [1]; return xs[5]; }", "main").is_ok());
  EXPECT_FALSE(run("func main() { let xs = [1]; return xs[-1]; }", "main").is_ok());
}

TEST(Interp, StringsConcatAndIndex) {
  auto result = run(R"(func main() { return "m = " + 5 + "!"; })", "main");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->string(), "m = 5!");
  auto ch = run(R"(func main() { return "abc"[1]; })", "main");
  ASSERT_TRUE(ch.is_ok());
  EXPECT_EQ(ch->string(), "b");
}

TEST(Interp, TopLevelStatementsRunOnLoad) {
  Interp interp;
  ASSERT_TRUE(interp.load("let counter = 41; counter += 1;").is_ok());
  auto global = interp.global("counter");
  ASSERT_TRUE(global.is_ok());
  EXPECT_DOUBLE_EQ(global->number(), 42.0);
}

TEST(Interp, ReloadReplacesFunctionsKeepsGlobals) {
  Interp interp;
  ASSERT_TRUE(interp.load("let runs = 0; func f() { return 1; }").is_ok());
  EXPECT_DOUBLE_EQ(interp.call("f", {})->number(), 1.0);
  // Reload with a changed algorithm — the paper's §3.6 hot-reload loop.
  ASSERT_TRUE(interp.load("runs += 1; func f() { return 2; }").is_ok());
  EXPECT_DOUBLE_EQ(interp.call("f", {})->number(), 2.0);
  EXPECT_DOUBLE_EQ(interp.global("runs")->number(), 1.0);
  EXPECT_TRUE(interp.has_function("f"));
  EXPECT_FALSE(interp.has_function("g"));
}

TEST(Interp, StepBudgetStopsRunawayLoops) {
  Interp interp(InterpOptions{.max_steps_per_call = 10000});
  ASSERT_TRUE(interp.load("func spin() { while (true) { } }").is_ok());
  const auto result = interp.call("spin", {});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Interp, RuntimeErrorsCarryLineNumbers) {
  const auto result = run("func main() {\n  let x = 1;\n  return x + nil;\n}", "main");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().message();
}

TEST(Interp, NativeFunctionsAndGlobals) {
  Interp interp;
  interp.register_native("answer", [](std::vector<Value>&) -> Result<Value> {
    return Value(42.0);
  });
  interp.set_global("offset", Value(0.5));
  ASSERT_TRUE(interp.load("func main() { return answer() + offset; }").is_ok());
  EXPECT_DOUBLE_EQ(interp.call("main", {})->number(), 42.5);
}

TEST(Stdlib, MathFunctions) {
  EXPECT_DOUBLE_EQ(run_num("func main() { return sqrt(16) + abs(-2) + pow(2, 5); }"), 38.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { return min(3, 7) + max(3, 7); }"), 10.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { return floor(2.7) + ceil(2.1); }"), 5.0);
  EXPECT_NEAR(run_num("func main() { return sin(PI / 2) + cos(0); }"), 2.0, 1e-12);
  EXPECT_NEAR(run_num("func main() { return log(exp(3)); }"), 3.0, 1e-12);
  EXPECT_NEAR(run_num("func main() { return atan2(1, 1); }"), 0.7853981634, 1e-9);
}

TEST(Stdlib, ListHelpers) {
  EXPECT_DOUBLE_EQ(run_num("func main() { return sum(range(5)); }"), 10.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { return sum(range(2, 5)); }"), 9.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { let xs = [3, 1, 2]; sort(xs); return xs[0] * 100 + xs[1] * 10 + xs[2]; }"), 123.0);
  EXPECT_DOUBLE_EQ(run_num("func main() { let xs = [1, 2]; return pop(xs) + len(xs); }"), 3.0);
}

TEST(Stdlib, StringHelpers) {
  auto s = run(R"(func main() { return upper(substr("higgs boson", 0, 5)); })", "main");
  ASSERT_TRUE(s.is_ok());
  EXPECT_EQ(s->string(), "HIGGS");
  EXPECT_DOUBLE_EQ(run_num(R"(func main() { if (contains("abcdef", "cde")) { return 1; } return 0; })"), 1.0);
  EXPECT_DOUBLE_EQ(run_num(R"(func main() { return num("2.5") * 2; })"), 5.0);
  EXPECT_FALSE(run(R"(func main() { return num("xyz"); })", "main").is_ok());
}

TEST(Stdlib, PrintIsCaptured) {
  Interp interp;
  ASSERT_TRUE(interp.load(R"(func main() { print("mass", 125.0); print("done"); })").is_ok());
  ASSERT_TRUE(interp.call("main", {}).is_ok());
  ASSERT_EQ(interp.output().size(), 2u);
  EXPECT_EQ(interp.output()[0], "mass 125");
  EXPECT_EQ(interp.output()[1], "done");
}

TEST(Interp, ElseIfChain) {
  const char* source = R"(
func grade(x) {
  if (x >= 90) { return "A"; }
  else if (x >= 80) { return "B"; }
  else { return "C"; }
})";
  EXPECT_EQ(run(source, "grade", {Value(95.0)})->string(), "A");
  EXPECT_EQ(run(source, "grade", {Value(85.0)})->string(), "B");
  EXPECT_EQ(run(source, "grade", {Value(55.0)})->string(), "C");
}

TEST(Interp, ReturnNilByDefault) {
  auto result = run("func f() { }", "f");
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result->is_nil());
}

}  // namespace
}  // namespace ipa::script
// (appended) recursion-depth protection: a runaway recursive script must
// fail with a Status instead of overflowing the worker's C++ stack.
namespace ipa::script {
namespace {

TEST(Interp, InfiniteRecursionIsRejected) {
  Interp interp;
  ASSERT_TRUE(interp.load("func f(n) { return f(n + 1); }").is_ok());
  const auto result = interp.call("f", {Value(0.0)});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("recursion"), std::string::npos);
  // The interpreter is still usable afterwards (depth counter unwound).
  ASSERT_TRUE(interp.load("func g() { return 7; }").is_ok());
  EXPECT_DOUBLE_EQ(interp.call("g", {})->number(), 7.0);
}

TEST(Interp, DeepButBoundedRecursionWorks) {
  Interp interp;
  ASSERT_TRUE(interp.load(R"(
func down(n) {
  if (n <= 0) { return 0; }
  return 1 + down(n - 1);
})").is_ok());
  auto result = interp.call("down", {Value(200.0)});
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_DOUBLE_EQ(result->number(), 200.0);
}

}  // namespace
}  // namespace ipa::script
