// Robustness sweeps: every parser and decoder that consumes bytes or text
// from a peer must reject arbitrary corruption with a Status — never crash,
// hang or over-allocate. These are deterministic random sweeps (seeded
// xoshiro), i.e. poor man's fuzzing wired into the normal test run.
#include <gtest/gtest.h>

#include "aida/tree.hpp"
#include "catalog/query.hpp"
#include "common/rng.hpp"
#include "common/uri.hpp"
#include "data/record.hpp"
#include "engine/code_bundle.hpp"
#include "http/http.hpp"
#include "script/parser.hpp"
#include "serialize/serialize.hpp"
#include "services/protocol.hpp"
#include "xml/xml.hpp"

namespace ipa {
namespace {

ser::Bytes random_bytes(Rng& rng, std::size_t max_len) {
  ser::Bytes out(static_cast<std::size_t>(rng.uniform_u64(0, max_len)));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
  return out;
}

std::string random_text(Rng& rng, std::size_t max_len, std::string_view alphabet) {
  std::string out;
  const std::size_t len = static_cast<std::size_t>(rng.uniform_u64(0, max_len));
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(alphabet[static_cast<std::size_t>(rng.uniform_u64(0, alphabet.size() - 1))]);
  }
  return out;
}

/// Flip/insert/delete a few bytes.
ser::Bytes mutate(Rng& rng, ser::Bytes bytes) {
  const int edits = 1 + static_cast<int>(rng.uniform_u64(0, 4));
  for (int e = 0; e < edits && !bytes.empty(); ++e) {
    const auto pos = static_cast<std::size_t>(rng.uniform_u64(0, bytes.size() - 1));
    switch (rng.uniform_u64(0, 2)) {
      case 0: bytes[pos] = static_cast<std::uint8_t>(rng.uniform_u64(0, 255)); break;
      case 1: bytes.erase(bytes.begin() + static_cast<long>(pos)); break;
      default:
        bytes.insert(bytes.begin() + static_cast<long>(pos),
                     static_cast<std::uint8_t>(rng.uniform_u64(0, 255)));
    }
  }
  return bytes;
}

TEST(Fuzz, TreeDeserializeSurvivesGarbage) {
  Rng rng(101);
  for (int trial = 0; trial < 2000; ++trial) {
    const ser::Bytes junk = random_bytes(rng, 256);
    auto tree = aida::Tree::deserialize(junk);  // must not crash
    if (tree.is_ok()) {
      // Extremely unlikely but legal (e.g. empty tree); must be usable.
      EXPECT_LE(tree->size(), 1000u);
    }
  }
}

TEST(Fuzz, TreeDeserializeSurvivesMutatedValidSnapshots) {
  Rng rng(103);
  aida::Tree tree;
  auto hist = aida::Histogram1D::create("h", 50, 0, 100);
  for (int i = 0; i < 100; ++i) hist->fill(rng.uniform(0, 100));
  tree.put("/a/b", std::move(*hist));
  tree.put("/t", aida::Tuple("t", {"x", "y"}));
  const ser::Bytes valid = tree.serialize();
  for (int trial = 0; trial < 2000; ++trial) {
    auto result = aida::Tree::deserialize(mutate(rng, valid));
    (void)result;  // any Status is fine; crashing is not
  }
}

TEST(Fuzz, RecordDecodeSurvivesMutations) {
  Rng rng(107);
  data::Record record(7);
  record.set("a", 1.5);
  record.set("b", "text");
  record.set("c", data::Value::RealVec{1, 2, 3});
  ser::Writer w;
  record.encode(w);
  for (int trial = 0; trial < 2000; ++trial) {
    const ser::Bytes bad = mutate(rng, w.data());
    ser::Reader r(bad);
    auto result = data::Record::decode(r);
    (void)result;
  }
}

TEST(Fuzz, ProtocolDecodersSurviveGarbage) {
  Rng rng(109);
  for (int trial = 0; trial < 2000; ++trial) {
    const ser::Bytes junk = random_bytes(rng, 128);
    (void)services::decode_push(junk);
    (void)services::decode_poll_response(junk);
    (void)services::decode_poll_request(junk);
    (void)services::decode_ready(junk);
    ser::Reader r(junk);
    (void)engine::CodeBundle::decode(r);
  }
}

TEST(Fuzz, XmlParserSurvivesRandomMarkup) {
  Rng rng(113);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string text = random_text(rng, 200, "<>/=\"'&;ab c\n\tx!-[]?");
    auto doc = xml::parse(text);
    if (doc.is_ok()) {
      // Whatever parsed must serialize and re-parse.
      EXPECT_TRUE(xml::parse(doc->to_string()).is_ok());
    }
  }
}

TEST(Fuzz, XmlRoundTripPreservesRandomContent) {
  Rng rng(127);
  for (int trial = 0; trial < 500; ++trial) {
    xml::Node node("root");
    node.set_text(random_text(rng, 60, "abc<>&\"' \n\t123"));
    node.set_attribute("attr", random_text(rng, 30, "xyz<>&\"'"));
    auto back = xml::parse(node.to_string());
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back->text(), node.text());
    EXPECT_EQ(back->attribute("attr"), node.attribute("attr"));
  }
}

TEST(Fuzz, HttpParserSurvivesRandomStreams) {
  Rng rng(131);
  for (int trial = 0; trial < 1000; ++trial) {
    http::RequestParser parser;
    parser.feed(random_text(rng, 300, "GET POST/ HTP1.\r\n:abc0123 \t"));
    http::Request out;
    for (int step = 0; step < 4; ++step) {
      auto got = parser.next(out);
      if (!got.is_ok() || !*got) break;
    }
  }
}

TEST(Fuzz, QueryParserSurvivesRandomExpressions) {
  Rng rng(137);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string text = random_text(rng, 80, "abc&|!=<>()'\"0129. _likeand");
    auto query = catalog::Query::parse(text);
    if (query.is_ok()) {
      (void)query->matches({{"a", "1"}, {"like", "x"}});
    }
  }
}

TEST(Fuzz, PawScriptParserSurvivesRandomSources) {
  Rng rng(139);
  for (int trial = 0; trial < 1500; ++trial) {
    const std::string source =
        random_text(rng, 120, "funcletifwhile(){};=+-*/%!<>&|\"' \nreturn0123abc,.[]");
    auto program = script::parse(source);
    (void)program;
  }
}

TEST(Fuzz, UriParserSurvivesRandomText) {
  Rng rng(149);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string text = random_text(rng, 60, "abc:/?&=.0129%#@ ");
    auto uri = Uri::parse(text);
    if (uri.is_ok()) {
      (void)Uri::parse(uri->to_string());
    }
  }
}

TEST(Fuzz, SerializeReaderNeverOverReads) {
  Rng rng(151);
  for (int trial = 0; trial < 3000; ++trial) {
    const ser::Bytes junk = random_bytes(rng, 64);
    ser::Reader r(junk);
    // Chain random reads; every failure must be a clean Status.
    for (int step = 0; step < 8; ++step) {
      switch (rng.uniform_u64(0, 5)) {
        case 0: (void)r.varint(); break;
        case 1: (void)r.string(); break;
        case 2: (void)r.f64(); break;
        case 3: (void)r.bytes(); break;
        case 4: (void)r.string_map(); break;
        default: (void)r.svarint(); break;
      }
    }
    EXPECT_LE(r.position(), junk.size());
  }
}

// Property: any Record survives encode->decode unchanged (randomized).
TEST(Property, RecordRoundTripRandomized) {
  Rng rng(157);
  for (int trial = 0; trial < 500; ++trial) {
    data::Record record(rng.next());
    const int fields = static_cast<int>(rng.uniform_u64(0, 8));
    for (int f = 0; f < fields; ++f) {
      const std::string name = "f" + std::to_string(f);
      switch (rng.uniform_u64(0, 3)) {
        case 0: record.set(name, rng.uniform(-1e12, 1e12)); break;
        case 1: record.set(name, static_cast<std::int64_t>(rng.next())); break;
        case 2: record.set(name, random_text(rng, 40, "abcdefg \n\0\xff")); break;
        default: {
          data::Value::RealVec vec(rng.uniform_u64(0, 12));
          for (double& x : vec) x = rng.normal(0, 1e6);
          record.set(name, std::move(vec));
        }
      }
    }
    ser::Writer w;
    record.encode(w);
    ser::Reader r(w.data());
    auto back = data::Record::decode(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(*back, record);
    EXPECT_TRUE(r.at_end());
  }
}

// Property: histogram merge is associative and commutative over random fills.
TEST(Property, HistogramMergeAssociativeCommutative) {
  Rng rng(163);
  for (int trial = 0; trial < 50; ++trial) {
    auto a = aida::Histogram1D::create("h", 20, 0, 1);
    auto b = aida::Histogram1D::create("h", 20, 0, 1);
    auto c = aida::Histogram1D::create("h", 20, 0, 1);
    for (int i = 0; i < 200; ++i) {
      a->fill(rng.uniform(), rng.uniform(0.1, 2.0));
      b->fill(rng.uniform(), rng.uniform(0.1, 2.0));
      c->fill(rng.uniform(), rng.uniform(0.1, 2.0));
    }
    // (a+b)+c vs a+(b+c)
    auto left = *a;
    ASSERT_TRUE(left.merge(*b).is_ok());
    ASSERT_TRUE(left.merge(*c).is_ok());
    auto bc = *b;
    ASSERT_TRUE(bc.merge(*c).is_ok());
    auto right = *a;
    ASSERT_TRUE(right.merge(bc).is_ok());
    for (int i = 0; i < 20; ++i) {
      EXPECT_NEAR(left.bin_height(i), right.bin_height(i), 1e-9);
    }
    // a+b vs b+a
    auto ab = *a;
    ASSERT_TRUE(ab.merge(*b).is_ok());
    auto ba = *b;
    ASSERT_TRUE(ba.merge(*a).is_ok());
    for (int i = 0; i < 20; ++i) {
      EXPECT_NEAR(ab.bin_height(i), ba.bin_height(i), 1e-9);
    }
  }
}

}  // namespace
}  // namespace ipa
