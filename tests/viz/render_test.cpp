#include "viz/render.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.hpp"
#include "xml/xml.hpp"

namespace ipa::viz {
namespace {

aida::Histogram1D gauss_hist(int bins = 40) {
  auto hist = aida::Histogram1D::create("test gauss", bins, -5, 5);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) hist->fill(rng.normal());
  return std::move(*hist);
}

TEST(Ascii, HistogramShowsBarsAndStats) {
  const std::string out = ascii_histogram(gauss_hist());
  EXPECT_NE(out.find("test gauss"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("entries=5000"), std::string::npos);
  EXPECT_NE(out.find("mean="), std::string::npos);
  // One row per (possibly rebinned) bin plus title and stats.
  const auto lines = std::count(out.begin(), out.end(), '\n');
  EXPECT_GE(lines, 10);
}

TEST(Ascii, RebinsWideHistograms) {
  auto hist = aida::Histogram1D::create("wide", 500, 0, 1);
  hist->fill(0.5);
  const std::string out = ascii_histogram(*hist, {.width = 40, .max_rows = 20, .show_stats = false});
  const auto lines = std::count(out.begin(), out.end(), '\n');
  EXPECT_LE(lines, 22);
}

TEST(Ascii, EmptyHistogramIsSafe) {
  auto hist = aida::Histogram1D::create("empty", 10, 0, 1);
  const std::string out = ascii_histogram(*hist);
  EXPECT_NE(out.find("entries=0"), std::string::npos);
}

TEST(Ascii, HeatmapRendersGrid) {
  auto hist = aida::Histogram2D::create("map", 20, 0, 1, 20, 0, 1);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) hist->fill(rng.uniform(), rng.uniform());
  const std::string out = ascii_heatmap(*hist);
  EXPECT_NE(out.find("map"), std::string::npos);
  EXPECT_NE(out.find("entries=2000"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(Ascii, ProgressBar) {
  EXPECT_EQ(ascii_progress(0, 100, 10), "[..........]   0.0% 0/100");
  EXPECT_EQ(ascii_progress(50, 100, 10), "[#####.....]  50.0% 50/100");
  EXPECT_EQ(ascii_progress(100, 100, 10), "[##########] 100.0% 100/100");
  // Degenerate totals do not divide by zero.
  EXPECT_NE(ascii_progress(5, 0, 10).find("0.0%"), std::string::npos);
}

TEST(Svg, HistogramIsWellFormedXml) {
  const std::string svg = svg_histogram(gauss_hist());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("test gauss"), std::string::npos);
  // Must parse as XML (proves escaping and nesting are correct).
  const auto doc = xml::parse(svg);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  EXPECT_EQ(doc->name(), "svg");
}

TEST(Svg, TitleIsEscaped) {
  auto hist = aida::Histogram1D::create("mass < 125 & \"tag\"", 5, 0, 1);
  hist->fill(0.5);
  const std::string svg = svg_histogram(*hist);
  EXPECT_TRUE(xml::parse(svg).is_ok());
}

TEST(Svg, ProfileRendersPointsWithErrors) {
  auto profile = aida::Profile1D::create("prof", 10, 0, 10);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 10);
    profile->fill(x, x + rng.normal(0, 0.5));
  }
  const std::string svg = svg_profile(*profile);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_TRUE(xml::parse(svg).is_ok());
}

TEST(Svg, ExportTreeWritesFiles) {
  const auto dir = std::filesystem::temp_directory_path() / "ipa-viz-export";
  std::filesystem::remove_all(dir);

  aida::Tree tree;
  tree.put("/higgs/mass", gauss_hist());
  tree.put("/qc/ntrk", gauss_hist());
  tree.put("/raw/tuple", aida::Tuple("t", {"x"}));  // skipped (not 1-D hist)

  auto written = export_tree_svg(tree, dir.string());
  ASSERT_TRUE(written.is_ok()) << written.status().to_string();
  EXPECT_EQ(*written, 2);
  EXPECT_TRUE(std::filesystem::exists(dir / "higgs_mass.svg"));
  EXPECT_TRUE(std::filesystem::exists(dir / "qc_ntrk.svg"));
  std::filesystem::remove_all(dir);
}

TEST(Svg, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(write_file("/nonexistent-dir/x.svg", "content").is_ok());
}

}  // namespace
}  // namespace ipa::viz
