#include "viz/chart.hpp"

#include <gtest/gtest.h>

#include "xml/xml.hpp"

namespace ipa::viz {
namespace {

Series make_series(const std::string& label, std::initializer_list<double> xs,
                   std::initializer_list<double> ys) {
  Series s;
  s.label = label;
  s.xs = xs;
  s.ys = ys;
  return s;
}

TEST(Chart, RendersWellFormedSvg) {
  const std::vector<Series> series = {
      make_series("local", {1, 10, 100}, {11.5, 115, 1150}),
      make_series("grid", {1, 10, 100}, {120, 170, 680}),
  };
  ChartOptions options;
  options.title = "T vs X";
  options.x_label = "X [MB]";
  options.y_label = "time [s]";
  auto svg = svg_line_chart(series, options);
  ASSERT_TRUE(svg.is_ok()) << svg.status().to_string();
  EXPECT_NE(svg->find("<polyline"), std::string::npos);
  EXPECT_NE(svg->find("local"), std::string::npos);
  EXPECT_NE(svg->find("grid"), std::string::npos);
  EXPECT_NE(svg->find("X [MB]"), std::string::npos);
  const auto doc = xml::parse(*svg);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  EXPECT_EQ(doc->name(), "svg");
}

TEST(Chart, LogAxes) {
  const std::vector<Series> series = {
      make_series("s", {1, 10, 100, 1000}, {1, 100, 10000, 1000000}),
  };
  ChartOptions options;
  options.log_x = true;
  options.log_y = true;
  auto svg = svg_line_chart(series, options);
  ASSERT_TRUE(svg.is_ok());
  EXPECT_TRUE(xml::parse(*svg).is_ok());
}

TEST(Chart, RejectsBadInput) {
  EXPECT_FALSE(svg_line_chart({}, {}).is_ok());

  Series mismatched = make_series("m", {1, 2}, {1});
  EXPECT_FALSE(svg_line_chart({mismatched}, {}).is_ok());

  Series empty = make_series("e", {}, {});
  EXPECT_FALSE(svg_line_chart({empty}, {}).is_ok());

  Series negative = make_series("n", {-1, 2}, {1, 2});
  ChartOptions log_opts;
  log_opts.log_x = true;
  EXPECT_FALSE(svg_line_chart({negative}, log_opts).is_ok());
}

TEST(Chart, EscapesLabels) {
  const std::vector<Series> series = {
      make_series("a < b & \"c\"", {1, 2}, {1, 2}),
  };
  ChartOptions options;
  options.title = "T<sub> & more";
  auto svg = svg_line_chart(series, options);
  ASSERT_TRUE(svg.is_ok());
  EXPECT_TRUE(xml::parse(*svg).is_ok());
}

TEST(Chart, SingleFlatSeriesDoesNotDivideByZero) {
  const std::vector<Series> series = {make_series("flat", {5}, {7})};
  auto svg = svg_line_chart(series, {});
  ASSERT_TRUE(svg.is_ok());
  EXPECT_TRUE(xml::parse(*svg).is_ok());
}

TEST(Chart, CustomColorsRespected) {
  std::vector<Series> series = {make_series("c", {1, 2}, {1, 2})};
  series[0].color = "#123456";
  auto svg = svg_line_chart(series, {});
  ASSERT_TRUE(svg.is_ok());
  EXPECT_NE(svg->find("#123456"), std::string::npos);
}

}  // namespace
}  // namespace ipa::viz
