// Connection multiplexing: many in-flight calls share one TCP stream, each
// tagged with its call id. These cases pin down the demux contract — slow
// calls never serialize fast ones, an abandoned attempt leaves the
// connection (and everyone else's calls) intact, and dispatch saturation
// rejects the offending call without poisoning the stream.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/worker_pool.hpp"
#include "obs/metrics.hpp"
#include "rpc/rpc.hpp"

namespace ipa::rpc {
namespace {

Uri tcp_endpoint() {
  Uri uri;
  uri.scheme = "tcp";
  uri.host = "127.0.0.1";
  uri.port = 0;
  return uri;
}

ser::Bytes payload_of(std::string_view s) { return ser::Bytes(s.begin(), s.end()); }

/// "echo" returns its payload; "nap" sleeps for the payload's value in
/// milliseconds first. Both idempotent, so retry paths stay available.
std::shared_ptr<Service> make_mux_service(std::atomic<int>* executions = nullptr) {
  auto service = std::make_shared<Service>("Mux");
  service->register_method(
      "echo",
      [executions](const CallContext&, const ser::Bytes& in) {
        if (executions != nullptr) ++*executions;
        return Result<ser::Bytes>(in);
      },
      /*idempotent=*/true);
  service->register_method(
      "nap",
      [executions](const CallContext&, const ser::Bytes& in) {
        if (executions != nullptr) ++*executions;
        const int ms = std::stoi(std::string(in.begin(), in.end()));
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        return Result<ser::Bytes>(in);
      },
      /*idempotent=*/true);
  return service;
}

TEST(RpcMux, ConcurrentCallsShareOneConnection) {
  auto& dialed = obs::Registry::global().counter("ipa_server_connections_total",
                                                 {{"server", "rpc"}});
  const auto dialed_before = dialed.value();

  RpcServer server(tcp_endpoint());
  server.add_service(make_mux_service());
  ASSERT_TRUE(server.start().is_ok());

  auto client = RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();

  std::atomic<int> ok{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 20; ++i) {
          const std::string msg = "t" + std::to_string(t) + "-" + std::to_string(i);
          auto reply = client->call("Mux", "echo", payload_of(msg), "", 10.0);
          if (reply.is_ok() && *reply == payload_of(msg)) ++ok;
        }
      });
    }
  }
  EXPECT_EQ(ok.load(), 160);
  EXPECT_EQ(client->stats().reconnects, 0u);
  EXPECT_EQ(dialed.value(), dialed_before + 1) << "mux client re-dialed";
  EXPECT_EQ(server.active_connections(), 1u);
  server.stop();
}

TEST(RpcMux, SlowCallDoesNotSerializeFastCalls) {
  RpcServer server(tcp_endpoint());
  server.add_service(make_mux_service());
  ASSERT_TRUE(server.start().is_ok());

  auto client = RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok());

  std::atomic<bool> slow_done{false};
  std::atomic<bool> fast_finished_first{false};
  std::jthread slow([&] {
    auto reply = client->call("Mux", "nap", payload_of("400"), "", 10.0);
    EXPECT_TRUE(reply.is_ok()) << reply.status().to_string();
    slow_done = true;
  });
  // Give the slow call time to hit the wire and occupy a worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto fast = client->call("Mux", "echo", payload_of("quick"), "", 10.0);
  ASSERT_TRUE(fast.is_ok()) << fast.status().to_string();
  fast_finished_first = !slow_done.load();
  slow.join();
  EXPECT_TRUE(fast_finished_first.load())
      << "fast call waited behind the 400ms call on the shared connection";
  server.stop();
}

TEST(RpcMux, AbandonedAttemptLeavesOtherCallsAndConnectionIntact) {
  RpcServer server(tcp_endpoint());
  std::atomic<int> executions{0};
  server.add_service(make_mux_service(&executions));
  ASSERT_TRUE(server.start().is_ok());

  auto client = RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok());

  std::jthread background([&] {
    auto reply = client->call("Mux", "nap", payload_of("300"), "", 10.0);
    EXPECT_TRUE(reply.is_ok()) << reply.status().to_string();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // This call's deadline expires while the server still naps on it. Only its
  // own slot may be abandoned: no reconnect, no collateral failure, and the
  // stale reply that arrives later must be dropped silently.
  auto timed_out = client->call("Mux", "nap", payload_of("500"), "", 0.1);
  ASSERT_FALSE(timed_out.is_ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded)
      << timed_out.status().to_string();

  background.join();
  auto after = client->call("Mux", "echo", payload_of("still here"), "", 5.0);
  ASSERT_TRUE(after.is_ok()) << after.status().to_string();
  EXPECT_EQ(client->stats().reconnects, 0u)
      << "attempt timeout must not tear down the shared connection";
  server.stop();
}

TEST(RpcMux, DispatchSaturationRejectsOnlyTheOffendingCall) {
  net::ServerPoolOptions pool;
  pool.max_workers = 1;
  pool.queue_capacity = 1;
  RpcServer server(tcp_endpoint(), pool);
  server.add_service(make_mux_service());
  ASSERT_TRUE(server.start().is_ok());

  RetryPolicy no_retry;
  no_retry.max_attempts = 1;
  auto client = RpcClient::connect(server.endpoint(), 5.0, no_retry);
  ASSERT_TRUE(client.is_ok());

  std::atomic<int> ok{0}, exhausted{0}, other{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&] {
        auto reply = client->call("Mux", "nap", payload_of("150"), "", 10.0);
        if (reply.is_ok()) {
          ++ok;
        } else if (reply.status().code() == StatusCode::kResourceExhausted) {
          ++exhausted;
        } else {
          ++other;
        }
      });
    }
  }
  // One worker plus one queue slot: of six bursts at least one must be
  // served and at least one shed with the frame-tagged rejection.
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(exhausted.load(), 1);
  EXPECT_EQ(other.load(), 0);

  // The rejection is per-call: the stream stays healthy for the next one.
  auto after = client->call("Mux", "echo", payload_of("recovered"), "", 5.0);
  EXPECT_TRUE(after.is_ok()) << after.status().to_string();
  EXPECT_EQ(client->stats().reconnects, 0u);
  server.stop();
}

TEST(RpcMux, IdleMuxConnectionIsReaped) {
  net::ServerPoolOptions pool;
  pool.idle_timeout_s = 0.25;
  RpcServer server(tcp_endpoint(), pool);
  server.add_service(make_mux_service());
  ASSERT_TRUE(server.start().is_ok());

  auto client = RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(client->call("Mux", "echo", payload_of("hi"), "", 5.0).is_ok());
  EXPECT_EQ(server.active_connections(), 1u);

  // Stay silent past the idle window: the server must reap the connection.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.active_connections() != 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.active_connections(), 0u);

  // The client notices on its next call and transparently re-dials.
  auto after = client->call("Mux", "echo", payload_of("back"), "", 5.0);
  EXPECT_TRUE(after.is_ok()) << after.status().to_string();
  EXPECT_GE(client->stats().reconnects, 1u);
  server.stop();
}

}  // namespace
}  // namespace ipa::rpc
