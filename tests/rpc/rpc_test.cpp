#include "rpc/rpc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>

namespace ipa::rpc {
namespace {

Uri inproc_endpoint(const std::string& tag) {
  static std::atomic<int> counter{0};
  Uri uri;
  uri.scheme = "inproc";
  uri.host = "rpc-" + tag + "-" + std::to_string(counter.fetch_add(1));
  return uri;
}

ser::Bytes payload_of(std::string_view s) { return ser::Bytes(s.begin(), s.end()); }

std::shared_ptr<Service> make_echo_service() {
  auto service = std::make_shared<Service>("Echo");
  service->register_method("echo", [](const CallContext&, const ser::Bytes& in) {
    return Result<ser::Bytes>(in);
  });
  service->register_method("fail", [](const CallContext&, const ser::Bytes&) {
    return Result<ser::Bytes>(failed_precondition("engine not staged"));
  });
  service->register_method("context", [](const CallContext& ctx, const ser::Bytes&) {
    ser::Writer w;
    w.string(ctx.service);
    w.string(ctx.method);
    w.string(ctx.resource);
    w.string(ctx.principal);
    return Result<ser::Bytes>(std::move(w).take());
  });
  return service;
}

TEST(Rpc, EchoCall) {
  RpcServer server(inproc_endpoint("echo"));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());

  auto client = RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok());
  auto reply = client->call("Echo", "echo", payload_of("hello grid"));
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(*reply, payload_of("hello grid"));
  server.stop();
}

TEST(Rpc, RemoteErrorKeepsCodeAndMessage) {
  RpcServer server(inproc_endpoint("err"));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());

  auto client = RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok());
  const auto reply = client->call("Echo", "fail", {});
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(reply.status().message(), "engine not staged");
  server.stop();
}

TEST(Rpc, UnknownServiceAndMethod) {
  RpcServer server(inproc_endpoint("unk"));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());

  auto client = RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok());
  EXPECT_EQ(client->call("Nope", "echo", {}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client->call("Echo", "nope", {}).status().code(), StatusCode::kUnimplemented);
  server.stop();
}

TEST(Rpc, ResourceIdReachesContext) {
  RpcServer server(inproc_endpoint("res"));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());

  auto client = RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok());
  auto reply = client->call("Echo", "context", {}, "sess-42");
  ASSERT_TRUE(reply.is_ok());
  ser::Reader r(*reply);
  EXPECT_EQ(r.string().value(), "Echo");
  EXPECT_EQ(r.string().value(), "context");
  EXPECT_EQ(r.string().value(), "sess-42");
  server.stop();
}

TEST(Rpc, AuthRequiredServiceRejectsBadToken) {
  RpcServer server(inproc_endpoint("auth"));
  auto service = std::make_shared<Service>("Secure", /*require_auth=*/true);
  service->register_method("whoami", [](const CallContext& ctx, const ser::Bytes&) {
    ser::Writer w;
    w.string(ctx.principal);
    return Result<ser::Bytes>(std::move(w).take());
  });
  server.add_service(std::move(service));
  server.set_auth([](const std::string& token) -> Result<std::string> {
    if (token == "valid-token") return std::string("alice");
    return unauthenticated("bad token");
  });
  ASSERT_TRUE(server.start().is_ok());

  auto client = RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok());

  EXPECT_EQ(client->call("Secure", "whoami", {}).status().code(),
            StatusCode::kUnauthenticated);

  client->set_auth_token("valid-token");
  auto reply = client->call("Secure", "whoami", {});
  ASSERT_TRUE(reply.is_ok());
  ser::Reader r(*reply);
  EXPECT_EQ(r.string().value(), "alice");
  server.stop();
}

TEST(Rpc, AuthNotRequiredSkipsHook) {
  RpcServer server(inproc_endpoint("noauth"));
  server.add_service(make_echo_service());
  server.set_auth([](const std::string&) -> Result<std::string> {
    return unauthenticated("always deny");
  });
  ASSERT_TRUE(server.start().is_ok());
  auto client = RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok());
  EXPECT_TRUE(client->call("Echo", "echo", payload_of("x")).is_ok());
  server.stop();
}

TEST(Rpc, SequentialCallsOnOneConnection) {
  RpcServer server(inproc_endpoint("seq"));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());
  auto client = RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok());
  for (int i = 0; i < 50; ++i) {
    const std::string msg = "call-" + std::to_string(i);
    auto reply = client->call("Echo", "echo", payload_of(msg));
    ASSERT_TRUE(reply.is_ok());
    EXPECT_EQ(*reply, payload_of(msg));
  }
  server.stop();
}

TEST(Rpc, ManyConcurrentClients) {
  RpcServer server(inproc_endpoint("conc"));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());

  std::atomic<int> ok{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&, t] {
        auto client = RpcClient::connect(server.endpoint());
        if (!client.is_ok()) return;
        for (int i = 0; i < 20; ++i) {
          const std::string msg = "t" + std::to_string(t) + "-" + std::to_string(i);
          auto reply = client->call("Echo", "echo", payload_of(msg));
          if (reply.is_ok() && *reply == payload_of(msg)) ++ok;
        }
      });
    }
  }
  EXPECT_EQ(ok.load(), 6 * 20);
  server.stop();
}

TEST(Rpc, WorksOverTcp) {
  Uri uri;
  uri.scheme = "tcp";
  uri.host = "127.0.0.1";
  uri.port = 0;
  RpcServer server(uri);
  server.add_service(make_echo_service());
  auto bound = server.start();
  ASSERT_TRUE(bound.is_ok());
  ASSERT_GT(bound->port, 0);

  auto client = RpcClient::connect(*bound);
  ASSERT_TRUE(client.is_ok());
  auto reply = client->call("Echo", "echo", payload_of("over tcp"));
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(*reply, payload_of("over tcp"));
  server.stop();
}

TEST(Rpc, StopUnblocksAndRejectsFurtherCalls) {
  RpcServer server(inproc_endpoint("stop"));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());
  auto client = RpcClient::connect(server.endpoint());
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(client->call("Echo", "echo", payload_of("x")).is_ok());
  server.stop();
  const auto after = client->call("Echo", "echo", payload_of("y"), "", 1.0);
  EXPECT_FALSE(after.is_ok());
}

// --- retry / backoff -------------------------------------------------------

Uri chaos_inproc_endpoint(const std::string& tag,
                          std::map<std::string, std::string> query) {
  Uri uri = inproc_endpoint(tag);
  uri.scheme = "chaos+inproc";
  uri.query = std::move(query);
  return uri;
}

RetryPolicy fast_retry_policy(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff_s = 0.001;
  policy.max_backoff_s = 0.01;
  policy.attempt_timeout_s = 0.1;
  return policy;
}

/// Service with one idempotent and one non-idempotent counting method.
std::shared_ptr<Service> make_counting_service(std::atomic<int>& idem,
                                               std::atomic<int>& mutating) {
  auto service = std::make_shared<Service>("Counter");
  service->register_method(
      "get",
      [&idem](const CallContext&, const ser::Bytes& in) {
        ++idem;
        return Result<ser::Bytes>(in);
      },
      /*idempotent=*/true);
  service->register_method("put", [&mutating](const CallContext&, const ser::Bytes& in) {
    ++mutating;
    return Result<ser::Bytes>(in);
  });
  return service;
}

TEST(RpcRetry, IdempotentCallRetriesAndExecutesExactlyOnce) {
  // The first connection dies on its first send: the request never reaches
  // the server, so the retry must not cause a duplicate execution.
  std::atomic<int> idem{0}, mutating{0};
  RpcServer server(chaos_inproc_endpoint("retry-idem", {{"fail_first", "1"}}));
  server.add_service(make_counting_service(idem, mutating));
  ASSERT_TRUE(server.start().is_ok());

  auto client = RpcClient::connect(server.endpoint(), 5.0, fast_retry_policy(4));
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  auto reply = client->call("Counter", "get", payload_of("g"), "", 5.0);
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(idem.load(), 1);
  EXPECT_GE(client->stats().retries, 1u);
  EXPECT_GE(client->stats().reconnects, 1u);
  server.stop();
}

TEST(RpcRetry, NonIdempotentCallFailsFastWithoutExecuting) {
  std::atomic<int> idem{0}, mutating{0};
  RpcServer server(chaos_inproc_endpoint("retry-mut", {{"fail_first", "1"}}));
  server.add_service(make_counting_service(idem, mutating));
  ASSERT_TRUE(server.start().is_ok());

  auto client = RpcClient::connect(server.endpoint(), 5.0, fast_retry_policy(4));
  ASSERT_TRUE(client.is_ok());
  const auto reply = client->call("Counter", "put", payload_of("p"), "", 5.0);
  // A transport failure on a mutating method must surface, not retry: the
  // caller cannot know whether the server acted.
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(mutating.load(), 0);
  EXPECT_EQ(client->stats().retries, 0u);

  // The client recovers: the same (non-idempotent) call succeeds on the
  // next, healthy connection, exactly once.
  auto again = client->call("Counter", "put", payload_of("p"), "", 5.0);
  ASSERT_TRUE(again.is_ok()) << again.status().to_string();
  EXPECT_EQ(mutating.load(), 1);
  server.stop();
}

TEST(RpcRetry, RemoteErrorsAreNotRetried) {
  RpcServer server(inproc_endpoint("noretry-err"));
  std::atomic<int> calls{0};
  auto service = std::make_shared<Service>("Flaky");
  service->register_method(
      "always_fails",
      [&calls](const CallContext&, const ser::Bytes&) {
        ++calls;
        return Result<ser::Bytes>(failed_precondition("not staged"));
      },
      /*idempotent=*/true);
  server.add_service(std::move(service));
  ASSERT_TRUE(server.start().is_ok());

  auto client = RpcClient::connect(server.endpoint(), 5.0, fast_retry_policy(4));
  ASSERT_TRUE(client.is_ok());
  const auto reply = client->call("Flaky", "always_fails", {}, "", 5.0);
  // A well-formed remote error is an answer, not a transport failure.
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(client->stats().retries, 0u);
  server.stop();
}

TEST(RpcRetry, DeadlineExpiresDuringBackoff) {
  // Every connection's first send dies, so attempts keep failing; the call
  // deadline lands mid-backoff and must surface as kDeadlineExceeded well
  // before the 50 attempts are spent.
  std::atomic<int> idem{0}, mutating{0};
  RpcServer server(chaos_inproc_endpoint("deadline", {{"fail_first", "1000"}}));
  server.add_service(make_counting_service(idem, mutating));
  ASSERT_TRUE(server.start().is_ok());

  RetryPolicy policy = fast_retry_policy(50);
  policy.initial_backoff_s = 0.05;
  policy.backoff_multiplier = 2.0;
  auto client = RpcClient::connect(server.endpoint(), 5.0, policy);
  ASSERT_TRUE(client.is_ok());

  const auto start = std::chrono::steady_clock::now();
  const auto reply = client->call("Counter", "get", payload_of("g"), "", 0.15);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  // Respected the call deadline, give or take scheduling: nowhere near the
  // time 50 spent attempts would take.
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  EXPECT_EQ(idem.load(), 0);
  EXPECT_GE(client->stats().giveups, 1u);
  server.stop();
}

TEST(RpcRetry, ClosedClientRefusesCalls) {
  RpcServer server(inproc_endpoint("closed"));
  server.add_service(make_echo_service());
  ASSERT_TRUE(server.start().is_ok());
  auto client = RpcClient::connect(server.endpoint(), 5.0, fast_retry_policy(4));
  ASSERT_TRUE(client.is_ok());
  client->close();
  // close() is permanent — no reconnect, unlike a dropped connection.
  EXPECT_EQ(client->call("Echo", "echo", payload_of("x"), "", 1.0).status().code(),
            StatusCode::kUnavailable);
  server.stop();
}

TEST(ResourceSet, CreateFindDestroy) {
  ResourceSet<std::string> set;
  const std::string id = set.create(std::make_shared<std::string>("state"), "sess");
  EXPECT_TRUE(id.rfind("sess-", 0) == 0);
  auto found = set.find(id);
  ASSERT_TRUE(found.is_ok());
  EXPECT_EQ(**found, "state");
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.destroy(id));
  EXPECT_FALSE(set.destroy(id));
  EXPECT_EQ(set.find(id).status().code(), StatusCode::kNotFound);
}

TEST(ResourceSet, IdsListsAll) {
  ResourceSet<int> set;
  const std::string a = set.create(std::make_shared<int>(1));
  const std::string b = set.create(std::make_shared<int>(2));
  const auto ids = set.ids();
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_TRUE((ids[0] == a && ids[1] == b) || (ids[0] == b && ids[1] == a));
}

}  // namespace
}  // namespace ipa::rpc
