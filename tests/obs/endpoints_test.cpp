// End-to-end observability: a real manager + client session, then the
// /metrics and /status endpoints and the global span ring are checked for
// the paper's six phases (locate, split, transfer, code_stage, run, merge)
// with consistent parent/child span links.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "client/grid_client.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"
#include "http/http.hpp"
#include "loadgen/promparse.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "services/manager.hpp"

namespace ipa {
namespace {

const char* kScript = R"(
func begin(tree) { tree.book_h1("/mass", 50, 0, 200); }
func process(event, tree) { tree.fill("/mass", event.num("mass")); }
)";

/// Crude extractor for `"key":<number>` in the /status JSON body.
double json_number(const std::string& body, const std::string& key, std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle, from);
  if (at == std::string::npos) return -1.0;
  return std::strtod(body.c_str() + at + needle.size(), nullptr);
}

class ObsEndpointsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ipa-obs-" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::create_directories(dir_);

    Rng rng(42);
    std::vector<data::Record> records;
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      data::Record record(i);
      record.set("mass", rng.uniform(0.0, 200.0));
      records.push_back(std::move(record));
    }
    const std::string path = (dir_ / "data.ipd").string();
    ASSERT_TRUE(data::write_dataset(path, "data", records).is_ok());

    services::ManagerConfig config;
    config.staging_dir = (dir_ / "staging").string();
    config.engine_config.snapshot_every = 200;
    // Retain every completed span as a "slow op" so GET /debug/slow is
    // deterministically non-empty.
    config.slow_op_threshold_s = 0;
    auto manager = services::ManagerNode::start(std::move(config));
    ASSERT_TRUE(manager.is_ok()) << manager.status().to_string();
    manager_ = std::move(*manager);
    ASSERT_TRUE(
        manager_->publish_dataset("obs/2006/data", "ds-obs", {{"experiment", "OBS"}}, path)
            .is_ok());
    const std::string base = manager_->authority().issue("cn=alice", {"analysis"}, 3600);
    auto proxy = client::make_proxy(manager_->authority(), base);
    ASSERT_TRUE(proxy.is_ok());
    proxy_ = *proxy;
  }

  void TearDown() override {
    manager_->stop();
    manager_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Drive a full stage -> run -> merge session; returns its id.
  std::string run_full_session() {
    auto client = client::GridClient::connect(manager_->soap_endpoint(), proxy_);
    EXPECT_TRUE(client.is_ok());
    auto session = client->create_session(2);
    EXPECT_TRUE(session.is_ok()) << session.status().to_string();
    EXPECT_TRUE(session->activate().is_ok());
    EXPECT_TRUE(session->select_dataset("ds-obs").is_ok());
    EXPECT_TRUE(session->stage_script("obs", kScript).is_ok());
    auto tree = session->run_to_completion(60.0);
    EXPECT_TRUE(tree.is_ok()) << tree.status().to_string();
    const std::string id = session->info().session_id;
    // The run phase closes asynchronously when the last terminal push lands;
    // the client's final poll can race ahead of it by a beat.
    wait_for_run_phase(id);
    // Keep the session open: /status only reports live sessions.
    session_ = std::make_unique<client::GridSession>(std::move(*session));
    return id;
  }

  void wait_for_run_phase(const std::string& session_id) {
    for (int i = 0; i < 1000; ++i) {
      const auto spans = obs::SpanRing::global().snapshot_session(session_id);
      for (const auto& span : spans) {
        if (span.name == "run") return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    FAIL() << "run phase never completed for " << session_id;
  }

  http::Response get(const std::string& target) {
    const Uri endpoint = manager_->soap_endpoint();
    auto conn = http::Client::connect(endpoint.host, endpoint.port);
    EXPECT_TRUE(conn.is_ok()) << conn.status().to_string();
    auto response = conn->get(target);
    EXPECT_TRUE(response.is_ok()) << response.status().to_string();
    return response.is_ok() ? std::move(*response) : http::Response{};
  }

  static constexpr std::uint64_t kRecords = 1000;
  std::filesystem::path dir_;
  std::unique_ptr<services::ManagerNode> manager_;
  std::unique_ptr<client::GridSession> session_;
  std::string proxy_;
};

/// Provably contend one ranked mutex: a holder thread takes it, signals and
/// keeps it for 10ms while this thread blocks on lock(). Thread fights don't
/// work on a single-core runner (each loop fits in one scheduler quantum),
/// this does. Retries cover the one hole — this thread descheduled for the
/// whole hold window.
void force_lock_contention(LockRank rank, const char* name) {
  const auto contended_for = [rank] {
    std::uint64_t out = 0;
    for (const LockContention& entry : lock_contention_snapshot()) {
      if (entry.rank == rank) out = entry.contended;
    }
    return out;
  };
  const std::uint64_t before = contended_for();
  Mutex mutex(rank, name);
  for (int round = 0; round < 50 && contended_for() == before; ++round) {
    std::atomic<bool> held{false};
    std::thread holder([&] {
      LockGuard lock(mutex);
      held.store(true, std::memory_order_release);
      // Holding across the sleep is the point. ipa-lint: allow(blocking-under-lock)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    });
    while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
    { LockGuard lock(mutex); }  // blocks behind the sleeping holder
    holder.join();
  }
  ASSERT_GT(contended_for(), before) << "never managed to contend " << name;
}

constexpr const char* kPhases[6] = {"locate", "split",
                                    "transfer", "code_stage",
                                    "run", "merge"};

TEST_F(ObsEndpointsTest, MetricsEndpointServesAllSixPhases) {
  run_full_session();
  // Deterministic lock contention so the exporter has something to fold in
  // (a session races plenty, but not provably on a fast machine).
  force_lock_contention(LockRank::kLoadStats, "metrics-probe");
  const http::Response response = get("/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.header_or("content-type").find("version=0.0.4"), std::string::npos);

  // Every ScenarioTimings phase shows up as a live histogram series with at
  // least one observation.
  for (const char* phase : kPhases) {
    const std::string count_line =
        "ipa_session_phase_seconds_count{phase=\"" + std::string(phase) + "\"}";
    const std::size_t at = response.body.find(count_line);
    ASSERT_NE(at, std::string::npos) << "missing phase series: " << phase;
    const double count =
        std::strtod(response.body.c_str() + at + count_line.size(), nullptr);
    EXPECT_GE(count, 1.0) << phase;
    EXPECT_NE(response.body.find("ipa_session_phase_seconds_bucket{phase=\"" +
                                 std::string(phase) + "\",le=\""),
              std::string::npos)
        << phase;
  }

  // The layers underneath reported too.
  EXPECT_NE(response.body.find("ipa_engine_records_processed_total"), std::string::npos);
  EXPECT_NE(response.body.find("ipa_rpc_attempts_total"), std::string::npos);
  EXPECT_NE(response.body.find("ipa_http_requests_total"), std::string::npos);
  EXPECT_NE(response.body.find("ipa_aida_merge_seconds"), std::string::npos);
  EXPECT_NE(response.body.find("ipa_log_lines_total"), std::string::npos);

  // Bounded-server pool gauges exist per server kind even when nothing ever
  // queued or overflowed (the series are created with the pool).
  EXPECT_NE(response.body.find("ipa_server_accept_queue_depth{server=\"http\"}"),
            std::string::npos);
  EXPECT_NE(response.body.find("ipa_server_accept_queue_depth{server=\"rpc\"}"),
            std::string::npos);
  EXPECT_NE(response.body.find("ipa_server_overflow_total{server=\"http\"}"),
            std::string::npos);
  EXPECT_NE(response.body.find("ipa_server_overflow_total{server=\"rpc\"}"),
            std::string::npos);
  // Queue-delay histograms record every dispatched item.
  EXPECT_NE(response.body.find("ipa_server_queue_delay_seconds_count{server=\"http\"}"),
            std::string::npos);
  EXPECT_NE(response.body.find("ipa_server_queue_delay_seconds_count{server=\"rpc\"}"),
            std::string::npos);

  // Build identity: one series, value 1, all three labels (values vary by
  // build, the label set must not).
  const std::size_t build_at = response.body.find("ipa_build_info{");
  ASSERT_NE(build_at, std::string::npos);
  const std::string build_line =
      response.body.substr(build_at, response.body.find('\n', build_at) - build_at);
  EXPECT_NE(build_line.find("build_type=\""), std::string::npos);
  EXPECT_NE(build_line.find("git_sha=\""), std::string::npos);
  EXPECT_NE(build_line.find("version=\""), std::string::npos);
  EXPECT_NE(build_line.find("} 1"), std::string::npos) << build_line;

  // The contention exporter folded lock stats in during this scrape (a full
  // session contends at least something; the families must exist).
  EXPECT_NE(response.body.find("ipa_lock_wait_seconds"), std::string::npos);
}

TEST_F(ObsEndpointsTest, StatusEndpointReportsPhaseBreakdown) {
  const std::string id = run_full_session();
  const http::Response response = get("/status?session=" + id);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.header_or("content-type").find("application/json"), std::string::npos);
  EXPECT_NE(response.body.find("\"id\":\"" + id + "\""), std::string::npos);

  double sum = 0;
  for (const char* phase : kPhases) {
    const double value = json_number(response.body, phase);
    EXPECT_GT(value, 0.0) << "phase " << phase << " has no recorded duration";
    sum += value;
  }
  const double total = json_number(response.body, "total");
  // Each phase (and the total) is rendered with %.6f, so the six rounded
  // addends can drift from the rounded total by up to 3.5e-6.
  EXPECT_NEAR(total, sum, 5e-6);
  // The span dump is inline.
  EXPECT_NE(response.body.find("\"spans\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"name\":\"run\""), std::string::npos);
}

TEST_F(ObsEndpointsTest, StatusRejectsUnknownSession) {
  EXPECT_EQ(get("/status?session=sess-ghost").status, 404);
}

/// First `"name"` value inside the "spans" array of a /status body.
std::string first_span_name(const std::string& body) {
  const std::size_t spans = body.find("\"spans\":[");
  if (spans == std::string::npos) return "";
  const std::string needle = "\"name\":\"";
  const std::size_t at = body.find(needle, spans);
  if (at == std::string::npos) return "";
  const std::size_t end = body.find('"', at + needle.size());
  return body.substr(at + needle.size(), end - at - needle.size());
}

std::size_t count_occurrences(const std::string& body, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = body.find(needle); at != std::string::npos;
       at = body.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST_F(ObsEndpointsTest, StatusSpanDumpIsBoundedNewestFirst) {
  const std::string id = run_full_session();
  const http::Response full = get("/status?session=" + id);
  ASSERT_EQ(full.status, 200);
  const double total = json_number(full.body, "spans_total");
  ASSERT_GT(total, 2.0) << "session produced too few spans to exercise the cap";

  const http::Response capped = get("/status?session=" + id + "&spans=2");
  ASSERT_EQ(capped.status, 200);
  // Exactly two spans in the dump; the advertised total still counts all.
  EXPECT_EQ(count_occurrences(capped.body, "\"trace\":"), 2u);
  EXPECT_DOUBLE_EQ(json_number(capped.body, "spans_total"), total);
  // Both dumps are newest-first, so the capped dump is a prefix of the full
  // one: their first entries agree.
  EXPECT_EQ(first_span_name(capped.body), first_span_name(full.body));
  EXPECT_LT(count_occurrences(full.body, "\"trace\":"), static_cast<std::size_t>(total) + 1);
}

TEST_F(ObsEndpointsTest, DebugEndpointsServeJournalLocksAndSlowOps) {
  const std::string id = run_full_session();

  // /debug/journal: per-thread flight journals. The in-process engines and
  // the manager both journaled (state transitions, session lifecycle).
  const http::Response journal = get("/debug/journal");
  EXPECT_EQ(journal.status, 200);
  EXPECT_NE(journal.header_or("content-type").find("application/json"), std::string::npos);
  EXPECT_NE(journal.body.find("\"threads\":["), std::string::npos);
  EXPECT_NE(journal.body.find("\"what\":\"engine.state\""), std::string::npos);
  EXPECT_NE(journal.body.find("\"what\":\"session.create\""), std::string::npos);
  EXPECT_NE(journal.body.find(id), std::string::npos) << "session id not journaled";

  // ?limit=1 keeps at most one event per thread.
  const http::Response capped = get("/debug/journal?limit=1");
  EXPECT_EQ(capped.status, 200);
  const std::size_t threads = count_occurrences(capped.body, "\"thread\":\"");
  EXPECT_EQ(count_occurrences(capped.body, "\"what\":\""), threads);

  // /debug/locks: rank-indexed contention counters (contend one explicitly
  // so at least one row is guaranteed).
  force_lock_contention(LockRank::kLoadStats, "debug-locks-probe");
  const http::Response locks = get("/debug/locks");
  EXPECT_EQ(locks.status, 200);
  EXPECT_NE(locks.body.find("\"ranks\":["), std::string::npos);
  EXPECT_NE(locks.body.find("\"contended\":"), std::string::npos);
  EXPECT_NE(locks.body.find("\"wait_s\":"), std::string::npos);

  // /debug/slow: with threshold 0 every completed span is retained, so the
  // session's phase spans are all present with their child trees.
  const http::Response slow = get("/debug/slow");
  EXPECT_EQ(slow.status, 200);
  EXPECT_NE(slow.body.find("\"default_threshold_s\":"), std::string::npos);
  EXPECT_NE(slow.body.find("\"ops\":["), std::string::npos);
  EXPECT_NE(slow.body.find("\"root\":{"), std::string::npos) << "no slow ops retained";
  EXPECT_EQ(json_number(slow.body, "default_threshold_s"), 0.0);
}

// Histogram exposition must stay internally consistent while writers are
// mid-observe: cumulative buckets monotone, `_count` never ahead of the +Inf
// cumulative, and both monotone across scrapes. This pins the acquire/release
// ordering between bucket increments and the sample count.
TEST_F(ObsEndpointsTest, MetricsStayConsistentUnderConcurrentWriters) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  obs::Histogram& histogram = obs::Registry::global().histogram(
      "ipa_test_scrape_consistency_seconds", {{"probe", "writers"}}, {},
      "endpoint consistency probe");
  const std::uint64_t before = histogram.count();

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      Rng rng(1000 + static_cast<std::uint64_t>(w));
      for (int i = 0; i < kPerWriter; ++i) histogram.observe(rng.uniform(0.0, 1.0));
    });
  }
  go.store(true, std::memory_order_release);

  std::uint64_t last_count = before;
  std::uint64_t last_inf = before;
  for (int scrape = 0; scrape < 12; ++scrape) {
    const http::Response response = get("/metrics");
    ASSERT_EQ(response.status, 200);
    const auto family = loadgen::parse_histogram_family(
        response.body, "ipa_test_scrape_consistency_seconds", "probe");
    const auto it = family.find("writers");
    ASSERT_NE(it, family.end());
    const loadgen::HistogramSeries& series = it->second;
    ASSERT_FALSE(series.cumulative.empty());
    // Cumulative buckets are monotone within one scrape...
    for (std::size_t b = 1; b < series.cumulative.size(); ++b) {
      ASSERT_GE(series.cumulative[b], series.cumulative[b - 1])
          << "bucket " << b << " at scrape " << scrape;
    }
    // ...the advertised count never runs ahead of the +Inf bucket...
    const std::uint64_t inf = series.cumulative.back();
    EXPECT_LE(series.count, inf) << "scrape " << scrape;
    // ...values of known magnitude bound the sum...
    EXPECT_GE(series.sum, 0.0);
    EXPECT_LE(series.sum, static_cast<double>(inf) * 1.0 + 1e-9);
    // ...and everything is monotone across scrapes.
    EXPECT_GE(series.count, last_count) << "scrape " << scrape;
    EXPECT_GE(inf, last_inf) << "scrape " << scrape;
    last_count = series.count;
    last_inf = inf;
  }

  for (auto& writer : writers) writer.join();
  const http::Response final_scrape = get("/metrics");
  const auto family = loadgen::parse_histogram_family(
      final_scrape.body, "ipa_test_scrape_consistency_seconds", "probe");
  const auto it = family.find("writers");
  ASSERT_NE(it, family.end());
  EXPECT_EQ(it->second.count,
            before + static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(it->second.cumulative.back(), it->second.count);
}

TEST_F(ObsEndpointsTest, PhaseSpansFormConsistentTraces) {
  const std::string id = run_full_session();
  const auto spans = obs::SpanRing::global().snapshot_session(id);

  for (const char* phase : kPhases) {
    const obs::SpanRecord* record = nullptr;
    for (const auto& span : spans) {
      if (span.name == phase) record = &span;
    }
    ASSERT_NE(record, nullptr) << "no span for phase " << phase;
    EXPECT_GT(record->duration_s(), 0.0) << phase;
    EXPECT_NE(record->trace_id, 0u) << phase;
    EXPECT_NE(record->span_id, 0u) << phase;
    // Every phase span is a child of a server-side operation span (the SOAP
    // op that drove it, or the RPC dispatch for merge/run) that itself was
    // recorded in the ring under the same trace. The parent closes after the
    // phase span — for the final merge, even after the poll response is on
    // the wire — so look in the full ring and give it a moment to land.
    ASSERT_NE(record->parent_id, 0u) << phase;
    bool parent_found = false;
    for (int attempt = 0; attempt < 500 && !parent_found; ++attempt) {
      for (const auto& span : obs::SpanRing::global().snapshot()) {
        if (span.span_id == record->parent_id) {
          parent_found = true;
          EXPECT_EQ(span.trace_id, record->trace_id) << phase;
        }
      }
      if (!parent_found) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(parent_found) << "parent span of " << phase << " not in ring";
  }

  // The staging phases share the selectDataset operation span as parent.
  const auto find = [&](const char* name) -> const obs::SpanRecord* {
    for (const auto& span : spans) {
      if (span.name == name) return &span;
    }
    return nullptr;
  };
  const obs::SpanRecord* locate = find("locate");
  const obs::SpanRecord* split = find("split");
  const obs::SpanRecord* transfer = find("transfer");
  ASSERT_TRUE(locate && split && transfer);
  EXPECT_EQ(locate->parent_id, split->parent_id);
  EXPECT_EQ(split->parent_id, transfer->parent_id);
  EXPECT_EQ(locate->trace_id, transfer->trace_id);
}

}  // namespace
}  // namespace ipa
