// The metrics layer as the log sink's first consumer: per-level line
// counters in the global registry.
#include <gtest/gtest.h>

#include "common/log.hpp"
#include "obs/log_metrics.hpp"
#include "obs/metrics.hpp"

namespace ipa::obs {
namespace {

class LogMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Idempotent: another test (or a manager in this process) may already
    // have installed the counting sink — never replace it, or the counters
    // would silently detach.
    install_log_metrics();
    prev_level_ = log::global_level();
    log::set_global_level(log::Level::kTrace);
  }
  void TearDown() override { log::set_global_level(prev_level_); }

  static std::uint64_t lines(const char* level) {
    return Registry::global()
        .counter("ipa_log_lines_total", {{"level", level}})
        .value();
  }

  log::Level prev_level_ = log::Level::kWarn;
};

TEST_F(LogMetricsTest, CountsLinesPerLevel) {
  const std::uint64_t warn_before = lines("warn");
  const std::uint64_t info_before = lines("info");
  const std::uint64_t error_before = lines("error");

  IPA_LOG(warn) << "one";
  IPA_LOG(warn) << "two";
  IPA_LOG(info) << "three";

  EXPECT_EQ(lines("warn"), warn_before + 2);
  EXPECT_EQ(lines("info"), info_before + 1);
  EXPECT_EQ(lines("error"), error_before);
}

TEST_F(LogMetricsTest, SuppressedLinesAreNotCounted) {
  log::set_global_level(log::Level::kError);
  const std::uint64_t debug_before = lines("debug");
  IPA_LOG(debug) << "filtered before the sink";
  EXPECT_EQ(lines("debug"), debug_before);
}

TEST_F(LogMetricsTest, InstallIsIdempotent) {
  install_log_metrics();
  install_log_metrics();
  const std::uint64_t before = lines("error");
  IPA_LOG(error) << "counted once";
  EXPECT_EQ(lines("error"), before + 1);
}

}  // namespace
}  // namespace ipa::obs
