// Trace spans: parent/child propagation through nested scopes and installed
// wire contexts, ManualClock timing, and ring eviction.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "obs/trace.hpp"

namespace ipa::obs {
namespace {

TEST(Trace, NewTraceIdsAreUniqueAndNonZero) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = new_trace_id();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(Trace, RootSpanStartsNewTrace) {
  ManualClock clock(10.0);
  SpanRing ring(16);
  EXPECT_FALSE(current_trace().valid());
  {
    ScopedSpan span("root", clock, ring);
    EXPECT_TRUE(current_trace().valid());
    EXPECT_EQ(current_trace().span_id, span.context().span_id);
    clock.advance(2.5);
  }
  EXPECT_FALSE(current_trace().valid());
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_DOUBLE_EQ(spans[0].start_s, 10.0);
  EXPECT_DOUBLE_EQ(spans[0].duration_s(), 2.5);
  EXPECT_TRUE(spans[0].ok);
}

TEST(Trace, NestedScopesFormParentChain) {
  ManualClock clock;
  SpanRing ring(16);
  std::uint64_t outer_span = 0, trace = 0;
  {
    ScopedSpan outer("outer", clock, ring);
    outer_span = outer.context().span_id;
    trace = outer.context().trace_id;
    {
      ScopedSpan inner("inner", clock, ring);
      EXPECT_EQ(inner.context().trace_id, trace);
      EXPECT_NE(inner.context().span_id, outer_span);
    }
    // Inner scope exit restores the outer context.
    EXPECT_EQ(current_trace().span_id, outer_span);
  }
  const auto spans = ring.snapshot();  // inner completes first
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent_id, outer_span);
  EXPECT_EQ(spans[0].trace_id, trace);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
}

TEST(Trace, ContextScopeInstallsWireContext) {
  SpanRing ring(16);
  const TraceContext wire{0xabc, 0xdef};
  {
    TraceContextScope scope(wire);
    ScopedSpan span("handler", WallClock::instance(), ring);
    EXPECT_EQ(span.context().trace_id, 0xabcu);
  }
  EXPECT_FALSE(current_trace().valid());
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 0xabcu);
  EXPECT_EQ(spans[0].parent_id, 0xdefu);
}

TEST(Trace, InvalidContextScopeClearsInheritedTrace) {
  SpanRing ring(16);
  ScopedSpan outer("outer", WallClock::instance(), ring);
  {
    TraceContextScope scope(TraceContext{});  // untraced request arrives
    EXPECT_FALSE(current_trace().valid());
    ScopedSpan span("handler", WallClock::instance(), ring);
    EXPECT_NE(span.context().trace_id, outer.context().trace_id);
  }
  EXPECT_EQ(current_trace().span_id, outer.context().span_id);
}

TEST(Trace, StatusMarksSpanFailed) {
  SpanRing ring(4);
  {
    ScopedSpan span("op", WallClock::instance(), ring);
    span.set_status(internal_error("boom"));
  }
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].ok);
  EXPECT_NE(spans[0].note.find("boom"), std::string::npos);
}

TEST(Trace, RingEvictsOldestAndCountsTotal) {
  SpanRing ring(4);
  for (int i = 0; i < 10; ++i) {
    SpanRecord span;
    span.trace_id = span.span_id = static_cast<std::uint64_t>(i + 1);
    span.name = "s" + std::to_string(i);
    ring.record(std::move(span));
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first: 6,7,8,9 survive.
  EXPECT_EQ(spans.front().name, "s6");
  EXPECT_EQ(spans.back().name, "s9");
}

TEST(Trace, SessionFilter) {
  SpanRing ring(16);
  for (int i = 0; i < 6; ++i) {
    SpanRecord span;
    span.trace_id = span.span_id = static_cast<std::uint64_t>(i + 1);
    span.session = (i % 2 == 0) ? "sess-a" : "sess-b";
    span.name = "s" + std::to_string(i);
    ring.record(std::move(span));
  }
  const auto spans = ring.snapshot_session("sess-a");
  ASSERT_EQ(spans.size(), 3u);
  for (const auto& span : spans) EXPECT_EQ(span.session, "sess-a");
}

TEST(Trace, ContextIsThreadLocal) {
  ScopedSpan span("main-thread", WallClock::instance(), SpanRing::global());
  std::thread other([&] {
    // The worker thread starts untraced; its spans root a fresh trace.
    EXPECT_FALSE(current_trace().valid());
    SpanRing ring(4);
    ScopedSpan worker("worker", WallClock::instance(), ring);
    EXPECT_NE(worker.context().trace_id, span.context().trace_id);
  });
  other.join();
  EXPECT_EQ(current_trace().span_id, span.context().span_id);
}

}  // namespace
}  // namespace ipa::obs
