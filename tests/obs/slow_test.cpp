// Slow-op tail retention: threshold-crossing spans are kept with their
// same-trace children in a bounded newest-first store, long after the span
// ring itself has moved on.
#include <gtest/gtest.h>

#include <string>

#include "obs/slow.hpp"
#include "obs/trace.hpp"

namespace ipa::obs {
namespace {

SpanRecord make_span(const char* name, double start_s, double end_s,
                     std::uint64_t trace = 1, std::uint64_t span = 0,
                     std::uint64_t parent = 0) {
  SpanRecord record;
  record.name = name;
  record.trace_id = trace;
  record.span_id = span != 0 ? span : new_trace_id();
  record.parent_id = parent;
  record.start_s = start_s;
  record.end_s = end_s;
  record.session = "sess-slow";
  return record;
}

TEST(SlowOpStore, ThresholdGatesRetention) {
  SpanRing ring(64);
  SlowOpStore store(8);
  store.set_default_threshold(0.5);
  ring.attach_slow_store(&store);

  ring.record(make_span("fast", 0.0, 0.1));
  EXPECT_EQ(store.snapshot().size(), 0u);
  ring.record(make_span("slow", 0.0, 0.8));
  const auto ops = store.snapshot();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].root.name, "slow");
  EXPECT_EQ(store.total_retained(), 1u);
}

TEST(SlowOpStore, RetainsSameTraceChildren) {
  SpanRing ring(64);
  SlowOpStore store(8);
  store.set_default_threshold(0.5);
  ring.attach_slow_store(&store);

  // Children of trace 7 complete first (inner scopes end before outer).
  ring.record(make_span("child-a", 0.0, 0.1, 7, 71, 70));
  ring.record(make_span("child-b", 0.1, 0.2, 7, 72, 70));
  ring.record(make_span("unrelated", 0.0, 0.1, 8, 81));
  ring.record(make_span("root", 0.0, 0.9, 7, 70));

  const auto ops = store.snapshot();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].root.span_id, 70u);
  ASSERT_EQ(ops[0].children.size(), 2u);
  EXPECT_EQ(ops[0].children[0].span_id, 71u);
  EXPECT_EQ(ops[0].children[1].span_id, 72u);
}

TEST(SlowOpStore, PerOpOverridesLongestPrefixWins) {
  SlowOpStore store(8);
  store.set_default_threshold(0.5);
  store.set_threshold("rpc.", 0.1);
  store.set_threshold("rpc.call.heartbeat", 10.0);

  EXPECT_DOUBLE_EQ(store.threshold_for("merge"), 0.5);
  EXPECT_DOUBLE_EQ(store.threshold_for("rpc.call.control"), 0.1);
  EXPECT_DOUBLE_EQ(store.threshold_for("rpc.call.heartbeat.push"), 10.0);
}

TEST(SlowOpStore, ZeroThresholdRetainsEverything) {
  SpanRing ring(64);
  SlowOpStore store(8);
  store.set_default_threshold(0);
  ring.attach_slow_store(&store);
  ring.record(make_span("instant", 1.0, 1.0));
  EXPECT_EQ(store.snapshot().size(), 1u);
}

TEST(SlowOpStore, EvictsOldestAndSnapshotsNewestFirst) {
  SlowOpStore store(3);
  store.set_default_threshold(0);
  for (int i = 0; i < 5; ++i) {
    store.offer(make_span(("op" + std::to_string(i)).c_str(), 0.0, 1.0), {});
  }
  const auto ops = store.snapshot();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].root.name, "op4");
  EXPECT_EQ(ops[1].root.name, "op3");
  EXPECT_EQ(ops[2].root.name, "op2");
  EXPECT_EQ(store.total_retained(), 5u);

  const auto capped = store.snapshot(1);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(capped[0].root.name, "op4");
}

TEST(SlowOpStore, RenderJsonCarriesTreeAndTotals) {
  SpanRing ring(64);
  SlowOpStore store(8);
  store.set_default_threshold(0.25);
  ring.attach_slow_store(&store);
  ring.record(make_span("child", 0.0, 0.05, 9, 91, 90));
  ring.record(make_span("merge", 0.0, 0.4, 9, 90));

  const std::string json = store.render_json();
  EXPECT_NE(json.find("\"default_threshold_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"total_retained\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"merge\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"child\""), std::string::npos);
  EXPECT_NE(json.find("\"session\":\"sess-slow\""), std::string::npos);
}

TEST(SlowOpStore, GlobalRingIsAttachedToGlobalStore) {
  // The global wiring is what GET /debug/slow depends on: a span recorded
  // into the global ring above the default threshold must show up in the
  // global store (threshold 0.25 default; use a comfortably slow span).
  const std::uint64_t before = SlowOpStore::global().total_retained();
  SpanRecord span = make_span("global-slow-probe", 0.0, 100.0, 0, 0, 0);
  span.trace_id = new_trace_id();
  SpanRing::global().record(std::move(span));
  EXPECT_GE(SlowOpStore::global().total_retained(), before + 1);
}

}  // namespace
}  // namespace ipa::obs
