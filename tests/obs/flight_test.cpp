// Flight recorder: seqlocked per-thread ring journals. Covers the single
// journal (ordering, truncation, wrap), the recorder registry, JSON/dump
// rendering, and the concurrency contract: N writer threads hammering their
// own journals while a reader snapshots must never surface a torn event.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"

namespace ipa::obs {
namespace {

TEST(FlightJournal, RecordsNewestFirst) {
  FlightJournal journal("t", 16);
  journal.record(FlightKind::kState, "first");
  journal.record(FlightKind::kOp, "second", "detail", 7, 9);
  journal.record(FlightKind::kError, "third");

  const auto events = journal.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].what, "third");
  EXPECT_STREQ(events[1].what, "second");
  EXPECT_STREQ(events[2].what, "first");
  EXPECT_EQ(events[1].kind, FlightKind::kOp);
  EXPECT_STREQ(events[1].detail, "detail");
  EXPECT_EQ(events[1].a, 7u);
  EXPECT_EQ(events[1].b, 9u);
  EXPECT_EQ(journal.total_recorded(), 3u);

  // max_events caps from the newest end.
  const auto capped = journal.snapshot(2);
  ASSERT_EQ(capped.size(), 2u);
  EXPECT_STREQ(capped[0].what, "third");
  EXPECT_STREQ(capped[1].what, "second");
}

TEST(FlightJournal, TruncatesLongStringsAndWraps) {
  FlightJournal journal("t", 8);
  EXPECT_EQ(journal.capacity(), 8u);
  const std::string long_what(100, 'w');
  const std::string long_detail(100, 'd');
  for (int i = 0; i < 20; ++i) {
    journal.record(FlightKind::kMark, long_what, long_detail,
                   static_cast<std::uint64_t>(i));
  }
  const auto events = journal.snapshot();
  ASSERT_EQ(events.size(), 8u);  // ring capacity, oldest 12 gone
  EXPECT_EQ(journal.total_recorded(), 20u);
  // Newest first: a = 19, 18, ...
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 19u - i);
    // Truncated but NUL-terminated.
    EXPECT_EQ(std::strlen(events[i].what), sizeof events[i].what - 1);
    EXPECT_EQ(std::strlen(events[i].detail), sizeof events[i].detail - 1);
  }
}

TEST(FlightJournal, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightJournal("t", 0).capacity(), 8u);
  EXPECT_EQ(FlightJournal("t", 5).capacity(), 8u);
  EXPECT_EQ(FlightJournal("t", 9).capacity(), 16u);
  EXPECT_EQ(FlightJournal("t", 64).capacity(), 64u);
}

TEST(FlightRecorder, LocalRegistersOncePerThread) {
  FlightRecorder recorder(16);
  FlightJournal& a = recorder.local();
  FlightJournal& b = recorder.local();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(recorder.journal_count(), 1u);

  std::thread([&] {
    recorder.local().record(FlightKind::kMark, "other-thread");
  }).join();
  EXPECT_EQ(recorder.journal_count(), 2u);

  // The exited thread's journal is still snapshotable.
  const auto threads = recorder.snapshot();
  ASSERT_EQ(threads.size(), 2u);
  bool found = false;
  for (const ThreadFlight& t : threads) {
    for (const FlightEvent& e : t.events) {
      found |= std::strcmp(e.what, "other-thread") == 0;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FlightRecorder, RenderJsonIsWellFormedAndBounded) {
  FlightRecorder recorder(16);
  auto journal = recorder.adopt("probe");
  journal->record(FlightKind::kConn, "conn.open", "peer \"quoted\"", 3);
  for (int i = 0; i < 10; ++i) journal->record(FlightKind::kMark, "tick");

  const std::string json = recorder.render_json(2);
  EXPECT_NE(json.find("\"threads\":["), std::string::npos);
  EXPECT_NE(json.find("\"thread\":\"probe\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":11"), std::string::npos);
  EXPECT_NE(json.find("\"what\":\"tick\""), std::string::npos);
  // Bounded to 2 events: the quoted open event fell outside the cap.
  EXPECT_EQ(json.find("conn.open"), std::string::npos);

  const std::string full = recorder.render_json(0);
  EXPECT_NE(full.find("\"what\":\"conn.open\""), std::string::npos);
  EXPECT_NE(full.find("peer \\\"quoted\\\""), std::string::npos);
}

TEST(FlightRecorder, DumpWritesPlainTextToFd) {
  FlightRecorder recorder(16);
  auto journal = recorder.adopt("dumped");
  journal->record(FlightKind::kError, "engine.fail", "bad read");

  char path[] = "/tmp/ipa-flight-dump-XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  recorder.dump(fd);
  ::lseek(fd, 0, SEEK_SET);
  char buffer[4096] = {};
  const ssize_t n = ::read(fd, buffer, sizeof buffer - 1);
  ::close(fd);
  ::unlink(path);
  ASSERT_GT(n, 0);
  const std::string text(buffer, static_cast<std::size_t>(n));
  EXPECT_NE(text.find("dumped"), std::string::npos);
  EXPECT_NE(text.find("engine.fail"), std::string::npos);
  EXPECT_NE(text.find("bad read"), std::string::npos);
}

TEST(FlightGlobal, FreeFunctionRecordsToGlobalRecorder) {
  const std::size_t before = FlightRecorder::global().journal_count();
  flight(FlightKind::kMark, "global-probe", "hello", 1, 2);
  EXPECT_GE(FlightRecorder::global().journal_count(), std::max<std::size_t>(before, 1));
  bool found = false;
  for (const ThreadFlight& t : FlightRecorder::global().snapshot()) {
    for (const FlightEvent& e : t.events) {
      found |= std::strcmp(e.what, "global-probe") == 0;
    }
  }
  EXPECT_TRUE(found);
}

// The concurrency contract: writers never block, and a reader snapshotting
// mid-overwrite must only ever see internally-consistent events. Each writer
// stamps every field from the same counter, so any mixed-up event (fields
// from two different records) is detectable.
TEST(FlightRecorder, SnapshotsStayConsistentUnderConcurrentWriters) {
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 20000;
  FlightRecorder recorder(32);  // tiny rings -> constant overwrite pressure

  std::atomic<bool> go{false};
  std::atomic<bool> stop_reading{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread reader([&] {
    while (!stop_reading.load(std::memory_order_acquire)) {
      for (const ThreadFlight& t : recorder.snapshot()) {
        std::uint64_t last_b = ~0ull;
        for (const FlightEvent& e : t.events) {
          // Event self-consistency: detail == "t<a>:<b>" and kind matches
          // the writer's parity choice.
          char expected[sizeof e.detail];
          std::snprintf(expected, sizeof expected, "t%llu:%llu",
                        static_cast<unsigned long long>(e.a),
                        static_cast<unsigned long long>(e.b));
          if (std::strcmp(e.detail, expected) != 0) torn.fetch_add(1);
          const FlightKind want =
              e.b % 2 == 0 ? FlightKind::kState : FlightKind::kOp;
          if (e.kind != want) torn.fetch_add(1);
          // Per-thread events are newest-first: b strictly decreasing.
          if (last_b != ~0ull && e.b >= last_b) torn.fetch_add(1);
          last_b = e.b;
        }
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      FlightJournal& journal = recorder.local();
      for (int i = 0; i < kEventsPerWriter; ++i) {
        char detail[sizeof(FlightEvent{}.detail)];
        std::snprintf(detail, sizeof detail, "t%d:%d", w, i);
        journal.record(i % 2 == 0 ? FlightKind::kState : FlightKind::kOp,
                       "stress", detail, static_cast<std::uint64_t>(w),
                       static_cast<std::uint64_t>(i));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& writer : writers) writer.join();
  stop_reading.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  // Nothing was lost on the write side: totals are exact per journal.
  std::uint64_t total = 0;
  for (const ThreadFlight& t : recorder.snapshot()) total += t.total;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kWriters) * kEventsPerWriter);
}

}  // namespace
}  // namespace ipa::obs
