// Metrics registry: find-or-create semantics, label canonicalization,
// Prometheus rendering, and hot-path safety under concurrent writers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace ipa::obs {
namespace {

TEST(Metrics, CounterFindOrCreateReturnsSameSeries) {
  Registry registry;
  Counter& a = registry.counter("ipa_test_total", {{"k", "v"}});
  Counter& b = registry.counter("ipa_test_total", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(2);
  EXPECT_EQ(a.value(), 3u);
}

TEST(Metrics, LabelOrderDoesNotSplitSeries) {
  Registry registry;
  Counter& a = registry.counter("ipa_test_total", {{"a", "1"}, {"b", "2"}});
  // The unsorted literal is the point of this test. ipa-lint: allow(metric-name)
  Counter& b = registry.counter("ipa_test_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, DistinctLabelsAreDistinctSeries) {
  Registry registry;
  Counter& a = registry.counter("ipa_test_total", {{"k", "a"}});
  Counter& b = registry.counter("ipa_test_total", {{"k", "b"}});
  EXPECT_NE(&a, &b);
  a.inc(5);
  const auto families = registry.snapshot();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].series.size(), 2u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Registry registry;
  Gauge& g = registry.gauge("ipa_test_gauge");
  g.set(2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.add(-4.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramBucketsAreFixedByFirstCall) {
  Registry registry;
  Histogram& h = registry.histogram("ipa_test_seconds", {}, {0.1, 1.0, 10.0});
  h.observe(0.05);   // bucket 0
  h.observe(0.5);    // bucket 1
  h.observe(5.0);    // bucket 2
  h.observe(50.0);   // +Inf bucket
  h.observe(1.0);    // boundary lands in the le=1.0 bucket (le is inclusive)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.05 + 0.5 + 5.0 + 50.0 + 1.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(Metrics, HistogramBoundsAreSortedAndDeduped) {
  Registry registry;
  Histogram& h = registry.histogram("ipa_test_seconds", {}, {10.0, 1.0, 1.0, 0.1});
  const std::vector<double> expect{0.1, 1.0, 10.0};
  EXPECT_EQ(h.upper_bounds(), expect);
}

TEST(Metrics, ExponentialBounds) {
  const auto bounds = exponential_bounds(1.0, 4.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 64.0);
}

TEST(Metrics, PrometheusRendering) {
  Registry registry;
  registry.counter("ipa_req_total", {{"code", "200"}}, "Requests.").inc(7);
  registry.gauge("ipa_depth", {}, "Queue depth.").set(3);
  registry.histogram("ipa_lat_seconds", {}, {0.5, 2.0}, "Latency.").observe(1.0);
  const std::string text = registry.render_prometheus();

  EXPECT_NE(text.find("# HELP ipa_req_total Requests."), std::string::npos);
  EXPECT_NE(text.find("# TYPE ipa_req_total counter"), std::string::npos);
  EXPECT_NE(text.find("ipa_req_total{code=\"200\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ipa_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("ipa_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ipa_lat_seconds histogram"), std::string::npos);
  // Cumulative buckets: le="0.5" holds 0, le="2" holds 1, +Inf holds 1.
  EXPECT_NE(text.find("ipa_lat_seconds_bucket{le=\"0.5\"} 0"), std::string::npos);
  EXPECT_NE(text.find("ipa_lat_seconds_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("ipa_lat_seconds_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("ipa_lat_seconds_count 1"), std::string::npos);
}

TEST(Metrics, PrometheusEscapesLabelValues) {
  Registry registry;
  registry.counter("ipa_esc_total", {{"msg", "a\"b\\c\nd"}}).inc();
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("msg=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

// The hot-path contract: concurrent writers on existing handles plus
// concurrent series creation plus a snapshotting reader must neither race
// nor lose counts. Run under TSan via tools/check.sh tier 2.
TEST(Metrics, ConcurrentWritersAndSnapshots) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto families = registry.snapshot();
      (void)registry.render_prometheus();
      for (const auto& family : families) {
        for (const auto& series : family.series) {
          EXPECT_GE(series.value, 0.0);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      // Half the threads hammer a shared series, half create their own —
      // exercising both the lock-free fast path and the creation lock.
      Counter& shared = registry.counter("ipa_conc_total", {{"kind", "shared"}});
      Counter& own =
          registry.counter("ipa_conc_total", {{"kind", "t" + std::to_string(t)}});
      Histogram& h = registry.histogram("ipa_conc_seconds", {}, {0.001, 0.1, 10.0});
      for (int i = 0; i < kIncrements; ++i) {
        shared.inc();
        own.inc();
        h.observe(0.01 * (i % 3));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(registry.counter("ipa_conc_total", {{"kind", "shared"}}).value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  Histogram& h = registry.histogram("ipa_conc_seconds", {}, {0.001, 0.1, 10.0});
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Metrics, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace ipa::obs
