// Staging-pipeline suite: the single-pass parallel splitter must be
// byte-identical to a sequential two-pass decode/re-encode split, the
// session fan-out must not serialize on a slow seat (and must aggregate
// errors deterministically), and the bounded server worker pool must cap
// threads and count overflow instead of spawning without limit.
//
// Runs under -DIPA_SANITIZE=thread in the staging CI tier: every path here
// crosses the staging pool, so data races surface loudly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <semaphore>
#include <thread>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "data/splitter.hpp"
#include "net/worker_pool.hpp"
#include "rpc/rpc.hpp"
#include "serialize/serialize.hpp"
#include "services/session.hpp"

namespace ipa {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

class StagingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ipa-staging-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static std::vector<data::Record> make_records(std::size_t n, std::uint64_t seed = 42) {
    Rng rng(seed);
    std::vector<data::Record> records;
    records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      data::Record record(i);
      record.set("energy", rng.uniform(0.0, 500.0));
      record.set("ntrk", static_cast<std::int64_t>(rng.uniform_u64(0, 40)));
      if (i % 3 == 0) record.set("tag", "signal");
      // Variable-size payload: byte balancing must differ from count
      // balancing for the golden test to mean anything.
      data::Value::RealVec p4(2 + rng.uniform_u64(0, 6));
      for (double& x : p4) x = rng.normal(0, 10);
      record.set("p4", std::move(p4));
      records.push_back(std::move(record));
    }
    return records;
  }

  static std::vector<std::uint8_t> file_bytes(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    EXPECT_TRUE(in.good()) << file;
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  std::filesystem::path dir_;
};

// --- golden byte identity --------------------------------------------------

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Sequential two-pass reference: decode every record, balance boundaries
/// on framed-byte sizes with the splitter's rule, re-encode part by part.
/// The streaming splitter's raw-copy output must match this byte for byte.
Status reference_split(const std::string& source_path, const std::string& out_prefix,
                       int num_parts) {
  IPA_ASSIGN_OR_RETURN(data::DatasetReader reader, data::DatasetReader::open(source_path));
  IPA_ASSIGN_OR_RETURN(const std::vector<data::Record> records, data::read_all(source_path));

  std::vector<std::uint64_t> frame_sizes;
  std::uint64_t payload_total = 0;
  for (const data::Record& record : records) {
    ser::Writer w;
    record.encode(w);
    const std::size_t body = std::move(w).take().size();
    const std::uint64_t frame = varint_size(body) + body;
    frame_sizes.push_back(frame);
    payload_total += frame;
  }

  std::vector<std::uint64_t> bounds(static_cast<std::size_t>(num_parts) + 1, records.size());
  bounds[0] = 0;
  {
    std::uint64_t cumulative = 0;
    int part = 1;
    for (std::uint64_t i = 0; i < frame_sizes.size() && part < num_parts; ++i) {
      cumulative += frame_sizes[i];
      while (part < num_parts &&
             cumulative >= payload_total * static_cast<std::uint64_t>(part) /
                               static_cast<std::uint64_t>(num_parts)) {
        bounds[static_cast<std::size_t>(part)] = i + 1;
        ++part;
      }
    }
  }

  const data::DatasetInfo& info = reader.info();
  for (int k = 0; k < num_parts; ++k) {
    auto metadata = info.metadata;
    metadata["part.index"] = std::to_string(k);
    metadata["part.count"] = std::to_string(num_parts);
    metadata["part.first"] = std::to_string(bounds[static_cast<std::size_t>(k)]);
    metadata["part.parent"] = info.name;
    IPA_ASSIGN_OR_RETURN(
        data::DatasetWriter writer,
        data::DatasetWriter::create(out_prefix + ".part" + std::to_string(k) + ".ipd",
                                    info.name + "/part" + std::to_string(k),
                                    std::move(metadata)));
    for (std::uint64_t i = bounds[static_cast<std::size_t>(k)];
         i < bounds[static_cast<std::size_t>(k) + 1]; ++i) {
      IPA_RETURN_IF_ERROR(writer.append(records[static_cast<std::size_t>(i)]));
    }
    IPA_RETURN_IF_ERROR(writer.finish());
  }
  return Status::ok();
}

TEST_F(StagingTest, SplitIsByteIdenticalToTwoPassReference) {
  ASSERT_TRUE(
      data::write_dataset(path("src.ipd"), "golden-src", make_records(1000), {{"run", "7"}})
          .is_ok());
  for (const int parts : {1, 3, 8, 16}) {
    const std::string tag = std::to_string(parts);
    auto split = data::split_dataset(path("src.ipd"), path("fast" + tag), parts);
    ASSERT_TRUE(split.is_ok()) << split.status().to_string();
    ASSERT_TRUE(reference_split(path("src.ipd"), path("ref" + tag), parts).is_ok());
    ASSERT_EQ(split->parts.size(), static_cast<std::size_t>(parts));
    for (int k = 0; k < parts; ++k) {
      const std::string ref = path("ref" + tag + ".part" + std::to_string(k) + ".ipd");
      EXPECT_EQ(file_bytes(split->parts[static_cast<std::size_t>(k)].path), file_bytes(ref))
          << "part " << k << " of " << parts << " differs from the two-pass reference";
    }
    EXPECT_TRUE(data::verify_split(path("src.ipd"), *split).is_ok());
  }
}

TEST_F(StagingTest, ScanFrameOffsetsTilesTheRecordRegion) {
  ASSERT_TRUE(data::write_dataset(path("scan.ipd"), "scan", make_records(257)).is_ok());
  auto reader = data::DatasetReader::open(path("scan.ipd"));
  ASSERT_TRUE(reader.is_ok());
  // Move the cursor first: the scan must restore it.
  ASSERT_TRUE(reader->seek(100).is_ok());
  auto offsets = reader->scan_frame_offsets();
  ASSERT_TRUE(offsets.is_ok()) << offsets.status().to_string();
  ASSERT_EQ(offsets->size(), 258u);  // one per record + end sentinel
  for (std::size_t i = 0; i + 1 < offsets->size(); ++i) {
    EXPECT_LT((*offsets)[i], (*offsets)[i + 1]);
  }
  EXPECT_EQ(reader->position(), 100u);
  auto record = reader->next();
  ASSERT_TRUE(record.is_ok());
  EXPECT_EQ(record->index(), 100u);
}

// --- edge cases ------------------------------------------------------------

TEST_F(StagingTest, MorePartsThanRecordsCreatesEmptyTailParts) {
  ASSERT_TRUE(data::write_dataset(path("tiny.ipd"), "tiny", make_records(5)).is_ok());
  auto split = data::split_dataset(path("tiny.ipd"), path("tiny"), 16);
  ASSERT_TRUE(split.is_ok()) << split.status().to_string();
  ASSERT_EQ(split->parts.size(), 16u);
  std::uint64_t total = 0;
  for (const data::PartInfo& part : split->parts) {
    auto reader = data::DatasetReader::open(part.path);
    ASSERT_TRUE(reader.is_ok()) << part.path;  // every engine still gets a file
    EXPECT_EQ(reader->size(), part.record_count);
    total += part.record_count;
  }
  EXPECT_EQ(total, 5u);
  EXPECT_TRUE(data::verify_split(path("tiny.ipd"), *split).is_ok());
}

TEST_F(StagingTest, EmptyDatasetSplitsIntoEmptyParts) {
  ASSERT_TRUE(data::write_dataset(path("empty.ipd"), "empty", {}).is_ok());
  auto split = data::split_dataset(path("empty.ipd"), path("empty"), 4);
  ASSERT_TRUE(split.is_ok()) << split.status().to_string();
  ASSERT_EQ(split->parts.size(), 4u);
  EXPECT_EQ(split->total_records, 0u);
  for (const data::PartInfo& part : split->parts) {
    auto reader = data::DatasetReader::open(part.path);
    ASSERT_TRUE(reader.is_ok()) << part.path;
    EXPECT_EQ(reader->size(), 0u);
  }
  EXPECT_TRUE(data::verify_split(path("empty.ipd"), *split).is_ok());
}

TEST_F(StagingTest, SingleRecordDataset) {
  ASSERT_TRUE(data::write_dataset(path("one.ipd"), "one", make_records(1)).is_ok());
  for (const int parts : {1, 3}) {
    auto split = data::split_dataset(path("one.ipd"), path("one" + std::to_string(parts)), parts);
    ASSERT_TRUE(split.is_ok()) << split.status().to_string();
    ASSERT_EQ(split->parts.size(), static_cast<std::size_t>(parts));
    EXPECT_EQ(split->parts[0].record_count, 1u);
    EXPECT_TRUE(data::verify_split(path("one.ipd"), *split).is_ok());
  }
}

// --- concurrent seat fan-out ----------------------------------------------

/// EngineHandle whose every operation is one RPC through a chaos transport
/// with a guaranteed delay fault — a "slow seat" by construction. Each
/// handle owns its own connection so seat calls can genuinely overlap.
class RpcDelayHandle final : public services::EngineHandle {
 public:
  RpcDelayHandle(std::string id, rpc::RpcClient client)
      : id_(std::move(id)), client_(std::move(client)) {}

  const std::string& engine_id() const override { return id_; }
  Status stage_dataset(const std::string&) override { return call(); }
  Status stage_code(const engine::CodeBundle&) override { return call(); }
  Status control(services::ControlVerb, std::uint64_t) override { return call(); }
  services::EngineReport report() const override {
    services::EngineReport report;
    report.engine_id = id_;
    return report;
  }

 private:
  Status call() { return client_.call("Engine", "op", {}, "", /*timeout_s=*/10.0).status(); }

  std::string id_;
  rpc::RpcClient client_;
};

constexpr int kDelayMs = 80;

/// A session whose four seats each pay ~kDelayMs of injected network delay
/// per call. Serial fan-out would cost >= 4 * kDelayMs.
struct DelayedSession {
  std::unique_ptr<rpc::RpcServer> server;
  std::shared_ptr<services::Session> session;

  static DelayedSession start(const std::string& tag, int seats) {
    DelayedSession out;
    Uri endpoint;
    endpoint.scheme = "chaos+inproc";
    endpoint.host = "staging-" + tag;
    endpoint.query = {{"seed", "3"},
                      {"delay_p", "1"},
                      {"delay_ms", std::to_string(kDelayMs)}};
    out.server = std::make_unique<rpc::RpcServer>(endpoint);
    auto service = std::make_shared<rpc::Service>("Engine");
    service->register_method(
        "op", [](const rpc::CallContext&, const ser::Bytes&) -> Result<ser::Bytes> {
          return ser::Bytes{};
        });
    out.server->add_service(std::move(service));
    EXPECT_TRUE(out.server->start().is_ok());

    out.session = std::make_shared<services::Session>("s-" + tag, "tester", seats, "interactive");
    std::vector<std::unique_ptr<services::EngineHandle>> engines;
    for (int i = 0; i < seats; ++i) {
      const std::string id = "eng-" + std::to_string(i);
      auto client = rpc::RpcClient::connect(endpoint);
      EXPECT_TRUE(client.is_ok()) << client.status().to_string();
      out.session->mark_ready(id);
      engines.push_back(std::make_unique<RpcDelayHandle>(id, std::move(*client)));
    }
    EXPECT_TRUE(out.session->attach_engines(std::move(engines)).is_ok());
    return out;
  }
};

data::SplitResult fake_split(int parts) {
  data::SplitResult split;
  for (int i = 0; i < parts; ++i) {
    data::PartInfo part;
    part.path = "/tmp/fake-part-" + std::to_string(i);
    split.parts.push_back(std::move(part));
  }
  return split;
}

TEST_F(StagingTest, SlowSeatsDoNotSerializeTheFanOut) {
  DelayedSession fixture = DelayedSession::start("parallel", 4);

  // Each seat pays >= kDelayMs of injected delay per fan-out call; a serial
  // fan-out would take >= 4 * kDelayMs per operation. The parallel fan-out
  // should finish in roughly one seat's latency — 3x headroom for TSan and
  // scheduling noise still cleanly rejects serial execution.
  const auto started = Clock::now();
  ASSERT_TRUE(fixture.session->distribute_parts(fake_split(4)).is_ok());
  EXPECT_LT(seconds_since(started), 3 * kDelayMs / 1000.0)
      << "distribute_parts looks serialized";

  const auto control_started = Clock::now();
  ASSERT_TRUE(fixture.session->control(services::ControlVerb::kRun).is_ok());
  EXPECT_LT(seconds_since(control_started), 3 * kDelayMs / 1000.0)
      << "control fan-out looks serialized";

  ASSERT_TRUE(fixture.session->close().is_ok());
  fixture.server->stop();
}

TEST_F(StagingTest, SessionStaysResponsiveDuringSlowFanOut) {
  DelayedSession fixture = DelayedSession::start("responsive", 4);
  ASSERT_TRUE(fixture.session->distribute_parts(fake_split(4)).is_ok());

  // Fan a slow control verb out on a helper thread; the session lock must
  // not be held across the delayed RPCs, so state queries return instantly.
  std::thread slow([&] { EXPECT_TRUE(fixture.session->control(services::ControlVerb::kRun).is_ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(kDelayMs / 4));
  const auto started = Clock::now();
  EXPECT_EQ(fixture.session->state(), services::SessionState::kDatasetStaged);
  (void)fixture.session->phase_timings();
  (void)fixture.session->degraded();
  EXPECT_LT(seconds_since(started), kDelayMs / 2 / 1000.0)
      << "a state query blocked behind an in-flight fan-out RPC";
  slow.join();

  ASSERT_TRUE(fixture.session->close().is_ok());
  fixture.server->stop();
}

/// Handle with scripted outcome: optional failure after an optional sleep.
class ScriptedHandle final : public services::EngineHandle {
 public:
  ScriptedHandle(std::string id, Status result, int sleep_ms)
      : id_(std::move(id)), result_(std::move(result)), sleep_ms_(sleep_ms) {}

  const std::string& engine_id() const override { return id_; }
  Status stage_dataset(const std::string&) override { return run(); }
  Status stage_code(const engine::CodeBundle&) override { return run(); }
  Status control(services::ControlVerb, std::uint64_t) override { return run(); }
  services::EngineReport report() const override {
    services::EngineReport report;
    report.engine_id = id_;
    return report;
  }

 private:
  Status run() {
    if (sleep_ms_ > 0) std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    return result_;
  }

  std::string id_;
  Status result_;
  int sleep_ms_;
};

TEST_F(StagingTest, FirstErrorInSeatOrderWinsDeterministically) {
  // Seat 3 fails instantly; seat 1 fails only after sleeping. Wall-clock
  // order of failures is 3 then 1, but the aggregate must always report
  // seat 1 — the first failing seat by index.
  for (int round = 0; round < 3; ++round) {
    services::Session session("s-det-" + std::to_string(round), "tester", 4, "interactive");
    std::vector<std::unique_ptr<services::EngineHandle>> engines;
    for (int i = 0; i < 4; ++i) session.mark_ready("eng-" + std::to_string(i));
    engines.push_back(std::make_unique<ScriptedHandle>("eng-0", Status::ok(), 0));
    engines.push_back(
        std::make_unique<ScriptedHandle>("eng-1", internal_error("slow boom"), 30));
    engines.push_back(std::make_unique<ScriptedHandle>("eng-2", Status::ok(), 0));
    engines.push_back(
        std::make_unique<ScriptedHandle>("eng-3", internal_error("fast boom"), 0));
    ASSERT_TRUE(session.attach_engines(std::move(engines)).is_ok());

    engine::CodeBundle bundle;
    bundle.name = "det";
    bundle.source = "func process(event, tree) {}";
    const Status status = session.stage_code(bundle);
    ASSERT_FALSE(status.is_ok());
    EXPECT_NE(status.message().find("engine eng-1"), std::string::npos) << status.to_string();
    EXPECT_NE(status.message().find("slow boom"), std::string::npos) << status.to_string();
    EXPECT_EQ(status.message().find("fast boom"), std::string::npos) << status.to_string();
    ASSERT_TRUE(session.close().is_ok());
  }
}

// --- bounded server worker pool -------------------------------------------

TEST_F(StagingTest, ServerPoolCapsWorkersAndCountsOverflow) {
  std::atomic<int> entered{0};
  std::atomic<int> handled{0};
  std::counting_semaphore<16> release(0);

  net::ServerPoolOptions options;
  options.max_workers = 2;
  options.queue_capacity = 2;
  net::ServerWorkerPool<int> pool("staging-test", options, [&](int) {
    entered.fetch_add(1);
    release.acquire();
    handled.fetch_add(1);
  });

  // Two items occupy both workers.
  EXPECT_EQ(pool.submit(1), net::Admission::kAdmitted);
  EXPECT_EQ(pool.submit(2), net::Admission::kAdmitted);
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (entered.load() < 2 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(entered.load(), 2);
  EXPECT_EQ(pool.worker_count(), 2u);

  // Two more fill the queue; the fifth overflows instead of growing a
  // thread — and a saturated rejection leaves the item with the caller.
  EXPECT_EQ(pool.submit(3), net::Admission::kAdmitted);
  EXPECT_EQ(pool.submit(4), net::Admission::kAdmitted);
  int rejected = 5;
  EXPECT_EQ(pool.submit(rejected), net::Admission::kSaturated);
  EXPECT_EQ(rejected, 5);
  EXPECT_EQ(pool.worker_count(), 2u);

  release.release(4);
  while (handled.load() < 4 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(handled.load(), 4);
  pool.stop();
  EXPECT_EQ(pool.submit(6), net::Admission::kStopped);  // stopped pools reject
}

}  // namespace
}  // namespace ipa
