// Golden equivalence: the batched hot path must be bit-identical to
// record-at-a-time processing — same fills, same order, same arithmetic —
// for both the native Higgs plugin and the PawScript path.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "aida/tree.hpp"
#include "data/dataset.hpp"
#include "engine/analyzer.hpp"
#include "engine/engine.hpp"
#include "physics/event_gen.hpp"

namespace ipa::physics {
namespace {

class BatchGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process dir: ctest -j runs each TEST as its own process, and a
    // shared path would race SetUp against another case's remove_all.
    dir_ = std::filesystem::temp_directory_path() /
           ("ipa-batch-golden-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "events.ipd").string();
    GeneratorConfig config;
    config.signal_fraction = 0.35;
    ASSERT_TRUE(generate_dataset(path_, "golden", 600, config, 42).is_ok());
    register_higgs_plugin();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  // Reference: record-at-a-time over the whole dataset.
  ser::Bytes run_scalar(engine::Analyzer& analyzer) {
    aida::Tree tree;
    EXPECT_TRUE(analyzer.begin(tree).is_ok());
    auto records = data::read_all(path_);
    EXPECT_TRUE(records.is_ok());
    for (const data::Record& record : *records) {
      EXPECT_TRUE(analyzer.process(record, tree).is_ok());
    }
    EXPECT_TRUE(analyzer.end(tree).is_ok());
    return tree.serialize();
  }

  // Batched path straight off the reader, uneven chunk size on purpose.
  ser::Bytes run_batched(engine::Analyzer& analyzer, std::uint64_t chunk) {
    aida::Tree tree;
    EXPECT_TRUE(analyzer.begin(tree).is_ok());
    auto reader = data::DatasetReader::open(path_);
    EXPECT_TRUE(reader.is_ok());
    data::RecordBatch batch = reader->make_batch();
    while (true) {
      batch.clear();
      auto appended = reader->read_batch(batch, chunk);
      EXPECT_TRUE(appended.is_ok()) << appended.status().to_string();
      if (*appended == 0) break;
      EXPECT_TRUE(analyzer.process_batch(batch, tree).is_ok());
    }
    EXPECT_TRUE(analyzer.end(tree).is_ok());
    return tree.serialize();
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(BatchGoldenTest, HiggsPluginScalarAndBatchBitIdentical) {
  auto scalar = engine::AnalyzerRegistry::instance().create("higgs-mass");
  ASSERT_TRUE(scalar.is_ok());
  auto batched = engine::AnalyzerRegistry::instance().create("higgs-mass");
  ASSERT_TRUE(batched.is_ok());
  const ser::Bytes reference = run_scalar(**scalar);
  for (const std::uint64_t chunk : {1u, 7u, 64u, 1000u}) {
    EXPECT_EQ(run_batched(**batched, chunk), reference) << "chunk " << chunk;
  }
}

TEST_F(BatchGoldenTest, PawScriptScalarAndBatchBitIdentical) {
  auto scalar = engine::ScriptAnalyzer::compile(higgs_script());
  ASSERT_TRUE(scalar.is_ok());
  auto batched = engine::ScriptAnalyzer::compile(higgs_script());
  ASSERT_TRUE(batched.is_ok());
  const ser::Bytes reference = run_scalar(**scalar);
  for (const std::uint64_t chunk : {3u, 128u}) {
    EXPECT_EQ(run_batched(**batched, chunk), reference) << "chunk " << chunk;
  }
}

TEST_F(BatchGoldenTest, DefaultProcessBatchFallbackMatchesScalar) {
  // An analyzer that does NOT override process_batch must behave identically
  // through the batched engine loop (default falls back to process()).
  class CountingAnalyzer final : public engine::Analyzer {
   public:
    Status begin(aida::Tree& tree) override {
      auto hist = aida::Histogram1D::create("ntrk", 30, 0, 60);
      IPA_RETURN_IF_ERROR(hist.status());
      tree.put("/n", std::move(*hist));
      return Status::ok();
    }
    Status process(const data::Record& record, aida::Tree& tree) override {
      (*tree.histogram1d("/n"))->fill(record.real_or("ntrk"));
      return Status::ok();
    }
  };
  CountingAnalyzer scalar;
  CountingAnalyzer batched;
  EXPECT_EQ(run_batched(batched, 50), run_scalar(scalar));
}

TEST_F(BatchGoldenTest, EngineRunMatchesManualScalarLoop) {
  // Full engine (batched process_loop) vs the manual reference loop.
  auto reference_analyzer = engine::AnalyzerRegistry::instance().create("higgs-mass");
  ASSERT_TRUE(reference_analyzer.is_ok());
  const ser::Bytes reference = run_scalar(**reference_analyzer);

  engine::AnalysisEngine eng({.snapshot_every = 100, .batch_size = 37, .interp = {}});
  ASSERT_TRUE(eng.stage_dataset(path_).is_ok());
  ASSERT_TRUE(eng.stage_code({engine::CodeBundle::Kind::kPlugin, "p", "higgs-mass"}).is_ok());
  ASSERT_TRUE(eng.run().is_ok());
  ASSERT_EQ(eng.wait().state, engine::EngineState::kFinished);
  EXPECT_EQ(eng.snapshot(), reference);
}

TEST_F(BatchGoldenTest, RunRecordsBudgetExactWithBatching) {
  engine::AnalysisEngine eng({.snapshot_every = 1000, .batch_size = 64, .interp = {}});
  ASSERT_TRUE(eng.stage_dataset(path_).is_ok());
  ASSERT_TRUE(eng.stage_code({engine::CodeBundle::Kind::kPlugin, "p", "higgs-mass"}).is_ok());
  ASSERT_TRUE(eng.run_records(100).is_ok());
  EXPECT_EQ(eng.wait().processed, 100u);  // batch cap must not overshoot
  ASSERT_TRUE(eng.run_records(33).is_ok());
  EXPECT_EQ(eng.wait().processed, 133u);
}

}  // namespace
}  // namespace ipa::physics
