#include "physics/event_gen.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "engine/engine.hpp"

namespace ipa::physics {
namespace {

TEST(FourVector, BasicKinematics) {
  const FourVector v = FourVector::from_polar(3.0, 3.14159265358979 / 2, 0.0, 4.0);
  EXPECT_NEAR(v.px, 3.0, 1e-12);
  EXPECT_NEAR(v.py, 0.0, 1e-12);
  EXPECT_NEAR(v.pz, 0.0, 1e-12);
  EXPECT_NEAR(v.e, 5.0, 1e-12);  // 3-4-5
  EXPECT_NEAR(v.mass(), 4.0, 1e-12);
  EXPECT_NEAR(v.pt(), 3.0, 1e-12);
  EXPECT_NEAR(v.eta(), 0.0, 1e-9);
}

TEST(FourVector, PairMassOfBackToBackMasslessParticles) {
  const FourVector a = FourVector::from_polar(62.5, 1.0, 0.3);
  const FourVector b{-a.px, -a.py, -a.pz, a.e};
  EXPECT_NEAR(pair_mass(a, b), 125.0, 1e-9);
}

TEST(FourVector, BoostPreservesInvariantMass) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const FourVector v =
        FourVector::from_polar(rng.uniform(1, 50), std::acos(rng.uniform(-1, 1)),
                               rng.uniform(0, 6.28), rng.uniform(0, 20));
    const double bx = rng.uniform(-0.4, 0.4);
    const double by = rng.uniform(-0.4, 0.4);
    const double bz = rng.uniform(-0.4, 0.4);
    EXPECT_NEAR(v.boosted(bx, by, bz).mass(), v.mass(), 1e-6 * (1 + v.mass()));
  }
}

TEST(FourVector, BoostedPairKeepsResonanceMass) {
  // The generator's core operation: decay at rest, boost both daughters.
  const double m = 125.0;
  const FourVector d1 = FourVector::from_polar(m / 2, 0.7, 2.1);
  const FourVector d2{-d1.px, -d1.py, -d1.pz, d1.e};
  const auto a = d1.boosted(0.2, -0.1, 0.35);
  const auto b = d2.boosted(0.2, -0.1, 0.35);
  EXPECT_NEAR(pair_mass(a, b), m, 1e-9 * m);
}

TEST(EventGen, RecordShape) {
  Rng rng(1);
  const data::Record record = generate_event(rng, {}, 42);
  EXPECT_EQ(record.index(), 42u);
  EXPECT_TRUE(record.has("sig"));
  ASSERT_NE(record.vec_or_null("px"), nullptr);
  const auto n = record.vec_or_null("px")->size();
  EXPECT_EQ(record.vec_or_null("py")->size(), n);
  EXPECT_EQ(record.vec_or_null("pz")->size(), n);
  EXPECT_EQ(record.vec_or_null("e")->size(), n);
  EXPECT_EQ(static_cast<std::uint64_t>(record.int_or("ntrk")), n);
  EXPECT_GE(n, 2u);
}

TEST(EventGen, SignalFractionApproximatelyRespected) {
  Rng rng(5);
  GeneratorConfig config;
  config.signal_fraction = 0.3;
  int signals = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    signals += generate_event(rng, config, static_cast<std::uint64_t>(i)).int_or("sig") ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(signals) / n, 0.3, 0.03);
}

TEST(EventGen, SignalEventsReconstructNearResonance) {
  Rng rng(9);
  GeneratorConfig config;
  config.signal_fraction = 1.0;  // all signal
  int near_peak = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const data::Record record = generate_event(rng, config, static_cast<std::uint64_t>(i));
    const double mass = leading_pair_mass(record);
    if (std::abs(mass - config.resonance_mass) < 20.0) ++near_peak;
  }
  // The two daughters are usually the leading-pT pair; allow combinatoric
  // losses from hard background candidates.
  EXPECT_GT(near_peak, n * 6 / 10);
}

TEST(EventGen, BackgroundHasNoPeak) {
  Rng rng(13);
  GeneratorConfig config;
  config.signal_fraction = 0.0;
  auto hist = aida::Histogram1D::create("bg", 25, 100, 150);
  int filled = 0;
  for (int i = 0; i < 4000; ++i) {
    const double mass =
        leading_pair_mass(generate_event(rng, config, static_cast<std::uint64_t>(i)));
    if (mass > 0) {
      hist->fill(mass);
      ++filled;
    }
  }
  // No bin in the 100-150 window should dominate (flat-ish combinatorics):
  // peak bin below 4x the mean occupancy of that window.
  const double mean = hist->sum_height() / 25.0;
  EXPECT_LT(hist->bin_height(hist->max_bin()), 4.0 * mean + 8);
  EXPECT_GT(filled, 3000);
}

class PhysicsDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "ipa-phys-test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(PhysicsDatasetTest, GenerateDatasetRoundTrips) {
  const std::string path = (dir_ / "lc.ipd").string();
  auto info = generate_dataset(path, "lc-test", 500, {}, 7);
  ASSERT_TRUE(info.is_ok()) << info.status().to_string();
  EXPECT_EQ(info->record_count, 500u);
  EXPECT_EQ(info->metadata.at("experiment"), "LC");
  auto records = data::read_all(path);
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(records->size(), 500u);
}

TEST_F(PhysicsDatasetTest, DeterministicForSameSeed) {
  const std::string a = (dir_ / "a.ipd").string();
  const std::string b = (dir_ / "b.ipd").string();
  ASSERT_TRUE(generate_dataset(a, "x", 100, {}, 99).is_ok());
  ASSERT_TRUE(generate_dataset(b, "x", 100, {}, 99).is_ok());
  EXPECT_EQ(*data::read_all(a), *data::read_all(b));
}

TEST_F(PhysicsDatasetTest, ScriptAndPluginAgreeExactly) {
  // The PawScript Higgs analysis and the native plugin must produce
  // identical histograms over the same part — the paper's two code paths.
  const std::string path = (dir_ / "events.ipd").string();
  ASSERT_TRUE(generate_dataset(path, "ev", 400, {}, 31).is_ok());
  register_higgs_plugin();

  const auto run = [&](const engine::CodeBundle& bundle) {
    engine::AnalysisEngine eng;
    EXPECT_TRUE(eng.stage_dataset(path).is_ok());
    EXPECT_TRUE(eng.stage_code(bundle).is_ok());
    EXPECT_TRUE(eng.run().is_ok());
    EXPECT_EQ(eng.wait().state, engine::EngineState::kFinished);
    return eng.tree_copy();
  };

  aida::Tree from_script = run({engine::CodeBundle::Kind::kScript, "s", higgs_script()});
  aida::Tree from_plugin = run({engine::CodeBundle::Kind::kPlugin, "p", "higgs-mass"});

  auto hs = from_script.histogram1d("/higgs/mass");
  auto hp = from_plugin.histogram1d("/higgs/mass");
  ASSERT_TRUE(hs.is_ok() && hp.is_ok());
  EXPECT_EQ((*hs)->entries(), (*hp)->entries());
  for (int i = 0; i < 60; ++i) {
    EXPECT_NEAR((*hs)->bin_height(i), (*hp)->bin_height(i), 1e-9) << "bin " << i;
  }
  EXPECT_NEAR((*hs)->mean(), (*hp)->mean(), 1e-9);
}

TEST_F(PhysicsDatasetTest, PeakIsFoundByAnalysis) {
  const std::string path = (dir_ / "peak.ipd").string();
  GeneratorConfig config;
  config.signal_fraction = 0.5;
  ASSERT_TRUE(generate_dataset(path, "peak", 3000, config, 17).is_ok());
  register_higgs_plugin();

  engine::AnalysisEngine eng;
  ASSERT_TRUE(eng.stage_dataset(path).is_ok());
  ASSERT_TRUE(eng.stage_code({engine::CodeBundle::Kind::kPlugin, "p", "higgs-mass"}).is_ok());
  ASSERT_TRUE(eng.run().is_ok());
  ASSERT_EQ(eng.wait().state, engine::EngineState::kFinished);

  auto tree = eng.tree_copy();
  auto mass = tree.histogram1d("/higgs/mass");
  ASSERT_TRUE(mass.is_ok());
  const double peak_center = (*mass)->axis().bin_center((*mass)->max_bin());
  EXPECT_NEAR(peak_center, 125.0, 10.0);
}

TEST(Candidates, RejectsMalformedRecords) {
  data::Record record(0);
  EXPECT_FALSE(candidates(record).is_ok());
  record.set("px", data::Value::RealVec{1, 2});
  record.set("py", data::Value::RealVec{1, 2});
  record.set("pz", data::Value::RealVec{1, 2});
  record.set("e", data::Value::RealVec{1});  // mismatched length
  EXPECT_FALSE(candidates(record).is_ok());
  EXPECT_DOUBLE_EQ(leading_pair_mass(record), 0.0);
}

}  // namespace
}  // namespace ipa::physics
