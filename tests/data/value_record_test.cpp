#include <gtest/gtest.h>

#include "data/crc32.hpp"
#include "data/record.hpp"
#include "data/value.hpp"

namespace ipa::data {
namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value(std::int64_t{42}).is_int());
  EXPECT_TRUE(Value(3.5).is_real());
  EXPECT_TRUE(Value("acgt").is_str());
  EXPECT_TRUE(Value(Value::RealVec{1, 2}).is_vec());
  EXPECT_EQ(Value(std::int64_t{42}).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).as_real(), 3.5);
  EXPECT_EQ(Value("acgt").as_str(), "acgt");
  EXPECT_EQ(Value(Value::RealVec{1, 2}).as_vec().size(), 2u);
}

TEST(Value, ToNumberCoercion) {
  EXPECT_DOUBLE_EQ(Value(std::int64_t{7}).to_number().value(), 7.0);
  EXPECT_DOUBLE_EQ(Value(2.5).to_number().value(), 2.5);
  EXPECT_FALSE(Value("not-a-number").to_number().is_ok());
  EXPECT_FALSE(Value(Value::RealVec{1}).to_number().is_ok());
}

TEST(Value, ToString) {
  EXPECT_EQ(Value(std::int64_t{-3}).to_string(), "-3");
  EXPECT_EQ(Value("x").to_string(), "\"x\"");
  EXPECT_EQ(Value(Value::RealVec{1, 2.5}).to_string(), "[1, 2.5]");
}

TEST(Value, EncodeDecodeRoundTrip) {
  const Value cases[] = {Value(std::int64_t{0}), Value(std::int64_t{-1234567}),
                         Value(3.14159), Value(""), Value("higgs boson"),
                         Value(Value::RealVec{}), Value(Value::RealVec{1.5, -2.5, 1e300})};
  for (const Value& v : cases) {
    ser::Writer w;
    v.encode(w);
    ser::Reader r(w.data());
    auto back = Value::decode(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Value, DecodeRejectsBadTag) {
  ser::Bytes bad = {9};
  ser::Reader r(bad);
  EXPECT_FALSE(Value::decode(r).is_ok());
}

TEST(Record, SetGetOverwrite) {
  Record record(7);
  record.set("e", 91.2);
  record.set("n", std::int64_t{3});
  record.set("tag", "signal");
  record.set("px", Value::RealVec{1, 2, 3});
  EXPECT_EQ(record.index(), 7u);
  EXPECT_EQ(record.field_count(), 4u);
  EXPECT_DOUBLE_EQ(record.real_or("e"), 91.2);
  EXPECT_EQ(record.int_or("n"), 3);
  EXPECT_EQ(record.str_or("tag"), "signal");
  ASSERT_NE(record.vec_or_null("px"), nullptr);
  EXPECT_EQ(record.vec_or_null("px")->size(), 3u);

  record.set("e", 125.0);  // overwrite keeps field count
  EXPECT_EQ(record.field_count(), 4u);
  EXPECT_DOUBLE_EQ(record.real_or("e"), 125.0);
}

TEST(Record, FallbacksForMissingOrMistyped) {
  Record record;
  record.set("s", "text");
  EXPECT_DOUBLE_EQ(record.real_or("absent", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(record.real_or("s", -1.0), -1.0);
  EXPECT_EQ(record.int_or("s", 9), 9);
  EXPECT_EQ(record.str_or("absent", "d"), "d");
  EXPECT_EQ(record.vec_or_null("s"), nullptr);
  EXPECT_FALSE(record.has("absent"));
  EXPECT_TRUE(record.has("s"));
}

TEST(Record, IntCoercesToRealGetter) {
  Record record;
  record.set("n", std::int64_t{5});
  EXPECT_DOUBLE_EQ(record.real_or("n"), 5.0);
}

TEST(Record, EncodeDecodeRoundTrip) {
  Record record(123456);
  record.set("mass", 125.3);
  record.set("count", std::int64_t{-9});
  record.set("seq", "acgtacgt");
  record.set("p4", Value::RealVec{1.1, 2.2, 3.3, 4.4});

  ser::Writer w;
  record.encode(w);
  ser::Reader r(w.data());
  auto back = Record::decode(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, record);
}

TEST(Record, DecodeRejectsImplausibleFieldCount) {
  ser::Writer w;
  w.varint(1);     // index
  w.varint(99999); // field count
  ser::Reader r(w.data());
  EXPECT_FALSE(Record::decode(r).is_ok());
}

TEST(Record, SizeHintTracksContent) {
  Record small(1);
  small.set("x", 1.0);
  Record large(1);
  large.set("seq", std::string(1000, 'a'));
  EXPECT_GT(large.encoded_size_hint(), small.encoded_size_hint() + 900);
}

TEST(Crc32, KnownVectors) {
  // "123456789" -> 0xCBF43926 (standard check value).
  EXPECT_EQ(Crc32::of("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(Crc32::of("", 0), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "interactive parallel analysis";
  Crc32 crc;
  crc.update(data.data(), 10);
  crc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc.value(), Crc32::of(data.data(), data.size()));
}

TEST(Crc32, DetectsCorruption) {
  std::string data = "payload";
  const std::uint32_t clean = Crc32::of(data.data(), data.size());
  data[3] ^= 1;
  EXPECT_NE(clean, Crc32::of(data.data(), data.size()));
}

}  // namespace
}  // namespace ipa::data
