#include <gtest/gtest.h>

#include "data/crc32.hpp"
#include "data/record.hpp"
#include "data/value.hpp"

namespace ipa::data {
namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value(std::int64_t{42}).is_int());
  EXPECT_TRUE(Value(3.5).is_real());
  EXPECT_TRUE(Value("acgt").is_str());
  EXPECT_TRUE(Value(Value::RealVec{1, 2}).is_vec());
  EXPECT_EQ(Value(std::int64_t{42}).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).as_real(), 3.5);
  EXPECT_EQ(Value("acgt").as_str(), "acgt");
  EXPECT_EQ(Value(Value::RealVec{1, 2}).as_vec().size(), 2u);
}

TEST(Value, ToNumberCoercion) {
  EXPECT_DOUBLE_EQ(Value(std::int64_t{7}).to_number().value(), 7.0);
  EXPECT_DOUBLE_EQ(Value(2.5).to_number().value(), 2.5);
  EXPECT_FALSE(Value("not-a-number").to_number().is_ok());
  EXPECT_FALSE(Value(Value::RealVec{1}).to_number().is_ok());
}

TEST(Value, ToString) {
  EXPECT_EQ(Value(std::int64_t{-3}).to_string(), "-3");
  EXPECT_EQ(Value("x").to_string(), "\"x\"");
  EXPECT_EQ(Value(Value::RealVec{1, 2.5}).to_string(), "[1, 2.5]");
}

TEST(Value, EncodeDecodeRoundTrip) {
  const Value cases[] = {Value(std::int64_t{0}), Value(std::int64_t{-1234567}),
                         Value(3.14159), Value(""), Value("higgs boson"),
                         Value(Value::RealVec{}), Value(Value::RealVec{1.5, -2.5, 1e300})};
  for (const Value& v : cases) {
    ser::Writer w;
    v.encode(w);
    ser::Reader r(w.data());
    auto back = Value::decode(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Value, DecodeRejectsBadTag) {
  ser::Bytes bad = {9};
  ser::Reader r(bad);
  EXPECT_FALSE(Value::decode(r).is_ok());
}

TEST(Record, SetGetOverwrite) {
  Record record(7);
  record.set("e", 91.2);
  record.set("n", std::int64_t{3});
  record.set("tag", "signal");
  record.set("px", Value::RealVec{1, 2, 3});
  EXPECT_EQ(record.index(), 7u);
  EXPECT_EQ(record.field_count(), 4u);
  EXPECT_DOUBLE_EQ(record.real_or("e"), 91.2);
  EXPECT_EQ(record.int_or("n"), 3);
  EXPECT_EQ(record.str_or("tag"), "signal");
  ASSERT_NE(record.vec_or_null("px"), nullptr);
  EXPECT_EQ(record.vec_or_null("px")->size(), 3u);

  record.set("e", 125.0);  // overwrite keeps field count
  EXPECT_EQ(record.field_count(), 4u);
  EXPECT_DOUBLE_EQ(record.real_or("e"), 125.0);
}

TEST(Record, FallbacksForMissingOrMistyped) {
  Record record;
  record.set("s", "text");
  EXPECT_DOUBLE_EQ(record.real_or("absent", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(record.real_or("s", -1.0), -1.0);
  EXPECT_EQ(record.int_or("s", 9), 9);
  EXPECT_EQ(record.str_or("absent", "d"), "d");
  EXPECT_EQ(record.vec_or_null("s"), nullptr);
  EXPECT_FALSE(record.has("absent"));
  EXPECT_TRUE(record.has("s"));
}

TEST(Record, IntCoercesToRealGetter) {
  Record record;
  record.set("n", std::int64_t{5});
  EXPECT_DOUBLE_EQ(record.real_or("n"), 5.0);
}

TEST(Record, EncodeDecodeRoundTrip) {
  Record record(123456);
  record.set("mass", 125.3);
  record.set("count", std::int64_t{-9});
  record.set("seq", "acgtacgt");
  record.set("p4", Value::RealVec{1.1, 2.2, 3.3, 4.4});

  ser::Writer w;
  record.encode(w);
  ser::Reader r(w.data());
  auto back = Record::decode(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, record);
}

TEST(Record, DecodeRejectsImplausibleFieldCount) {
  ser::Writer w;
  w.varint(1);     // index
  w.varint(99999); // field count
  ser::Reader r(w.data());
  EXPECT_FALSE(Record::decode(r).is_ok());
}

TEST(Record, SizeHintTracksContent) {
  Record small(1);
  small.set("x", 1.0);
  Record large(1);
  large.set("seq", std::string(1000, 'a'));
  EXPECT_GT(large.encoded_size_hint(), small.encoded_size_hint() + 900);
}

TEST(Record, SizeHintCoversActualEncodingForVecAndString) {
  Record record(99);
  record.set("mass", 125.3);
  record.set("n", std::int64_t{-40});
  record.set("seq", std::string(300, 'g'));
  record.set("p4", Value::RealVec(50, 1.25));
  ser::Writer w;
  record.encode(w);
  // The hint feeds buffer reservations, so it must not undershoot for
  // string- and vector-heavy records.
  EXPECT_GE(record.encoded_size_hint(), w.data().size());
  EXPECT_LE(record.encoded_size_hint(), w.data().size() * 2 + 64);
}

TEST(Record, WideRecordLookupUsesSortedPath) {
  // Past kLinearLookupMax fields, find() switches to the sorted index; the
  // answers must not change.
  Record record;
  for (int i = 0; i < 3 * static_cast<int>(Record::kLinearLookupMax); ++i) {
    record.set("field" + std::to_string(i), static_cast<double>(i));
  }
  for (int i = 0; i < 3 * static_cast<int>(Record::kLinearLookupMax); ++i) {
    EXPECT_DOUBLE_EQ(record.real_or("field" + std::to_string(i), -1), i);
  }
  EXPECT_EQ(record.find("absent"), nullptr);
  // Overwrites and appends after lookups keep the index coherent.
  record.set("field5", 500.0);
  record.set("brand-new", 7.0);
  EXPECT_DOUBLE_EQ(record.real_or("field5"), 500.0);
  EXPECT_DOUBLE_EQ(record.real_or("brand-new"), 7.0);
}

TEST(Record, DuplicateNamesFromDecodeResolveToFirst) {
  // decode() does not dedupe, so duplicate names can exist; both the linear
  // and the sorted lookup must resolve to the first occurrence.
  for (const int filler : {0, 20}) {  // 0 → linear scan; 20 → sorted path
    ser::Writer w;
    w.varint(1);  // index
    w.varint(static_cast<std::uint64_t>(filler) + 2);
    w.string("dup");
    Value(1.0).encode(w);
    for (int i = 0; i < filler; ++i) {
      w.string("f" + std::to_string(i));
      Value(static_cast<double>(i)).encode(w);
    }
    w.string("dup");
    Value(2.0).encode(w);
    ser::Reader r(w.data());
    auto record = Record::decode(r);
    ASSERT_TRUE(record.is_ok());
    EXPECT_DOUBLE_EQ(record->real_or("dup", -1), 1.0) << "filler " << filler;
  }
}

TEST(Crc32, KnownVectors) {
  // "123456789" -> 0xCBF43926 (standard check value).
  EXPECT_EQ(Crc32::of("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(Crc32::of("", 0), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "interactive parallel analysis";
  Crc32 crc;
  crc.update(data.data(), 10);
  crc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc.value(), Crc32::of(data.data(), data.size()));
}

TEST(Crc32, DetectsCorruption) {
  std::string data = "payload";
  const std::uint32_t clean = Crc32::of(data.data(), data.size());
  data[3] ^= 1;
  EXPECT_NE(clean, Crc32::of(data.data(), data.size()));
}

}  // namespace
}  // namespace ipa::data
