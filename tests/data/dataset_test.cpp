#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.hpp"
#include "data/splitter.hpp"

namespace ipa::data {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ipa-ds-" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static std::vector<Record> make_records(std::size_t n, std::uint64_t seed = 42) {
    Rng rng(seed);
    std::vector<Record> records;
    records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Record record(i);
      record.set("energy", rng.uniform(0.0, 500.0));
      record.set("ntrk", static_cast<std::int64_t>(rng.uniform_u64(0, 40)));
      if (i % 3 == 0) record.set("tag", "signal");
      // Variable-size payload exercises byte-balanced splitting.
      Value::RealVec p4(2 + rng.uniform_u64(0, 6));
      for (double& x : p4) x = rng.normal(0, 10);
      record.set("p4", std::move(p4));
      records.push_back(std::move(record));
    }
    return records;
  }

  std::filesystem::path dir_;
};

TEST_F(DatasetTest, WriteReadRoundTrip) {
  const auto records = make_records(100);
  ASSERT_TRUE(write_dataset(path("a.ipd"), "test-a", records, {{"experiment", "LC"}}).is_ok());

  auto reader = DatasetReader::open(path("a.ipd"));
  ASSERT_TRUE(reader.is_ok()) << reader.status().to_string();
  EXPECT_EQ(reader->info().name, "test-a");
  EXPECT_EQ(reader->info().metadata.at("experiment"), "LC");
  EXPECT_EQ(reader->size(), 100u);

  auto back = read_all(path("a.ipd"));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, records);
}

TEST_F(DatasetTest, EmptyDatasetRoundTrip) {
  ASSERT_TRUE(write_dataset(path("empty.ipd"), "empty", {}).is_ok());
  auto reader = DatasetReader::open(path("empty.ipd"));
  ASSERT_TRUE(reader.is_ok());
  EXPECT_EQ(reader->size(), 0u);
  EXPECT_EQ(reader->next().status().code(), StatusCode::kOutOfRange);
}

TEST_F(DatasetTest, RandomAccessMatchesSequential) {
  const auto records = make_records(1000);
  ASSERT_TRUE(write_dataset(path("b.ipd"), "test-b", records).is_ok());
  auto reader = DatasetReader::open(path("b.ipd"));
  ASSERT_TRUE(reader.is_ok());

  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t i = rng.uniform_u64(0, 999);
    auto record = reader->read(i);
    ASSERT_TRUE(record.is_ok()) << "record " << i;
    EXPECT_EQ(*record, records[static_cast<std::size_t>(i)]);
  }
}

TEST_F(DatasetTest, SeekAndSequentialInterleave) {
  const auto records = make_records(300);
  ASSERT_TRUE(write_dataset(path("c.ipd"), "test-c", records).is_ok());
  auto reader = DatasetReader::open(path("c.ipd"));
  ASSERT_TRUE(reader.is_ok());

  ASSERT_TRUE(reader->seek(250).is_ok());
  EXPECT_EQ(reader->position(), 250u);
  EXPECT_EQ(reader->next().value(), records[250]);
  EXPECT_EQ(reader->next().value(), records[251]);
  ASSERT_TRUE(reader->seek(0).is_ok());
  EXPECT_EQ(reader->next().value(), records[0]);
}

TEST_F(DatasetTest, SeekPastEndRejected) {
  ASSERT_TRUE(write_dataset(path("d.ipd"), "d", make_records(10)).is_ok());
  auto reader = DatasetReader::open(path("d.ipd"));
  ASSERT_TRUE(reader.is_ok());
  EXPECT_TRUE(reader->seek(10).is_ok());  // at-end is legal
  EXPECT_EQ(reader->next().status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(reader->seek(11).code(), StatusCode::kOutOfRange);
}

TEST_F(DatasetTest, IntegrityCheckPassesOnCleanFile) {
  ASSERT_TRUE(write_dataset(path("e.ipd"), "e", make_records(200)).is_ok());
  auto reader = DatasetReader::open(path("e.ipd"));
  ASSERT_TRUE(reader.is_ok());
  EXPECT_TRUE(reader->verify_integrity().is_ok());
  // Position is restored after the integrity scan.
  EXPECT_EQ(reader->position(), 0u);
}

TEST_F(DatasetTest, IntegrityCheckCatchesBitFlip) {
  ASSERT_TRUE(write_dataset(path("f.ipd"), "f", make_records(200)).is_ok());
  // Flip one byte in the middle of the record section.
  {
    std::FILE* fp = std::fopen(path("f.ipd").c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    std::fseek(fp, 200, SEEK_SET);
    int c = std::fgetc(fp);
    std::fseek(fp, 200, SEEK_SET);
    std::fputc(c ^ 0x01, fp);
    std::fclose(fp);
  }
  auto reader = DatasetReader::open(path("f.ipd"));
  // Open may succeed (header intact); the CRC scan must fail.
  if (reader.is_ok()) {
    EXPECT_EQ(reader->verify_integrity().code(), StatusCode::kDataLoss);
  }
}

TEST_F(DatasetTest, OpenRejectsGarbage) {
  {
    std::FILE* fp = std::fopen(path("junk.ipd").c_str(), "wb");
    std::fputs("this is not an ipd file at all, sorry", fp);
    std::fclose(fp);
  }
  EXPECT_FALSE(DatasetReader::open(path("junk.ipd")).is_ok());
  EXPECT_EQ(DatasetReader::open(path("missing.ipd")).status().code(), StatusCode::kNotFound);
}

TEST_F(DatasetTest, UnfinishedFileRejected) {
  {
    auto writer = DatasetWriter::create(path("unfinished.ipd"), "u");
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE(writer->append(make_records(1)[0]).is_ok());
    // No finish(): destructor warns, file lacks trailer.
  }
  EXPECT_FALSE(DatasetReader::open(path("unfinished.ipd")).is_ok());
}

TEST_F(DatasetTest, AppendAfterFinishRejected) {
  auto writer = DatasetWriter::create(path("g.ipd"), "g");
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE(writer->finish().is_ok());
  EXPECT_EQ(writer->append(Record(0)).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(writer->finish().is_ok());  // idempotent
}

// --- splitting -------------------------------------------------------------

class SplitTest : public DatasetTest,
                  public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(SplitTest, PartsConcatenateToSource) {
  const auto [record_count, parts] = GetParam();
  ASSERT_TRUE(
      write_dataset(path("src.ipd"), "src", make_records(static_cast<std::size_t>(record_count)))
          .is_ok());
  auto split = split_dataset(path("src.ipd"), path("src"), parts);
  ASSERT_TRUE(split.is_ok()) << split.status().to_string();
  EXPECT_EQ(split->parts.size(), static_cast<std::size_t>(parts));
  EXPECT_EQ(split->total_records, static_cast<std::uint64_t>(record_count));
  EXPECT_TRUE(verify_split(path("src.ipd"), *split).is_ok());
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, SplitTest,
                         ::testing::Values(std::make_tuple(1000, 1), std::make_tuple(1000, 2),
                                           std::make_tuple(1000, 4), std::make_tuple(1000, 8),
                                           std::make_tuple(1000, 16), std::make_tuple(97, 16),
                                           std::make_tuple(5, 16), std::make_tuple(0, 4),
                                           std::make_tuple(1, 1)));

TEST_F(DatasetTest, SplitBalancesBytes) {
  ASSERT_TRUE(write_dataset(path("bal.ipd"), "bal", make_records(2000)).is_ok());
  auto split = split_dataset(path("bal.ipd"), path("bal"), 8);
  ASSERT_TRUE(split.is_ok());
  std::uint64_t min_records = ~0ULL, max_records = 0;
  for (const auto& part : split->parts) {
    min_records = std::min(min_records, part.record_count);
    max_records = std::max(max_records, part.record_count);
  }
  // Byte-balanced parts of uniform-ish records stay within a loose band.
  EXPECT_GT(min_records, 2000u / 8 / 2);
  EXPECT_LT(max_records, 2000u / 8 * 2);
}

TEST_F(DatasetTest, SplitPartMetadataDescribesRange) {
  ASSERT_TRUE(write_dataset(path("m.ipd"), "lc-run7", make_records(100)).is_ok());
  auto split = split_dataset(path("m.ipd"), path("m"), 4);
  ASSERT_TRUE(split.is_ok());
  for (int k = 0; k < 4; ++k) {
    auto reader = DatasetReader::open(split->parts[static_cast<std::size_t>(k)].path);
    ASSERT_TRUE(reader.is_ok());
    const auto& meta = reader->info().metadata;
    EXPECT_EQ(meta.at("part.index"), std::to_string(k));
    EXPECT_EQ(meta.at("part.count"), "4");
    EXPECT_EQ(meta.at("part.parent"), "lc-run7");
    EXPECT_EQ(meta.at("part.first"),
              std::to_string(split->parts[static_cast<std::size_t>(k)].first_record));
  }
}

TEST_F(DatasetTest, SplitRejectsBadArgs) {
  ASSERT_TRUE(write_dataset(path("x.ipd"), "x", make_records(5)).is_ok());
  EXPECT_FALSE(split_dataset(path("x.ipd"), path("x"), 0).is_ok());
  EXPECT_FALSE(split_dataset(path("x.ipd"), path("x"), -1).is_ok());
  EXPECT_FALSE(split_dataset(path("nope.ipd"), path("x"), 2).is_ok());
}

}  // namespace
}  // namespace ipa::data
