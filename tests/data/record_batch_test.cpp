#include <gtest/gtest.h>

#include <filesystem>

#include "data/dataset.hpp"
#include "data/record_batch.hpp"
#include "data/schema.hpp"

namespace ipa::data {
namespace {

Record make_event(std::uint64_t index) {
  Record record(index);
  record.set("n", static_cast<std::int64_t>(index * 3));
  record.set("mass", 100.0 + static_cast<double>(index));
  record.set("tag", index % 2 == 0 ? "even" : "odd");
  record.set("px", Value::RealVec{1.0 * static_cast<double>(index), -2.5, 3.25});
  return record;
}

TEST(Schema, InternAssignsStableSlots) {
  Schema schema;
  EXPECT_EQ(schema.intern("a", ColumnKind::kReal), 0);
  EXPECT_EQ(schema.intern("b", ColumnKind::kInt), 1);
  EXPECT_EQ(schema.intern("a", ColumnKind::kReal), 0);  // already interned
  EXPECT_EQ(schema.slot_of("b"), 1);
  EXPECT_EQ(schema.slot_of("missing"), Schema::kNoSlot);
  EXPECT_EQ(schema.kind(0), ColumnKind::kReal);
  EXPECT_EQ(schema.field_count(), 2u);
}

TEST(Schema, VersionBumpsOnlyOnNewFields) {
  Schema schema;
  const std::uint64_t v0 = schema.version();
  schema.intern("x", ColumnKind::kReal);
  const std::uint64_t v1 = schema.version();
  EXPECT_GT(v1, v0);
  schema.intern("x", ColumnKind::kReal);
  EXPECT_EQ(schema.version(), v1);
}

TEST(Schema, EncodeDecodeRoundTrip) {
  Schema schema;
  schema.intern("energy", ColumnKind::kReal);
  schema.intern("count", ColumnKind::kInt);
  schema.intern("label", ColumnKind::kStr);
  schema.intern("p4", ColumnKind::kVec);
  ser::Writer w;
  schema.encode(w);
  ser::Reader r(w.data());
  auto back = Schema::decode(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, schema);
  EXPECT_TRUE(r.at_end());
}

TEST(RecordBatch, RowRoundTripPreservesEverything) {
  std::vector<Record> records;
  for (std::uint64_t i = 0; i < 10; ++i) records.push_back(make_event(i));
  const RecordBatch batch = RecordBatch::from_records(records);
  EXPECT_EQ(batch.rows(), records.size());
  EXPECT_EQ(batch.to_records(), records);
}

TEST(RecordBatch, MissingFieldsBecomeNullCells) {
  Record full(0);
  full.set("a", 1.0);
  full.set("b", std::int64_t{2});
  Record partial(1);
  partial.set("a", 3.0);  // no "b"
  const RecordBatch batch = RecordBatch::from_records({full, partial});

  const int b = batch.schema().slot_of("b");
  ASSERT_NE(b, Schema::kNoSlot);
  EXPECT_EQ(batch.cell_kind(b, 0), RecordBatch::CellKind::kInt);
  EXPECT_EQ(batch.cell_kind(b, 1), RecordBatch::CellKind::kNull);

  const auto back = batch.to_records();
  EXPECT_EQ(back[0], full);
  EXPECT_EQ(back[1], partial);
}

TEST(RecordBatch, LateFieldBackfillsEarlierRows) {
  Record first(0);
  first.set("x", 1.0);
  Record second(1);
  second.set("x", 2.0);
  second.set("extra", "late");
  const RecordBatch batch = RecordBatch::from_records({first, second});
  const int extra = batch.schema().slot_of("extra");
  ASSERT_NE(extra, Schema::kNoSlot);
  EXPECT_EQ(batch.cell_kind(extra, 0), RecordBatch::CellKind::kNull);
  EXPECT_EQ(batch.cell_str(extra, 1), "late");
  EXPECT_EQ(batch.to_records(), (std::vector<Record>{first, second}));
}

TEST(RecordBatch, KindConflictsPreservedExactly) {
  // Row 0 establishes "x" as real; row 1 carries a string "x" (legal in the
  // row format) which must survive via the overflow side-table, not be
  // coerced or dropped.
  Record a(0);
  a.set("x", 1.5);
  Record b(1);
  b.set("x", "not a number");
  const RecordBatch batch = RecordBatch::from_records({a, b});
  const int x = batch.schema().slot_of("x");
  EXPECT_EQ(batch.cell_kind(x, 0), RecordBatch::CellKind::kReal);
  EXPECT_EQ(batch.cell_kind(x, 1), RecordBatch::CellKind::kStr);
  EXPECT_EQ(batch.cell_str(x, 1), "not a number");
  const auto back = batch.to_records();
  EXPECT_EQ(back[0], a);
  EXPECT_EQ(back[1], b);
}

TEST(RecordBatch, CellNumberWidensIntsOnly) {
  Record record(0);
  record.set("i", std::int64_t{7});
  record.set("r", 2.5);
  record.set("s", "nope");
  const RecordBatch batch = RecordBatch::from_records({record});
  double out = -1;
  EXPECT_TRUE(batch.cell_number(batch.schema().slot_of("i"), 0, &out));
  EXPECT_DOUBLE_EQ(out, 7.0);
  EXPECT_TRUE(batch.cell_number(batch.schema().slot_of("r"), 0, &out));
  EXPECT_DOUBLE_EQ(out, 2.5);
  EXPECT_FALSE(batch.cell_number(batch.schema().slot_of("s"), 0, &out));
  EXPECT_FALSE(batch.cell_number(Schema::kNoSlot, 0, &out));
}

TEST(RecordBatch, AppendEncodedMatchesRowAppend) {
  std::vector<Record> records;
  for (std::uint64_t i = 0; i < 8; ++i) records.push_back(make_event(i));

  RecordBatch from_rows = RecordBatch::from_records(records);
  RecordBatch from_wire;
  for (const Record& record : records) {
    ser::Writer w;
    record.encode(w);
    ser::Reader r(w.data());
    ASSERT_TRUE(from_wire.append_encoded(r).is_ok());
    EXPECT_TRUE(r.at_end());
  }
  EXPECT_EQ(from_wire.rows(), from_rows.rows());
  EXPECT_EQ(from_wire.to_records(), from_rows.to_records());
}

TEST(RecordBatch, AppendEncodedRejectsDuplicateFields) {
  ser::Writer w;
  w.varint(0);  // index
  w.varint(2);  // field count
  w.string("x");
  Value(1.0).encode(w);
  w.string("x");
  Value(2.0).encode(w);
  ser::Reader r(w.data());
  RecordBatch batch;
  const Status status = batch.append_encoded(r);
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.to_string().find("duplicate"), std::string::npos);
}

TEST(RecordBatch, EncodeDecodeRoundTrip) {
  std::vector<Record> records;
  for (std::uint64_t i = 0; i < 6; ++i) records.push_back(make_event(i));
  Record conflict(6);
  conflict.set("mass", "heavy");  // overflow cell rides along
  records.push_back(conflict);

  const RecordBatch batch = RecordBatch::from_records(records);
  ser::Writer w;
  batch.encode(w);
  EXPECT_LE(w.data().size(), batch.encoded_size_hint() * 2);

  ser::Reader r(w.data());
  auto back = RecordBatch::decode(r);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(back->rows(), batch.rows());
  EXPECT_EQ(back->to_records(), records);

  ser::Writer w2;
  back->encode(w2);
  EXPECT_EQ(w2.data(), w.data());
}

TEST(RecordBatch, DecodeRejectsTruncatedBytes) {
  const RecordBatch batch = RecordBatch::from_records({make_event(0), make_event(1)});
  ser::Writer w;
  batch.encode(w);
  for (const std::size_t cut : {w.data().size() / 4, w.data().size() / 2}) {
    ser::Reader r(w.data().data(), cut);
    EXPECT_FALSE(RecordBatch::decode(r).is_ok()) << "cut at " << cut;
  }
}

TEST(RecordBatch, ClearKeepsSchemaAndSlotIds) {
  RecordBatch batch;
  batch.append(make_event(0));
  const int mass = batch.schema().slot_of("mass");
  batch.clear();
  EXPECT_EQ(batch.rows(), 0u);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.schema().slot_of("mass"), mass);  // schema survives clear()
  batch.append(make_event(5));
  EXPECT_EQ(batch.rows(), 1u);
  EXPECT_EQ(batch.index(0), 5u);
  EXPECT_DOUBLE_EQ(batch.cell_real(mass, 0), 105.0);
}

class ReadBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "ipa-record-batch-test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(ReadBatchTest, ReadBatchMatchesRecordAtATimeRead) {
  const std::string path = (dir_ / "events.ipd").string();
  std::vector<Record> records;
  for (std::uint64_t i = 0; i < 100; ++i) records.push_back(make_event(i));
  ASSERT_TRUE(write_dataset(path, "batch-test", records).is_ok());

  auto reader = DatasetReader::open(path);
  ASSERT_TRUE(reader.is_ok());
  RecordBatch batch = reader->make_batch();
  std::vector<Record> streamed;
  while (true) {
    batch.clear();
    auto appended = reader->read_batch(batch, 17);  // uneven chunks on purpose
    ASSERT_TRUE(appended.is_ok()) << appended.status().to_string();
    if (*appended == 0) break;
    EXPECT_LE(*appended, 17u);
    for (const Record& record : batch.to_records()) streamed.push_back(record);
  }
  EXPECT_EQ(streamed, records);
  // Slot ids are reader-wide: the shared schema saw every field once.
  EXPECT_EQ(reader->schema()->field_count(), 4u);
}

TEST_F(ReadBatchTest, ReadBatchResumesAfterSeek) {
  const std::string path = (dir_ / "seek.ipd").string();
  std::vector<Record> records;
  for (std::uint64_t i = 0; i < 40; ++i) records.push_back(make_event(i));
  ASSERT_TRUE(write_dataset(path, "seek-test", records).is_ok());

  auto reader = DatasetReader::open(path);
  ASSERT_TRUE(reader.is_ok());
  ASSERT_TRUE(reader->seek(25).is_ok());
  RecordBatch batch = reader->make_batch();
  auto appended = reader->read_batch(batch, 1000);
  ASSERT_TRUE(appended.is_ok());
  EXPECT_EQ(*appended, 15u);
  EXPECT_EQ(batch.index(0), 25u);
  EXPECT_EQ(batch.to_records(),
            std::vector<Record>(records.begin() + 25, records.end()));
}

}  // namespace
}  // namespace ipa::data
