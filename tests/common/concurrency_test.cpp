#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/mpmc_queue.hpp"
#include "common/thread_pool.hpp"

namespace ipa {
namespace {

TEST(MpmcQueue, PushPopSingleThread) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(MpmcQueue, TryPushRespectsCapacity) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(MpmcQueue, CloseDrainsThenSignals) {
  MpmcQueue<int> q(8);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(MpmcQueue, PopForTimesOut) {
  MpmcQueue<int> q(1);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(30)), std::nullopt);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(MpmcQueue, CloseWakesBlockedConsumer) {
  MpmcQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(MpmcQueue, ManyProducersManyConsumersConserveItems) {
  MpmcQueue<int> q(64);
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 2000;
  std::atomic<long long> total{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto item = q.pop()) {
        total += *item;
        ++count;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(MpmcQueue, ShutdownRacesProducersAndConsumers) {
  // close() fired from a third thread while producers are mid-push and
  // consumers mid-pop: every producer must observe a clean false (never
  // hang on a full queue), every consumer a clean drain-then-nullopt, and
  // nothing accepted may be lost. Run under TSan in the check.sh thread
  // tier, this also proves the internal state is race-free at shutdown.
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    MpmcQueue<int> q(8);
    std::atomic<int> produced{0};
    std::atomic<int> consumed{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < 3; ++p) {
      threads.emplace_back([&] {
        for (int i = 0; i < 1000; ++i) {
          if (!q.push(i)) return;  // closed mid-stream
          ++produced;
        }
      });
    }
    for (int c = 0; c < 3; ++c) {
      threads.emplace_back([&] {
        while (q.pop()) ++consumed;
      });
    }
    threads.emplace_back([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * (round % 5)));
      q.close();
    });
    for (auto& t : threads) t.join();
    // Consumers drain everything that was accepted before the close won.
    EXPECT_EQ(consumed.load(), produced.load()) << "round " << round;
    EXPECT_TRUE(q.closed());
  }
}

TEST(MpmcQueue, NonBlockingOpsUnderContention) {
  MpmcQueue<int> q(4);
  std::atomic<int> pushed{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        if (q.try_push(i)) ++pushed;
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        if (q.try_pop()) ++popped;
      }
    });
  }
  for (auto& t : threads) t.join();
  while (q.try_pop()) ++popped;
  EXPECT_EQ(pushed.load(), popped.load());
}

TEST(MpmcQueue, ZeroCapacityClampsToOne) {
  MpmcQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.post([&] { ++count; });
  pool.shutdown();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(1);
  pool.shutdown();
  auto fut = pool.submit([] { return 5; });
  EXPECT_EQ(fut.get(), 5);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();
  SUCCEED();
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<std::future<long long>> futures;
  constexpr int kChunks = 16;
  for (int c = 0; c < kChunks; ++c) {
    futures.push_back(pool.submit([c] {
      long long s = 0;
      for (int i = c * 1000; i < (c + 1) * 1000; ++i) s += i;
      return s;
    }));
  }
  long long total = 0;
  for (auto& f : futures) total += f.get();
  const long long n = kChunks * 1000;
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(Ids, UniqueAndPrefixed) {
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::string id = make_id("sess");
    EXPECT_TRUE(id.rfind("sess-", 0) == 0) << id;
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
  }
}

TEST(Ids, SequenceMonotonic) {
  const auto a = next_sequence();
  const auto b = next_sequence();
  EXPECT_GT(b, a);
}

TEST(Clock, ManualClockAdvances) {
  ManualClock clock(100.0);
  EXPECT_DOUBLE_EQ(clock.now(), 100.0);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 102.5);
  clock.set(0.0);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(Clock, WallClockMonotonic) {
  const auto& clock = WallClock::instance();
  const double t0 = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(clock.now(), t0);
}

TEST(Clock, StopwatchMeasuresManualTime) {
  ManualClock clock;
  Stopwatch sw(clock);
  clock.advance(3.0);
  EXPECT_DOUBLE_EQ(sw.elapsed_s(), 3.0);
  sw.reset();
  EXPECT_DOUBLE_EQ(sw.elapsed_s(), 0.0);
}

}  // namespace
}  // namespace ipa
