#include "common/status.hpp"

#include <gtest/gtest.h>

namespace ipa {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = not_found("dataset lc-run7");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "dataset lc-run7");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: dataset lc-run7");
}

TEST(Status, WithPrefixPrepends) {
  Status s = invalid_argument("bad port").with_prefix("uri");
  EXPECT_EQ(s.message(), "uri: bad port");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(Status, WithPrefixOnOkIsNoop) {
  Status s = Status::ok().with_prefix("ctx");
  EXPECT_TRUE(s.is_ok());
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(not_found("x"), not_found("x"));
  EXPECT_FALSE(not_found("x") == not_found("y"));
  EXPECT_FALSE(not_found("x") == aborted("x"));
}

TEST(Status, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(invalid_argument("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(already_exists("m").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(permission_denied("m").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(unauthenticated("m").code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(failed_precondition("m").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(out_of_range("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(unavailable("m").code(), StatusCode::kUnavailable);
  EXPECT_EQ(deadline_exceeded("m").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(aborted("m").code(), StatusCode::kAborted);
  EXPECT_EQ(resource_exhausted("m").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(unimplemented("m").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(internal_error("m").code(), StatusCode::kInternal);
  EXPECT_EQ(data_loss("m").code(), StatusCode::kDataLoss);
  EXPECT_EQ(cancelled("m").code(), StatusCode::kCancelled);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r = unavailable("worker down");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("histogram");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "histogram");
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

Result<int> parse_positive(int x) {
  if (x <= 0) return invalid_argument("not positive");
  return x;
}

Status use_assign_or_return(int x, int& out) {
  IPA_ASSIGN_OR_RETURN(const int v, parse_positive(x));
  out = v * 2;
  return Status::ok();
}

TEST(Result, AssignOrReturnMacroPropagates) {
  int out = 0;
  EXPECT_TRUE(use_assign_or_return(21, out).is_ok());
  EXPECT_EQ(out, 42);
  const Status err = use_assign_or_return(-1, out);
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
}

Status use_return_if_error(bool fail) {
  IPA_RETURN_IF_ERROR(fail ? aborted("stop") : Status::ok());
  return Status::ok();
}

TEST(Result, ReturnIfErrorMacro) {
  EXPECT_TRUE(use_return_if_error(false).is_ok());
  EXPECT_EQ(use_return_if_error(true).code(), StatusCode::kAborted);
}

}  // namespace
}  // namespace ipa
