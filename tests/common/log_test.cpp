// Log sink: std::function sinks capture lines, chain, restore, and survive
// being swapped while other threads are emitting.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/sync.hpp"

namespace ipa::log {
namespace {

/// Installs a capturing sink for the test's lifetime and restores the
/// previous one (and the global level) on exit.
class SinkCapture {
 public:
  SinkCapture() {
    prev_level_ = global_level();
    set_global_level(Level::kTrace);
    prev_ = set_sink([this](Level level, const std::string& line) {
      ipa::LockGuard lock(mutex_);
      lines_.emplace_back(level, line);
    });
  }
  ~SinkCapture() {
    set_sink(std::move(prev_));
    set_global_level(prev_level_);
  }

  std::vector<std::pair<Level, std::string>> lines() const {
    ipa::LockGuard lock(mutex_);
    return lines_;
  }

 private:
  mutable ipa::Mutex mutex_;
  std::vector<std::pair<Level, std::string>> lines_;
  SinkFn prev_;
  Level prev_level_ = Level::kWarn;
};

TEST(LogSink, CapturesFormattedLinesWithLevel) {
  SinkCapture capture;
  IPA_LOG(info) << "hello " << 42;
  IPA_LOG(error) << "boom";
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].first, Level::kInfo);
  EXPECT_NE(lines[0].second.find("hello 42"), std::string::npos);
  EXPECT_EQ(lines[1].first, Level::kError);
  EXPECT_NE(lines[1].second.find("boom"), std::string::npos);
}

TEST(LogSink, BelowThresholdLinesNeverReachTheSink) {
  SinkCapture capture;
  set_global_level(Level::kWarn);
  IPA_LOG(debug) << "invisible";
  IPA_LOG(warn) << "visible";
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].first, Level::kWarn);
}

TEST(LogSink, SetSinkReturnsPreviousForChaining) {
  SinkCapture capture;  // outer sink
  std::atomic<int> wrapped{0};
  // A wrapper counts lines, then forwards to whatever was installed.
  SinkFn inner = set_sink(nullptr);  // grab the outer sink...
  set_sink([&wrapped, inner](Level level, const std::string& line) {
    ++wrapped;
    if (inner) inner(level, line);
  });
  IPA_LOG(warn) << "through the chain";
  set_sink(std::move(inner));  // unhook the wrapper
  EXPECT_EQ(wrapped.load(), 1);
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].second.find("through the chain"), std::string::npos);
}

TEST(LogSink, ConcurrentEmissionWhileSwappingSinks) {
  // Writers hammer the logger while the main thread repeatedly swaps
  // between two capturing sinks. Every line must land in exactly one sink
  // and none may be emitted against a destroyed closure (TSan-checked via
  // tools/check.sh tier 2).
  std::atomic<std::uint64_t> sink_a{0}, sink_b{0};
  const Level prev_level = global_level();
  set_global_level(Level::kTrace);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> emitted{0};
  set_sink([&sink_a](Level, const std::string&) {
    sink_a.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        IPA_LOG(info) << "spin";
        emitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Keep swapping until the writers have emitted plenty of lines *through*
  // the churn (bounded so a wedged logger still fails fast via timeout).
  while (emitted.load(std::memory_order_relaxed) < 5000) {
    set_sink([&sink_b](Level, const std::string&) {
      sink_b.fetch_add(1, std::memory_order_relaxed);
    });
    set_sink([&sink_a](Level, const std::string&) {
      sink_a.fetch_add(1, std::memory_order_relaxed);
    });
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();
  set_sink(nullptr);
  set_global_level(prev_level);

  // Every line landed in exactly one of the two capture sinks; emissions
  // in flight across a swap kept their sink alive instead of crashing.
  EXPECT_GE(emitted.load(), 5000u);
  EXPECT_EQ(sink_a.load() + sink_b.load(), emitted.load());
}

}  // namespace
}  // namespace ipa::log
