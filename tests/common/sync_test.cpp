// Concurrency-contract layer: lock-rank bookkeeping, ordering enforcement
// (death tests) and the CondVar/UniqueLock wait path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace ipa {
namespace {

TEST(LockRank, RankNamesAreStable) {
  // Abort messages (and the death-test regexes below) print these names.
  EXPECT_STREQ(to_string(LockRank::kLog), "log");
  EXPECT_STREQ(to_string(LockRank::kQueue), "queue");
  EXPECT_STREQ(to_string(LockRank::kSession), "session");
  EXPECT_STREQ(to_string(LockRank::kUnranked), "unranked");
}

TEST(LockRank, DescendingAcquisitionIsAllowed) {
  Mutex session(LockRank::kSession, "session");
  Mutex queue(LockRank::kQueue, "queue");
  Mutex log(LockRank::kLog, "log");
  LockGuard a(session);
  LockGuard b(queue);
  LockGuard c(log);
#if IPA_LOCK_CHECKS
  EXPECT_EQ(sync_detail::held_depth(), 3);
#endif
}

TEST(LockRank, ReleaseUnwindsTheHeldStack) {
  Mutex outer(LockRank::kSession, "outer");
  Mutex inner(LockRank::kQueue, "inner");
  {
    LockGuard a(outer);
    { LockGuard b(inner); }
    { LockGuard b(inner); }  // re-acquire after release is fine
  }
#if IPA_LOCK_CHECKS
  EXPECT_EQ(sync_detail::held_depth(), 0);
#endif
}

TEST(LockRank, UnrankedOptsOutOfOrdering) {
#if defined(__SANITIZE_THREAD__)
#define IPA_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IPA_TEST_UNDER_TSAN 1
#endif
#endif
#ifdef IPA_TEST_UNDER_TSAN
  // The out-of-order acquisition below is the point of the test (unranked
  // mutexes are exempt from the rank checker), but TSan's own deadlock
  // detector reports the same pattern as a lock-order inversion.
  GTEST_SKIP() << "intentional lock-order inversion trips TSan";
#endif
  Mutex leaf(LockRank::kLog, "leaf");
  Mutex unranked;  // test scaffolding default
  {
    LockGuard a(leaf);
    LockGuard b(unranked);  // ascending past a held leaf, but unranked is exempt
  }
  // ...and holding one doesn't poison later ranked acquisitions.
  Mutex root(LockRank::kSession, "root");
  LockGuard c(unranked);
  LockGuard d(root);
  LockGuard e(leaf);
#if IPA_LOCK_CHECKS
  EXPECT_EQ(sync_detail::held_depth(), 3);
#endif
}

TEST(LockRank, RanksAreThreadLocal) {
  // A thread holding a leaf must not block another thread's root lock.
  Mutex leaf(LockRank::kLog, "leaf");
  Mutex root(LockRank::kSession, "root");
  LockGuard hold_leaf(leaf);
  std::jthread other([&] {
    LockGuard hold_root(root);  // would abort if the stack were shared
  });
}

#if IPA_LOCK_CHECKS

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, InvertedAcquisitionAborts) {
  // transport (70) is a leaf relative to session (150): taking the session
  // lock while holding the transport lock is the classic inversion that
  // deadlocks against the normal session -> transport path.
  EXPECT_DEATH(
      {
        Mutex transport(LockRank::kTransport, "tcp-send");
        Mutex session(LockRank::kSession, "session");
        LockGuard a(transport);
        LockGuard b(session);
      },
      "lock-rank violation.*session.*while holding");
}

TEST(LockRankDeathTest, SameRankNestingAborts) {
  // Two distinct kLog mutexes may never nest — with one thread that is a
  // self-deadlock risk; across threads it is an ABBA deadlock.
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kLog, "log-a");
        Mutex b(LockRank::kLog, "log-b");
        LockGuard la(a);
        LockGuard lb(b);
      },
      "lock-rank violation.*log-b");
}

#else

TEST(LockRankDeathTest, ChecksCompiledOut) {
  // Release builds compile the rank bookkeeping out: an inversion that
  // would abort in Debug must be a plain (if unwise) acquisition here.
  Mutex transport(LockRank::kTransport, "tcp-send");
  Mutex session(LockRank::kSession, "session");
  LockGuard a(transport);
  LockGuard b(session);
  SUCCEED();
}

#endif  // IPA_LOCK_CHECKS

TEST(CondVarTest, WaitReleasesAndReacquires) {
  Mutex mutex(LockRank::kQueue, "cv-test");
  CondVar cv;
  bool ready = false;

  std::jthread signaller([&] {
    LockGuard lock(mutex);
    ready = true;
    cv.notify_one();
  });

  UniqueLock lock(mutex);
  cv.wait(lock, [&]() IPA_REQUIRES(mutex) { return ready; });
  EXPECT_TRUE(ready);
#if IPA_LOCK_CHECKS
  EXPECT_EQ(sync_detail::held_depth(), 1);  // rank restored after the wait
#endif
}

TEST(CondVarTest, WaitForTimesOut) {
  Mutex mutex(LockRank::kQueue, "cv-timeout");
  CondVar cv;
  UniqueLock lock(mutex);
  const bool signalled = cv.wait_for(lock, std::chrono::milliseconds(10),
                                     [] { return false; });
  EXPECT_FALSE(signalled);
}

TEST(UniqueLockTest, ManualUnlockRelock) {
  Mutex mutex(LockRank::kQueue, "relock");
  UniqueLock lock(mutex);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
#if IPA_LOCK_CHECKS
  EXPECT_EQ(sync_detail::held_depth(), 0);
#endif
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(MutexTest, TryLockTracksRank) {
  Mutex mutex(LockRank::kQueue, "try");
  ASSERT_TRUE(mutex.try_lock());
#if IPA_LOCK_CHECKS
  EXPECT_EQ(sync_detail::held_depth(), 1);
#endif
  mutex.unlock();
#if IPA_LOCK_CHECKS
  EXPECT_EQ(sync_detail::held_depth(), 0);
#endif
}

TEST(SharedMutexTest, ConcurrentReadersExclusiveWriter) {
  SharedMutex mutex(LockRank::kRegistry, "rw");
  int value = 0;
  {
    WriterLock write(mutex);
    value = 7;
  }
  std::vector<std::jthread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      ReaderLock read(mutex);
      EXPECT_EQ(value, 7);
    });
  }
}

// Contention profiling is compiled in unconditionally (unlike the rank
// checks), so a provably-contended acquisition must surface in
// lock_contention_snapshot() with a non-zero count and accumulated wait.
//
// Free-running thread fights are useless here: on a single-core runner each
// thread's whole loop fits in one scheduler quantum and nothing ever
// collides. Instead a holder thread takes the lock, signals, and keeps it
// for 10ms while this thread blocks — a guaranteed contended acquisition.
// The retry loop only matters if this thread gets descheduled for the whole
// hold window between the signal and its lock() call.
template <typename LockType>
void force_contended_acquisition(Mutex& mutex, LockRank rank,
                                 std::uint64_t before) {
  const auto contended_for = [](LockRank want) {
    std::uint64_t out = 0;
    for (const LockContention& entry : lock_contention_snapshot()) {
      if (entry.rank == want) out = entry.contended;
    }
    return out;
  };
  for (int round = 0; round < 50 && contended_for(rank) == before; ++round) {
    std::atomic<bool> held{false};
    std::jthread holder([&] {
      LockGuard lock(mutex);
      held.store(true, std::memory_order_release);
      // Holding across the sleep is the point. ipa-lint: allow(blocking-under-lock)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    });
    while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
    LockType lock(mutex);  // blocks behind the sleeping holder
  }
}

TEST(LockContention, ContendedAcquisitionsAreCountedPerRank) {
  const auto stat_for = [](LockRank rank) {
    LockContention out;
    for (const LockContention& entry : lock_contention_snapshot()) {
      if (entry.rank == rank) out = entry;
    }
    return out;
  };
  const LockContention before = stat_for(LockRank::kLoadStats);

  Mutex mutex(LockRank::kLoadStats, "contended");
  force_contended_acquisition<LockGuard>(mutex, LockRank::kLoadStats,
                                         before.contended);

  const LockContention after = stat_for(LockRank::kLoadStats);
  EXPECT_GT(after.contended, before.contended)
      << "blocking behind a sleeping holder was never counted";
  EXPECT_GT(after.wait_s, before.wait_s);
}

// UniqueLock bypasses Mutex::lock (it drives the native handle for CondVar),
// so its contention must be counted by its own timed-acquire path.
TEST(LockContention, UniqueLockContentionIsCounted) {
  const auto contended_for = [](LockRank rank) {
    std::uint64_t out = 0;
    for (const LockContention& entry : lock_contention_snapshot()) {
      if (entry.rank == rank) out = entry.contended;
    }
    return out;
  };
  const std::uint64_t before = contended_for(LockRank::kLoadDriver);

  Mutex mutex(LockRank::kLoadDriver, "uniquelock-contended");
  force_contended_acquisition<UniqueLock>(mutex, LockRank::kLoadDriver,
                                          before);

  EXPECT_GT(contended_for(LockRank::kLoadDriver), before);
}

}  // namespace
}  // namespace ipa
