#include "common/uri.hpp"

#include <gtest/gtest.h>

namespace ipa {
namespace {

TEST(Uri, ParseHttpFull) {
  const auto uri = Uri::parse("http://manager.slac.edu:8443/ipa/session");
  ASSERT_TRUE(uri.is_ok());
  EXPECT_EQ(uri->scheme, "http");
  EXPECT_EQ(uri->host, "manager.slac.edu");
  EXPECT_EQ(uri->port, 8443);
  EXPECT_EQ(uri->path, "/ipa/session");
}

TEST(Uri, ParseNoPortNoPath) {
  const auto uri = Uri::parse("inproc://catalog");
  ASSERT_TRUE(uri.is_ok());
  EXPECT_EQ(uri->scheme, "inproc");
  EXPECT_EQ(uri->host, "catalog");
  EXPECT_EQ(uri->port, 0);
  EXPECT_EQ(uri->path, "");
}

TEST(Uri, ParseFileScheme) {
  const auto uri = Uri::parse("file:///data/lc/run7.ipd");
  ASSERT_TRUE(uri.is_ok());
  EXPECT_EQ(uri->scheme, "file");
  EXPECT_EQ(uri->host, "");
  EXPECT_EQ(uri->path, "/data/lc/run7.ipd");
}

TEST(Uri, ParseQuery) {
  const auto uri = Uri::parse("db://dbhost/events?lo=0&hi=999&flag");
  ASSERT_TRUE(uri.is_ok());
  EXPECT_EQ(uri->query_or("lo"), "0");
  EXPECT_EQ(uri->query_or("hi"), "999");
  EXPECT_EQ(uri->query_or("flag"), "");
  EXPECT_EQ(uri->query_or("absent", "dflt"), "dflt");
}

TEST(Uri, SchemeIsLowercased) {
  const auto uri = Uri::parse("GFTP://Storage0:2811/d");
  ASSERT_TRUE(uri.is_ok());
  EXPECT_EQ(uri->scheme, "gftp");
  EXPECT_EQ(uri->host, "Storage0");
}

TEST(Uri, RejectsMissingScheme) {
  EXPECT_FALSE(Uri::parse("no-scheme-here").is_ok());
  EXPECT_FALSE(Uri::parse("://host").is_ok());
}

TEST(Uri, RejectsBadPort) {
  EXPECT_FALSE(Uri::parse("http://h:99999/x").is_ok());
  EXPECT_FALSE(Uri::parse("http://h:abc/x").is_ok());
}

TEST(Uri, RoundTrip) {
  const char* kCases[] = {
      "http://manager:8443/ipa/session",
      "gftp://storage0:2811/datasets/lc/run7.ipd",
      "inproc://locator",
      "db://dbhost/events?hi=999&lo=0",
  };
  for (const char* text : kCases) {
    const auto uri = Uri::parse(text);
    ASSERT_TRUE(uri.is_ok()) << text;
    EXPECT_EQ(uri->to_string(), text);
    const auto again = Uri::parse(uri->to_string());
    ASSERT_TRUE(again.is_ok());
    EXPECT_EQ(*again, *uri);
  }
}

}  // namespace
}  // namespace ipa
