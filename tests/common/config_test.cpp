#include "common/config.hpp"

#include <gtest/gtest.h>

namespace ipa {
namespace {

TEST(Config, ParseBasic) {
  const auto cfg = Config::parse(R"(
# grid site policy
site.name = slac-osg
site.max_nodes = 16
site.lan_mbps = 7.48
interactive = true
)");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg->get_string("site.name"), "slac-osg");
  EXPECT_EQ(cfg->get_int("site.max_nodes"), 16);
  EXPECT_DOUBLE_EQ(cfg->get_double("site.lan_mbps"), 7.48);
  EXPECT_TRUE(cfg->get_bool("interactive"));
}

TEST(Config, CommentsAndBlankLinesIgnored) {
  const auto cfg = Config::parse("# only comments\n\n; alt comment\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_TRUE(cfg->entries().empty());
}

TEST(Config, MalformedLineRejected) {
  const auto cfg = Config::parse("key_without_value\n");
  EXPECT_FALSE(cfg.is_ok());
  EXPECT_EQ(cfg.status().code(), StatusCode::kInvalidArgument);
}

TEST(Config, EmptyKeyRejected) {
  EXPECT_FALSE(Config::parse("= value\n").is_ok());
}

TEST(Config, LaterDuplicateWins) {
  const auto cfg = Config::parse("n = 1\nn = 2\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg->get_int("n"), 1 + 1);
}

TEST(Config, FallbacksWhenMissingOrMalformed) {
  const auto cfg = Config::parse("bad_int = xyz\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg->get_int("absent", 7), 7);
  EXPECT_EQ(cfg->get_int("bad_int", 9), 9);
  EXPECT_EQ(cfg->get_string("absent", "dflt"), "dflt");
  EXPECT_FALSE(cfg->get_bool("absent", false));
}

TEST(Config, RequireVariants) {
  const auto cfg = Config::parse("x = 12\ny = oops\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg->require_int("x").value(), 12);
  EXPECT_EQ(cfg->require_int("y").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cfg->require_int("z").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cfg->require_string("y").value(), "oops");
  EXPECT_EQ(cfg->require_double("x").value(), 12.0);
}

TEST(Config, SectionStripsPrefix) {
  const auto cfg = Config::parse("wan.mbps = 0.25\nlan.mbps = 7.5\nlan.rtt_ms = 1\n");
  ASSERT_TRUE(cfg.is_ok());
  const Config lan = cfg->section("lan");
  EXPECT_DOUBLE_EQ(lan.get_double("mbps"), 7.5);
  EXPECT_EQ(lan.get_int("rtt_ms"), 1);
  EXPECT_FALSE(lan.contains("mbps.extra"));
  EXPECT_EQ(lan.entries().size(), 2u);
}

TEST(Config, RoundTripThroughToString) {
  Config cfg;
  cfg.set("b", "2");
  cfg.set("a", "1");
  const auto reparsed = Config::parse(cfg.to_string());
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_EQ(reparsed->get_int("a"), 1);
  EXPECT_EQ(reparsed->get_int("b"), 2);
}

TEST(Config, LoadFileMissing) {
  EXPECT_EQ(Config::load_file("/nonexistent/ipa.conf").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ipa
