#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace ipa::strings {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, SplitTrimmedDropsEmptiesAndTrims) {
  const auto parts = split_trimmed("  a , , b  ,c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("nospace"), "nospace");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"only"}, "/"), "only");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("gftp://host", "gftp://"));
  EXPECT_FALSE(starts_with("gf", "gftp://"));
  EXPECT_TRUE(ends_with("run7.ipd", ".ipd"));
  EXPECT_FALSE(ends_with("ipd", ".ipd"));
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_lower("Content-TYPE"), "content-type");
  EXPECT_EQ(to_upper("soap"), "SOAP");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("Content-Length", "content-lengt"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a&b&c", "&", "&amp;"), "a&amp;b&amp;c");
  EXPECT_EQ(replace_all("xxx", "x", "xx"), "xxxxxx");
  EXPECT_EQ(replace_all("none", "zz", "y"), "none");
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d nodes, %.1f MB", 16, 471.0), "16 nodes, 471.0 MB");
  EXPECT_EQ(format("%s", ""), "");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(15 * 1024), "15.0 KB");
  EXPECT_EQ(human_bytes(471ull * 1024 * 1024), "471.0 MB");
}

TEST(Strings, HumanDurationMatchesPaperStyle) {
  EXPECT_EQ(human_duration_s(78), "78 s");
  EXPECT_EQ(human_duration_s(259), "4 min 19 s");
  EXPECT_EQ(human_duration_s(45 * 60), "45 min");
  EXPECT_EQ(human_duration_s(3900), "1 h 05 min");
}

TEST(Strings, ParseI64) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_i64("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(parse_i64("  17 ", v));
  EXPECT_EQ(v, 17);
  EXPECT_FALSE(parse_i64("12x", v));
  EXPECT_FALSE(parse_i64("", v));
}

TEST(Strings, ParseF64) {
  double v = 0;
  EXPECT_TRUE(parse_f64("3.25", v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(parse_f64("-1e3", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(parse_f64("abc", v));
}

TEST(Strings, ParseBool) {
  bool v = false;
  EXPECT_TRUE(parse_bool("TRUE", v));
  EXPECT_TRUE(v);
  EXPECT_TRUE(parse_bool("off", v));
  EXPECT_FALSE(v);
  EXPECT_FALSE(parse_bool("maybe", v));
}

TEST(Strings, GlobMatchBasics) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("run?.ipd", "run7.ipd"));
  EXPECT_FALSE(glob_match("run?.ipd", "run77.ipd"));
  EXPECT_TRUE(glob_match("lc/*/higgs*", "lc/2006/higgs-search"));
  EXPECT_FALSE(glob_match("lc/*", "ilc/2006"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("**", "x"));
}

TEST(Strings, GlobMatchBacktracking) {
  EXPECT_TRUE(glob_match("*abc", "xxabcabc"));
  EXPECT_TRUE(glob_match("a*b*c", "a123b456c"));
  EXPECT_FALSE(glob_match("a*b*c", "a123c456b"));
}

}  // namespace
}  // namespace ipa::strings
