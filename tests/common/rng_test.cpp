#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ipa {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformU64Inclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_u64(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformI64NegativeRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_i64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanApproximate) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, BreitWignerMedianNearMean) {
  Rng rng(19);
  const int n = 20001;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.breit_wigner(91.2, 2.5);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 91.2, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream should not replay the parent's outputs.
  Rng parent_copy(31);
  parent_copy.next();  // consume the split draw
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next() == parent_copy.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, WorksWithStdDistributionInterface) {
  Rng rng(37);
  // Satisfies UniformRandomBitGenerator.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  std::uint64_t v = rng();
  (void)v;
}

}  // namespace
}  // namespace ipa
