#include <gtest/gtest.h>

#include <cmath>

#include "aida/histogram1d.hpp"
#include "aida/histogram2d.hpp"
#include "common/rng.hpp"

namespace ipa::aida {
namespace {

TEST(Axis, IndexMapping) {
  const Axis axis(10, 0.0, 100.0);
  EXPECT_EQ(axis.index(0.0), 0);
  EXPECT_EQ(axis.index(9.999), 0);
  EXPECT_EQ(axis.index(10.0), 1);
  EXPECT_EQ(axis.index(99.999), 9);
  EXPECT_EQ(axis.index(100.0), kOverflow);
  EXPECT_EQ(axis.index(-0.001), kUnderflow);
  EXPECT_EQ(axis.index(std::nan("")), kUnderflow);
  EXPECT_DOUBLE_EQ(axis.bin_width(), 10.0);
  EXPECT_DOUBLE_EQ(axis.bin_center(0), 5.0);
  EXPECT_DOUBLE_EQ(axis.bin_lower(3), 30.0);
  EXPECT_DOUBLE_EQ(axis.bin_upper(3), 40.0);
}

TEST(Axis, CreateValidation) {
  EXPECT_FALSE(Axis::create(0, 0, 1).is_ok());
  EXPECT_FALSE(Axis::create(-5, 0, 1).is_ok());
  EXPECT_FALSE(Axis::create(10, 1, 1).is_ok());
  EXPECT_FALSE(Axis::create(10, 2, 1).is_ok());
  EXPECT_TRUE(Axis::create(1, 0, 1e-9).is_ok());
}

TEST(Histogram1D, FillAndBinContents) {
  auto hist = Histogram1D::create("mass", 10, 0, 100);
  ASSERT_TRUE(hist.is_ok());
  hist->fill(5.0);
  hist->fill(5.0, 2.0);
  hist->fill(95.0);
  hist->fill(-1.0);   // underflow
  hist->fill(150.0);  // overflow

  EXPECT_EQ(hist->entries(), 5u);
  EXPECT_DOUBLE_EQ(hist->bin_height(0), 3.0);
  EXPECT_DOUBLE_EQ(hist->bin_height(9), 1.0);
  EXPECT_DOUBLE_EQ(hist->underflow(), 1.0);
  EXPECT_DOUBLE_EQ(hist->overflow(), 1.0);
  EXPECT_DOUBLE_EQ(hist->sum_height(), 4.0);
  EXPECT_DOUBLE_EQ(hist->sum_all_height(), 6.0);
  EXPECT_DOUBLE_EQ(hist->bin_error(0), std::sqrt(1 + 4 + 0.0));
}

TEST(Histogram1D, MeanAndRmsMatchMoments) {
  auto hist = Histogram1D::create("gauss", 100, -50, 50);
  ASSERT_TRUE(hist.is_ok());
  Rng rng(11);
  const int n = 20000;
  for (int i = 0; i < n; ++i) hist->fill(rng.normal(5.0, 3.0));
  EXPECT_NEAR(hist->mean(), 5.0, 0.1);
  EXPECT_NEAR(hist->rms(), 3.0, 0.1);
}

TEST(Histogram1D, MaxBinFindsPeak) {
  auto hist = Histogram1D::create("peak", 50, 0, 100);
  ASSERT_TRUE(hist.is_ok());
  for (int i = 0; i < 100; ++i) hist->fill(33.0);
  for (int i = 0; i < 10; ++i) hist->fill(80.0);
  EXPECT_EQ(hist->max_bin(), hist->axis().index(33.0));
}

TEST(Histogram1D, MergeEqualsSingleFill) {
  auto all = Histogram1D::create("m", 40, 0, 200);
  auto part1 = Histogram1D::create("m", 40, 0, 200);
  auto part2 = Histogram1D::create("m", 40, 0, 200);
  ASSERT_TRUE(all.is_ok() && part1.is_ok() && part2.is_ok());

  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-20, 220);
    const double w = rng.uniform(0.5, 1.5);
    all->fill(x, w);
    (i % 2 ? *part1 : *part2).fill(x, w);
  }
  ASSERT_TRUE(part1->merge(*part2).is_ok());
  // Merging is exact up to floating-point summation order.
  EXPECT_EQ(part1->entries(), all->entries());
  for (int i = -2; i < 40; ++i) {
    EXPECT_NEAR(part1->bin_height(i), all->bin_height(i), 1e-9) << "bin " << i;
    EXPECT_NEAR(part1->bin_error(i), all->bin_error(i), 1e-9) << "bin " << i;
  }
  EXPECT_NEAR(part1->mean(), all->mean(), 1e-9);
  EXPECT_NEAR(part1->rms(), all->rms(), 1e-9);
}

TEST(Histogram1D, MergeRejectsIncompatibleAxes) {
  auto a = Histogram1D::create("m", 10, 0, 1);
  auto b = Histogram1D::create("m", 20, 0, 1);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_EQ(a->merge(*b).code(), StatusCode::kFailedPrecondition);
}

TEST(Histogram1D, ScaleAffectsHeightsAndErrors) {
  auto hist = Histogram1D::create("s", 4, 0, 4);
  ASSERT_TRUE(hist.is_ok());
  hist->fill(0.5);
  hist->fill(0.5);
  hist->scale(3.0);
  EXPECT_DOUBLE_EQ(hist->bin_height(0), 6.0);
  EXPECT_DOUBLE_EQ(hist->bin_error(0), 3.0 * std::sqrt(2.0));
  EXPECT_EQ(hist->entries(), 2u);  // entries stay raw
}

TEST(Histogram1D, ResetClearsEverything) {
  auto hist = Histogram1D::create("r", 4, 0, 4);
  ASSERT_TRUE(hist.is_ok());
  hist->fill(1.0);
  hist->reset();
  EXPECT_EQ(hist->entries(), 0u);
  EXPECT_DOUBLE_EQ(hist->sum_all_height(), 0.0);
  EXPECT_DOUBLE_EQ(hist->mean(), 0.0);
}

TEST(Histogram1D, SerializeRoundTrip) {
  auto hist = Histogram1D::create("round", 25, -5, 5);
  ASSERT_TRUE(hist.is_ok());
  hist->annotation()["xlabel"] = "GeV";
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) hist->fill(rng.normal(), rng.uniform(0.1, 2.0));

  ser::Writer w;
  hist->encode(w);
  ser::Reader r(w.data());
  auto back = Histogram1D::decode(r);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(*back, *hist);
  EXPECT_EQ(back->annotation().at("xlabel"), "GeV");
}

TEST(Histogram1D, DecodeRejectsTruncated) {
  auto hist = Histogram1D::create("t", 5, 0, 1);
  ASSERT_TRUE(hist.is_ok());
  ser::Writer w;
  hist->encode(w);
  ser::Bytes truncated(w.data().begin(), w.data().begin() + w.size() / 2);
  ser::Reader r(truncated);
  EXPECT_FALSE(Histogram1D::decode(r).is_ok());
}

TEST(Histogram2D, FillAndProjectionsOfMoments) {
  auto hist = Histogram2D::create("xy", 10, 0, 10, 20, -1, 1);
  ASSERT_TRUE(hist.is_ok());
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    hist->fill(rng.uniform(0, 10), rng.normal(0.2, 0.3));
  }
  EXPECT_NEAR(hist->mean_x(), 5.0, 0.2);
  EXPECT_NEAR(hist->mean_y(), 0.2, 0.02);
  EXPECT_NEAR(hist->rms_x(), 10.0 / std::sqrt(12.0), 0.2);
  EXPECT_NEAR(hist->rms_y(), 0.3, 0.02);
}

TEST(Histogram2D, CornerAndOverflowCells) {
  auto hist = Histogram2D::create("c", 2, 0, 2, 2, 0, 2);
  ASSERT_TRUE(hist.is_ok());
  hist->fill(0.5, 0.5);
  hist->fill(1.5, 1.5, 2.0);
  hist->fill(-1, 0.5);   // x underflow
  hist->fill(5, 5);      // both overflow
  EXPECT_DOUBLE_EQ(hist->bin_height(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(hist->bin_height(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(hist->bin_height(kUnderflow, 0), 1.0);
  EXPECT_DOUBLE_EQ(hist->bin_height(kOverflow, kOverflow), 1.0);
  EXPECT_DOUBLE_EQ(hist->sum_all_height(), 5.0);
}

TEST(Histogram2D, MergeMatchesCombinedFill) {
  auto all = Histogram2D::create("m", 8, 0, 1, 8, 0, 1);
  auto a = Histogram2D::create("m", 8, 0, 1, 8, 0, 1);
  auto b = Histogram2D::create("m", 8, 0, 1, 8, 0, 1);
  ASSERT_TRUE(all.is_ok() && a.is_ok() && b.is_ok());
  Rng rng(31);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform(), y = rng.uniform();
    all->fill(x, y);
    (i % 3 == 0 ? *a : *b).fill(x, y);
  }
  ASSERT_TRUE(a->merge(*b).is_ok());
  EXPECT_EQ(a->entries(), all->entries());
  for (int ix = 0; ix < 8; ++ix) {
    for (int iy = 0; iy < 8; ++iy) {
      EXPECT_NEAR(a->bin_height(ix, iy), all->bin_height(ix, iy), 1e-9);
    }
  }
  EXPECT_NEAR(a->mean_x(), all->mean_x(), 1e-9);
  EXPECT_NEAR(a->mean_y(), all->mean_y(), 1e-9);
}

TEST(Histogram2D, SerializeRoundTrip) {
  auto hist = Histogram2D::create("r2", 6, 0, 3, 4, -2, 2);
  ASSERT_TRUE(hist.is_ok());
  Rng rng(37);
  for (int i = 0; i < 500; ++i) hist->fill(rng.uniform(0, 3), rng.uniform(-2, 2));
  ser::Writer w;
  hist->encode(w);
  ser::Reader r(w.data());
  auto back = Histogram2D::decode(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, *hist);
}

}  // namespace
}  // namespace ipa::aida
