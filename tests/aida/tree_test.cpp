#include "aida/tree.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ipa::aida {
namespace {

TEST(Profile1D, PerBinMeanAndSpread) {
  auto profile = Profile1D::create("pt vs eta", 4, 0, 4);
  ASSERT_TRUE(profile.is_ok());
  // Bin 0 gets y ~ {1,3}; bin 2 gets y = 10 exactly.
  profile->fill(0.5, 1.0);
  profile->fill(0.5, 3.0);
  profile->fill(2.5, 10.0);
  EXPECT_DOUBLE_EQ(profile->bin_mean(0), 2.0);
  EXPECT_DOUBLE_EQ(profile->bin_rms(0), 1.0);
  EXPECT_DOUBLE_EQ(profile->bin_mean(2), 10.0);
  EXPECT_DOUBLE_EQ(profile->bin_rms(2), 0.0);
  EXPECT_DOUBLE_EQ(profile->bin_mean(1), 0.0);  // empty
  EXPECT_EQ(profile->entries(), 3u);
}

TEST(Profile1D, BinErrorShrinksWithStatistics) {
  auto profile = Profile1D::create("p", 1, 0, 1);
  ASSERT_TRUE(profile.is_ok());
  Rng rng(5);
  for (int i = 0; i < 100; ++i) profile->fill(0.5, rng.normal(0, 1));
  const double err100 = profile->bin_error(0);
  for (int i = 0; i < 9900; ++i) profile->fill(0.5, rng.normal(0, 1));
  const double err10000 = profile->bin_error(0);
  EXPECT_LT(err10000, err100 / 5.0);  // ~1/sqrt(n) scaling
}

TEST(Profile1D, MergeMatchesCombined) {
  auto all = Profile1D::create("m", 8, 0, 8);
  auto a = Profile1D::create("m", 8, 0, 8);
  auto b = Profile1D::create("m", 8, 0, 8);
  ASSERT_TRUE(all.is_ok() && a.is_ok() && b.is_ok());
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0, 8), y = rng.normal(x, 0.5), w = rng.uniform(0.5, 1.5);
    all->fill(x, y, w);
    (i % 2 ? *a : *b).fill(x, y, w);
  }
  ASSERT_TRUE(a->merge(*b).is_ok());
  EXPECT_EQ(a->entries(), all->entries());
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(a->bin_mean(i), all->bin_mean(i), 1e-9) << "bin " << i;
    EXPECT_NEAR(a->bin_rms(i), all->bin_rms(i), 1e-9) << "bin " << i;
    EXPECT_NEAR(a->bin_weight(i), all->bin_weight(i), 1e-9) << "bin " << i;
  }
}

TEST(Profile1D, SerializeRoundTrip) {
  auto profile = Profile1D::create("sp", 5, -1, 1);
  ASSERT_TRUE(profile.is_ok());
  profile->fill(0.0, 2.5, 1.2);
  profile->fill(0.9, -1.0);
  ser::Writer w;
  profile->encode(w);
  ser::Reader r(w.data());
  auto back = Profile1D::decode(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, *profile);
}

TEST(Cloud1D, StoresPointsThenConverts) {
  Cloud1D cloud("c", 100);
  for (int i = 0; i < 99; ++i) cloud.fill(i);
  EXPECT_FALSE(cloud.is_converted());
  EXPECT_EQ(cloud.entries(), 99u);
  cloud.fill(99);
  EXPECT_TRUE(cloud.is_converted());
  EXPECT_EQ(cloud.entries(), 100u);
  auto hist = cloud.histogram();
  ASSERT_TRUE(hist.is_ok());
  EXPECT_EQ(hist->entries(), 100u);
  EXPECT_DOUBLE_EQ(hist->sum_height(), 100.0);  // all in-range after conversion
}

TEST(Cloud1D, UnbinnedStatisticsExact) {
  Cloud1D cloud("c");
  cloud.fill(1.0);
  cloud.fill(3.0);
  EXPECT_DOUBLE_EQ(cloud.mean(), 2.0);
  EXPECT_DOUBLE_EQ(cloud.rms(), 1.0);
  EXPECT_DOUBLE_EQ(cloud.lower_edge(), 1.0);
  EXPECT_DOUBLE_EQ(cloud.upper_edge(), 3.0);
}

TEST(Cloud1D, StatisticsSurviveConversionApproximately) {
  Cloud1D cloud("c", 1000);
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) cloud.fill(rng.normal(10, 2));
  ASSERT_TRUE(cloud.is_converted());
  EXPECT_NEAR(cloud.mean(), 10.0, 0.2);
  EXPECT_NEAR(cloud.rms(), 2.0, 0.2);
}

TEST(Cloud1D, DegenerateSingleValueConverts) {
  Cloud1D cloud("c", 4);
  for (int i = 0; i < 4; ++i) cloud.fill(7.0);
  ASSERT_TRUE(cloud.is_converted());
  auto hist = cloud.histogram();
  ASSERT_TRUE(hist.is_ok());
  EXPECT_DOUBLE_EQ(hist->sum_height(), 4.0);
}

TEST(Cloud1D, EmptyCloudHasNoHistogram) {
  Cloud1D cloud("c");
  EXPECT_FALSE(cloud.histogram().is_ok());
  EXPECT_DOUBLE_EQ(cloud.mean(), 0.0);
}

TEST(Cloud1D, MergeUnconvertedConcatenates) {
  Cloud1D a("c"), b("c");
  a.fill(1);
  b.fill(2);
  b.fill(3);
  ASSERT_TRUE(a.merge(b).is_ok());
  EXPECT_EQ(a.entries(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Cloud1D, SerializeRoundTripBothModes) {
  Cloud1D raw("raw", 100);
  raw.fill(1.5, 2.0);
  raw.fill(-3.0);
  ser::Writer w1;
  raw.encode(w1);
  ser::Reader r1(w1.data());
  auto raw_back = Cloud1D::decode(r1);
  ASSERT_TRUE(raw_back.is_ok());
  EXPECT_FALSE(raw_back->is_converted());
  EXPECT_EQ(raw_back->entries(), 2u);
  EXPECT_DOUBLE_EQ(raw_back->mean(), raw.mean());

  Cloud1D conv("conv", 2);
  conv.fill(1);
  conv.fill(2);
  ASSERT_TRUE(conv.is_converted());
  ser::Writer w2;
  conv.encode(w2);
  ser::Reader r2(w2.data());
  auto conv_back = Cloud1D::decode(r2);
  ASSERT_TRUE(conv_back.is_ok());
  EXPECT_TRUE(conv_back->is_converted());
  EXPECT_EQ(conv_back->entries(), 2u);
}

TEST(Tuple, FillAndColumns) {
  Tuple tuple("events", {"mass", "pt", "ntrk"});
  ASSERT_TRUE(tuple.fill({125.0, 44.0, 7}).is_ok());
  ASSERT_TRUE(tuple.fill({91.2, 12.0, 3}).is_ok());
  EXPECT_EQ(tuple.rows(), 2u);
  auto mass = tuple.column("mass");
  ASSERT_TRUE(mass.is_ok());
  EXPECT_EQ(*mass, (std::vector<double>{125.0, 91.2}));
  EXPECT_FALSE(tuple.column("absent").is_ok());
  EXPECT_EQ(tuple.fill({1.0}).code(), StatusCode::kInvalidArgument);
}

TEST(Tuple, MergeAndSchemaMismatch) {
  Tuple a("t", {"x"}), b("t", {"x"}), c("t", {"y"});
  ASSERT_TRUE(a.fill({1}).is_ok());
  ASSERT_TRUE(b.fill({2}).is_ok());
  ASSERT_TRUE(a.merge(b).is_ok());
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.merge(c).code(), StatusCode::kFailedPrecondition);
}

TEST(Tuple, SerializeRoundTrip) {
  Tuple tuple("t", {"a", "b"});
  ASSERT_TRUE(tuple.fill({1, 2}).is_ok());
  ASSERT_TRUE(tuple.fill({3, 4}).is_ok());
  ser::Writer w;
  tuple.encode(w);
  ser::Reader r(w.data());
  auto back = Tuple::decode(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, tuple);
}

// --- Tree -------------------------------------------------------------------

Tree make_engine_tree(std::uint64_t seed, int fills) {
  Tree tree;
  auto mass = Histogram1D::create("mass", 50, 0, 250);
  auto corr = Histogram2D::create("pt vs eta", 10, -2, 2, 10, 0, 100);
  Tuple tuple("raw", {"mass"});
  Rng rng(seed);
  for (int i = 0; i < fills; ++i) {
    const double m = rng.breit_wigner(125, 5);
    mass->fill(m);
    corr->fill(rng.uniform(-2, 2), rng.exponential(0.05));
    (void)tuple.fill({m});
  }
  tree.put("/higgs/mass", std::move(*mass));
  tree.put("/qc/pteta", std::move(*corr));
  tree.put("/raw/tuple", std::move(tuple));
  return tree;
}

TEST(Tree, PutFindTypedAccess) {
  Tree tree = make_engine_tree(1, 10);
  EXPECT_EQ(tree.size(), 3u);
  ASSERT_TRUE(tree.histogram1d("/higgs/mass").is_ok());
  ASSERT_TRUE(tree.histogram2d("/qc/pteta").is_ok());
  ASSERT_TRUE(tree.tuple("/raw/tuple").is_ok());
  // Wrong-type access reports the actual kind.
  const auto wrong = tree.histogram2d("/higgs/mass");
  ASSERT_FALSE(wrong.is_ok());
  EXPECT_NE(wrong.status().message().find("Histogram1D"), std::string::npos);
  EXPECT_EQ(tree.find("/nope").status().code(), StatusCode::kNotFound);
}

TEST(Tree, PathNormalization) {
  Tree tree;
  auto hist = Histogram1D::create("h", 2, 0, 1);
  ASSERT_TRUE(hist.is_ok());
  tree.put("dir/h", *hist);
  EXPECT_TRUE(tree.find("/dir/h").is_ok());
  EXPECT_TRUE(tree.find("dir/h").is_ok());
  EXPECT_TRUE(tree.find("//dir//h").is_ok());
}

TEST(Tree, ListAndPaths) {
  Tree tree = make_engine_tree(1, 5);
  EXPECT_EQ(tree.paths(),
            (std::vector<std::string>{"/higgs/mass", "/qc/pteta", "/raw/tuple"}));
  EXPECT_EQ(tree.list("higgs"), (std::vector<std::string>{"/higgs/mass"}));
  EXPECT_EQ(tree.list("/").size(), 3u);
  EXPECT_TRUE(tree.list("/absent").empty());
}

TEST(Tree, MergeEqualsSingleEngineResult) {
  // The paper's core invariant: merging N engine trees equals the tree one
  // engine would produce over the concatenated data.
  Tree combined;
  Tree parts[4];
  {
    auto mass = Histogram1D::create("mass", 50, 0, 250);
    ASSERT_TRUE(mass.is_ok());
    combined.put("/higgs/mass", std::move(*mass));
  }
  Rng rng(99);
  for (int i = 0; i < 8000; ++i) {
    const double m = rng.breit_wigner(125, 5);
    auto h = combined.histogram1d("/higgs/mass");
    (*h)->fill(m);
    Tree& part = parts[i % 4];
    if (part.empty()) {
      auto mass = Histogram1D::create("mass", 50, 0, 250);
      part.put("/higgs/mass", std::move(*mass));
    }
    (*part.histogram1d("/higgs/mass"))->fill(m);
  }
  Tree merged;
  for (Tree& part : parts) ASSERT_TRUE(merged.merge(part).is_ok());
  auto merged_hist = merged.histogram1d("/higgs/mass");
  auto combined_hist = combined.histogram1d("/higgs/mass");
  ASSERT_TRUE(merged_hist.is_ok() && combined_hist.is_ok());
  EXPECT_EQ((*merged_hist)->entries(), (*combined_hist)->entries());
  for (int i = 0; i < 50; ++i) {
    EXPECT_NEAR((*merged_hist)->bin_height(i), (*combined_hist)->bin_height(i), 1e-9);
  }
  EXPECT_NEAR((*merged_hist)->mean(), (*combined_hist)->mean(), 1e-9);
}

TEST(Tree, MergeKindMismatchFails) {
  Tree a, b;
  auto hist = Histogram1D::create("x", 2, 0, 1);
  a.put("/x", std::move(*hist));
  b.put("/x", Tuple("x", {"c"}));
  EXPECT_EQ(a.merge(b).code(), StatusCode::kFailedPrecondition);
}

TEST(Tree, SerializeRoundTrip) {
  Tree tree = make_engine_tree(5, 500);
  const ser::Bytes snapshot = tree.serialize();
  auto back = Tree::deserialize(snapshot);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back->paths(), tree.paths());
  EXPECT_EQ(**back->histogram1d("/higgs/mass"), **tree.histogram1d("/higgs/mass"));
  EXPECT_EQ(**back->tuple("/raw/tuple"), **tree.tuple("/raw/tuple"));
}

TEST(Tree, DeserializeRejectsGarbage) {
  ser::Bytes junk = {0xff, 0x00, 0x13, 0x37};
  EXPECT_FALSE(Tree::deserialize(junk).is_ok());
}

TEST(Tree, RemoveAndClear) {
  Tree tree = make_engine_tree(2, 5);
  EXPECT_TRUE(tree.remove("/higgs/mass"));
  EXPECT_FALSE(tree.remove("/higgs/mass"));
  EXPECT_EQ(tree.size(), 2u);
  tree.clear();
  EXPECT_TRUE(tree.empty());
}

TEST(Tree, ObjectKindNames) {
  EXPECT_EQ(object_kind(Object(Histogram1D())), "Histogram1D");
  EXPECT_EQ(object_kind(Object(Histogram2D())), "Histogram2D");
  EXPECT_EQ(object_kind(Object(Profile1D())), "Profile1D");
  EXPECT_EQ(object_kind(Object(Cloud1D())), "Cloud1D");
  EXPECT_EQ(object_kind(Object(Tuple())), "Tuple");
}

}  // namespace
}  // namespace ipa::aida
