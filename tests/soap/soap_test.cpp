#include "soap/soap.hpp"

#include <gtest/gtest.h>

namespace ipa::soap {
namespace {

TEST(SoapCodec, EnvelopeRoundTrip) {
  xml::Node op("ipa:createSession");
  op.add_child("user").set_text("alice");
  const xml::Node envelope = make_envelope(op, "sess-1", "tok-abc");

  std::string resource, token;
  read_headers(envelope, resource, token);
  EXPECT_EQ(resource, "sess-1");
  EXPECT_EQ(token, "tok-abc");

  auto body = unwrap_envelope(envelope);
  ASSERT_TRUE(body.is_ok());
  EXPECT_EQ(body->name(), "ipa:createSession");
  EXPECT_EQ(body->child_text("user"), "alice");
}

TEST(SoapCodec, EnvelopeWithoutHeaders) {
  const xml::Node envelope = make_envelope(xml::Node("ping"));
  std::string resource, token;
  read_headers(envelope, resource, token);
  EXPECT_TRUE(resource.empty());
  EXPECT_TRUE(token.empty());
  EXPECT_EQ(envelope.find("Header"), nullptr);
}

TEST(SoapCodec, EnvelopeSerializesAndReparses) {
  xml::Node op("ipa:submit");
  op.add_child("dataset").set_text("lc-run7 & more");
  const xml::Node envelope = make_envelope(op, "res-9", "t<o>k");
  const auto doc = xml::parse(envelope.to_string());
  ASSERT_TRUE(doc.is_ok());
  std::string resource, token;
  read_headers(*doc, resource, token);
  EXPECT_EQ(resource, "res-9");
  EXPECT_EQ(token, "t<o>k");
  auto body = unwrap_envelope(*doc);
  ASSERT_TRUE(body.is_ok());
  EXPECT_EQ(body->child_text("dataset"), "lc-run7 & more");
}

TEST(SoapCodec, FaultStatusRoundTrip) {
  const Status orig = not_found("dataset 'x' is not in the catalog");
  const xml::Node fault = status_to_fault(orig);
  const Status back = fault_to_status(fault);
  EXPECT_EQ(back.code(), orig.code());
  EXPECT_EQ(back.message(), orig.message());
}

TEST(SoapCodec, FaultCodeClientVsServer) {
  EXPECT_EQ(status_to_fault(invalid_argument("x")).child_text("faultcode"), "soap:Client");
  EXPECT_EQ(status_to_fault(internal_error("x")).child_text("faultcode"), "soap:Server");
  EXPECT_EQ(status_to_fault(unavailable("x")).child_text("faultcode"), "soap:Server");
}

TEST(SoapCodec, UnwrapFaultBecomesStatus) {
  const xml::Node envelope = make_envelope(status_to_fault(permission_denied("no VO role")));
  const auto result = unwrap_envelope(envelope);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(result.status().message(), "no VO role");
}

TEST(SoapCodec, UnwrapRejectsNonEnvelope) {
  EXPECT_FALSE(unwrap_envelope(xml::Node("notEnvelope")).is_ok());
}

class SoapServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<SoapServer>("127.0.0.1", 0);
    server_->register_operation("Calc", "add", [](const SoapContext&, const xml::Node& args) {
      double a = 0, b = 0;
      (void)strings_to_double(args.child_text("a"), a);
      (void)strings_to_double(args.child_text("b"), b);
      xml::Node reply("ipa:addResponse");
      reply.add_child("sum").set_text(std::to_string(a + b));
      return Result<xml::Node>(std::move(reply));
    });
    server_->register_operation("Calc", "fail", [](const SoapContext&, const xml::Node&) {
      return Result<xml::Node>(resource_exhausted("queue full"));
    });
    server_->register_operation(
        "Calc", "ctx",
        [](const SoapContext& ctx, const xml::Node&) {
          xml::Node reply("ipa:ctxResponse");
          reply.add_child("service").set_text(ctx.service);
          reply.add_child("operation").set_text(ctx.operation);
          reply.add_child("resource").set_text(ctx.resource);
          reply.add_child("principal").set_text(ctx.principal);
          return Result<xml::Node>(std::move(reply));
        },
        /*require_auth=*/true);
    server_->set_auth([](const std::string& token) -> Result<std::string> {
      if (token == "proxy-ok") return std::string("cn=alice");
      return unauthenticated("invalid proxy");
    });
    auto bound = server_->start();
    ASSERT_TRUE(bound.is_ok());
    endpoint_ = *bound;
  }

  static bool strings_to_double(const std::string& s, double& out) {
    try {
      out = std::stod(s);
      return true;
    } catch (...) {
      return false;
    }
  }

  void TearDown() override { server_->stop(); }

  std::unique_ptr<SoapServer> server_;
  Uri endpoint_;
};

TEST_F(SoapServerTest, CallReturnsBodyElement) {
  auto client = SoapClient::connect(endpoint_);
  ASSERT_TRUE(client.is_ok());
  xml::Node args("ipa:add");
  args.add_child("a").set_text("1.5");
  args.add_child("b").set_text("2.25");
  auto reply = client->call("Calc", "add", std::move(args));
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(reply->name(), "ipa:addResponse");
  EXPECT_DOUBLE_EQ(std::stod(reply->child_text("sum")), 3.75);
}

TEST_F(SoapServerTest, RemoteFaultSurfacesAsStatus) {
  auto client = SoapClient::connect(endpoint_);
  ASSERT_TRUE(client.is_ok());
  const auto reply = client->call("Calc", "fail", xml::Node("ipa:fail"));
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(reply.status().message(), "queue full");
}

TEST_F(SoapServerTest, UnknownOperationFaults) {
  auto client = SoapClient::connect(endpoint_);
  ASSERT_TRUE(client.is_ok());
  const auto reply = client->call("Calc", "nope", xml::Node("ipa:nope"));
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnimplemented);
}

TEST_F(SoapServerTest, AuthFlowsThroughSecurityHeader) {
  auto client = SoapClient::connect(endpoint_);
  ASSERT_TRUE(client.is_ok());

  // Without a token: rejected.
  const auto denied = client->call("Calc", "ctx", xml::Node("ipa:ctx"), "res-7");
  ASSERT_FALSE(denied.is_ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kUnauthenticated);

  // With the right token: principal and resource propagate.
  client->set_token("proxy-ok");
  auto reply = client->call("Calc", "ctx", xml::Node("ipa:ctx"), "res-7");
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(reply->child_text("service"), "Calc");
  EXPECT_EQ(reply->child_text("operation"), "ctx");
  EXPECT_EQ(reply->child_text("resource"), "res-7");
  EXPECT_EQ(reply->child_text("principal"), "cn=alice");
}

TEST_F(SoapServerTest, ManySequentialCalls) {
  auto client = SoapClient::connect(endpoint_);
  ASSERT_TRUE(client.is_ok());
  for (int i = 0; i < 25; ++i) {
    xml::Node args("ipa:add");
    args.add_child("a").set_text(std::to_string(i));
    args.add_child("b").set_text("1");
    auto reply = client->call("Calc", "add", std::move(args));
    ASSERT_TRUE(reply.is_ok());
    EXPECT_DOUBLE_EQ(std::stod(reply->child_text("sum")), i + 1.0);
  }
}

TEST_F(SoapServerTest, RawHttpPostWithoutSoapActionFaults) {
  auto http = http::Client::connect(endpoint_.host, endpoint_.port);
  ASSERT_TRUE(http.is_ok());
  auto resp = http->post("/ipa/services", "<x/>");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 400);
  EXPECT_NE(resp->body.find("faultstring"), std::string::npos);
}

TEST_F(SoapServerTest, GetMethodRejected) {
  auto http = http::Client::connect(endpoint_.host, endpoint_.port);
  ASSERT_TRUE(http.is_ok());
  auto resp = http->get("/ipa/services");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp->status, 400);
}

}  // namespace
}  // namespace ipa::soap
