// Fixture: must trip exactly [metric-name] — a counter without _total.
#include "obs/metrics.hpp"

namespace fixture {

void register_bad_counter() {
  ipa::obs::Registry::global().counter("ipa_requests", {}, "Requests served.");
}

}  // namespace fixture
