// Fixture: must trip exactly [raw-mutex] — a std::mutex outside sync.hpp.
#include <mutex>

namespace fixture {

int locked_increment() {
  static std::mutex mutex;
  static int counter = 0;
  mutex.lock();
  const int value = ++counter;
  mutex.unlock();
  return value;
}

}  // namespace fixture
