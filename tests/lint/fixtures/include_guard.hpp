// Fixture: must trip exactly [include-guard] — a header with no #pragma once.

namespace fixture {

inline int answer() { return 42; }

}  // namespace fixture
