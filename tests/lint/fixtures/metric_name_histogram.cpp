// Fixture: must trip exactly [metric-name] — a histogram without a unit
// suffix (_seconds/_records/_bytes).
#include "obs/metrics.hpp"

namespace fixture {

void register_bad_histogram() {
  ipa::obs::Registry::global().histogram("ipa_request_latency", {}, {},
                                         "Request latency.");
}

}  // namespace fixture
