// Fixture: must trip exactly [wallclock] — system_clock outside clock.cpp.
#include <chrono>

namespace fixture {

double seconds_since_epoch() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace fixture
