// Fixture: must trip exactly [blocking-under-lock] — a sleep inside a
// LockGuard scope (the annotated guard, so raw-mutex stays quiet).
#include <chrono>
#include <thread>

#include "common/sync.hpp"

namespace fixture {

ipa::Mutex g_mutex;

void slow_critical_section() {
  ipa::LockGuard lock(g_mutex);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

}  // namespace fixture
