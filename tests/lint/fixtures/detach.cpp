// Fixture: must trip exactly [detach] — a fire-and-forget thread.
#include <thread>

namespace fixture {

void fire_and_forget() {
  std::thread([] {}).detach();
}

}  // namespace fixture
