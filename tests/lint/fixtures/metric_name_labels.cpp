// Fixture: must trip exactly [metric-name] — label literals out of key
// order ("service" sorts after "method"; the registry renders them sorted,
// so the source literal and the exposition disagree).
#include <string>

#include "obs/metrics.hpp"

namespace fixture {

void register_unsorted_labels(const std::string& service, const std::string& method) {
  ipa::obs::Registry::global().counter("ipa_rpc_calls_total",
                                       {{"service", service}, {"method", method}},
                                       "RPC calls by service and method.");
}

}  // namespace fixture
