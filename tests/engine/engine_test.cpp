#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>

#include "common/rng.hpp"

namespace ipa::engine {
namespace {

const char* kSumScript = R"(
func begin(tree) {
  tree.book_h1("/e", 20, 0, 200);
}
func process(event, tree) {
  tree.fill("/e", event.num("energy"));
}
func end(tree) {
  print("end reached");
}
)";

/// A native plugin counting records.
class CountingAnalyzer final : public Analyzer {
 public:
  Status begin(aida::Tree& tree) override {
    auto hist = aida::Histogram1D::create("count", 1, 0, 1);
    tree.put("/count", std::move(*hist));
    return Status::ok();
  }
  Status process(const data::Record&, aida::Tree& tree) override {
    (*tree.histogram1d("/count"))->fill(0.5);
    return Status::ok();
  }
};

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Registration is idempotent per process.
    (void)AnalyzerRegistry::instance().register_factory(
        "counting", [] { return std::make_unique<CountingAnalyzer>(); });
  }

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ipa-eng-" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::create_directories(dir_);
    dataset_path_ = (dir_ / "part.ipd").string();
    Rng rng(1);
    std::vector<data::Record> records;
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      data::Record record(i);
      record.set("energy", rng.uniform(0.0, 200.0));
      records.push_back(std::move(record));
    }
    ASSERT_TRUE(data::write_dataset(dataset_path_, "part", records).is_ok());
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static CodeBundle script_bundle(const std::string& source) {
    return CodeBundle{CodeBundle::Kind::kScript, "test-script", source};
  }

  static constexpr std::uint64_t kRecords = 500;
  std::filesystem::path dir_;
  std::string dataset_path_;
};

TEST_F(EngineTest, FullRunFillsHistogram) {
  AnalysisEngine engine;
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  ASSERT_TRUE(engine.stage_code(script_bundle(kSumScript)).is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  const Progress done = engine.wait();
  EXPECT_EQ(done.state, EngineState::kFinished);
  EXPECT_EQ(done.processed, kRecords);
  EXPECT_EQ(done.total, kRecords);

  aida::Tree tree = engine.tree_copy();
  auto hist = tree.histogram1d("/e");
  ASSERT_TRUE(hist.is_ok());
  EXPECT_EQ((*hist)->entries(), kRecords);
}

TEST_F(EngineTest, NativePluginRuns) {
  AnalysisEngine engine;
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  ASSERT_TRUE(
      engine.stage_code(CodeBundle{CodeBundle::Kind::kPlugin, "c", "counting"}).is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_EQ(engine.wait().state, EngineState::kFinished);
  auto tree = engine.tree_copy();
  EXPECT_DOUBLE_EQ((*tree.histogram1d("/count"))->bin_height(0),
                   static_cast<double>(kRecords));
}

TEST_F(EngineTest, UnknownPluginRejectedAtStaging) {
  AnalysisEngine engine;
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  EXPECT_EQ(engine.stage_code(CodeBundle{CodeBundle::Kind::kPlugin, "x", "no-such"}).code(),
            StatusCode::kNotFound);
}

TEST_F(EngineTest, BadScriptRejectedAtStaging) {
  AnalysisEngine engine;
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  EXPECT_FALSE(engine.stage_code(script_bundle("func broken( {")).is_ok());
  EXPECT_FALSE(engine.stage_code(script_bundle("func not_process(e) { }")).is_ok());
}

TEST_F(EngineTest, RunWithoutStagingFails) {
  AnalysisEngine engine;
  EXPECT_EQ(engine.run().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  EXPECT_EQ(engine.run().code(), StatusCode::kFailedPrecondition);  // still no code
}

TEST_F(EngineTest, RunRecordsPausesAtBudget) {
  AnalysisEngine engine;
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  ASSERT_TRUE(engine.stage_code(script_bundle(kSumScript)).is_ok());
  ASSERT_TRUE(engine.run_records(100).is_ok());
  Progress p = engine.wait();
  EXPECT_EQ(p.state, EngineState::kPaused);
  EXPECT_EQ(p.processed, 100u);

  // Resume for another 50.
  ASSERT_TRUE(engine.run_records(50).is_ok());
  p = engine.wait();
  EXPECT_EQ(p.processed, 150u);

  // Run to completion.
  ASSERT_TRUE(engine.run().is_ok());
  p = engine.wait();
  EXPECT_EQ(p.state, EngineState::kFinished);
  EXPECT_EQ(p.processed, kRecords);
  EXPECT_EQ((*engine.tree_copy().histogram1d("/e"))->entries(), kRecords);
}

TEST_F(EngineTest, RewindClearsAndReruns) {
  AnalysisEngine engine;
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  ASSERT_TRUE(engine.stage_code(script_bundle(kSumScript)).is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_EQ(engine.wait().state, EngineState::kFinished);

  EXPECT_EQ(engine.run().code(), StatusCode::kFailedPrecondition);  // must rewind
  ASSERT_TRUE(engine.rewind().is_ok());
  EXPECT_EQ(engine.progress().processed, 0u);
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_EQ(engine.wait().state, EngineState::kFinished);
  EXPECT_EQ((*engine.tree_copy().histogram1d("/e"))->entries(), kRecords);  // not doubled
}

TEST_F(EngineTest, HotCodeReloadBetweenRuns) {
  AnalysisEngine engine;
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  ASSERT_TRUE(engine.stage_code(script_bundle(kSumScript)).is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_EQ(engine.wait().state, EngineState::kFinished);

  // Edit the analysis (different booking), rewind, re-run — no re-staging.
  const char* kV2 = R"(
func begin(tree) { tree.book_h1("/e2", 10, 0, 400); }
func process(event, tree) { tree.fill("/e2", event.num("energy") * 2); }
)";
  ASSERT_TRUE(engine.rewind().is_ok());
  ASSERT_TRUE(engine.stage_code(script_bundle(kV2)).is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_EQ(engine.wait().state, EngineState::kFinished);

  aida::Tree tree = engine.tree_copy();
  EXPECT_FALSE(tree.find("/e").is_ok());   // old booking gone after rewind
  auto hist = tree.histogram1d("/e2");
  ASSERT_TRUE(hist.is_ok());
  EXPECT_EQ((*hist)->entries(), kRecords);
}

TEST_F(EngineTest, PauseResumeKeepsAccumulating) {
  AnalysisEngine engine({.snapshot_every = 50, .interp = {}});
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  ASSERT_TRUE(engine.stage_code(script_bundle(kSumScript)).is_ok());
  ASSERT_TRUE(engine.run_records(200).is_ok());
  ASSERT_EQ(engine.wait().state, EngineState::kPaused);
  // Tree is readable while paused.
  EXPECT_EQ((*engine.tree_copy().histogram1d("/e"))->entries(), 200u);
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_EQ(engine.wait().state, EngineState::kFinished);
  EXPECT_EQ((*engine.tree_copy().histogram1d("/e"))->entries(), kRecords);
}

TEST_F(EngineTest, StopThenRunContinuesFromPosition) {
  AnalysisEngine engine;
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  ASSERT_TRUE(engine.stage_code(script_bundle(kSumScript)).is_ok());
  ASSERT_TRUE(engine.run_records(120).is_ok());
  engine.wait();
  ASSERT_TRUE(engine.stop().is_ok());
  EXPECT_EQ(engine.state(), EngineState::kStopped);
  ASSERT_TRUE(engine.run().is_ok());
  const Progress p = engine.wait();
  EXPECT_EQ(p.state, EngineState::kFinished);
  EXPECT_EQ(p.processed, kRecords);
}

TEST_F(EngineTest, SnapshotsArriveDuringRun) {
  AnalysisEngine engine({.snapshot_every = 100, .interp = {}});
  std::atomic<int> snapshots{0};
  std::atomic<std::uint64_t> last_entries{0};
  engine.set_snapshot_handler([&](const ser::Bytes& bytes, const Progress&) {
    auto tree = aida::Tree::deserialize(bytes);
    ASSERT_TRUE(tree.is_ok());
    auto hist = tree->histogram1d("/e");
    if (hist.is_ok()) last_entries = (*hist)->entries();
    ++snapshots;
  });
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  ASSERT_TRUE(engine.stage_code(script_bundle(kSumScript)).is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_EQ(engine.wait().state, EngineState::kFinished);
  // 500 records / 100 per snapshot = 5 interim + 1 final.
  EXPECT_GE(snapshots.load(), 5);
  EXPECT_EQ(last_entries.load(), kRecords);
}

TEST_F(EngineTest, ScriptRuntimeErrorFailsEngine) {
  AnalysisEngine engine;
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  const char* kCrash = R"(
func begin(tree) { tree.book_h1("/e", 10, 0, 1); }
func process(event, tree) { return event.get("no-such-field"); }
)";
  ASSERT_TRUE(engine.stage_code(script_bundle(kCrash)).is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  const Progress p = engine.wait();
  EXPECT_EQ(p.state, EngineState::kFailed);
  EXPECT_NE(p.error.find("no-such-field"), std::string::npos);
  // Recoverable: fix the code and rewind.
  ASSERT_TRUE(engine.stage_code(script_bundle(kSumScript)).is_ok());
  ASSERT_TRUE(engine.rewind().is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_EQ(engine.wait().state, EngineState::kFinished);
}

TEST_F(EngineTest, ControlsRejectWrongStates) {
  AnalysisEngine engine;
  EXPECT_FALSE(engine.pause().is_ok());
  EXPECT_FALSE(engine.stop().is_ok());
  EXPECT_FALSE(engine.rewind().is_ok());  // no dataset yet
  EXPECT_FALSE(engine.run_records(0).is_ok());
}

TEST_F(EngineTest, StagingWhileRunningRejected) {
  // A slow script keeps the engine busy long enough to probe the guards.
  const char* kSlow = R"(
func begin(tree) { tree.book_h1("/e", 10, 0, 1); }
func process(event, tree) {
  let x = 0;
  for (let i = 0; i < 2000; i += 1) { x += i; }
}
)";
  AnalysisEngine engine;
  ASSERT_TRUE(engine.stage_dataset(dataset_path_).is_ok());
  ASSERT_TRUE(engine.stage_code(script_bundle(kSlow)).is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_EQ(engine.stage_dataset(dataset_path_).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.stage_code(script_bundle(kSumScript)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.rewind().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine.stop().is_ok());
  engine.wait();
}

TEST_F(EngineTest, CodeBundleSerializeRoundTrip) {
  const CodeBundle bundle{CodeBundle::Kind::kScript, "v1", "func process(e, t) { }"};
  ser::Writer w;
  bundle.encode(w);
  ser::Reader r(w.data());
  auto back = CodeBundle::decode(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, bundle);
}

TEST_F(EngineTest, EngineStateNames) {
  EXPECT_EQ(to_string(EngineState::kIdle), "idle");
  EXPECT_EQ(to_string(EngineState::kRunning), "running");
  EXPECT_EQ(to_string(EngineState::kFailed), "failed");
}

}  // namespace
}  // namespace ipa::engine
