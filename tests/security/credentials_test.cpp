#include "security/credentials.hpp"

#include <gtest/gtest.h>

namespace ipa::security {
namespace {

class CredentialTest : public ::testing::Test {
 protected:
  ManualClock clock_{1000.0};
  CredentialAuthority authority_{"lc-vo", "super-secret-vo-key", clock_};
};

TEST_F(CredentialTest, IssueAndVerify) {
  const std::string token = authority_.issue("cn=alice", {"analysis"}, 3600);
  auto identity = authority_.verify(token);
  ASSERT_TRUE(identity.is_ok()) << identity.status().to_string();
  EXPECT_EQ(identity->subject, "cn=alice");
  EXPECT_EQ(identity->vo, "lc-vo");
  EXPECT_TRUE(identity->has_role("analysis"));
  EXPECT_FALSE(identity->has_role("admin"));
  EXPECT_EQ(identity->delegation_depth, 0);
  EXPECT_DOUBLE_EQ(identity->issued_at, 1000.0);
  EXPECT_DOUBLE_EQ(identity->expires_at, 4600.0);
}

TEST_F(CredentialTest, ExpiryEnforced) {
  const std::string token = authority_.issue("cn=alice", {"analysis"}, 100);
  clock_.advance(99);
  EXPECT_TRUE(authority_.verify(token).is_ok());
  clock_.advance(2);
  const auto expired = authority_.verify(token);
  ASSERT_FALSE(expired.is_ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kUnauthenticated);
  EXPECT_NE(expired.status().message().find("expired"), std::string::npos);
}

TEST_F(CredentialTest, TamperedTokenRejected) {
  std::string token = authority_.issue("cn=alice", {"analysis"}, 3600);
  token[token.size() / 2] = token[token.size() / 2] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(authority_.verify(token).is_ok());
}

TEST_F(CredentialTest, ForgedPayloadRejected) {
  // Re-sign with a different secret: signature must not verify.
  CredentialAuthority imposter("lc-vo", "wrong-key", clock_);
  const std::string forged = imposter.issue("cn=mallory", {"admin"}, 3600);
  EXPECT_EQ(authority_.verify(forged).status().code(), StatusCode::kUnauthenticated);
}

TEST_F(CredentialTest, MalformedTokensRejected) {
  EXPECT_FALSE(authority_.verify("").is_ok());
  EXPECT_FALSE(authority_.verify("no-dot-here").is_ok());
  EXPECT_FALSE(authority_.verify("abc.def").is_ok());
}

TEST_F(CredentialTest, WrongVoRejected) {
  CredentialAuthority other_vo("atlas-vo", "super-secret-vo-key", clock_);
  const std::string token = other_vo.issue("cn=alice", {"analysis"}, 3600);
  const auto result = authority_.verify(token);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("wrong VO"), std::string::npos);
}

TEST_F(CredentialTest, DelegationIncrementsDepthAndClampsLifetime) {
  const std::string parent = authority_.issue("cn=alice", {"analysis"}, 1000);
  clock_.advance(500);
  auto proxy = authority_.delegate(parent, 10000);
  ASSERT_TRUE(proxy.is_ok());
  auto identity = authority_.verify(*proxy);
  ASSERT_TRUE(identity.is_ok());
  EXPECT_EQ(identity->delegation_depth, 1);
  EXPECT_EQ(identity->subject, "cn=alice");
  // Clamped to parent expiry (1000+1000=2000), not now+10000.
  EXPECT_DOUBLE_EQ(identity->expires_at, 2000.0);
}

TEST_F(CredentialTest, DelegationChainDepthLimit) {
  std::string token = authority_.issue("cn=alice", {"analysis"}, 1e6);
  for (int depth = 0; depth < kMaxDelegationDepth; ++depth) {
    auto next = authority_.delegate(token, 1e6);
    ASSERT_TRUE(next.is_ok()) << "depth " << depth;
    token = *next;
  }
  const auto too_deep = authority_.delegate(token, 1e6);
  ASSERT_FALSE(too_deep.is_ok());
  EXPECT_EQ(too_deep.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(CredentialTest, DelegateFromExpiredParentFails) {
  const std::string parent = authority_.issue("cn=alice", {"analysis"}, 10);
  clock_.advance(11);
  EXPECT_FALSE(authority_.delegate(parent, 100).is_ok());
}

const char* kPolicyText = R"(
vo.name = lc-vo
role.analysis.max_nodes = 16
role.analysis.queue = interactive
role.student.max_nodes = 2
role.student.queue = batch
)";

class PolicyTest : public CredentialTest {
 protected:
  void SetUp() override {
    auto config = Config::parse(kPolicyText);
    ASSERT_TRUE(config.is_ok());
    auto policy = VoPolicy::from_config(*config);
    ASSERT_TRUE(policy.is_ok()) << policy.status().to_string();
    policy_ = std::make_unique<VoPolicy>(std::move(*policy));
  }
  std::unique_ptr<VoPolicy> policy_;
};

TEST_F(PolicyTest, GrantsUpToRoleCap) {
  auto identity = authority_.verify(authority_.issue("cn=alice", {"analysis"}, 100));
  ASSERT_TRUE(identity.is_ok());
  EXPECT_EQ(policy_->authorize_nodes(*identity, 8).value(), 8);
  EXPECT_EQ(policy_->authorize_nodes(*identity, 64).value(), 16);  // capped
  EXPECT_EQ(policy_->queue_for(*identity).value(), "interactive");
}

TEST_F(PolicyTest, BestRoleWins) {
  auto identity = authority_.verify(authority_.issue("cn=bob", {"student", "analysis"}, 100));
  ASSERT_TRUE(identity.is_ok());
  EXPECT_EQ(policy_->authorize_nodes(*identity, 64).value(), 16);
  EXPECT_EQ(policy_->queue_for(*identity).value(), "interactive");
}

TEST_F(PolicyTest, StudentCappedAtTwo) {
  auto identity = authority_.verify(authority_.issue("cn=carol", {"student"}, 100));
  ASSERT_TRUE(identity.is_ok());
  EXPECT_EQ(policy_->authorize_nodes(*identity, 16).value(), 2);
  EXPECT_EQ(policy_->queue_for(*identity).value(), "batch");
}

TEST_F(PolicyTest, NoRoleDenied) {
  auto identity = authority_.verify(authority_.issue("cn=dave", {"visitor"}, 100));
  ASSERT_TRUE(identity.is_ok());
  EXPECT_EQ(policy_->authorize_nodes(*identity, 4).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_FALSE(policy_->queue_for(*identity).is_ok());
}

TEST_F(PolicyTest, WrongVoDenied) {
  Identity identity;
  identity.subject = "cn=eve";
  identity.vo = "other-vo";
  identity.roles = {"analysis"};
  EXPECT_EQ(policy_->authorize_nodes(identity, 4).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(PolicyTest, InvalidRequestRejected) {
  auto identity = authority_.verify(authority_.issue("cn=alice", {"analysis"}, 100));
  ASSERT_TRUE(identity.is_ok());
  EXPECT_EQ(policy_->authorize_nodes(*identity, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(policy_->authorize_nodes(*identity, -3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PolicyConfig, RejectsBadConfigs) {
  auto no_vo = Config::parse("role.x.max_nodes = 4\n");
  ASSERT_TRUE(no_vo.is_ok());
  EXPECT_FALSE(VoPolicy::from_config(*no_vo).is_ok());

  auto no_roles = Config::parse("vo.name = v\n");
  ASSERT_TRUE(no_roles.is_ok());
  EXPECT_FALSE(VoPolicy::from_config(*no_roles).is_ok());

  auto bad_cap = Config::parse("vo.name = v\nrole.x.max_nodes = 0\n");
  ASSERT_TRUE(bad_cap.is_ok());
  EXPECT_FALSE(VoPolicy::from_config(*bad_cap).is_ok());
}

}  // namespace
}  // namespace ipa::security
