// Reactor and Stream unit tests: the epoll loop, timer wheel, cross-thread
// posting, and the buffered non-blocking byte stream that every server
// connection rides on. Peers are emulated with socketpair(2) so each case
// controls both ends of the wire.
#include "net/reactor.hpp"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace ipa::net {
namespace {

/// Spin until `pred` holds or `timeout_s` elapses; the suite runs on a
/// single-core container, so polling beats fixed sleeps for flake immunity.
template <typename Pred>
bool wait_until(Pred pred, double timeout_s = 5.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

struct SocketPair {
  Fd a;  // typically adopted by a Stream
  Fd b;  // the test's raw end
};

SocketPair make_socket_pair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Fd(fds[0]), Fd(fds[1])};
}

/// Read whatever arrives on `fd` within `timeout_s` (possibly nothing).
std::string read_available(int fd, double timeout_s) {
  std::string out;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  for (;;) {
    const auto remaining = std::chrono::duration<double>(
        deadline - std::chrono::steady_clock::now());
    const int wait_ms = std::max(0, static_cast<int>(remaining.count() * 1000));
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready <= 0) return out;
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return out;  // EOF or error: give back what we have
    out.append(buf, static_cast<std::size_t>(n));
  }
}

/// True when the peer has closed: poll reports readable and recv returns 0.
bool reads_eof(int fd, double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  for (;;) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, 50) > 0) {
      char buf[4096];
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n == 0) return true;
      if (n < 0) return false;
      // data before EOF: keep draining
    }
    if (std::chrono::steady_clock::now() > deadline) return false;
  }
}

TEST(Reactor, StartStopIsIdempotent) {
  Reactor reactor({.name = "t-startstop"});
  ASSERT_TRUE(reactor.start().is_ok());
  EXPECT_TRUE(reactor.running());
  reactor.stop();
  EXPECT_FALSE(reactor.running());
  reactor.stop();  // second stop is a no-op
}

TEST(Reactor, PostedFunctionsRunInOrderOnLoopThread) {
  Reactor reactor({.name = "t-post"});
  ASSERT_TRUE(reactor.start().is_ok());

  Mutex mutex{LockRank::kLoadStats, "t-post"};
  std::vector<int> order;
  std::atomic<bool> all_on_loop{true};
  for (int i = 0; i < 100; ++i) {
    reactor.post([&, i] {
      if (!reactor.on_loop_thread()) all_on_loop = false;
      LockGuard lock(mutex);
      order.push_back(i);
    });
  }
  ASSERT_TRUE(wait_until([&] {
    LockGuard lock(mutex);
    return order.size() == 100;
  }));
  EXPECT_TRUE(all_on_loop.load());
  LockGuard lock(mutex);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  reactor.stop();
}

TEST(Reactor, TimerFiresOnceAfterDelay) {
  Reactor reactor({.name = "t-timer"});
  ASSERT_TRUE(reactor.start().is_ok());
  std::atomic<int> fired{0};
  const auto start = std::chrono::steady_clock::now();
  reactor.add_timer(0.05, [&] { ++fired; });
  ASSERT_TRUE(wait_until([&] { return fired.load() == 1; }));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GE(elapsed, 0.03);  // not early (allow one coarse tick of slack)
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(fired.load(), 1);  // one-shot
  reactor.stop();
}

TEST(Reactor, CancelledTimerNeverFires) {
  Reactor reactor({.name = "t-cancel"});
  ASSERT_TRUE(reactor.start().is_ok());
  std::atomic<int> fired{0};
  const std::uint64_t id = reactor.add_timer(0.1, [&] { ++fired; });
  reactor.cancel_timer(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(fired.load(), 0);
  reactor.stop();
}

TEST(Reactor, LongDelayTimerSurvivesWheelRevolutions) {
  // Deadline beyond one wheel revolution (slots * tick) must park, not fire
  // on the first pass over its slot.
  Reactor reactor({.name = "t-wheel", .tick_s = 0.005, .wheel_slots = 8});
  ASSERT_TRUE(reactor.start().is_ok());
  std::atomic<int> fired{0};
  const auto start = std::chrono::steady_clock::now();
  reactor.add_timer(0.2, [&] { ++fired; });  // 5 revolutions of an 8*5ms wheel
  ASSERT_TRUE(wait_until([&] { return fired.load() == 1; }));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GE(elapsed, 0.15);
  reactor.stop();
}

TEST(Reactor, AddFdDispatchesReadableEvents) {
  Reactor reactor({.name = "t-fd"});
  ASSERT_TRUE(reactor.start().is_ok());
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(set_nonblocking(pair.a.get()).is_ok());

  std::atomic<int> readable{0};
  const int raw = pair.a.get();
  auto token = reactor.add_fd(raw, EPOLLIN, [&, raw](std::uint32_t) {
    char buf[64];
    while (::recv(raw, buf, sizeof buf, 0) > 0) {
    }
    ++readable;
  });
  ASSERT_TRUE(token.is_ok());

  ASSERT_EQ(::send(pair.b.get(), "x", 1, 0), 1);
  ASSERT_TRUE(wait_until([&] { return readable.load() >= 1; }));

  reactor.remove_fd(*token);
  reactor.stop();
}

TEST(Stream, EchoRoundTripAndThreadSafeSend) {
  Reactor reactor({.name = "t-echo"});
  ASSERT_TRUE(reactor.start().is_ok());
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(set_nonblocking(pair.a.get()).is_ok());

  auto stream = Stream::adopt(reactor, std::move(pair.a), "test-peer", {},
                              [](std::string&) { return Status::ok(); }, [] {});
  ASSERT_TRUE(stream.is_ok());

  // Concurrent senders: frames must come out whole, never interleaved.
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 50; ++i) {
          (*stream)->send(std::string(64, static_cast<char>('a' + t)));
        }
      });
    }
  }
  std::string got;
  ASSERT_TRUE(wait_until([&] {
    got += read_available(pair.b.get(), 0.05);
    return got.size() == 4u * 50u * 64u;
  }));
  // Whole-frame atomicity: every aligned 64-byte block is one letter.
  for (std::size_t off = 0; off < got.size(); off += 64) {
    const char c = got[off];
    EXPECT_EQ(got.substr(off, 64), std::string(64, c)) << "interleaved at " << off;
  }
  (*stream)->close();
  reactor.stop();
}

TEST(Stream, OnDataConsumesInPlace) {
  Reactor reactor({.name = "t-ondata"});
  ASSERT_TRUE(reactor.start().is_ok());
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(set_nonblocking(pair.a.get()).is_ok());

  Mutex mutex{LockRank::kLoadStats, "t-ondata"};
  std::string seen;
  auto stream = Stream::adopt(
      reactor, std::move(pair.a), "test-peer", {},
      [&](std::string& input) {
        LockGuard lock(mutex);
        seen += input;
        input.clear();
        return Status::ok();
      },
      [] {});
  ASSERT_TRUE(stream.is_ok());

  const std::string payload = "hello, reactor";
  ASSERT_EQ(::send(pair.b.get(), payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));
  ASSERT_TRUE(wait_until([&] {
    LockGuard lock(mutex);
    return seen == payload;
  }));
  (*stream)->close();
  reactor.stop();
}

TEST(Stream, CloseAfterFlushDeliversEverythingThenEof) {
  Reactor reactor({.name = "t-flush"});
  ASSERT_TRUE(reactor.start().is_ok());
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(set_nonblocking(pair.a.get()).is_ok());

  auto stream = Stream::adopt(reactor, std::move(pair.a), "test-peer", {},
                              [](std::string&) { return Status::ok(); }, [] {});
  ASSERT_TRUE(stream.is_ok());

  const std::string big(1 << 20, 'q');  // larger than any socket buffer
  (*stream)->send(big, /*close_after=*/true);

  std::string got;
  ASSERT_TRUE(wait_until([&] {
    got += read_available(pair.b.get(), 0.05);
    return got.size() == big.size();
  }));
  EXPECT_EQ(got, big);
  EXPECT_TRUE(reads_eof(pair.b.get(), 5.0));
  reactor.stop();
}

TEST(Stream, DataErrorClosesConnection) {
  Reactor reactor({.name = "t-dataerr"});
  ASSERT_TRUE(reactor.start().is_ok());
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(set_nonblocking(pair.a.get()).is_ok());

  std::atomic<bool> closed{false};
  auto stream = Stream::adopt(
      reactor, std::move(pair.a), "test-peer", {},
      [](std::string& input) {
        input.clear();
        return data_loss("bad bytes");
      },
      [&] { closed = true; });
  ASSERT_TRUE(stream.is_ok());

  ASSERT_EQ(::send(pair.b.get(), "garbage", 7, 0), 7);
  ASSERT_TRUE(wait_until([&] { return closed.load(); }));
  EXPECT_TRUE((*stream)->closed());
  EXPECT_TRUE(reads_eof(pair.b.get(), 5.0));
  reactor.stop();
}

TEST(Stream, InputOverflowClosesConnection) {
  Reactor reactor({.name = "t-overflow"});
  ASSERT_TRUE(reactor.start().is_ok());
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(set_nonblocking(pair.a.get()).is_ok());

  std::atomic<bool> closed{false};
  StreamOptions options;
  options.max_input_bytes = 1024;  // parser that never consumes + tiny cap
  auto stream = Stream::adopt(reactor, std::move(pair.a), "test-peer", options,
                              [](std::string&) { return Status::ok(); },
                              [&] { closed = true; });
  ASSERT_TRUE(stream.is_ok());

  const std::string flood(8192, 'z');
  (void)::send(pair.b.get(), flood.data(), flood.size(), 0);
  ASSERT_TRUE(wait_until([&] { return closed.load(); }));
  reactor.stop();
}

TEST(Stream, IdleTimeoutReapsSilentPeer) {
  Reactor reactor({.name = "t-idle"});
  ASSERT_TRUE(reactor.start().is_ok());
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(set_nonblocking(pair.a.get()).is_ok());

  auto& reaped = obs::Registry::global().counter("ipa_reactor_idle_reaped_total",
                                                 {{"reactor", "t-idle"}});
  const double before = reaped.value();

  std::atomic<bool> closed{false};
  StreamOptions options;
  options.idle_timeout_s = 0.2;
  auto stream = Stream::adopt(reactor, std::move(pair.a), "test-peer", options,
                              [](std::string& input) {
                                input.clear();
                                return Status::ok();
                              },
                              [&] { closed = true; });
  ASSERT_TRUE(stream.is_ok());

  // Activity inside the window must push the deadline out...
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_EQ(::send(pair.b.get(), "k", 1, 0), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(closed.load()) << "reaped despite recent activity";

  // ...and silence past the window must reap.
  ASSERT_TRUE(wait_until([&] { return closed.load(); }));
  EXPECT_TRUE(reads_eof(pair.b.get(), 5.0));
  EXPECT_GE(reaped.value(), before + 1.0);
  reactor.stop();
}

TEST(Stream, SurvivesReactorStopWithoutCallbacks) {
  // Stopping the reactor with live streams must not deadlock or fire
  // callbacks afterwards; owners drop their streams later.
  Reactor reactor({.name = "t-stop"});
  ASSERT_TRUE(reactor.start().is_ok());
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(set_nonblocking(pair.a.get()).is_ok());
  auto stream = Stream::adopt(reactor, std::move(pair.a), "test-peer", {},
                              [](std::string&) { return Status::ok(); }, [] {});
  ASSERT_TRUE(stream.is_ok());
  reactor.stop();
  stream->reset();  // RAII teardown after stop must be clean
}

}  // namespace
}  // namespace ipa::net
