#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

namespace ipa::net {
namespace {

ser::Bytes bytes_of(std::string_view s) {
  return ser::Bytes(s.begin(), s.end());
}

class TransportTest : public ::testing::TestWithParam<std::string> {
 protected:
  // "chaos+" endpoints carry no fault query: the decorator must be a pure
  // passthrough, so every transport contract holds under it verbatim.
  Uri make_endpoint() {
    const std::string& scheme = GetParam();
    Uri uri;
    uri.scheme = scheme;
    if (scheme == "tcp" || scheme == "chaos+tcp") {
      uri.host = "127.0.0.1";
      uri.port = 0;
    } else {
      static std::atomic<int> counter{0};
      uri.host = "test-ep-" + std::to_string(counter.fetch_add(1));
    }
    return uri;
  }
};

TEST_P(TransportTest, EchoRoundTrip) {
  auto listener = listen(make_endpoint());
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();

  std::jthread server([&] {
    auto conn = (*listener)->accept(5.0);
    ASSERT_TRUE(conn.is_ok());
    auto frame = (*conn)->receive(5.0);
    ASSERT_TRUE(frame.is_ok());
    ASSERT_TRUE((*conn)->send(*frame).is_ok());
  });

  auto client = connect((*listener)->endpoint());
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  ASSERT_TRUE((*client)->send(bytes_of("ping")).is_ok());
  auto echoed = (*client)->receive(5.0);
  ASSERT_TRUE(echoed.is_ok());
  EXPECT_EQ(*echoed, bytes_of("ping"));
}

TEST_P(TransportTest, ManySequentialFramesPreserveOrderAndContent) {
  auto listener = listen(make_endpoint());
  ASSERT_TRUE(listener.is_ok());

  constexpr int kFrames = 200;
  std::jthread server([&] {
    auto conn = (*listener)->accept(5.0);
    ASSERT_TRUE(conn.is_ok());
    for (int i = 0; i < kFrames; ++i) {
      auto frame = (*conn)->receive(5.0);
      ASSERT_TRUE(frame.is_ok());
      EXPECT_EQ(*frame, bytes_of("msg-" + std::to_string(i)));
    }
    ASSERT_TRUE((*conn)->send(bytes_of("done")).is_ok());
  });

  auto client = connect((*listener)->endpoint());
  ASSERT_TRUE(client.is_ok());
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE((*client)->send(bytes_of("msg-" + std::to_string(i))).is_ok());
  }
  EXPECT_EQ((*client)->receive(5.0).value(), bytes_of("done"));
}

TEST_P(TransportTest, LargeFrameRoundTrip) {
  auto listener = listen(make_endpoint());
  ASSERT_TRUE(listener.is_ok());

  ser::Bytes big(3 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 31);

  std::jthread server([&] {
    auto conn = (*listener)->accept(5.0);
    ASSERT_TRUE(conn.is_ok());
    auto frame = (*conn)->receive(10.0);
    ASSERT_TRUE(frame.is_ok());
    ASSERT_TRUE((*conn)->send(*frame).is_ok());
  });

  auto client = connect((*listener)->endpoint());
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE((*client)->send(big).is_ok());
  auto echoed = (*client)->receive(10.0);
  ASSERT_TRUE(echoed.is_ok());
  EXPECT_EQ(*echoed, big);
}

TEST_P(TransportTest, EmptyFrameIsValid) {
  auto listener = listen(make_endpoint());
  ASSERT_TRUE(listener.is_ok());
  std::jthread server([&] {
    auto conn = (*listener)->accept(5.0);
    ASSERT_TRUE(conn.is_ok());
    auto frame = (*conn)->receive(5.0);
    ASSERT_TRUE(frame.is_ok());
    EXPECT_TRUE(frame->empty());
    ASSERT_TRUE((*conn)->send({}).is_ok());
  });
  auto client = connect((*listener)->endpoint());
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE((*client)->send({}).is_ok());
  EXPECT_TRUE((*client)->receive(5.0).value().empty());
}

TEST_P(TransportTest, ReceiveTimesOut) {
  auto listener = listen(make_endpoint());
  ASSERT_TRUE(listener.is_ok());
  std::jthread server([&] {
    auto conn = (*listener)->accept(5.0);
    ASSERT_TRUE(conn.is_ok());
    // Keep the connection open (sending nothing) past the client's timeout.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  });
  auto client = connect((*listener)->endpoint());
  ASSERT_TRUE(client.is_ok());
  const auto result = (*client)->receive(0.05);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_P(TransportTest, AcceptTimesOut) {
  auto listener = listen(make_endpoint());
  ASSERT_TRUE(listener.is_ok());
  const auto result = (*listener)->accept(0.05);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_P(TransportTest, PeerCloseUnblocksReceive) {
  auto listener = listen(make_endpoint());
  ASSERT_TRUE(listener.is_ok());

  std::jthread server([&] {
    auto conn = (*listener)->accept(5.0);
    ASSERT_TRUE(conn.is_ok());
    (*conn)->close();
  });

  auto client = connect((*listener)->endpoint());
  ASSERT_TRUE(client.is_ok());
  const auto result = (*client)->receive(5.0);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_P(TransportTest, ConcurrentConnections) {
  auto listener = listen(make_endpoint());
  ASSERT_TRUE(listener.is_ok());

  constexpr int kClients = 8;
  std::vector<std::jthread> echoers;
  std::jthread server([&] {
    for (int i = 0; i < kClients; ++i) {
      auto conn = (*listener)->accept(5.0);
      ASSERT_TRUE(conn.is_ok());
      echoers.emplace_back([c = std::shared_ptr<Connection>(conn->release())] {
        auto frame = c->receive(5.0);
        if (frame.is_ok()) (void)c->send(*frame);
      });
    }
  });

  std::vector<std::jthread> clients;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto client = connect((*listener)->endpoint());
      if (!client.is_ok()) return;
      const ser::Bytes msg = bytes_of("client-" + std::to_string(i));
      if (!(*client)->send(msg).is_ok()) return;
      auto echoed = (*client)->receive(5.0);
      if (echoed.is_ok() && *echoed == msg) ++ok_count;
    });
  }
  clients.clear();
  EXPECT_EQ(ok_count.load(), kClients);
}

TEST_P(TransportTest, FrameAtMaxSizeIsDelivered) {
  auto listener = listen(make_endpoint());
  ASSERT_TRUE(listener.is_ok());

  std::jthread server([&] {
    auto conn = (*listener)->accept(5.0);
    ASSERT_TRUE(conn.is_ok());
    auto frame = (*conn)->receive(30.0);
    ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
    EXPECT_EQ(frame->size(), kMaxFrameBytes);
    EXPECT_EQ(frame->front(), 0xAB);
    EXPECT_EQ(frame->back(), 0xCD);
    ASSERT_TRUE((*conn)->send(bytes_of("got it")).is_ok());
  });

  ser::Bytes frame(kMaxFrameBytes, 0);
  frame.front() = 0xAB;
  frame.back() = 0xCD;
  auto client = connect((*listener)->endpoint());
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE((*client)->send(frame).is_ok());
  EXPECT_EQ((*client)->receive(30.0).value(), bytes_of("got it"));
}

TEST_P(TransportTest, OversizedFrameIsRejectedAtSend) {
  auto listener = listen(make_endpoint());
  ASSERT_TRUE(listener.is_ok());
  auto client = connect((*listener)->endpoint());
  ASSERT_TRUE(client.is_ok());
  const ser::Bytes frame(kMaxFrameBytes + 1, 0);
  EXPECT_EQ((*client)->send(frame).code(), StatusCode::kInvalidArgument);
}

TEST_P(TransportTest, SelfCloseWakesBlockedReceive) {
  auto listener = listen(make_endpoint());
  ASSERT_TRUE(listener.is_ok());
  std::jthread server([&] {
    auto conn = (*listener)->accept(5.0);
    ASSERT_TRUE(conn.is_ok());
    // Keep the server end open and silent; only the client's own close may
    // end its blocked receive.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  });
  auto client = connect((*listener)->endpoint());
  ASSERT_TRUE(client.is_ok());
  std::shared_ptr<Connection> conn(client->release());

  std::jthread closer([conn] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    conn->close();
  });
  const auto start = std::chrono::steady_clock::now();
  const auto result = conn->receive(5.0);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(result.is_ok());
  // Woke on the close, not the 5 s deadline.
  EXPECT_LT(elapsed, std::chrono::seconds(2));
}

TEST_P(TransportTest, ConcurrentSendAndReceiveAreFullDuplex) {
  auto listener = listen(make_endpoint());
  ASSERT_TRUE(listener.is_ok());

  constexpr int kFrames = 100;
  std::jthread server([&] {
    auto conn = (*listener)->accept(5.0);
    ASSERT_TRUE(conn.is_ok());
    std::shared_ptr<Connection> c(conn->release());
    std::jthread tx([c] {
      for (int i = 0; i < kFrames; ++i) {
        ASSERT_TRUE(c->send(bytes_of("s" + std::to_string(i))).is_ok());
      }
    });
    for (int i = 0; i < kFrames; ++i) {
      auto frame = c->receive(5.0);
      ASSERT_TRUE(frame.is_ok());
      EXPECT_EQ(*frame, bytes_of("c" + std::to_string(i)));
    }
  });

  auto client = connect((*listener)->endpoint());
  ASSERT_TRUE(client.is_ok());
  std::shared_ptr<Connection> c(client->release());
  std::jthread tx([c] {
    for (int i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(c->send(bytes_of("c" + std::to_string(i))).is_ok());
    }
  });
  for (int i = 0; i < kFrames; ++i) {
    auto frame = c->receive(5.0);
    ASSERT_TRUE(frame.is_ok());
    EXPECT_EQ(*frame, bytes_of("s" + std::to_string(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportTest,
                         ::testing::Values("inproc", "tcp", "chaos+inproc", "chaos+tcp"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '+', '_');
                           return name;
                         });

TEST(InProc, ConnectWithoutListenerFails) {
  Uri uri;
  uri.scheme = "inproc";
  uri.host = "nobody-home";
  EXPECT_EQ(connect(uri).status().code(), StatusCode::kUnavailable);
}

TEST(InProc, DuplicateListenRejected) {
  Uri uri;
  uri.scheme = "inproc";
  uri.host = "dup-ep";
  auto first = listen(uri);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(listen(uri).status().code(), StatusCode::kAlreadyExists);
  (*first)->close();
  // After close the name is free again.
  auto second = listen(uri);
  EXPECT_TRUE(second.is_ok());
}

TEST(Tcp, EphemeralPortIsReported) {
  Uri uri;
  uri.scheme = "tcp";
  uri.host = "127.0.0.1";
  uri.port = 0;
  auto listener = listen(uri);
  ASSERT_TRUE(listener.is_ok());
  EXPECT_GT((*listener)->endpoint().port, 0);
}

TEST(Tcp, ConnectToClosedPortFails) {
  Uri uri;
  uri.scheme = "tcp";
  uri.host = "127.0.0.1";
  uri.port = 1;  // almost certainly closed
  const auto result = connect(uri, 1.0);
  EXPECT_FALSE(result.is_ok());
}

TEST(Transport, UnknownSchemeRejected) {
  Uri uri;
  uri.scheme = "carrier-pigeon";
  uri.host = "x";
  EXPECT_EQ(listen(uri).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(connect(uri).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ipa::net
