// Unit coverage for the load-harness support layers: the vendored JSON
// reader, percentile math, Prometheus exposition parsing, and SLO profile
// parsing + gate evaluation. The end-to-end harness itself is exercised by
// the `ctest -L load` smoke tier (bench/bench_load.cpp).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "loadgen/json.hpp"
#include "loadgen/loadgen.hpp"
#include "loadgen/promparse.hpp"
#include "loadgen/slo.hpp"
#include "loadgen/stats.hpp"

namespace ipa::loadgen {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Json, ParsesNestedDocument) {
  auto doc = Json::parse(R"({
    "name": "smoke", "ok": true, "nothing": null,
    "limits": {"p95_max_s": 1.5, "count": 3},
    "list": [1, 2.5, "three", false]
  })");
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  EXPECT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("name")->string_or(""), "smoke");
  EXPECT_TRUE(doc->find("ok")->bool_or(false));
  EXPECT_TRUE(doc->find("nothing")->is_null());
  const Json* limits = doc->find("limits");
  ASSERT_NE(limits, nullptr);
  EXPECT_DOUBLE_EQ(limits->number_at("p95_max_s", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(limits->number_at("absent", 9.0), 9.0);
  const Json* list = doc->find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->items().size(), 4u);
  EXPECT_DOUBLE_EQ(list->items()[1].number_or(0.0), 2.5);
  EXPECT_EQ(list->items()[2].string_or(""), "three");
}

TEST(Json, ParsesEscapesAndExponents) {
  auto doc = Json::parse(R"({"s": "a\"b\\c\nd", "e": 2.5e-3, "neg": -17})");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->find("s")->string_or(""), "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ(doc->find("e")->number_or(0.0), 2.5e-3);
  EXPECT_DOUBLE_EQ(doc->find("neg")->number_or(0.0), -17.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("{").is_ok());
  EXPECT_FALSE(Json::parse(R"({"a": })").is_ok());
  EXPECT_FALSE(Json::parse(R"({"a": 1} trailing)").is_ok());
  EXPECT_FALSE(Json::parse(R"(["unterminated)").is_ok());
  EXPECT_FALSE(Json::parse("").is_ok());
}

TEST(Stats, PercentileInterpolatesLinearly) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 0.99), 7.5);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Stats, SeriesSummarizesWithErrorsAndRejects) {
  LatencySeries series;
  for (int i = 1; i <= 100; ++i) series.record(i * 0.01);
  series.record_error();
  series.record_reject();
  series.record_reject();
  const Summary s = series.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.rejects, 2u);
  EXPECT_NEAR(s.p50_s, 0.505, 1e-9);
  EXPECT_NEAR(s.p99_s, 0.9901, 1e-9);
  EXPECT_DOUBLE_EQ(s.max_s, 1.0);
}

TEST(PromParse, ExtractsHistogramFamilies) {
  const std::string exposition =
      "# HELP ipa_session_phase_seconds per-phase wall time\n"
      "# TYPE ipa_session_phase_seconds histogram\n"
      "ipa_session_phase_seconds_bucket{phase=\"run\",le=\"0.1\"} 4\n"
      "ipa_session_phase_seconds_bucket{phase=\"run\",le=\"1\"} 9\n"
      "ipa_session_phase_seconds_bucket{phase=\"run\",le=\"+Inf\"} 10\n"
      "ipa_session_phase_seconds_sum{phase=\"run\"} 3.25\n"
      "ipa_session_phase_seconds_count{phase=\"run\"} 10\n"
      "ipa_session_phase_seconds_bucket{phase=\"merge\",le=\"0.1\"} 2\n"
      "ipa_session_phase_seconds_bucket{phase=\"merge\",le=\"+Inf\"} 2\n"
      "ipa_session_phase_seconds_count{phase=\"merge\"} 2\n"
      "other_metric{phase=\"run\"} 99\n";
  const auto families =
      parse_histogram_family(exposition, "ipa_session_phase_seconds", "phase");
  ASSERT_EQ(families.size(), 2u);

  const HistogramSeries& run = families.at("run");
  ASSERT_EQ(run.upper_bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(run.upper_bounds[0], 0.1);
  EXPECT_TRUE(std::isinf(run.upper_bounds[2]));
  EXPECT_EQ(run.cumulative[1], 9u);
  EXPECT_EQ(run.count, 10u);
  EXPECT_DOUBLE_EQ(run.sum, 3.25);
  // Median falls in the (0.1, 1] bucket; interpolation stays inside it.
  const double p50 = run.quantile(0.50);
  EXPECT_GT(p50, 0.1);
  EXPECT_LE(p50, 1.0);
  // Everything beyond the last finite bound clamps to that bound.
  EXPECT_DOUBLE_EQ(run.quantile(0.999), 1.0);

  EXPECT_EQ(families.at("merge").count, 2u);
}

TEST(PromParse, ScalarLookup) {
  const std::string exposition =
      "ipa_server_overflow_total{server=\"http\"} 3\n"
      "ipa_server_overflow_total{server=\"rpc\"} 0\n"
      "ipa_up 1\n";
  EXPECT_DOUBLE_EQ(scalar_value(exposition, "ipa_server_overflow_total",
                                {{"server", "http"}}, -1.0),
                   3.0);
  EXPECT_DOUBLE_EQ(scalar_value(exposition, "ipa_up", {}, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(scalar_value(exposition, "missing", {}, -1.0), -1.0);
}

// A scraper must tolerate everything a conforming (or future) exposition
// can contain: unknown families, timestamps, exemplar-style suffixes,
// stray blank lines and outright garbage. Skip, never fail.
TEST(PromParse, SkipsUnknownAndMalformedLines) {
  const std::string exposition =
      "# HELP ipa_lock_contended_total contended acquisitions\n"
      "# TYPE ipa_lock_contended_total counter\n"
      "\n"
      "ipa_lock_contended_total{rank=\"trace\"} 12\n"
      "ipa_lock_contended_total{rank=\"metrics\"} 12 1712345678901\n"  // timestamp
      "ipa_lock_contended_total{rank=\"queue\"} 7 # {trace_id=\"abc\"} 0.5\n"  // exemplar
      "totally_unknown_family{x=\"y\",z=\"w\"} 1\n"
      "malformed line without a value or braces\n"
      "ipa_lock_contended_total{rank=\"broken\"\n"  // unterminated label block
      "ipa_lock_contended_total{rank=\"novalue\"}\n"
      "weird{}=3\n";
  const auto family =
      parse_scalar_family(exposition, "ipa_lock_contended_total", "rank");
  ASSERT_EQ(family.size(), 3u);
  EXPECT_DOUBLE_EQ(family.at("trace"), 12.0);
  EXPECT_DOUBLE_EQ(family.at("metrics"), 12.0);  // timestamp tolerated
  EXPECT_DOUBLE_EQ(family.at("queue"), 7.0);     // exemplar tolerated
  EXPECT_EQ(family.count("broken"), 0u);
  EXPECT_EQ(family.count("novalue"), 0u);
}

TEST(PromParse, HistogramParserSkipsForeignNoise) {
  const std::string exposition =
      "ipa_server_queue_delay_seconds_bucket{le=\"0.01\",server=\"http\"} 5 1712345678\n"
      "ipa_server_queue_delay_seconds_bucket{le=\"+Inf\",server=\"http\"} 6\n"
      "ipa_server_queue_delay_seconds_sum{server=\"http\"} 0.25\n"
      "ipa_server_queue_delay_seconds_count{server=\"http\"} 6\n"
      "ipa_server_queue_delay_seconds_extra{server=\"http\"} 99\n"  // unknown suffix
      "# a comment mid-family\n"
      "not_even_close\n";
  const auto families = parse_histogram_family(
      exposition, "ipa_server_queue_delay_seconds", "server");
  ASSERT_EQ(families.size(), 1u);
  const HistogramSeries& http = families.at("http");
  ASSERT_EQ(http.upper_bounds.size(), 2u);
  EXPECT_EQ(http.cumulative[0], 5u);
  EXPECT_EQ(http.count, 6u);
  EXPECT_DOUBLE_EQ(http.sum, 0.25);
}

TEST(PromParse, ScalarFamilyKeysByLabelOrWholeBlock) {
  const std::string exposition =
      "ipa_lock_wait_seconds{rank=\"trace\"} 0.125\n"
      "ipa_lock_wait_seconds{other=\"x\"} 0.5\n"
      "ipa_lock_wait_seconds 1.5\n";
  const auto family = parse_scalar_family(exposition, "ipa_lock_wait_seconds", "rank");
  ASSERT_EQ(family.size(), 3u);
  EXPECT_DOUBLE_EQ(family.at("trace"), 0.125);
  EXPECT_DOUBLE_EQ(family.at("other=x,"), 0.5);  // no rank label: whole block
  EXPECT_DOUBLE_EQ(family.at(""), 1.5);          // bare sample: empty key
}

Result<SloProfile> profile_from(const std::string& text, const std::string& name) {
  auto doc = Json::parse(text);
  if (!doc.is_ok()) return doc.status();
  return parse_profile(*doc, name);
}

const char* kSloDoc = R"({
  "profiles": {
    "tight": {
      "steps": {
        "poll": {"p50_max_s": 0.1, "p95_max_s": 0.5, "error_rate_max": 0.01},
        "close": {"p95_max_s": 1.0}
      },
      "phases": {"run": {"p95_max_s": 2.0}},
      "scenario": {"failure_rate_max": 0.0, "degraded_rate_max": 0.0,
                   "reject_rate_max": 0.1, "min_iterations": 4}
    }
  }
})";

LoadReport passing_report() {
  LoadReport report;
  report.users = 4;
  report.completed_users = 4;
  report.sessions_run = 4;
  report.iterations_done = 4;
  Summary poll;
  poll.count = 100;
  poll.p50_s = 0.05;
  poll.p95_s = 0.2;
  Summary close;
  close.count = 4;
  close.p95_s = 0.5;
  report.ops.emplace("poll", poll);
  report.ops.emplace("close", close);
  return report;
}

ServerScrape passing_scrape() {
  HistogramSeries run;
  run.upper_bounds = {0.5, 1.0, kInf};
  run.cumulative = {8, 10, 10};
  run.count = 10;
  run.sum = 4.0;
  ServerScrape scrape;
  scrape.phases.emplace("run", std::move(run));
  return scrape;
}

TEST(Slo, ParseRejectsUnknownProfile) {
  auto missing = profile_from(kSloDoc, "nope");
  ASSERT_FALSE(missing.is_ok());
  EXPECT_NE(missing.status().message().find("tight"), std::string::npos)
      << "error should list known profiles: " << missing.status().to_string();
}

TEST(Slo, CleanRunPasses) {
  auto profile = profile_from(kSloDoc, "tight");
  ASSERT_TRUE(profile.is_ok()) << profile.status().to_string();
  const SloResult result = evaluate(*profile, passing_report(), passing_scrape());
  EXPECT_TRUE(result.ok()) << render_report_text(*profile, passing_report(),
                                                 passing_scrape(), result);
}

TEST(Slo, ViolationsCarryGateLimitAndActual) {
  auto profile = profile_from(kSloDoc, "tight");
  ASSERT_TRUE(profile.is_ok());

  LoadReport report = passing_report();
  report.ops["poll"].p95_s = 0.9;        // > 0.5
  report.failed_users = 1;               // failure_rate 0.25 > 0
  report.iterations_done = 2;            // < min 4
  auto scrape = passing_scrape();
  scrape.phases["run"].cumulative = {0, 1, 10};  // p95 lands in +Inf bucket -> 1.0...
  scrape.phases["run"].count = 10;

  const SloResult result = evaluate(*profile, report, scrape);
  ASSERT_FALSE(result.ok());
  std::map<std::string, const SloViolation*> by_gate;
  for (const SloViolation& v : result.violations) by_gate[v.gate] = &v;

  ASSERT_TRUE(by_gate.count("step.poll.p95_s"));
  EXPECT_DOUBLE_EQ(by_gate["step.poll.p95_s"]->limit, 0.5);
  EXPECT_DOUBLE_EQ(by_gate["step.poll.p95_s"]->actual, 0.9);
  ASSERT_TRUE(by_gate.count("scenario.failure_rate"));
  EXPECT_DOUBLE_EQ(by_gate["scenario.failure_rate"]->actual, 0.25);
  ASSERT_TRUE(by_gate.count("scenario.min_iterations"));
  EXPECT_DOUBLE_EQ(by_gate["scenario.min_iterations"]->actual, 2.0);

  // A gated step that never ran is itself a violation.
  LoadReport empty;
  empty.users = 4;
  const SloResult missing = evaluate(*profile, empty, {});
  bool step_count_gate = false;
  bool phase_count_gate = false;
  for (const SloViolation& v : missing.violations) {
    step_count_gate |= v.gate == "step.poll.count";
    phase_count_gate |= v.gate == "phase.run.count";
  }
  EXPECT_TRUE(step_count_gate);
  EXPECT_TRUE(phase_count_gate);

  // Reports render without crashing and carry the gate names.
  const std::string text = render_report_text(*profile, report, scrape, result);
  EXPECT_NE(text.find("SLO gate FAILED"), std::string::npos);
  EXPECT_NE(text.find("step.poll.p95_s"), std::string::npos);
  const std::string json = render_report_json(*profile, report, scrape, result);
  auto parsed = Json::parse(json);
  ASSERT_TRUE(parsed.is_ok()) << json;
  EXPECT_FALSE(parsed->find("ok")->bool_or(true));
  EXPECT_GE(parsed->find("violations")->items().size(), 3u);
}

}  // namespace
}  // namespace ipa::loadgen
