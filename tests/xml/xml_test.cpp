#include "xml/xml.hpp"

#include <gtest/gtest.h>

namespace ipa::xml {
namespace {

TEST(Xml, EscapeAllSpecials) {
  EXPECT_EQ(escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(escape("plain"), "plain");
}

TEST(Xml, BuilderAndSerialize) {
  Node root("catalog");
  root.set_attribute("version", "1");
  Node& ds = root.add_child("dataset");
  ds.set_attribute("id", "lc-run7");
  ds.add_child("size").set_text("471");
  EXPECT_EQ(root.to_string(),
            "<catalog version=\"1\"><dataset id=\"lc-run7\"><size>471</size></dataset></catalog>");
}

TEST(Xml, SelfClosingWhenEmpty) {
  Node node("ready");
  EXPECT_EQ(node.to_string(), "<ready/>");
}

TEST(Xml, ParseSimpleDocument) {
  const auto doc = parse("<a><b x=\"1\">hello</b><c/></a>");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->name(), "a");
  ASSERT_EQ(doc->children().size(), 2u);
  EXPECT_EQ(doc->children()[0].name(), "b");
  EXPECT_EQ(doc->children()[0].attribute("x"), "1");
  EXPECT_EQ(doc->children()[0].text(), "hello");
  EXPECT_EQ(doc->children()[1].name(), "c");
}

TEST(Xml, ParseWithDeclarationAndComments) {
  const auto doc = parse(R"(<?xml version="1.0" encoding="utf-8"?>
<!-- a comment -->
<root>
  <!-- inner comment -->
  <child>text</child>
</root>)");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->name(), "root");
  EXPECT_EQ(doc->child_text("child"), "text");
}

TEST(Xml, ParseEntities) {
  const auto doc = parse("<m>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos;</m>");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->text(), "<tag> & \"q\" 'a'");
}

TEST(Xml, ParseNumericCharacterReferences) {
  const auto doc = parse("<m>&#65;&#x42;&#x3b1;</m>");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->text(), "AB\xce\xb1");  // A, B, greek alpha in UTF-8
}

TEST(Xml, ParseCdata) {
  const auto doc = parse("<script><![CDATA[if (a < b && c > d) {}]]></script>");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->text(), "if (a < b && c > d) {}");
}

TEST(Xml, ParseAttributesWithBothQuotes) {
  const auto doc = parse("<e a=\"1\" b='two' c=\"x &amp; y\"/>");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->attribute("a"), "1");
  EXPECT_EQ(doc->attribute("b"), "two");
  EXPECT_EQ(doc->attribute("c"), "x & y");
}

TEST(Xml, RoundTripComplexTree) {
  Node root("soap:Envelope");
  root.set_attribute("xmlns:soap", "http://schemas.xmlsoap.org/soap/envelope/");
  Node& body = root.add_child("soap:Body");
  Node& op = body.add_child("ipa:createSession");
  op.add_child("user").set_text("alice & bob <team>");
  op.add_child("nodes").set_text("16");

  const auto parsed = parse(root.to_string());
  ASSERT_TRUE(parsed.is_ok());
  const Node* op2 = parsed->find_path("Body/createSession");
  ASSERT_NE(op2, nullptr);
  EXPECT_EQ(op2->child_text("user"), "alice & bob <team>");
  EXPECT_EQ(op2->child_text("nodes"), "16");
}

TEST(Xml, PrettyPrintingParsesBack) {
  Node root("a");
  root.add_child("b").set_text("x");
  root.add_child("c");
  const std::string pretty = root.to_string(true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const auto reparsed = parse(pretty);
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_EQ(reparsed->child_text("b"), "x");
}

TEST(Xml, NamespacePrefixMatching) {
  EXPECT_TRUE(name_matches("soap:Body", "Body"));
  EXPECT_TRUE(name_matches("Body", "Body"));
  EXPECT_FALSE(name_matches("soap:Body", "other:Body"));
  EXPECT_TRUE(name_matches("soap:Body", "soap:Body"));
  EXPECT_FALSE(name_matches("NotBody", "Body"));
}

TEST(Xml, FindAll) {
  const auto doc = parse("<r><d id=\"1\"/><x/><d id=\"2\"/></r>");
  ASSERT_TRUE(doc.is_ok());
  const auto all = doc->find_all("d");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->attribute("id"), "1");
  EXPECT_EQ(all[1]->attribute("id"), "2");
}

TEST(Xml, FindPathMissingReturnsNull) {
  const auto doc = parse("<r><a><b/></a></r>");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_NE(doc->find_path("a/b"), nullptr);
  EXPECT_EQ(doc->find_path("a/c"), nullptr);
  EXPECT_EQ(doc->find_path("z"), nullptr);
}

TEST(Xml, WhitespaceBetweenChildrenDropped) {
  const auto doc = parse("<r>\n  <a/>\n  <b/>\n</r>");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->text(), "");
  EXPECT_EQ(doc->children().size(), 2u);
}

TEST(Xml, ErrorMismatchedTags) {
  const auto doc = parse("<a><b></a></b>");
  EXPECT_FALSE(doc.is_ok());
  EXPECT_NE(doc.status().message().find("mismatched"), std::string::npos);
}

TEST(Xml, ErrorUnterminatedElement) {
  EXPECT_FALSE(parse("<a><b>").is_ok());
}

TEST(Xml, ErrorTrailingContent) {
  EXPECT_FALSE(parse("<a/><b/>").is_ok());
}

TEST(Xml, ErrorBadEntity) {
  EXPECT_FALSE(parse("<a>&bogus;</a>").is_ok());
  EXPECT_FALSE(parse("<a>&#xZZ;</a>").is_ok());
  EXPECT_FALSE(parse("<a>&unterminated</a>").is_ok());
}

TEST(Xml, ErrorUnquotedAttribute) {
  EXPECT_FALSE(parse("<a x=1/>").is_ok());
}

TEST(Xml, ErrorReportsLineNumber) {
  const auto doc = parse("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(doc.is_ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos)
      << doc.status().message();
}

TEST(Xml, AttributeEscapingRoundTrip) {
  Node node("e");
  node.set_attribute("v", "a\"b<c>&'d");
  const auto parsed = parse(node.to_string());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->attribute("v"), "a\"b<c>&'d");
}

}  // namespace
}  // namespace ipa::xml
