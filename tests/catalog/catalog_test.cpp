#include "catalog/catalog.hpp"

#include <gtest/gtest.h>

namespace ipa::catalog {
namespace {

Catalog make_sample() {
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .add("lc/2006/higgs-run7", "ds-001",
                       {{"experiment", "LC"}, {"size_mb", "471"}, {"format", "ipd"}})
                  .is_ok());
  EXPECT_TRUE(catalog
                  .add("lc/2006/higgs-run8", "ds-002",
                       {{"experiment", "LC"}, {"size_mb", "512"}, {"format", "ipd"}})
                  .is_ok());
  EXPECT_TRUE(catalog
                  .add("lc/2005/zpole-scan", "ds-003",
                       {{"experiment", "LC"}, {"size_mb", "88"}})
                  .is_ok());
  EXPECT_TRUE(catalog
                  .add("bio/dna/ecoli-k12", "ds-004",
                       {{"experiment", "genome"}, {"size_mb", "12"}})
                  .is_ok());
  EXPECT_TRUE(catalog.add("finance/nyse-2006-q1", "ds-005", {{"size_mb", "210"}}).is_ok());
  return catalog;
}

TEST(Catalog, AddAndFind) {
  const Catalog catalog = make_sample();
  EXPECT_EQ(catalog.dataset_count(), 5u);

  auto by_path = catalog.find_by_path("lc/2006/higgs-run7");
  ASSERT_TRUE(by_path.is_ok());
  EXPECT_EQ(by_path->id, "ds-001");
  EXPECT_EQ(by_path->metadata.at("size_mb"), "471");
  EXPECT_EQ(by_path->metadata.at("name"), "higgs-run7");

  auto by_id = catalog.find_by_id("ds-003");
  ASSERT_TRUE(by_id.is_ok());
  EXPECT_EQ(by_id->path, "lc/2005/zpole-scan");
}

TEST(Catalog, MissingLookupsFail) {
  const Catalog catalog = make_sample();
  EXPECT_EQ(catalog.find_by_path("lc/2006/nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.find_by_path("zz/nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.find_by_id("ds-999").status().code(), StatusCode::kNotFound);
}

TEST(Catalog, DuplicatesRejected) {
  Catalog catalog = make_sample();
  EXPECT_EQ(catalog.add("lc/2006/higgs-run7", "ds-x", {}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.add("other/place", "ds-001", {}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.add("", "ds-y", {}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.add("a/b", "", {}).code(), StatusCode::kInvalidArgument);
}

TEST(Catalog, BrowseHierarchy) {
  const Catalog catalog = make_sample();

  auto root = catalog.browse("");
  ASSERT_TRUE(root.is_ok());
  EXPECT_EQ(root->folders, (std::vector<std::string>{"bio", "finance", "lc"}));
  ASSERT_EQ(root->datasets.size(), 0u);

  auto lc = catalog.browse("lc");
  ASSERT_TRUE(lc.is_ok());
  EXPECT_EQ(lc->folders, (std::vector<std::string>{"2005", "2006"}));

  auto y2006 = catalog.browse("lc/2006");
  ASSERT_TRUE(y2006.is_ok());
  EXPECT_TRUE(y2006->folders.empty());
  ASSERT_EQ(y2006->datasets.size(), 2u);
  EXPECT_EQ(y2006->datasets[0].id, "ds-001");

  EXPECT_EQ(catalog.browse("lc/1999").status().code(), StatusCode::kNotFound);
}

TEST(Catalog, Remove) {
  Catalog catalog = make_sample();
  ASSERT_TRUE(catalog.remove("bio/dna/ecoli-k12").is_ok());
  EXPECT_EQ(catalog.dataset_count(), 4u);
  EXPECT_FALSE(catalog.find_by_id("ds-004").is_ok());
  EXPECT_EQ(catalog.remove("bio/dna/ecoli-k12").code(), StatusCode::kNotFound);
  // The id is free for reuse after removal.
  EXPECT_TRUE(catalog.add("bio/dna/ecoli-k12b", "ds-004", {}).is_ok());
}

TEST(Catalog, SearchByMetadata) {
  const Catalog catalog = make_sample();

  auto big = catalog.search("size_mb > 200");
  ASSERT_TRUE(big.is_ok());
  ASSERT_EQ(big->size(), 3u);  // 471, 512, 210

  auto lc_big = catalog.search("experiment == \"LC\" && size_mb > 100");
  ASSERT_TRUE(lc_big.is_ok());
  ASSERT_EQ(lc_big->size(), 2u);
  EXPECT_EQ((*lc_big)[0].id, "ds-001");
  EXPECT_EQ((*lc_big)[1].id, "ds-002");

  auto glob = catalog.search("name like \"higgs*\"");
  ASSERT_TRUE(glob.is_ok());
  EXPECT_EQ(glob->size(), 2u);

  auto path_query = catalog.search("path like \"lc/*\"");
  ASSERT_TRUE(path_query.is_ok());
  EXPECT_EQ(path_query->size(), 3u);

  auto none = catalog.search("size_mb > 10000");
  ASSERT_TRUE(none.is_ok());
  EXPECT_TRUE(none->empty());
}

TEST(Catalog, SearchWithExistsAndNot) {
  const Catalog catalog = make_sample();
  auto has_format = catalog.search("format");
  ASSERT_TRUE(has_format.is_ok());
  EXPECT_EQ(has_format->size(), 2u);

  auto no_experiment = catalog.search("!experiment");
  ASSERT_TRUE(no_experiment.is_ok());
  ASSERT_EQ(no_experiment->size(), 1u);
  EXPECT_EQ((*no_experiment)[0].id, "ds-005");
}

TEST(Catalog, SearchBadQueryReportsError) {
  const Catalog catalog = make_sample();
  EXPECT_FALSE(catalog.search("size_mb >").is_ok());
  EXPECT_FALSE(catalog.search("&& broken").is_ok());
}

TEST(Catalog, XmlRoundTrip) {
  const Catalog original = make_sample();
  const xml::Node doc = original.to_xml();
  // Through text to prove the serialization is parseable XML.
  const auto reparsed_doc = xml::parse(doc.to_string(true));
  ASSERT_TRUE(reparsed_doc.is_ok());
  auto restored = Catalog::from_xml(*reparsed_doc);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored->dataset_count(), original.dataset_count());

  auto entry = restored->find_by_id("ds-001");
  ASSERT_TRUE(entry.is_ok());
  EXPECT_EQ(entry->path, "lc/2006/higgs-run7");
  EXPECT_EQ(entry->metadata.at("size_mb"), "471");

  auto search = restored->search("experiment == \"LC\"");
  ASSERT_TRUE(search.is_ok());
  EXPECT_EQ(search->size(), 3u);
}

TEST(Catalog, FromXmlRejectsBadDocuments) {
  auto not_catalog = xml::parse("<other/>");
  ASSERT_TRUE(not_catalog.is_ok());
  EXPECT_FALSE(Catalog::from_xml(*not_catalog).is_ok());

  auto nameless = xml::parse("<catalog><dataset id=\"x\"/></catalog>");
  ASSERT_TRUE(nameless.is_ok());
  EXPECT_FALSE(Catalog::from_xml(*nameless).is_ok());
}

// --- query language unit coverage -------------------------------------------

using MetaMap = std::map<std::string, std::string>;

TEST(Query, NumericVsLexicographic) {
  const MetaMap meta = {{"size", "90"}, {"version", "v10"}};
  EXPECT_TRUE(Query::parse("size < 100").value().matches(meta));   // numeric: 90 < 100
  EXPECT_FALSE(Query::parse("size < 100").value().matches({{"size", "abc"}}));
  EXPECT_TRUE(Query::parse("version > v0").value().matches(meta)); // lexicographic
}

TEST(Query, OperatorsAndPrecedence) {
  const MetaMap meta = {{"a", "1"}, {"b", "2"}};
  EXPECT_TRUE(Query::parse("a == 1 && b == 2").value().matches(meta));
  EXPECT_TRUE(Query::parse("a == 9 || b == 2").value().matches(meta));
  // && binds tighter than ||: true || (false && false) = true.
  EXPECT_TRUE(Query::parse("a == 1 || a == 9 && b == 9").value().matches(meta));
  // Parentheses override: (true || false) && false = false.
  EXPECT_FALSE(Query::parse("(a == 1 || a == 9) && b == 9").value().matches(meta));
  EXPECT_TRUE(Query::parse("!(a == 9)").value().matches(meta));
  EXPECT_TRUE(Query::parse("a != 9").value().matches(meta));
  EXPECT_TRUE(Query::parse("a >= 1 && a <= 1").value().matches(meta));
}

TEST(Query, WordOperatorsAndQuotes) {
  const MetaMap meta = {{"name", "higgs-run7"}};
  EXPECT_TRUE(Query::parse("name like 'higgs*'").value().matches(meta));
  EXPECT_TRUE(Query::parse("name == 'higgs-run7' and name like '*run?'").value().matches(meta));
  EXPECT_TRUE(Query::parse("not name == 'x'").value().matches(meta));
  EXPECT_TRUE(Query::parse("name == 'x' or name like 'h*'").value().matches(meta));
}

TEST(Query, MissingKeyComparisonsAreFalse) {
  const MetaMap meta = {{"a", "1"}};
  EXPECT_FALSE(Query::parse("zz == 1").value().matches(meta));
  EXPECT_FALSE(Query::parse("zz != 1").value().matches(meta));  // absent: no match at all
  EXPECT_TRUE(Query::parse("!(zz == 1)").value().matches(meta));
}

TEST(Query, ParseErrors) {
  EXPECT_FALSE(Query::parse("").is_ok());
  EXPECT_FALSE(Query::parse("a ==").is_ok());
  EXPECT_FALSE(Query::parse("(a == 1").is_ok());
  EXPECT_FALSE(Query::parse("a == 1 extra == 2").is_ok());
  EXPECT_FALSE(Query::parse("a & b").is_ok());
  EXPECT_FALSE(Query::parse("'unterminated").is_ok());
  EXPECT_FALSE(Query::parse("a == 1 @").is_ok());
}

}  // namespace
}  // namespace ipa::catalog
