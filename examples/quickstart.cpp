// Quickstart: the shortest path from nothing to a live grid analysis.
//
// Starts an in-process IPA grid site (manager node + local compute
// element), publishes a small Linear-Collider dataset, then walks the
// paper's four client steps: connect/auth -> session -> dataset -> analyze,
// and prints the merged histogram.
//
//   ./quickstart [events]          (default 20000)
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "client/grid_client.hpp"
#include "common/log.hpp"
#include "physics/event_gen.hpp"
#include "services/manager.hpp"
#include "viz/render.hpp"

using namespace ipa;

int main(int argc, char** argv) {
  log::set_global_level(log::Level::kInfo);
  const std::uint64_t events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  // --- site setup (normally done once by the grid site admin) --------------
  const auto work = std::filesystem::temp_directory_path() / "ipa-quickstart";
  std::filesystem::create_directories(work);
  const std::string dataset_file = (work / "lc-run7.ipd").string();

  std::printf("generating %llu LC events ...\n", static_cast<unsigned long long>(events));
  auto info = physics::generate_dataset(dataset_file, "lc-run7", events);
  if (!info.is_ok()) {
    std::fprintf(stderr, "generate: %s\n", info.status().to_string().c_str());
    return 1;
  }

  services::ManagerConfig config;
  config.staging_dir = (work / "staging").string();
  auto manager = services::ManagerNode::start(std::move(config));
  if (!manager.is_ok()) {
    std::fprintf(stderr, "manager: %s\n", manager.status().to_string().c_str());
    return 1;
  }
  (void)(*manager)->publish_dataset("lc/2006/run7", "ds-lc-run7",
                                    {{"experiment", "LC"}}, dataset_file);

  // --- client steps (the paper's Figure 1, steps 1-4) ----------------------
  // 1. Securely connect: user credential -> delegated proxy -> authenticated
  //    web-service channel.
  const std::string credential =
      (*manager)->authority().issue("cn=you", {"analysis"}, 3600);
  auto proxy = client::make_proxy((*manager)->authority(), credential);
  auto grid = client::GridClient::connect((*manager)->soap_endpoint(), *proxy);
  if (!grid.is_ok()) {
    std::fprintf(stderr, "connect: %s\n", grid.status().to_string().c_str());
    return 1;
  }

  // 2. Pick a dataset from the catalog.
  auto found = grid->search("experiment == 'LC'");
  std::printf("catalog search found %zu dataset(s)\n", found->size());

  // 3. Create a session and stage everything onto 4 analysis engines.
  auto session = grid->create_session(4);
  if (!session.is_ok()) {
    std::fprintf(stderr, "session: %s\n", session.status().to_string().c_str());
    return 1;
  }
  std::printf("session %s: %d engines on the '%s' queue\n",
              session->info().session_id.c_str(), session->info().granted_nodes,
              session->info().queue.c_str());
  if (auto st = session->activate(); !st.is_ok()) {
    std::fprintf(stderr, "activate: %s\n", st.to_string().c_str());
    return 1;
  }
  auto staged = session->select_dataset((*found)[0].id);
  std::printf("staged %llu records as %d parts\n",
              static_cast<unsigned long long>(staged->records), staged->parts);
  if (auto st = session->stage_script("higgs-v1", physics::higgs_script()); !st.is_ok()) {
    std::fprintf(stderr, "stage code: %s\n", st.to_string().c_str());
    return 1;
  }

  // 4. Run and watch merged intermediate results arrive.
  auto tree = session->run_to_completion(120.0, [](const client::PollUpdate& update) {
    std::printf("  %s\r", viz::ascii_progress(update.total_processed(),
                                              update.total_records())
                              .c_str());
    std::fflush(stdout);
  });
  std::printf("\n");
  if (!tree.is_ok()) {
    std::fprintf(stderr, "analysis: %s\n", tree.status().to_string().c_str());
    return 1;
  }

  auto mass = tree->histogram1d("/higgs/mass");
  std::printf("\n%s\n", viz::ascii_histogram(**mass).c_str());
  const double peak = (*mass)->axis().bin_center((*mass)->max_bin());
  std::printf("peak at %.1f GeV (generated resonance: 125 GeV)\n", peak);

  (void)session->close();
  (*manager)->stop();
  std::filesystem::remove_all(work);
  return 0;
}
