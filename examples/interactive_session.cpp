// The interactivity loop itself — the paper's defining capability:
// "the user can change their analysis algorithms on the fly ... run, pause
// or stop the analysis at any instant, as well as rewind ... the new
// analysis code can be dynamically reloaded and used to reprocess the same
// dataset" (§1, §3.6).
//
// This example runs the whole conversation over TCP loopback (a real
// network hop between client and manager, like JAS -> Globus container)
// and exercises: run N events -> inspect -> pause point -> edit the script
// -> rewind -> re-run, all without re-staging the dataset.
//
//   ./interactive_session [events]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "client/grid_client.hpp"
#include "common/log.hpp"
#include "physics/event_gen.hpp"
#include "services/manager.hpp"
#include "viz/render.hpp"

using namespace ipa;

namespace {

/// Control verbs must not fail silently: a rewind or code reload that is
/// dropped (RPC deadline under load, say) leaves the engines mid-dataset
/// with mismatched code, and the eventual failure ("no object at ...") is
/// far from its cause. Bail out at the verb that actually failed.
bool check(const Status& status, const char* what) {
  if (status.is_ok()) return true;
  std::fprintf(stderr, "%s: %s\n", what, status.to_string().c_str());
  return false;
}

/// Poll until every engine reaches `state` (or timeout).
bool wait_all(client::GridSession& session, engine::EngineState state, double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    auto update = session.poll();
    if (update.is_ok() && !update->engines.empty()) {
      bool all = true;
      for (const auto& report : update->engines) all = all && report.state == state;
      if (all) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  log::set_global_level(log::Level::kWarn);
  const std::uint64_t events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;

  const auto work = std::filesystem::temp_directory_path() / "ipa-interactive";
  std::filesystem::create_directories(work);
  const std::string dataset_file = (work / "events.ipd").string();
  (void)physics::generate_dataset(dataset_file, "lc-events", events);

  // Manager with its RMI channel on TCP too, so every hop crosses a socket.
  services::ManagerConfig config;
  config.staging_dir = (work / "staging").string();
  config.rpc_endpoint = Uri::parse("tcp://127.0.0.1:0").value();
  config.engine_config.snapshot_every = 2500;
  auto manager = services::ManagerNode::start(std::move(config));
  if (!manager.is_ok()) {
    std::fprintf(stderr, "%s\n", manager.status().to_string().c_str());
    return 1;
  }
  std::printf("manager: soap=%s rmi=%s\n", (*manager)->soap_endpoint().to_string().c_str(),
              (*manager)->rpc_endpoint().to_string().c_str());
  (void)(*manager)->publish_dataset("lc/2006/events", "ds-events", {}, dataset_file);

  const std::string token = (*manager)->authority().issue("cn=analyst", {"analysis"}, 3600);
  auto grid = client::GridClient::connect((*manager)->soap_endpoint(),
                                          *client::make_proxy((*manager)->authority(), token));
  auto session = grid->create_session(4);
  if (!check(session->activate(), "activate")) return 1;
  if (!check(session->select_dataset("ds-events").status(), "select")) return 1;

  // Version 1 of the analysis: too-wide binning, wrong variable — the kind
  // of first attempt an analyst immediately wants to revise.
  const char* kV1 = R"ipa(
func begin(tree) { tree.book_h1("/m", 10, 0, 1000, "mass, v1 (too coarse)"); }
func process(event, tree) {
  let e = event.get("e");
  if (len(e) >= 2) { tree.fill("/m", e[0] + e[1]); }  // energy sum, not mass!
}
)ipa";
  if (!check(session->stage_script("analysis-v1", kV1), "stage v1")) return 1;

  std::printf("\n-- run the first 2000 events per engine with v1 --\n");
  if (!check(session->run_records(2000), "run_records")) return 1;
  if (!wait_all(*session, engine::EngineState::kPaused, 60.0)) {
    std::fprintf(stderr, "engines did not all pause within 60s\n");
    return 1;
  }
  auto peek = session->poll();
  if (peek.is_ok() && peek->changed) {
    auto hist = peek->merged.histogram1d("/m");
    if (hist.is_ok()) {
      std::printf("%s\n", viz::ascii_histogram(**hist, {.width = 50, .max_rows = 10}).c_str());
      std::printf("v1 looks wrong (energy sum, no peak structure). Editing the code ...\n");
    }
  }

  // The analyst edits the script — proper invariant mass this time — and
  // reprocesses the same staged dataset from the beginning.
  std::printf("\n-- rewind, hot-reload v2, re-run everything --\n");
  if (!check(session->rewind(), "rewind")) return 1;
  if (!check(session->stage_script("analysis-v2", physics::higgs_script()), "stage v2")) {
    return 1;
  }
  auto tree = session->run_to_completion(600.0, [](const client::PollUpdate& update) {
    std::printf("  %s\r",
                viz::ascii_progress(update.total_processed(), update.total_records()).c_str());
    std::fflush(stdout);
  });
  std::printf("\n");
  if (!tree.is_ok()) {
    std::fprintf(stderr, "%s\n", tree.status().to_string().c_str());
    return 1;
  }

  auto mass = tree->histogram1d("/higgs/mass");
  std::printf("\n%s\n", viz::ascii_histogram(**mass).c_str());
  std::printf("v2 finds the peak at %.1f GeV — same staged dataset, only ~%zu bytes of\n"
              "script crossed the wire for the reload (paper: 'only a small amount of\n"
              "code needs to be re-distributed').\n",
              (*mass)->axis().bin_center((*mass)->max_bin()),
              std::string(physics::higgs_script()).size());

  (void)session->close();
  (*manager)->stop();
  std::filesystem::remove_all(work);
  return 0;
}
