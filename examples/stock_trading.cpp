// Business domain example (paper §1: "stock trading records in business"):
// tick-level analysis — price and volume distributions, a volume-vs-time
// profile and a session VWAP computed from tuple accumulators merged across
// engines.
//
//   ./stock_trading [ticks] [nodes]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "client/grid_client.hpp"
#include "common/log.hpp"
#include "services/manager.hpp"
#include "viz/render.hpp"
#include "workloads/workloads.hpp"

using namespace ipa;

int main(int argc, char** argv) {
  log::set_global_level(log::Level::kWarn);
  const std::uint64_t ticks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 4;

  const auto work = std::filesystem::temp_directory_path() / "ipa-stocks";
  std::filesystem::create_directories(work);

  const std::string dataset_file = (work / "ticks.ipd").string();
  std::printf("generating %llu ticks ...\n", static_cast<unsigned long long>(ticks));
  auto info = workloads::generate_stock_dataset(dataset_file, "nyse-2006-q1-sim", ticks);
  if (!info.is_ok()) {
    std::fprintf(stderr, "%s\n", info.status().to_string().c_str());
    return 1;
  }

  services::ManagerConfig config;
  config.staging_dir = (work / "staging").string();
  auto manager = services::ManagerNode::start(std::move(config));
  (void)(*manager)->publish_dataset("finance/nyse-2006-q1-sim", "ds-ticks",
                                    {{"domain", "finance"}}, dataset_file);

  const std::string token = (*manager)->authority().issue("cn=quant", {"analysis"}, 3600);
  auto grid = client::GridClient::connect((*manager)->soap_endpoint(), token);

  auto session = grid->create_session(nodes);
  (void)session->activate();
  (void)session->select_dataset("ds-ticks");
  if (auto st = session->stage_script("tick-analytics", workloads::stock_script());
      !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }

  auto tree = session->run_to_completion(600.0);
  if (!tree.is_ok()) {
    std::fprintf(stderr, "%s\n", tree.status().to_string().c_str());
    return 1;
  }

  auto price = tree->histogram1d("/stocks/price");
  auto volume = tree->histogram1d("/stocks/volume");
  std::printf("\n%s\n", viz::ascii_histogram(**price).c_str());
  std::printf("%s\n", viz::ascii_histogram(**volume).c_str());

  // Session VWAP from the merged tuple: sum(price*volume) / sum(volume).
  auto vwap_tuple = tree->tuple("/stocks/vwap");
  auto pv = (*vwap_tuple)->column("price_x_volume");
  auto v = (*vwap_tuple)->column("volume");
  double sum_pv = 0, sum_v = 0;
  for (const double x : *pv) sum_pv += x;
  for (const double x : *v) sum_v += x;
  std::printf("session VWAP over %zu ticks: %.2f (mean tick price %.2f)\n",
              (*vwap_tuple)->rows(), sum_pv / sum_v, (*price)->mean());

  (void)session->close();
  (*manager)->stop();
  std::filesystem::remove_all(work);
  return 0;
}
