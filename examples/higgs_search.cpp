// The paper's §4 workload end to end: a Higgs-boson search over simulated
// Linear Collider events, run as a parallel grid analysis with live merged
// histograms and SVG output — the C++ twin of "a Java algorithm that looks
// for Higgs Bosons in simulated Linear Collider data".
//
//   ./higgs_search [events] [nodes] [out_dir]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "client/grid_client.hpp"
#include "common/clock.hpp"
#include "common/log.hpp"
#include "physics/event_gen.hpp"
#include "services/manager.hpp"
#include "viz/render.hpp"

using namespace ipa;

int main(int argc, char** argv) {
  log::set_global_level(log::Level::kWarn);
  const std::uint64_t events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::string out_dir = argc > 3 ? argv[3] : "higgs-results";

  const auto work = std::filesystem::temp_directory_path() / "ipa-higgs";
  std::filesystem::create_directories(work);

  // Generate the "simulation data" with a hidden resonance.
  physics::GeneratorConfig gen;
  gen.signal_fraction = 0.18;
  gen.resonance_mass = 125.0;
  gen.resonance_width = 4.0;
  const std::string dataset_file = (work / "lc-higgs.ipd").string();
  std::printf("generating %llu events (signal fraction %.0f%%, m=%g GeV) ...\n",
              static_cast<unsigned long long>(events), gen.signal_fraction * 100,
              gen.resonance_mass);
  auto info = physics::generate_dataset(dataset_file, "lc-higgs", events, gen);
  if (!info.is_ok()) {
    std::fprintf(stderr, "%s\n", info.status().to_string().c_str());
    return 1;
  }
  std::printf("dataset: %llu records, %.1f MB on disk\n",
              static_cast<unsigned long long>(info->record_count),
              static_cast<double>(info->file_bytes) / 1e6);

  // Site + client.
  services::ManagerConfig config;
  config.staging_dir = (work / "staging").string();
  config.engine_config.snapshot_every = 5000;
  auto manager = services::ManagerNode::start(std::move(config));
  if (!manager.is_ok()) {
    std::fprintf(stderr, "%s\n", manager.status().to_string().c_str());
    return 1;
  }
  (void)(*manager)->publish_dataset("lc/2006/higgs", "ds-higgs", {{"experiment", "LC"}},
                                    dataset_file);
  const std::string token = (*manager)->authority().issue("cn=physicist", {"analysis"}, 3600);
  auto grid = client::GridClient::connect((*manager)->soap_endpoint(),
                                          *client::make_proxy((*manager)->authority(), token));

  auto session = grid->create_session(nodes);
  if (!session.is_ok()) {
    std::fprintf(stderr, "%s\n", session.status().to_string().c_str());
    return 1;
  }
  std::printf("session with %d engines\n", session->info().granted_nodes);
  (void)session->activate();

  Stopwatch stage_watch;
  (void)session->select_dataset("ds-higgs");
  (void)session->stage_script("higgs-search", physics::higgs_script());
  std::printf("staging took %.2f s (wall)\n", stage_watch.elapsed_s());

  Stopwatch analysis_watch;
  int updates = 0;
  auto tree = session->run_to_completion(600.0, [&](const client::PollUpdate& update) {
    ++updates;
    std::printf("  update %3d: %s\r", updates,
                viz::ascii_progress(update.total_processed(), update.total_records()).c_str());
    std::fflush(stdout);
  });
  std::printf("\n");
  if (!tree.is_ok()) {
    std::fprintf(stderr, "%s\n", tree.status().to_string().c_str());
    return 1;
  }
  std::printf("analysis took %.2f s wall (%d merged updates)\n", analysis_watch.elapsed_s(),
              updates);

  auto mass = tree->histogram1d("/higgs/mass");
  std::printf("\n%s\n", viz::ascii_histogram(**mass).c_str());

  // Simple peak significance: compare the peak bin against the median bin
  // occupancy (a stand-in for a proper background fit).
  const int peak_bin = (*mass)->max_bin();
  const double peak_mass = (*mass)->axis().bin_center(peak_bin);
  std::vector<double> heights;
  for (int i = 0; i < (*mass)->axis().bins(); ++i) heights.push_back((*mass)->bin_height(i));
  std::nth_element(heights.begin(), heights.begin() + heights.size() / 2, heights.end());
  const double median = heights[heights.size() / 2];
  const double excess = (*mass)->bin_height(peak_bin) - median;
  const double significance = median > 0 ? excess / std::sqrt(median) : 0;
  std::printf("candidate peak: %.1f GeV, excess %.0f events over median background, ~%.1f sigma\n",
              peak_mass, excess, significance);

  auto written = viz::export_tree_svg(*tree, out_dir);
  if (written.is_ok()) {
    std::printf("wrote %d SVG plot(s) under %s/\n", *written, out_dir.c_str());
  }

  (void)session->close();
  (*manager)->stop();
  std::filesystem::remove_all(work);
  return 0;
}
