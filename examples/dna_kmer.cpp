// Biology domain example (paper §1: "DNA sequencing combinations in
// cellular biology"): quality control over sequencing reads — GC content,
// base quality and planted-motif frequency — run as a parallel IPA
// analysis.
//
//   ./dna_kmer [reads] [nodes]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "client/grid_client.hpp"
#include "common/log.hpp"
#include "services/manager.hpp"
#include "viz/render.hpp"
#include "workloads/workloads.hpp"

using namespace ipa;

int main(int argc, char** argv) {
  log::set_global_level(log::Level::kWarn);
  const std::uint64_t reads = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 4;

  const auto work = std::filesystem::temp_directory_path() / "ipa-dna";
  std::filesystem::create_directories(work);

  workloads::DnaConfig gen;
  gen.read_length = 150;
  gen.motif_rate = 0.08;
  const std::string dataset_file = (work / "reads.ipd").string();
  std::printf("generating %llu reads of %d bases ...\n",
              static_cast<unsigned long long>(reads), gen.read_length);
  auto info = workloads::generate_dna_dataset(dataset_file, "ecoli-k12-sim", reads, gen);
  if (!info.is_ok()) {
    std::fprintf(stderr, "%s\n", info.status().to_string().c_str());
    return 1;
  }

  services::ManagerConfig config;
  config.staging_dir = (work / "staging").string();
  auto manager = services::ManagerNode::start(std::move(config));
  (void)(*manager)->publish_dataset("bio/dna/ecoli-k12-sim", "ds-reads",
                                    {{"experiment", "genome"}}, dataset_file);

  const std::string token = (*manager)->authority().issue("cn=biologist", {"analysis"}, 3600);
  auto grid = client::GridClient::connect((*manager)->soap_endpoint(), token);

  // Browse instead of search this time, like the dataset-chooser dialog.
  auto listing = grid->browse("bio/dna");
  std::printf("bio/dna contains %zu dataset(s)\n", listing->datasets.size());

  auto session = grid->create_session(nodes);
  (void)session->activate();
  (void)session->select_dataset("ds-reads");
  if (auto st = session->stage_script("dna-qc", workloads::dna_script()); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }

  auto tree = session->run_to_completion(600.0);
  if (!tree.is_ok()) {
    std::fprintf(stderr, "%s\n", tree.status().to_string().c_str());
    return 1;
  }

  auto gc = tree->histogram1d("/dna/gc");
  auto motif = tree->histogram1d("/dna/motif_hits");
  std::printf("\n%s\n", viz::ascii_histogram(**gc).c_str());
  std::printf("%s\n", viz::ascii_histogram(**motif).c_str());
  const double with_motif = (*motif)->sum_height() - (*motif)->bin_height(0);
  std::printf("reads carrying GATTACA: %.0f / %llu (%.1f%%; planted rate %.0f%%)\n",
              with_motif, static_cast<unsigned long long>(reads),
              100.0 * with_motif / static_cast<double>(reads), gen.motif_rate * 100);

  (void)session->close();
  (*manager)->stop();
  std::filesystem::remove_all(work);
  return 0;
}
