# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ipa_test_common[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_serialize[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_crypto[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_xml[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_net[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_rpc[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_http[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_soap[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_security[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_data[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_catalog[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_aida[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_script[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_gridsim[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_engine[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_services[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_integration[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_viz[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_physics[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_workloads[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_perf[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/ipa_test_stress[1]_include.cmake")
