file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_engine.dir/engine/engine_test.cpp.o"
  "CMakeFiles/ipa_test_engine.dir/engine/engine_test.cpp.o.d"
  "ipa_test_engine"
  "ipa_test_engine.pdb"
  "ipa_test_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
