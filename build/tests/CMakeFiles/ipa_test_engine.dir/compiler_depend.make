# Empty compiler generated dependencies file for ipa_test_engine.
# This may be replaced when dependencies are built.
