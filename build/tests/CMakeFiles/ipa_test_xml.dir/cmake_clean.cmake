file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_xml.dir/xml/xml_test.cpp.o"
  "CMakeFiles/ipa_test_xml.dir/xml/xml_test.cpp.o.d"
  "ipa_test_xml"
  "ipa_test_xml.pdb"
  "ipa_test_xml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
