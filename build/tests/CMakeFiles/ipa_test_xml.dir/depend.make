# Empty dependencies file for ipa_test_xml.
# This may be replaced when dependencies are built.
