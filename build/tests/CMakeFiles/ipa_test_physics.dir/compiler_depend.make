# Empty compiler generated dependencies file for ipa_test_physics.
# This may be replaced when dependencies are built.
