file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_physics.dir/physics/physics_test.cpp.o"
  "CMakeFiles/ipa_test_physics.dir/physics/physics_test.cpp.o.d"
  "ipa_test_physics"
  "ipa_test_physics.pdb"
  "ipa_test_physics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
