file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_integration.dir/integration/failure_test.cpp.o"
  "CMakeFiles/ipa_test_integration.dir/integration/failure_test.cpp.o.d"
  "CMakeFiles/ipa_test_integration.dir/integration/integration_test.cpp.o"
  "CMakeFiles/ipa_test_integration.dir/integration/integration_test.cpp.o.d"
  "ipa_test_integration"
  "ipa_test_integration.pdb"
  "ipa_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
