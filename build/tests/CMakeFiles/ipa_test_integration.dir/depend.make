# Empty dependencies file for ipa_test_integration.
# This may be replaced when dependencies are built.
