# Empty dependencies file for ipa_test_crypto.
# This may be replaced when dependencies are built.
