file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_crypto.dir/crypto/crypto_test.cpp.o"
  "CMakeFiles/ipa_test_crypto.dir/crypto/crypto_test.cpp.o.d"
  "ipa_test_crypto"
  "ipa_test_crypto.pdb"
  "ipa_test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
