file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_services.dir/services/services_test.cpp.o"
  "CMakeFiles/ipa_test_services.dir/services/services_test.cpp.o.d"
  "ipa_test_services"
  "ipa_test_services.pdb"
  "ipa_test_services[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
