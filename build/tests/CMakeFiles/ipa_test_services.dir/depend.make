# Empty dependencies file for ipa_test_services.
# This may be replaced when dependencies are built.
