# Empty compiler generated dependencies file for ipa_test_security.
# This may be replaced when dependencies are built.
