file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_security.dir/security/credentials_test.cpp.o"
  "CMakeFiles/ipa_test_security.dir/security/credentials_test.cpp.o.d"
  "ipa_test_security"
  "ipa_test_security.pdb"
  "ipa_test_security[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
