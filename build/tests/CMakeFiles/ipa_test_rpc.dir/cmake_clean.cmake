file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_rpc.dir/rpc/rpc_test.cpp.o"
  "CMakeFiles/ipa_test_rpc.dir/rpc/rpc_test.cpp.o.d"
  "ipa_test_rpc"
  "ipa_test_rpc.pdb"
  "ipa_test_rpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
