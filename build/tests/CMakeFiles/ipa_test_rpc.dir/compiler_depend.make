# Empty compiler generated dependencies file for ipa_test_rpc.
# This may be replaced when dependencies are built.
