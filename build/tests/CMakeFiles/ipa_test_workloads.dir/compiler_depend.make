# Empty compiler generated dependencies file for ipa_test_workloads.
# This may be replaced when dependencies are built.
