file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_workloads.dir/workloads/workloads_test.cpp.o"
  "CMakeFiles/ipa_test_workloads.dir/workloads/workloads_test.cpp.o.d"
  "ipa_test_workloads"
  "ipa_test_workloads.pdb"
  "ipa_test_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
