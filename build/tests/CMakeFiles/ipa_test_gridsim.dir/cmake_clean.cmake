file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_gridsim.dir/gridsim/sim_test.cpp.o"
  "CMakeFiles/ipa_test_gridsim.dir/gridsim/sim_test.cpp.o.d"
  "ipa_test_gridsim"
  "ipa_test_gridsim.pdb"
  "ipa_test_gridsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_gridsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
