# Empty dependencies file for ipa_test_gridsim.
# This may be replaced when dependencies are built.
