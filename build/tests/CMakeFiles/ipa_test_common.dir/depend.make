# Empty dependencies file for ipa_test_common.
# This may be replaced when dependencies are built.
