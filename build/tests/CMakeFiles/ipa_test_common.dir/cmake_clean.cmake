file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_common.dir/common/concurrency_test.cpp.o"
  "CMakeFiles/ipa_test_common.dir/common/concurrency_test.cpp.o.d"
  "CMakeFiles/ipa_test_common.dir/common/config_test.cpp.o"
  "CMakeFiles/ipa_test_common.dir/common/config_test.cpp.o.d"
  "CMakeFiles/ipa_test_common.dir/common/rng_test.cpp.o"
  "CMakeFiles/ipa_test_common.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/ipa_test_common.dir/common/status_test.cpp.o"
  "CMakeFiles/ipa_test_common.dir/common/status_test.cpp.o.d"
  "CMakeFiles/ipa_test_common.dir/common/strings_test.cpp.o"
  "CMakeFiles/ipa_test_common.dir/common/strings_test.cpp.o.d"
  "CMakeFiles/ipa_test_common.dir/common/uri_test.cpp.o"
  "CMakeFiles/ipa_test_common.dir/common/uri_test.cpp.o.d"
  "ipa_test_common"
  "ipa_test_common.pdb"
  "ipa_test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
