file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_serialize.dir/serialize/serialize_test.cpp.o"
  "CMakeFiles/ipa_test_serialize.dir/serialize/serialize_test.cpp.o.d"
  "ipa_test_serialize"
  "ipa_test_serialize.pdb"
  "ipa_test_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
