# Empty dependencies file for ipa_test_serialize.
# This may be replaced when dependencies are built.
