# Empty compiler generated dependencies file for ipa_test_perf.
# This may be replaced when dependencies are built.
