file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_perf.dir/perf/perf_test.cpp.o"
  "CMakeFiles/ipa_test_perf.dir/perf/perf_test.cpp.o.d"
  "ipa_test_perf"
  "ipa_test_perf.pdb"
  "ipa_test_perf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
