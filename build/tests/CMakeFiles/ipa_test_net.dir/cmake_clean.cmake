file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_net.dir/net/transport_test.cpp.o"
  "CMakeFiles/ipa_test_net.dir/net/transport_test.cpp.o.d"
  "ipa_test_net"
  "ipa_test_net.pdb"
  "ipa_test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
