# Empty dependencies file for ipa_test_net.
# This may be replaced when dependencies are built.
