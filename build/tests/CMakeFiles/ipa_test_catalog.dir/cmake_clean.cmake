file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_catalog.dir/catalog/catalog_test.cpp.o"
  "CMakeFiles/ipa_test_catalog.dir/catalog/catalog_test.cpp.o.d"
  "ipa_test_catalog"
  "ipa_test_catalog.pdb"
  "ipa_test_catalog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
