# Empty compiler generated dependencies file for ipa_test_catalog.
# This may be replaced when dependencies are built.
