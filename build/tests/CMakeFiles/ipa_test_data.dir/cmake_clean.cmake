file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_data.dir/data/dataset_test.cpp.o"
  "CMakeFiles/ipa_test_data.dir/data/dataset_test.cpp.o.d"
  "CMakeFiles/ipa_test_data.dir/data/value_record_test.cpp.o"
  "CMakeFiles/ipa_test_data.dir/data/value_record_test.cpp.o.d"
  "ipa_test_data"
  "ipa_test_data.pdb"
  "ipa_test_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
