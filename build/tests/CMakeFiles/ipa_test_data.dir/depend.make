# Empty dependencies file for ipa_test_data.
# This may be replaced when dependencies are built.
