# Empty compiler generated dependencies file for ipa_test_stress.
# This may be replaced when dependencies are built.
