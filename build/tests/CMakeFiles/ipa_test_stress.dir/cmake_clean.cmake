file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_stress.dir/stress/stress_test.cpp.o"
  "CMakeFiles/ipa_test_stress.dir/stress/stress_test.cpp.o.d"
  "ipa_test_stress"
  "ipa_test_stress.pdb"
  "ipa_test_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
