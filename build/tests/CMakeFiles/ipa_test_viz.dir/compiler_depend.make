# Empty compiler generated dependencies file for ipa_test_viz.
# This may be replaced when dependencies are built.
