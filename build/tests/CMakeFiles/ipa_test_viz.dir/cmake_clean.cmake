file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_viz.dir/viz/chart_test.cpp.o"
  "CMakeFiles/ipa_test_viz.dir/viz/chart_test.cpp.o.d"
  "CMakeFiles/ipa_test_viz.dir/viz/render_test.cpp.o"
  "CMakeFiles/ipa_test_viz.dir/viz/render_test.cpp.o.d"
  "ipa_test_viz"
  "ipa_test_viz.pdb"
  "ipa_test_viz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
