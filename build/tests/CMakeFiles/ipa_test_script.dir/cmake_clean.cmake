file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_script.dir/script/engine_api_test.cpp.o"
  "CMakeFiles/ipa_test_script.dir/script/engine_api_test.cpp.o.d"
  "CMakeFiles/ipa_test_script.dir/script/interp_test.cpp.o"
  "CMakeFiles/ipa_test_script.dir/script/interp_test.cpp.o.d"
  "ipa_test_script"
  "ipa_test_script.pdb"
  "ipa_test_script[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
