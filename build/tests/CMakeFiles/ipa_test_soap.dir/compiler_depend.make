# Empty compiler generated dependencies file for ipa_test_soap.
# This may be replaced when dependencies are built.
