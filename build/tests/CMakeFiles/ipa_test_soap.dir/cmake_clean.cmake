file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_soap.dir/soap/soap_test.cpp.o"
  "CMakeFiles/ipa_test_soap.dir/soap/soap_test.cpp.o.d"
  "ipa_test_soap"
  "ipa_test_soap.pdb"
  "ipa_test_soap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
