file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_http.dir/http/http_test.cpp.o"
  "CMakeFiles/ipa_test_http.dir/http/http_test.cpp.o.d"
  "ipa_test_http"
  "ipa_test_http.pdb"
  "ipa_test_http[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
