# Empty dependencies file for ipa_test_http.
# This may be replaced when dependencies are built.
