file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_aida.dir/aida/histogram_test.cpp.o"
  "CMakeFiles/ipa_test_aida.dir/aida/histogram_test.cpp.o.d"
  "CMakeFiles/ipa_test_aida.dir/aida/tree_test.cpp.o"
  "CMakeFiles/ipa_test_aida.dir/aida/tree_test.cpp.o.d"
  "ipa_test_aida"
  "ipa_test_aida.pdb"
  "ipa_test_aida[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_aida.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
