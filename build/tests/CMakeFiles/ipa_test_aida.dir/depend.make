# Empty dependencies file for ipa_test_aida.
# This may be replaced when dependencies are built.
