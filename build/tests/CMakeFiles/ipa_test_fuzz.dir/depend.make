# Empty dependencies file for ipa_test_fuzz.
# This may be replaced when dependencies are built.
