file(REMOVE_RECURSE
  "CMakeFiles/ipa_test_fuzz.dir/fuzz/fuzz_test.cpp.o"
  "CMakeFiles/ipa_test_fuzz.dir/fuzz/fuzz_test.cpp.o.d"
  "ipa_test_fuzz"
  "ipa_test_fuzz.pdb"
  "ipa_test_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_test_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
