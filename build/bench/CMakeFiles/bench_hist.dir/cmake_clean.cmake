file(REMOVE_RECURSE
  "CMakeFiles/bench_hist.dir/bench_hist.cpp.o"
  "CMakeFiles/bench_hist.dir/bench_hist.cpp.o.d"
  "bench_hist"
  "bench_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
