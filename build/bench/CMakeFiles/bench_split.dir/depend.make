# Empty dependencies file for bench_split.
# This may be replaced when dependencies are built.
