file(REMOVE_RECURSE
  "CMakeFiles/bench_script.dir/bench_script.cpp.o"
  "CMakeFiles/bench_script.dir/bench_script.cpp.o.d"
  "bench_script"
  "bench_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
