# Empty compiler generated dependencies file for bench_model_fit.
# This may be replaced when dependencies are built.
