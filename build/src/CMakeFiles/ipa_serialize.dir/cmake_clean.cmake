
# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/ipa_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
