# Empty custom commands generated dependencies file for ipa_serialize.
# This may be replaced when dependencies are built.
