file(REMOVE_RECURSE
  "CMakeFiles/ipa_gridsim.dir/gridsim/link.cpp.o"
  "CMakeFiles/ipa_gridsim.dir/gridsim/link.cpp.o.d"
  "CMakeFiles/ipa_gridsim.dir/gridsim/scheduler.cpp.o"
  "CMakeFiles/ipa_gridsim.dir/gridsim/scheduler.cpp.o.d"
  "CMakeFiles/ipa_gridsim.dir/gridsim/sim.cpp.o"
  "CMakeFiles/ipa_gridsim.dir/gridsim/sim.cpp.o.d"
  "libipa_gridsim.a"
  "libipa_gridsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_gridsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
