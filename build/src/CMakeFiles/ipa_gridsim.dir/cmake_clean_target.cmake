file(REMOVE_RECURSE
  "libipa_gridsim.a"
)
