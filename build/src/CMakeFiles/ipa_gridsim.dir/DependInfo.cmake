
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gridsim/link.cpp" "src/CMakeFiles/ipa_gridsim.dir/gridsim/link.cpp.o" "gcc" "src/CMakeFiles/ipa_gridsim.dir/gridsim/link.cpp.o.d"
  "/root/repo/src/gridsim/scheduler.cpp" "src/CMakeFiles/ipa_gridsim.dir/gridsim/scheduler.cpp.o" "gcc" "src/CMakeFiles/ipa_gridsim.dir/gridsim/scheduler.cpp.o.d"
  "/root/repo/src/gridsim/sim.cpp" "src/CMakeFiles/ipa_gridsim.dir/gridsim/sim.cpp.o" "gcc" "src/CMakeFiles/ipa_gridsim.dir/gridsim/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
