# Empty dependencies file for ipa_gridsim.
# This may be replaced when dependencies are built.
