file(REMOVE_RECURSE
  "libipa_data.a"
)
