
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/crc32.cpp" "src/CMakeFiles/ipa_data.dir/data/crc32.cpp.o" "gcc" "src/CMakeFiles/ipa_data.dir/data/crc32.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/ipa_data.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/ipa_data.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/record.cpp" "src/CMakeFiles/ipa_data.dir/data/record.cpp.o" "gcc" "src/CMakeFiles/ipa_data.dir/data/record.cpp.o.d"
  "/root/repo/src/data/splitter.cpp" "src/CMakeFiles/ipa_data.dir/data/splitter.cpp.o" "gcc" "src/CMakeFiles/ipa_data.dir/data/splitter.cpp.o.d"
  "/root/repo/src/data/value.cpp" "src/CMakeFiles/ipa_data.dir/data/value.cpp.o" "gcc" "src/CMakeFiles/ipa_data.dir/data/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
