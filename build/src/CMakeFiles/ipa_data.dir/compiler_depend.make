# Empty compiler generated dependencies file for ipa_data.
# This may be replaced when dependencies are built.
