file(REMOVE_RECURSE
  "CMakeFiles/ipa_data.dir/data/crc32.cpp.o"
  "CMakeFiles/ipa_data.dir/data/crc32.cpp.o.d"
  "CMakeFiles/ipa_data.dir/data/dataset.cpp.o"
  "CMakeFiles/ipa_data.dir/data/dataset.cpp.o.d"
  "CMakeFiles/ipa_data.dir/data/record.cpp.o"
  "CMakeFiles/ipa_data.dir/data/record.cpp.o.d"
  "CMakeFiles/ipa_data.dir/data/splitter.cpp.o"
  "CMakeFiles/ipa_data.dir/data/splitter.cpp.o.d"
  "CMakeFiles/ipa_data.dir/data/value.cpp.o"
  "CMakeFiles/ipa_data.dir/data/value.cpp.o.d"
  "libipa_data.a"
  "libipa_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
