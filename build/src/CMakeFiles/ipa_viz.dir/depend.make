# Empty dependencies file for ipa_viz.
# This may be replaced when dependencies are built.
