file(REMOVE_RECURSE
  "libipa_viz.a"
)
