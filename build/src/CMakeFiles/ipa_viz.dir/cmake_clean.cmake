file(REMOVE_RECURSE
  "CMakeFiles/ipa_viz.dir/viz/chart.cpp.o"
  "CMakeFiles/ipa_viz.dir/viz/chart.cpp.o.d"
  "CMakeFiles/ipa_viz.dir/viz/render.cpp.o"
  "CMakeFiles/ipa_viz.dir/viz/render.cpp.o.d"
  "libipa_viz.a"
  "libipa_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
