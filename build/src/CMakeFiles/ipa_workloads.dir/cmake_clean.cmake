file(REMOVE_RECURSE
  "CMakeFiles/ipa_workloads.dir/workloads/workloads.cpp.o"
  "CMakeFiles/ipa_workloads.dir/workloads/workloads.cpp.o.d"
  "libipa_workloads.a"
  "libipa_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
