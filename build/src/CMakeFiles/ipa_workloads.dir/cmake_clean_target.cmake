file(REMOVE_RECURSE
  "libipa_workloads.a"
)
