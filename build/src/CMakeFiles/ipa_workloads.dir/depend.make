# Empty dependencies file for ipa_workloads.
# This may be replaced when dependencies are built.
