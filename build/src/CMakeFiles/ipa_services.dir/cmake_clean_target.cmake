file(REMOVE_RECURSE
  "libipa_services.a"
)
