# Empty compiler generated dependencies file for ipa_services.
# This may be replaced when dependencies are built.
