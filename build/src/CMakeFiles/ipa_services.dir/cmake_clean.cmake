file(REMOVE_RECURSE
  "CMakeFiles/ipa_services.dir/services/aida_manager.cpp.o"
  "CMakeFiles/ipa_services.dir/services/aida_manager.cpp.o.d"
  "CMakeFiles/ipa_services.dir/services/locator.cpp.o"
  "CMakeFiles/ipa_services.dir/services/locator.cpp.o.d"
  "CMakeFiles/ipa_services.dir/services/manager.cpp.o"
  "CMakeFiles/ipa_services.dir/services/manager.cpp.o.d"
  "CMakeFiles/ipa_services.dir/services/protocol.cpp.o"
  "CMakeFiles/ipa_services.dir/services/protocol.cpp.o.d"
  "CMakeFiles/ipa_services.dir/services/session.cpp.o"
  "CMakeFiles/ipa_services.dir/services/session.cpp.o.d"
  "CMakeFiles/ipa_services.dir/services/splitter_service.cpp.o"
  "CMakeFiles/ipa_services.dir/services/splitter_service.cpp.o.d"
  "CMakeFiles/ipa_services.dir/services/worker_host.cpp.o"
  "CMakeFiles/ipa_services.dir/services/worker_host.cpp.o.d"
  "libipa_services.a"
  "libipa_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
