file(REMOVE_RECURSE
  "CMakeFiles/ipa_catalog.dir/catalog/catalog.cpp.o"
  "CMakeFiles/ipa_catalog.dir/catalog/catalog.cpp.o.d"
  "CMakeFiles/ipa_catalog.dir/catalog/query.cpp.o"
  "CMakeFiles/ipa_catalog.dir/catalog/query.cpp.o.d"
  "libipa_catalog.a"
  "libipa_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
