# Empty compiler generated dependencies file for ipa_catalog.
# This may be replaced when dependencies are built.
