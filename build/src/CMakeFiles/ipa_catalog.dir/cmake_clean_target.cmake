file(REMOVE_RECURSE
  "libipa_catalog.a"
)
