file(REMOVE_RECURSE
  "libipa_physics.a"
)
