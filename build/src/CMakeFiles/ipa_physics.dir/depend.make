# Empty dependencies file for ipa_physics.
# This may be replaced when dependencies are built.
