file(REMOVE_RECURSE
  "CMakeFiles/ipa_physics.dir/physics/event_gen.cpp.o"
  "CMakeFiles/ipa_physics.dir/physics/event_gen.cpp.o.d"
  "libipa_physics.a"
  "libipa_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
