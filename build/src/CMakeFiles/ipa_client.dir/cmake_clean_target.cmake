file(REMOVE_RECURSE
  "libipa_client.a"
)
