# Empty dependencies file for ipa_client.
# This may be replaced when dependencies are built.
