file(REMOVE_RECURSE
  "CMakeFiles/ipa_client.dir/client/grid_client.cpp.o"
  "CMakeFiles/ipa_client.dir/client/grid_client.cpp.o.d"
  "libipa_client.a"
  "libipa_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
