
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/grid_client.cpp" "src/CMakeFiles/ipa_client.dir/client/grid_client.cpp.o" "gcc" "src/CMakeFiles/ipa_client.dir/client/grid_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipa_services.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_security.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_script.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_gridsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_aida.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
