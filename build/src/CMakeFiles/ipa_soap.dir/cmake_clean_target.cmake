file(REMOVE_RECURSE
  "libipa_soap.a"
)
