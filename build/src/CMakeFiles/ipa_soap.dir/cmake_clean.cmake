file(REMOVE_RECURSE
  "CMakeFiles/ipa_soap.dir/soap/soap.cpp.o"
  "CMakeFiles/ipa_soap.dir/soap/soap.cpp.o.d"
  "libipa_soap.a"
  "libipa_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
