# Empty dependencies file for ipa_soap.
# This may be replaced when dependencies are built.
