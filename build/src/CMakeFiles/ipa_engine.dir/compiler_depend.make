# Empty compiler generated dependencies file for ipa_engine.
# This may be replaced when dependencies are built.
