file(REMOVE_RECURSE
  "CMakeFiles/ipa_engine.dir/engine/analyzer.cpp.o"
  "CMakeFiles/ipa_engine.dir/engine/analyzer.cpp.o.d"
  "CMakeFiles/ipa_engine.dir/engine/engine.cpp.o"
  "CMakeFiles/ipa_engine.dir/engine/engine.cpp.o.d"
  "libipa_engine.a"
  "libipa_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
