
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/script/engine_api.cpp" "src/CMakeFiles/ipa_script.dir/script/engine_api.cpp.o" "gcc" "src/CMakeFiles/ipa_script.dir/script/engine_api.cpp.o.d"
  "/root/repo/src/script/interp.cpp" "src/CMakeFiles/ipa_script.dir/script/interp.cpp.o" "gcc" "src/CMakeFiles/ipa_script.dir/script/interp.cpp.o.d"
  "/root/repo/src/script/lexer.cpp" "src/CMakeFiles/ipa_script.dir/script/lexer.cpp.o" "gcc" "src/CMakeFiles/ipa_script.dir/script/lexer.cpp.o.d"
  "/root/repo/src/script/parser.cpp" "src/CMakeFiles/ipa_script.dir/script/parser.cpp.o" "gcc" "src/CMakeFiles/ipa_script.dir/script/parser.cpp.o.d"
  "/root/repo/src/script/stdlib.cpp" "src/CMakeFiles/ipa_script.dir/script/stdlib.cpp.o" "gcc" "src/CMakeFiles/ipa_script.dir/script/stdlib.cpp.o.d"
  "/root/repo/src/script/value.cpp" "src/CMakeFiles/ipa_script.dir/script/value.cpp.o" "gcc" "src/CMakeFiles/ipa_script.dir/script/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_aida.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipa_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
