file(REMOVE_RECURSE
  "CMakeFiles/ipa_script.dir/script/engine_api.cpp.o"
  "CMakeFiles/ipa_script.dir/script/engine_api.cpp.o.d"
  "CMakeFiles/ipa_script.dir/script/interp.cpp.o"
  "CMakeFiles/ipa_script.dir/script/interp.cpp.o.d"
  "CMakeFiles/ipa_script.dir/script/lexer.cpp.o"
  "CMakeFiles/ipa_script.dir/script/lexer.cpp.o.d"
  "CMakeFiles/ipa_script.dir/script/parser.cpp.o"
  "CMakeFiles/ipa_script.dir/script/parser.cpp.o.d"
  "CMakeFiles/ipa_script.dir/script/stdlib.cpp.o"
  "CMakeFiles/ipa_script.dir/script/stdlib.cpp.o.d"
  "CMakeFiles/ipa_script.dir/script/value.cpp.o"
  "CMakeFiles/ipa_script.dir/script/value.cpp.o.d"
  "libipa_script.a"
  "libipa_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
