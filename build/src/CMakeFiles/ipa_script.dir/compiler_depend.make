# Empty compiler generated dependencies file for ipa_script.
# This may be replaced when dependencies are built.
