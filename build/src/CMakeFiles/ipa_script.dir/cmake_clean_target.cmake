file(REMOVE_RECURSE
  "libipa_script.a"
)
