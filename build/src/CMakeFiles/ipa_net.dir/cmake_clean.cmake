file(REMOVE_RECURSE
  "CMakeFiles/ipa_net.dir/net/inproc.cpp.o"
  "CMakeFiles/ipa_net.dir/net/inproc.cpp.o.d"
  "CMakeFiles/ipa_net.dir/net/socket_io.cpp.o"
  "CMakeFiles/ipa_net.dir/net/socket_io.cpp.o.d"
  "CMakeFiles/ipa_net.dir/net/tcp.cpp.o"
  "CMakeFiles/ipa_net.dir/net/tcp.cpp.o.d"
  "libipa_net.a"
  "libipa_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
