file(REMOVE_RECURSE
  "libipa_net.a"
)
