# Empty compiler generated dependencies file for ipa_net.
# This may be replaced when dependencies are built.
