# Empty compiler generated dependencies file for ipa_crypto.
# This may be replaced when dependencies are built.
