file(REMOVE_RECURSE
  "libipa_crypto.a"
)
