file(REMOVE_RECURSE
  "CMakeFiles/ipa_crypto.dir/crypto/encoding.cpp.o"
  "CMakeFiles/ipa_crypto.dir/crypto/encoding.cpp.o.d"
  "CMakeFiles/ipa_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/ipa_crypto.dir/crypto/sha256.cpp.o.d"
  "libipa_crypto.a"
  "libipa_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
