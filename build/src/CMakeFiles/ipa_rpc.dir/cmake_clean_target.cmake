file(REMOVE_RECURSE
  "libipa_rpc.a"
)
