# Empty compiler generated dependencies file for ipa_rpc.
# This may be replaced when dependencies are built.
