file(REMOVE_RECURSE
  "CMakeFiles/ipa_rpc.dir/rpc/rpc.cpp.o"
  "CMakeFiles/ipa_rpc.dir/rpc/rpc.cpp.o.d"
  "libipa_rpc.a"
  "libipa_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
