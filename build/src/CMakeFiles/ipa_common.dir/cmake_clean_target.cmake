file(REMOVE_RECURSE
  "libipa_common.a"
)
