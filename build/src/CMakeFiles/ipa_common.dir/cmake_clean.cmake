file(REMOVE_RECURSE
  "CMakeFiles/ipa_common.dir/common/clock.cpp.o"
  "CMakeFiles/ipa_common.dir/common/clock.cpp.o.d"
  "CMakeFiles/ipa_common.dir/common/config.cpp.o"
  "CMakeFiles/ipa_common.dir/common/config.cpp.o.d"
  "CMakeFiles/ipa_common.dir/common/ids.cpp.o"
  "CMakeFiles/ipa_common.dir/common/ids.cpp.o.d"
  "CMakeFiles/ipa_common.dir/common/log.cpp.o"
  "CMakeFiles/ipa_common.dir/common/log.cpp.o.d"
  "CMakeFiles/ipa_common.dir/common/status.cpp.o"
  "CMakeFiles/ipa_common.dir/common/status.cpp.o.d"
  "CMakeFiles/ipa_common.dir/common/strings.cpp.o"
  "CMakeFiles/ipa_common.dir/common/strings.cpp.o.d"
  "CMakeFiles/ipa_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/ipa_common.dir/common/thread_pool.cpp.o.d"
  "CMakeFiles/ipa_common.dir/common/uri.cpp.o"
  "CMakeFiles/ipa_common.dir/common/uri.cpp.o.d"
  "libipa_common.a"
  "libipa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
