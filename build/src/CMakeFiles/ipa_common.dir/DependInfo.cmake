
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/clock.cpp" "src/CMakeFiles/ipa_common.dir/common/clock.cpp.o" "gcc" "src/CMakeFiles/ipa_common.dir/common/clock.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/ipa_common.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/ipa_common.dir/common/config.cpp.o.d"
  "/root/repo/src/common/ids.cpp" "src/CMakeFiles/ipa_common.dir/common/ids.cpp.o" "gcc" "src/CMakeFiles/ipa_common.dir/common/ids.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/ipa_common.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/ipa_common.dir/common/log.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/ipa_common.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/ipa_common.dir/common/status.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/ipa_common.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/ipa_common.dir/common/strings.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/ipa_common.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/ipa_common.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/common/uri.cpp" "src/CMakeFiles/ipa_common.dir/common/uri.cpp.o" "gcc" "src/CMakeFiles/ipa_common.dir/common/uri.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
