# Empty compiler generated dependencies file for ipa_perf.
# This may be replaced when dependencies are built.
