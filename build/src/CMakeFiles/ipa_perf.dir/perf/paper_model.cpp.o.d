src/CMakeFiles/ipa_perf.dir/perf/paper_model.cpp.o: \
 /root/repo/src/perf/paper_model.cpp /usr/include/stdc-predef.h \
 /root/repo/src/perf/paper_model.hpp
