file(REMOVE_RECURSE
  "CMakeFiles/ipa_perf.dir/perf/paper_model.cpp.o"
  "CMakeFiles/ipa_perf.dir/perf/paper_model.cpp.o.d"
  "CMakeFiles/ipa_perf.dir/perf/scenario.cpp.o"
  "CMakeFiles/ipa_perf.dir/perf/scenario.cpp.o.d"
  "libipa_perf.a"
  "libipa_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
