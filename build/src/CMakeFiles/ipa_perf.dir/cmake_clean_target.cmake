file(REMOVE_RECURSE
  "libipa_perf.a"
)
