file(REMOVE_RECURSE
  "CMakeFiles/ipa_security.dir/security/credentials.cpp.o"
  "CMakeFiles/ipa_security.dir/security/credentials.cpp.o.d"
  "libipa_security.a"
  "libipa_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
