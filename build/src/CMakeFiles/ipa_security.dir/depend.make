# Empty dependencies file for ipa_security.
# This may be replaced when dependencies are built.
