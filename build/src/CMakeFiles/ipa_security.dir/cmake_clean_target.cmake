file(REMOVE_RECURSE
  "libipa_security.a"
)
