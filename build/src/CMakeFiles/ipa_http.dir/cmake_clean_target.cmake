file(REMOVE_RECURSE
  "libipa_http.a"
)
