file(REMOVE_RECURSE
  "CMakeFiles/ipa_http.dir/http/http.cpp.o"
  "CMakeFiles/ipa_http.dir/http/http.cpp.o.d"
  "libipa_http.a"
  "libipa_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
