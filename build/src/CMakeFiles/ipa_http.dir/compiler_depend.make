# Empty compiler generated dependencies file for ipa_http.
# This may be replaced when dependencies are built.
