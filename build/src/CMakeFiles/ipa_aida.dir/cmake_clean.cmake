file(REMOVE_RECURSE
  "CMakeFiles/ipa_aida.dir/aida/cloud1d.cpp.o"
  "CMakeFiles/ipa_aida.dir/aida/cloud1d.cpp.o.d"
  "CMakeFiles/ipa_aida.dir/aida/histogram1d.cpp.o"
  "CMakeFiles/ipa_aida.dir/aida/histogram1d.cpp.o.d"
  "CMakeFiles/ipa_aida.dir/aida/histogram2d.cpp.o"
  "CMakeFiles/ipa_aida.dir/aida/histogram2d.cpp.o.d"
  "CMakeFiles/ipa_aida.dir/aida/profile1d.cpp.o"
  "CMakeFiles/ipa_aida.dir/aida/profile1d.cpp.o.d"
  "CMakeFiles/ipa_aida.dir/aida/tree.cpp.o"
  "CMakeFiles/ipa_aida.dir/aida/tree.cpp.o.d"
  "CMakeFiles/ipa_aida.dir/aida/tuple.cpp.o"
  "CMakeFiles/ipa_aida.dir/aida/tuple.cpp.o.d"
  "libipa_aida.a"
  "libipa_aida.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_aida.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
