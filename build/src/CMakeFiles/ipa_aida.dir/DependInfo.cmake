
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aida/cloud1d.cpp" "src/CMakeFiles/ipa_aida.dir/aida/cloud1d.cpp.o" "gcc" "src/CMakeFiles/ipa_aida.dir/aida/cloud1d.cpp.o.d"
  "/root/repo/src/aida/histogram1d.cpp" "src/CMakeFiles/ipa_aida.dir/aida/histogram1d.cpp.o" "gcc" "src/CMakeFiles/ipa_aida.dir/aida/histogram1d.cpp.o.d"
  "/root/repo/src/aida/histogram2d.cpp" "src/CMakeFiles/ipa_aida.dir/aida/histogram2d.cpp.o" "gcc" "src/CMakeFiles/ipa_aida.dir/aida/histogram2d.cpp.o.d"
  "/root/repo/src/aida/profile1d.cpp" "src/CMakeFiles/ipa_aida.dir/aida/profile1d.cpp.o" "gcc" "src/CMakeFiles/ipa_aida.dir/aida/profile1d.cpp.o.d"
  "/root/repo/src/aida/tree.cpp" "src/CMakeFiles/ipa_aida.dir/aida/tree.cpp.o" "gcc" "src/CMakeFiles/ipa_aida.dir/aida/tree.cpp.o.d"
  "/root/repo/src/aida/tuple.cpp" "src/CMakeFiles/ipa_aida.dir/aida/tuple.cpp.o" "gcc" "src/CMakeFiles/ipa_aida.dir/aida/tuple.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
