file(REMOVE_RECURSE
  "libipa_aida.a"
)
