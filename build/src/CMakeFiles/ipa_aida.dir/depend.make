# Empty dependencies file for ipa_aida.
# This may be replaced when dependencies are built.
