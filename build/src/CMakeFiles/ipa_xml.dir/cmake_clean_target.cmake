file(REMOVE_RECURSE
  "libipa_xml.a"
)
