# Empty dependencies file for ipa_xml.
# This may be replaced when dependencies are built.
