file(REMOVE_RECURSE
  "CMakeFiles/ipa_xml.dir/xml/xml.cpp.o"
  "CMakeFiles/ipa_xml.dir/xml/xml.cpp.o.d"
  "libipa_xml.a"
  "libipa_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
