# Empty dependencies file for higgs_search.
# This may be replaced when dependencies are built.
