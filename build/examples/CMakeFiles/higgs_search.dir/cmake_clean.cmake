file(REMOVE_RECURSE
  "CMakeFiles/higgs_search.dir/higgs_search.cpp.o"
  "CMakeFiles/higgs_search.dir/higgs_search.cpp.o.d"
  "higgs_search"
  "higgs_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/higgs_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
