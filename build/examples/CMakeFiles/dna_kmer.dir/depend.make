# Empty dependencies file for dna_kmer.
# This may be replaced when dependencies are built.
