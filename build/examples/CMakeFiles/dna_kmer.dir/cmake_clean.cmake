file(REMOVE_RECURSE
  "CMakeFiles/dna_kmer.dir/dna_kmer.cpp.o"
  "CMakeFiles/dna_kmer.dir/dna_kmer.cpp.o.d"
  "dna_kmer"
  "dna_kmer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dna_kmer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
