# Empty dependencies file for ipa_site.
# This may be replaced when dependencies are built.
