file(REMOVE_RECURSE
  "CMakeFiles/ipa_site.dir/ipa_site.cpp.o"
  "CMakeFiles/ipa_site.dir/ipa_site.cpp.o.d"
  "ipa_site"
  "ipa_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
