file(REMOVE_RECURSE
  "CMakeFiles/ipa_shell.dir/ipa_shell.cpp.o"
  "CMakeFiles/ipa_shell.dir/ipa_shell.cpp.o.d"
  "ipa_shell"
  "ipa_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipa_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
