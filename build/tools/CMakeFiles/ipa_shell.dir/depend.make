# Empty dependencies file for ipa_shell.
# This may be replaced when dependencies are built.
