#include "physics/event_gen.hpp"

#include <algorithm>
#include <span>

#include "engine/analyzer.hpp"

namespace ipa::physics {

data::Record generate_event(Rng& rng, const GeneratorConfig& config, std::uint64_t index) {
  std::vector<FourVector> parts;
  const bool signal = rng.bernoulli(config.signal_fraction);

  if (signal) {
    // Resonance with BW mass, exponential pT, gaussian z-boost; decays to
    // two massless daughters, isotropic in its rest frame.
    double m = rng.breit_wigner(config.resonance_mass, config.resonance_width);
    m = std::clamp(m, config.resonance_mass * 0.5, config.resonance_mass * 1.5);
    const double pt = rng.exponential(1.0 / config.resonance_pt_mean);
    const double pz = rng.normal(0.0, config.beam_energy_spread);
    const double phi_boson = rng.uniform(0, 2 * 3.14159265358979);
    FourVector boson;
    boson.px = pt * std::cos(phi_boson);
    boson.py = pt * std::sin(phi_boson);
    boson.pz = pz;
    boson.e = std::sqrt(m * m + boson.p2());

    const double cos_theta = rng.uniform(-1.0, 1.0);
    const double theta = std::acos(cos_theta);
    const double phi = rng.uniform(0, 2 * 3.14159265358979);
    const FourVector d1 = FourVector::from_polar(m / 2, theta, phi);
    FourVector d2{-d1.px, -d1.py, -d1.pz, d1.e};

    const double bx = boson.px / boson.e, by = boson.py / boson.e, bz = boson.pz / boson.e;
    parts.push_back(d1.boosted(bx, by, bz));
    parts.push_back(d2.boosted(bx, by, bz));
  }

  // Soft combinatoric background candidates.
  const int n_bg = 2 + static_cast<int>(rng.exponential(1.0 / config.background_particles_mean));
  for (int i = 0; i < n_bg; ++i) {
    const double p = rng.exponential(1.0 / config.background_pt_scale) + 0.5;
    const double theta = std::acos(rng.uniform(-1.0, 1.0));
    const double phi = rng.uniform(0, 2 * 3.14159265358979);
    parts.push_back(FourVector::from_polar(p, theta, phi));
  }

  data::Record record(index);
  record.set("sig", std::int64_t{signal ? 1 : 0});
  record.set("ntrk", static_cast<std::int64_t>(parts.size()));
  data::Value::RealVec px, py, pz, e;
  px.reserve(parts.size());
  for (const FourVector& part : parts) {
    px.push_back(part.px);
    py.push_back(part.py);
    pz.push_back(part.pz);
    e.push_back(part.e);
  }
  record.set("px", std::move(px));
  record.set("py", std::move(py));
  record.set("pz", std::move(pz));
  record.set("e", std::move(e));
  return record;
}

Result<data::DatasetInfo> generate_dataset(const std::string& path, const std::string& name,
                                           std::uint64_t events, const GeneratorConfig& config,
                                           std::uint64_t seed) {
  Rng rng(seed);
  auto writer = data::DatasetWriter::create(
      path, name,
      {{"experiment", "LC"},
       {"generator", "ipa-lcgen"},
       {"signal_fraction", std::to_string(config.signal_fraction)},
       {"resonance_mass", std::to_string(config.resonance_mass)}});
  IPA_RETURN_IF_ERROR(writer.status());
  for (std::uint64_t i = 0; i < events; ++i) {
    IPA_RETURN_IF_ERROR(writer->append(generate_event(rng, config, i)));
  }
  IPA_RETURN_IF_ERROR(writer->finish());
  auto reader = data::DatasetReader::open(path);
  IPA_RETURN_IF_ERROR(reader.status());
  return reader->info();
}

Result<std::vector<FourVector>> candidates(const data::Record& record) {
  const auto* px = record.vec_or_null("px");
  const auto* py = record.vec_or_null("py");
  const auto* pz = record.vec_or_null("pz");
  const auto* e = record.vec_or_null("e");
  if (px == nullptr || py == nullptr || pz == nullptr || e == nullptr) {
    return invalid_argument("event record missing candidate vectors");
  }
  const std::size_t n = px->size();
  if (py->size() != n || pz->size() != n || e->size() != n) {
    return data_loss("event record candidate vectors have mismatched lengths");
  }
  std::vector<FourVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(FourVector{(*px)[i], (*py)[i], (*pz)[i], (*e)[i]});
  }
  return out;
}

double leading_pair_mass(const data::Record& record) {
  auto parts = candidates(record);
  if (!parts.is_ok() || parts->size() < 2) return 0.0;
  std::partial_sort(parts->begin(), parts->begin() + 2, parts->end(),
                    [](const FourVector& a, const FourVector& b) { return a.pt() > b.pt(); });
  return pair_mass((*parts)[0], (*parts)[1]);
}

namespace {

constexpr double kPtCut = 20.0;  // GeV

/// Candidate with its transverse momentum computed once up front: the
/// partial_sort comparator otherwise recomputes two sqrts per comparison.
/// The cached value is the identical double pt() would return, so ordering,
/// cut decisions and the resulting histograms stay bit-identical.
struct PtCandidate {
  double pt;
  FourVector v;
};

/// Per-row selection shared by the scalar and batch paths so both run the
/// exact same arithmetic (same partial_sort, same comparator, same cut) —
/// the golden test asserts bit-identical histograms between the two.
/// Returns the leading-pair mass, or 0.0 when the row fails selection
/// (the caller only fills for mass > 0, matching the original cut).
double selected_pair_mass(std::span<const double> px, std::span<const double> py,
                          std::span<const double> pz, std::span<const double> e,
                          std::vector<PtCandidate>& scratch) {
  const std::size_t n = px.size();
  if (py.size() != n || pz.size() != n || e.size() != n) return 0.0;
  if (n < 2) return 0.0;
  scratch.clear();
  scratch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const FourVector v{px[i], py[i], pz[i], e[i]};
    scratch.push_back(PtCandidate{v.pt(), v});
  }
  std::partial_sort(scratch.begin(), scratch.begin() + 2, scratch.end(),
                    [](const PtCandidate& a, const PtCandidate& b) { return a.pt > b.pt; });
  // Both legs must pass the pT cut; suppresses soft combinatorics.
  if (scratch[0].pt < kPtCut || scratch[1].pt < kPtCut) return 0.0;
  return pair_mass(scratch[0].v, scratch[1].v);
}

class HiggsMassAnalyzer final : public engine::Analyzer {
 public:
  Status begin(aida::Tree& tree) override {
    auto mass = aida::Histogram1D::create("leading pair mass [GeV]", 60, 0, 250);
    IPA_RETURN_IF_ERROR(mass.status());
    tree.put("/higgs/mass", std::move(*mass));
    auto ntrk = aida::Histogram1D::create("candidate multiplicity", 30, 0, 60);
    IPA_RETURN_IF_ERROR(ntrk.status());
    tree.put("/higgs/ntrk", std::move(*ntrk));
    return Status::ok();
  }

  Status process(const data::Record& record, aida::Tree& tree) override {
    (*tree.histogram1d("/higgs/ntrk"))->fill(record.real_or("ntrk"));
    const auto* px = record.vec_or_null("px");
    const auto* py = record.vec_or_null("py");
    const auto* pz = record.vec_or_null("pz");
    const auto* e = record.vec_or_null("e");
    if (px == nullptr || py == nullptr || pz == nullptr || e == nullptr) return Status::ok();
    const double mass = selected_pair_mass(*px, *py, *pz, *e, scratch_);
    if (mass > 0) (*tree.histogram1d("/higgs/mass"))->fill(mass);
    return Status::ok();
  }

  Status process_batch(const data::RecordBatch& batch, aida::Tree& tree) override {
    // Resolve slots and histogram paths once per batch, then run the inner
    // loop over typed columns. Fills accumulate per histogram in row order,
    // so each histogram sees the exact fill sequence of the scalar path.
    const data::Schema& schema = batch.schema();
    const int ntrk = schema.slot_of("ntrk");
    const int px = schema.slot_of("px");
    const int py = schema.slot_of("py");
    const int pz = schema.slot_of("pz");
    const int e = schema.slot_of("e");
    auto ntrk_hist = tree.histogram1d("/higgs/ntrk");
    IPA_RETURN_IF_ERROR(ntrk_hist.status());
    auto mass_hist = tree.histogram1d("/higgs/mass");
    IPA_RETURN_IF_ERROR(mass_hist.status());

    ntrk_fills_.clear();
    mass_fills_.clear();
    constexpr auto kVec = data::RecordBatch::CellKind::kVec;
    for (std::size_t row = 0; row < batch.rows(); ++row) {
      double multiplicity = 0.0;
      if (ntrk != data::Schema::kNoSlot) (void)batch.cell_number(ntrk, row, &multiplicity);
      ntrk_fills_.push_back(multiplicity);
      if (px == data::Schema::kNoSlot || py == data::Schema::kNoSlot ||
          pz == data::Schema::kNoSlot || e == data::Schema::kNoSlot) {
        continue;
      }
      if (batch.cell_kind(px, row) != kVec || batch.cell_kind(py, row) != kVec ||
          batch.cell_kind(pz, row) != kVec || batch.cell_kind(e, row) != kVec) {
        continue;
      }
      const double mass =
          selected_pair_mass(batch.cell_vec(px, row), batch.cell_vec(py, row),
                             batch.cell_vec(pz, row), batch.cell_vec(e, row), scratch_);
      if (mass > 0) mass_fills_.push_back(mass);
    }
    (*ntrk_hist)->fill_n(ntrk_fills_);
    (*mass_hist)->fill_n(mass_fills_);
    return Status::ok();
  }

 private:
  std::vector<PtCandidate> scratch_;
  std::vector<double> ntrk_fills_;
  std::vector<double> mass_fills_;
};

}  // namespace

void register_higgs_plugin() {
  static const bool registered = [] {
    (void)engine::AnalyzerRegistry::instance().register_factory(
        "higgs-mass", [] { return std::make_unique<HiggsMassAnalyzer>(); });
    return true;
  }();
  (void)registered;
}

const char* higgs_script() {
  // The PawScript twin of HiggsMassAnalyzer: reconstructs the invariant
  // mass of the two highest-pT candidates.
  return R"(
// Higgs-boson search: leading-pair invariant mass.
func begin(tree) {
  tree.book_h1("/higgs/mass", 60, 0, 250, "leading pair mass [GeV]");
  tree.book_h1("/higgs/ntrk", 30, 0, 60, "candidate multiplicity");
}

func pt2(px, py, i) {
  return px[i] * px[i] + py[i] * py[i];
}

func process(event, tree) {
  let px = event.get("px");
  let py = event.get("py");
  let pz = event.get("pz");
  let e  = event.get("e");
  let n = len(px);
  tree.fill("/higgs/ntrk", n);
  if (n < 2) { return 0; }

  // Find the two highest-pT candidates.
  let a = 0;
  let b = 1;
  if (pt2(px, py, 1) > pt2(px, py, 0)) { a = 1; b = 0; }
  for (let i = 2; i < n; i += 1) {
    if (pt2(px, py, i) > pt2(px, py, a)) { b = a; a = i; }
    else if (pt2(px, py, i) > pt2(px, py, b)) { b = i; }
  }

  // pT > 20 GeV on both legs suppresses the soft combinatoric background.
  if (pt2(px, py, a) < 400 || pt2(px, py, b) < 400) { return 0; }

  let se = e[a] + e[b];
  let sx = px[a] + px[b];
  let sy = py[a] + py[b];
  let sz = pz[a] + pz[b];
  let m2 = se * se - sx * sx - sy * sy - sz * sz;
  if (m2 > 0) { tree.fill("/higgs/mass", sqrt(m2)); }
  return 0;
}
)";
}

}  // namespace ipa::physics
