// Synthetic Linear Collider event generation.
//
// The paper's workload is "a Java algorithm that looks for Higgs Bosons in
// simulated Linear Collider data" over a 471 MB event file. We have no LC
// simulation data, so this generator produces record-based events with the
// same analysis-relevant structure: a list of reconstructed particle
// candidates per event, where a configurable fraction of events hides a
// two-body resonance (Breit-Wigner line shape, boosted) inside combinatoric
// background. The sample Higgs analysis reconstructs the candidate-pair
// invariant-mass spectrum and finds the peak — exercising exactly the
// record → analysis → mergeable-histogram path the framework exists for.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "data/dataset.hpp"
#include "physics/four_vector.hpp"

namespace ipa::physics {

struct GeneratorConfig {
  double signal_fraction = 0.25;   // events containing the resonance
  double resonance_mass = 125.0;   // GeV ("Higgs-like")
  double resonance_width = 4.0;    // GeV
  double resonance_pt_mean = 30.0; // exponential pT of the produced boson
  int background_particles_mean = 12;  // soft combinatoric candidates
  double background_pt_scale = 8.0;    // exponential pT of background
  double beam_energy_spread = 20.0;    // z-boost scale
};

/// One event as a dataset record. Fields:
///   "sig"  (int)   1 when the resonance was generated
///   "ntrk" (int)   candidate count
///   "px","py","pz","e" (real vectors, one slot per candidate)
data::Record generate_event(Rng& rng, const GeneratorConfig& config, std::uint64_t index);

/// Write a whole dataset of `events` events; returns the file's info.
Result<data::DatasetInfo> generate_dataset(const std::string& path, const std::string& name,
                                           std::uint64_t events,
                                           const GeneratorConfig& config = {},
                                           std::uint64_t seed = Rng::kDefaultSeed);

/// Extract the candidate four-vectors from an event record.
Result<std::vector<FourVector>> candidates(const data::Record& record);

/// The reference reconstruction used by both the native plugin and tests:
/// invariant mass of the two highest-pT candidates (0 when fewer than 2).
double leading_pair_mass(const data::Record& record);

/// Register the "higgs-mass" native analyzer plugin (idempotent): books
/// /higgs/mass and /higgs/ntrk, fills the leading-pair spectrum. This is
/// the compiled-code twin of the PawScript analysis for the script-overhead
/// ablation.
void register_higgs_plugin();

/// PawScript source of the same analysis — the paper's "custom analysis
/// code" the client stages onto engines.
const char* higgs_script();

}  // namespace ipa::physics
