// Relativistic four-vector kinematics for the LC event generator and the
// sample Higgs-search analyses.
#pragma once

#include <cmath>

namespace ipa::physics {

struct FourVector {
  double px = 0, py = 0, pz = 0, e = 0;

  static FourVector from_polar(double p, double theta, double phi, double mass = 0.0) {
    FourVector v;
    v.px = p * std::sin(theta) * std::cos(phi);
    v.py = p * std::sin(theta) * std::sin(phi);
    v.pz = p * std::cos(theta);
    v.e = std::sqrt(p * p + mass * mass);
    return v;
  }

  double p2() const { return px * px + py * py + pz * pz; }
  double p() const { return std::sqrt(p2()); }
  double pt() const { return std::sqrt(px * px + py * py); }
  /// Invariant mass (0 for spacelike rounding noise).
  double mass() const {
    const double m2 = e * e - p2();
    return m2 > 0 ? std::sqrt(m2) : 0.0;
  }
  /// Pseudorapidity; large |eta| capped for numerical safety.
  double eta() const {
    const double pmag = p();
    if (pmag <= std::abs(pz)) return pz >= 0 ? 10.0 : -10.0;
    return 0.5 * std::log((pmag + pz) / (pmag - pz));
  }
  double phi() const { return std::atan2(py, px); }

  FourVector operator+(const FourVector& other) const {
    return {px + other.px, py + other.py, pz + other.pz, e + other.e};
  }

  /// Lorentz boost by velocity beta = (bx, by, bz), |beta| < 1.
  FourVector boosted(double bx, double by, double bz) const {
    const double b2 = bx * bx + by * by + bz * bz;
    if (b2 <= 0) return *this;
    const double gamma = 1.0 / std::sqrt(1.0 - b2);
    const double bp = bx * px + by * py + bz * pz;
    const double k = (gamma - 1.0) * bp / b2 + gamma * e;
    return {px + k * bx, py + k * by, pz + k * bz, gamma * (e + bp)};
  }
};

/// Invariant mass of a pair.
inline double pair_mass(const FourVector& a, const FourVector& b) { return (a + b).mass(); }

}  // namespace ipa::physics
