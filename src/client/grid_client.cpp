#include "client/grid_client.hpp"

#include <chrono>
#include <thread>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace ipa::client {

bool PollUpdate::all_engines_done(std::size_t expected) const {
  if (engines.size() < expected || engines.empty()) return false;
  for (const auto& report : engines) {
    if (report.lost) continue;  // lost engines will never report again
    if (report.state != engine::EngineState::kFinished &&
        report.state != engine::EngineState::kFailed) {
      return false;
    }
  }
  return true;
}

bool PollUpdate::any_engine_failed() const {
  for (const auto& report : engines) {
    if (report.state == engine::EngineState::kFailed && !report.lost) return true;
  }
  return false;
}

bool PollUpdate::degraded() const {
  for (const auto& report : engines) {
    if (report.lost) return true;
  }
  return false;
}

std::uint64_t PollUpdate::total_processed() const {
  std::uint64_t total = 0;
  for (const auto& report : engines) total += report.processed;
  return total;
}

std::uint64_t PollUpdate::total_records() const {
  std::uint64_t total = 0;
  for (const auto& report : engines) total += report.total;
  return total;
}

GridClient::GridClient(Uri endpoint, soap::SoapClient soap, std::string token)
    : endpoint_(std::move(endpoint)), soap_(std::move(soap)), token_(std::move(token)) {
  // A dropped poll response should cost one quick retry, not a whole call.
  rmi_policy_.attempt_timeout_s = 0.25;
}

Result<GridClient> GridClient::connect(const Uri& soap_endpoint, std::string proxy_token) {
  services::register_idempotent_methods();
  auto soap = soap::SoapClient::connect(soap_endpoint);
  IPA_RETURN_IF_ERROR(soap.status().with_prefix("client: manager connect"));
  soap->set_token(proxy_token);
  return GridClient(soap_endpoint, std::move(*soap), std::move(proxy_token));
}

Result<CatalogListing> GridClient::browse(const std::string& path) {
  xml::Node args("ipa:browse");
  args.add_child(services::text_element("path", path));
  IPA_ASSIGN_OR_RETURN(const xml::Node reply,
                       soap_.call(services::kCatalogService, "browse", std::move(args)));
  CatalogListing listing;
  for (const xml::Node& child : reply.children()) {
    if (child.name() == "folder") {
      listing.folders.push_back(child.text());
    } else if (child.name() == "dataset") {
      CatalogEntry entry;
      entry.id = child.attribute("id");
      entry.path = child.attribute("path");
      for (const xml::Node& meta : child.children()) {
        if (meta.name() == "meta") entry.metadata[meta.attribute("key")] = meta.attribute("value");
      }
      listing.datasets.push_back(std::move(entry));
    }
  }
  return listing;
}

Result<std::vector<CatalogEntry>> GridClient::search(const std::string& query) {
  xml::Node args("ipa:search");
  args.add_child(services::text_element("query", query));
  IPA_ASSIGN_OR_RETURN(const xml::Node reply,
                       soap_.call(services::kCatalogService, "search", std::move(args)));
  std::vector<CatalogEntry> out;
  for (const xml::Node& child : reply.children()) {
    if (child.name() != "dataset") continue;
    CatalogEntry entry;
    entry.id = child.attribute("id");
    entry.path = child.attribute("path");
    out.push_back(std::move(entry));
  }
  return out;
}

Result<std::pair<std::string, std::string>> GridClient::locate(const std::string& dataset_id) {
  xml::Node args("ipa:locate");
  args.add_child(services::text_element("datasetId", dataset_id));
  IPA_ASSIGN_OR_RETURN(const xml::Node reply,
                       soap_.call(services::kLocatorService, "locate", std::move(args)));
  return std::make_pair(reply.child_text("location"), reply.child_text("splitter"));
}

Result<GridSession> GridClient::create_session(int nodes) {
  xml::Node args("ipa:createSession");
  args.add_child(services::text_element("nodes", std::to_string(nodes)));
  IPA_ASSIGN_OR_RETURN(const xml::Node reply,
                       soap_.call(services::kControlService, "createSession", std::move(args)));

  SessionInfo info;
  info.session_id = reply.child_text("sessionId");
  info.queue = reply.child_text("queue");
  std::int64_t granted = 0;
  if (!strings::parse_i64(reply.child_text("grantedNodes", "0"), granted) || granted <= 0) {
    return internal_error("createSession: bad grantedNodes in reply");
  }
  info.granted_nodes = static_cast<int>(granted);
  IPA_ASSIGN_OR_RETURN(info.rmi_endpoint, Uri::parse(reply.child_text("rmiEndpoint")));

  // Dedicated channels for the session: its own SOAP connection and the
  // RMI-style polling connection (the paper's separate Remote Data plug-in).
  auto session_soap = soap::SoapClient::connect(endpoint_);
  IPA_RETURN_IF_ERROR(session_soap.status());
  session_soap->set_token(token_);
  if (rmi_decorator_) info.rmi_endpoint = rmi_decorator_(info.rmi_endpoint);
  auto rmi = rpc::RpcClient::connect(info.rmi_endpoint, 5.0, rmi_policy_);
  IPA_RETURN_IF_ERROR(rmi.status().with_prefix("createSession: rmi connect"));

  return GridSession(std::move(info), std::move(*session_soap), token_, std::move(*rmi));
}

GridSession::GridSession(SessionInfo info, soap::SoapClient soap, std::string token,
                         rpc::RpcClient rmi)
    : info_(std::move(info)),
      soap_(std::move(soap)),
      token_(std::move(token)),
      rmi_(std::move(rmi)) {}

GridSession::GridSession(GridSession&& other) noexcept
    : info_(std::move(other.info_)),
      soap_(std::move(other.soap_)),
      token_(std::move(other.token_)),
      rmi_(std::move(other.rmi_)),
      last_version_(other.last_version_),
      closed_(other.closed_),
      degraded_(other.degraded_) {
  other.closed_ = true;
}

GridSession& GridSession::operator=(GridSession&& other) noexcept {
  if (this != &other) {
    if (!closed_ && soap_.has_value()) (void)close();
    info_ = std::move(other.info_);
    soap_ = std::move(other.soap_);
    token_ = std::move(other.token_);
    rmi_ = std::move(other.rmi_);
    last_version_ = other.last_version_;
    closed_ = other.closed_;
    degraded_ = other.degraded_;
    other.closed_ = true;
  }
  return *this;
}

GridSession::~GridSession() {
  if (!closed_ && soap_.has_value()) {
    (void)close();
  }
}

Result<xml::Node> GridSession::call(const std::string& operation, xml::Node args) {
  if (!soap_) return failed_precondition("session: moved-from");
  if (closed_) return failed_precondition("session: closed");
  return soap_->call(services::kSessionService, operation, std::move(args), info_.session_id);
}

Status GridSession::activate() {
  return call("activate", xml::Node("ipa:activate")).status();
}

Result<StagedDataset> GridSession::select_dataset(const std::string& dataset_id) {
  xml::Node args("ipa:selectDataset");
  args.add_child(services::text_element("datasetId", dataset_id));
  IPA_ASSIGN_OR_RETURN(const xml::Node reply, call("selectDataset", std::move(args)));
  StagedDataset staged;
  std::int64_t parts = 0;
  std::uint64_t records = 0, bytes = 0;
  (void)strings::parse_i64(reply.child_text("parts", "0"), parts);
  (void)strings::parse_u64(reply.child_text("records", "0"), records);
  (void)strings::parse_u64(reply.child_text("bytes", "0"), bytes);
  staged.parts = static_cast<int>(parts);
  staged.records = records;
  staged.bytes = bytes;
  return staged;
}

Status GridSession::stage_script(const std::string& name, const std::string& source) {
  xml::Node args("ipa:stageCode");
  args.add_child(services::text_element("kind", "script"));
  args.add_child(services::text_element("name", name));
  args.add_child(services::text_element("source", source));
  return call("stageCode", std::move(args)).status();
}

Status GridSession::stage_plugin(const std::string& plugin_name) {
  xml::Node args("ipa:stageCode");
  args.add_child(services::text_element("kind", "plugin"));
  args.add_child(services::text_element("name", plugin_name));
  args.add_child(services::text_element("source", plugin_name));
  return call("stageCode", std::move(args)).status();
}

namespace {

Status control_status(Result<xml::Node> reply) { return reply.status(); }

}  // namespace

Status GridSession::run() {
  xml::Node args("ipa:control");
  args.add_child(services::text_element("verb", "run"));
  return control_status(call("control", std::move(args)));
}

Status GridSession::pause() {
  xml::Node args("ipa:control");
  args.add_child(services::text_element("verb", "pause"));
  return control_status(call("control", std::move(args)));
}

Status GridSession::stop() {
  xml::Node args("ipa:control");
  args.add_child(services::text_element("verb", "stop"));
  return control_status(call("control", std::move(args)));
}

Status GridSession::rewind() {
  xml::Node args("ipa:control");
  args.add_child(services::text_element("verb", "rewind"));
  const Status status = control_status(call("control", std::move(args)));
  if (status.is_ok()) last_version_ = 0;
  return status;
}

Status GridSession::run_records(std::uint64_t n) {
  xml::Node args("ipa:control");
  args.add_child(services::text_element("verb", "run_records"));
  args.add_child(services::text_element("records", std::to_string(n)));
  return control_status(call("control", std::move(args)));
}

Result<PollUpdate> GridSession::poll() {
  if (!rmi_) return failed_precondition("session: moved-from");
  IPA_ASSIGN_OR_RETURN(
      const ser::Bytes reply,
      rmi_->call(services::kAidaManagerService, "poll",
                 services::encode_poll_request(info_.session_id, last_version_)));
  IPA_ASSIGN_OR_RETURN(const services::PollResponse response,
                       services::decode_poll_response(reply));
  PollUpdate update;
  update.version = response.version;
  update.changed = response.changed;
  update.engines = response.engines;
  if (update.degraded()) degraded_ = true;
  if (response.changed) {
    auto tree = aida::Tree::deserialize(response.merged);
    IPA_RETURN_IF_ERROR(tree.status().with_prefix("poll: merged tree"));
    update.merged = std::move(*tree);
    last_version_ = response.version;
  }
  return update;
}

void GridSession::drop_connections() {
  if (rmi_) rmi_->drop_connection();
}

Result<aida::Tree> GridSession::run_to_completion(
    double timeout_s, const std::function<void(const PollUpdate&)>& on_update) {
  IPA_RETURN_IF_ERROR(run());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  aida::Tree latest;
  while (true) {
    IPA_ASSIGN_OR_RETURN(PollUpdate update, poll());
    if (update.changed) {
      if (on_update) on_update(update);
      latest = std::move(update.merged);
    }
    if (update.all_engines_done(static_cast<std::size_t>(info_.granted_nodes))) {
      if (update.any_engine_failed()) {
        std::string detail;
        for (const auto& report : update.engines) {
          if (report.state == engine::EngineState::kFailed) {
            detail = report.engine_id + ": " + report.error;
            break;
          }
        }
        return aborted("analysis failed on " + detail);
      }
      // One final poll in case the last snapshot arrived after the reports.
      IPA_ASSIGN_OR_RETURN(PollUpdate final_update, poll());
      if (final_update.changed) {
        if (on_update) on_update(final_update);
        latest = std::move(final_update.merged);
      }
      return latest;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      return deadline_exceeded("analysis did not finish within the timeout");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

Status GridSession::close() {
  if (closed_) return Status::ok();
  const Status status = call("close", xml::Node("ipa:close")).status();
  closed_ = true;
  if (rmi_) rmi_->close();
  return status;
}

Result<std::string> make_proxy(const security::CredentialAuthority& authority,
                               const std::string& base_token, double lifetime_s) {
  return authority.delegate(base_token, lifetime_s);
}

}  // namespace ipa::client
