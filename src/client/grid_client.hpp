// Client-side facade: what the paper's JAS plug-ins do, as a C++ API.
//
// The flow mirrors Figure 2 exactly:
//   1. obtain a proxy credential            (security::CredentialAuthority)
//   2. GridClient::connect + create_session (Control web service)
//   3. session.activate()                   (engines start, signal ready)
//   4. browse()/search(), select_dataset()  (catalog + locator + splitter)
//   5. stage_script()/stage_plugin()        (code loader)
//   6. run()/pause()/stop()/rewind()        (interactive controls)
//   7. poll()                               (RMI-style merged-result polling)
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aida/tree.hpp"
#include "common/status.hpp"
#include "common/uri.hpp"
#include "rpc/rpc.hpp"
#include "security/credentials.hpp"
#include "services/protocol.hpp"
#include "soap/soap.hpp"

namespace ipa::client {

/// Catalog entry as seen by the client.
struct CatalogEntry {
  std::string id;
  std::string path;
  std::map<std::string, std::string> metadata;
};

struct CatalogListing {
  std::vector<std::string> folders;
  std::vector<CatalogEntry> datasets;
};

/// Result of staging a dataset.
struct StagedDataset {
  int parts = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
};

/// One poll() outcome.
struct PollUpdate {
  std::uint64_t version = 0;
  bool changed = false;
  aida::Tree merged;  // valid when changed
  std::vector<services::EngineReport> engines;

  /// True when `expected` engines have reported and all are finished,
  /// failed or lost. Engines only appear after their first snapshot push,
  /// so the expected count guards against declaring victory early.
  bool all_engines_done(std::size_t expected) const;
  /// A genuine analysis failure — lost engines do not count: losing an
  /// engine degrades the result, it does not fail the session.
  bool any_engine_failed() const;
  /// True when any engine was lost: the merged tree is a partial result.
  bool degraded() const;
  std::uint64_t total_processed() const;
  std::uint64_t total_records() const;
};

struct SessionInfo {
  std::string session_id;
  int granted_nodes = 0;
  std::string queue;
  Uri rmi_endpoint;
};

class GridSession;

class GridClient {
 public:
  /// Mutually authenticate with the manager's web services using the proxy
  /// token (the paper's "Grid proxy plug-in" step).
  static Result<GridClient> connect(const Uri& soap_endpoint, std::string proxy_token);

  GridClient(GridClient&&) = default;
  GridClient& operator=(GridClient&&) = default;

  /// Browse one catalog level ("" = root).
  Result<CatalogListing> browse(const std::string& path);
  /// Metadata query over the whole catalog.
  Result<std::vector<CatalogEntry>> search(const std::string& query);
  /// Resolve a dataset id (what the session service does internally; exposed
  /// for inspection).
  Result<std::pair<std::string, std::string>> locate(const std::string& dataset_id);

  /// Create an analysis session with up to `nodes` engines (site policy may
  /// grant fewer).
  Result<GridSession> create_session(int nodes);

  /// Rewrite the manager-announced RMI endpoint before the polling client
  /// dials it (chaos tests wrap the polling path in a fault scheme here).
  void set_rmi_decorator(std::function<Uri(const Uri&)> decorator) {
    rmi_decorator_ = std::move(decorator);
  }

  /// Retry policy for the session polling clients this GridClient creates.
  void set_rmi_retry_policy(rpc::RetryPolicy policy) { rmi_policy_ = policy; }

  const Uri& soap_endpoint() const { return endpoint_; }

 private:
  GridClient(Uri endpoint, soap::SoapClient soap, std::string token);

  Uri endpoint_;
  soap::SoapClient soap_;
  std::string token_;
  std::function<Uri(const Uri&)> rmi_decorator_;
  rpc::RetryPolicy rmi_policy_;
};

class GridSession {
 public:
  // Moves mark the source closed (a moved-from optional stays engaged, so
  // the defaulted move would let the source's destructor close the session).
  GridSession(GridSession&& other) noexcept;
  GridSession& operator=(GridSession&& other) noexcept;
  ~GridSession();

  const SessionInfo& info() const { return info_; }

  /// Start the analysis engines on the grid; returns when all are ready.
  Status activate();

  /// Locate + split + distribute a catalog dataset to the engines.
  Result<StagedDataset> select_dataset(const std::string& dataset_id);

  /// Ship PawScript analysis code to every engine (compile errors surface
  /// here).
  Status stage_script(const std::string& name, const std::string& source);
  /// Select a pre-installed native analyzer by name.
  Status stage_plugin(const std::string& plugin_name);

  // Interactive controls (paper §3.6).
  Status run();
  Status pause();
  Status stop();
  Status rewind();
  Status run_records(std::uint64_t n);

  /// Poll the AIDA manager for merged results newer than the last poll.
  Result<PollUpdate> poll();

  /// Convenience: run + poll until every engine finished, failed or was
  /// lost (or deadline). A degraded session still returns its merged tree —
  /// check degraded() to tell a partial result from a complete one. Calls
  /// `on_update` for each change when provided.
  Result<aida::Tree> run_to_completion(
      double timeout_s = 60.0,
      const std::function<void(const PollUpdate&)>& on_update = nullptr);

  /// "Partial, not just slow": true once any engine was reported lost.
  /// Reflects the most recent poll().
  bool degraded() const { return degraded_; }

  /// Retry/reconnect counters of the RMI polling client — how bumpy the
  /// data path has been.
  rpc::RetryStats rmi_stats() const { return rmi_ ? rmi_->stats() : rpc::RetryStats{}; }

  /// Chaos hook: sever the polling connection; the next poll re-dials.
  void drop_connections();

  /// Release the engines and the session resource.
  Status close();

 private:
  friend class GridClient;
  GridSession(SessionInfo info, soap::SoapClient soap, std::string token,
              rpc::RpcClient rmi);

  Result<xml::Node> call(const std::string& operation, xml::Node args);

  SessionInfo info_;
  std::optional<soap::SoapClient> soap_;
  std::string token_;
  std::optional<rpc::RpcClient> rmi_;
  std::uint64_t last_version_ = 0;
  bool closed_ = false;
  bool degraded_ = false;
};

/// Build the client-side proxy credential the paper's proxy plug-in makes:
/// a short-lived delegation of the user's base credential.
Result<std::string> make_proxy(const security::CredentialAuthority& authority,
                               const std::string& base_token, double lifetime_s = 3600);

}  // namespace ipa::client
