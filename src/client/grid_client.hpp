// Client-side facade: what the paper's JAS plug-ins do, as a C++ API.
//
// The flow mirrors Figure 2 exactly:
//   1. obtain a proxy credential            (security::CredentialAuthority)
//   2. GridClient::connect + create_session (Control web service)
//   3. session.activate()                   (engines start, signal ready)
//   4. browse()/search(), select_dataset()  (catalog + locator + splitter)
//   5. stage_script()/stage_plugin()        (code loader)
//   6. run()/pause()/stop()/rewind()        (interactive controls)
//   7. poll()                               (RMI-style merged-result polling)
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aida/tree.hpp"
#include "common/status.hpp"
#include "common/uri.hpp"
#include "rpc/rpc.hpp"
#include "security/credentials.hpp"
#include "services/protocol.hpp"
#include "soap/soap.hpp"

namespace ipa::client {

/// Catalog entry as seen by the client.
struct CatalogEntry {
  std::string id;
  std::string path;
  std::map<std::string, std::string> metadata;
};

struct CatalogListing {
  std::vector<std::string> folders;
  std::vector<CatalogEntry> datasets;
};

/// Result of staging a dataset.
struct StagedDataset {
  int parts = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
};

/// One poll() outcome.
struct PollUpdate {
  std::uint64_t version = 0;
  bool changed = false;
  aida::Tree merged;  // valid when changed
  std::vector<services::EngineReport> engines;

  /// True when `expected` engines have reported and all are finished or
  /// failed. Engines only appear after their first snapshot push, so the
  /// expected count guards against declaring victory early.
  bool all_engines_done(std::size_t expected) const;
  bool any_engine_failed() const;
  std::uint64_t total_processed() const;
  std::uint64_t total_records() const;
};

struct SessionInfo {
  std::string session_id;
  int granted_nodes = 0;
  std::string queue;
  Uri rmi_endpoint;
};

class GridSession;

class GridClient {
 public:
  /// Mutually authenticate with the manager's web services using the proxy
  /// token (the paper's "Grid proxy plug-in" step).
  static Result<GridClient> connect(const Uri& soap_endpoint, std::string proxy_token);

  GridClient(GridClient&&) = default;
  GridClient& operator=(GridClient&&) = default;

  /// Browse one catalog level ("" = root).
  Result<CatalogListing> browse(const std::string& path);
  /// Metadata query over the whole catalog.
  Result<std::vector<CatalogEntry>> search(const std::string& query);
  /// Resolve a dataset id (what the session service does internally; exposed
  /// for inspection).
  Result<std::pair<std::string, std::string>> locate(const std::string& dataset_id);

  /// Create an analysis session with up to `nodes` engines (site policy may
  /// grant fewer).
  Result<GridSession> create_session(int nodes);

  const Uri& soap_endpoint() const { return endpoint_; }

 private:
  GridClient(Uri endpoint, soap::SoapClient soap, std::string token)
      : endpoint_(std::move(endpoint)), soap_(std::move(soap)), token_(std::move(token)) {}

  Uri endpoint_;
  soap::SoapClient soap_;
  std::string token_;
};

class GridSession {
 public:
  // Moves mark the source closed (a moved-from optional stays engaged, so
  // the defaulted move would let the source's destructor close the session).
  GridSession(GridSession&& other) noexcept;
  GridSession& operator=(GridSession&& other) noexcept;
  ~GridSession();

  const SessionInfo& info() const { return info_; }

  /// Start the analysis engines on the grid; returns when all are ready.
  Status activate();

  /// Locate + split + distribute a catalog dataset to the engines.
  Result<StagedDataset> select_dataset(const std::string& dataset_id);

  /// Ship PawScript analysis code to every engine (compile errors surface
  /// here).
  Status stage_script(const std::string& name, const std::string& source);
  /// Select a pre-installed native analyzer by name.
  Status stage_plugin(const std::string& plugin_name);

  // Interactive controls (paper §3.6).
  Status run();
  Status pause();
  Status stop();
  Status rewind();
  Status run_records(std::uint64_t n);

  /// Poll the AIDA manager for merged results newer than the last poll.
  Result<PollUpdate> poll();

  /// Convenience: run + poll until every engine finished (or failed /
  /// deadline). Calls `on_update` for each change when provided.
  Result<aida::Tree> run_to_completion(
      double timeout_s = 60.0,
      const std::function<void(const PollUpdate&)>& on_update = nullptr);

  /// Release the engines and the session resource.
  Status close();

 private:
  friend class GridClient;
  GridSession(SessionInfo info, soap::SoapClient soap, std::string token,
              rpc::RpcClient rmi);

  Result<xml::Node> call(const std::string& operation, xml::Node args);

  SessionInfo info_;
  std::optional<soap::SoapClient> soap_;
  std::string token_;
  std::optional<rpc::RpcClient> rmi_;
  std::uint64_t last_version_ = 0;
  bool closed_ = false;
};

/// Build the client-side proxy credential the paper's proxy plug-in makes:
/// a short-lived delegation of the user's base credential.
Result<std::string> make_proxy(const security::CredentialAuthority& authority,
                               const std::string& base_token, double lifetime_s = 3600);

}  // namespace ipa::client
