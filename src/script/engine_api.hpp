// Host bindings: expose dataset records and the AIDA tree to PawScript.
//
// This is the contract analysis scripts are written against (mirrors the
// paper's Java AIDA API used from PNUTS):
//
//   func begin(tree)          - book objects, once per (re)start
//   func process(event, tree) - called for every record
//   func end(tree)            - optional final hook
//
//   event.get("field")  -> number | string | list   (kNotFound if absent)
//   event.num("field", fallback) / event.str("field", fallback)
//   event.has("field") -> bool
//   event.index() -> number (record index in the parent dataset)
//
//   tree.book_h1(path, bins, lo, hi [, title])
//   tree.book_h2(path, xbins, xlo, xhi, ybins, ylo, yhi [, title])
//   tree.book_prof(path, bins, lo, hi [, title])
//   tree.book_cloud(path [, title])
//   tree.book_tuple(path, [columns...])
//   tree.fill(path, x [, weight])       - Histogram1D or Cloud1D
//   tree.fill2(path, x, y [, weight])   - Histogram2D or Profile1D
//   tree.fill_row(path, [values...])    - Tuple
#pragma once

#include <memory>

#include "aida/tree.hpp"
#include "data/record.hpp"
#include "script/value.hpp"

namespace ipa::script {

/// Wrap a record for script access. The record must outlive the value
/// (engines hold the record for the duration of the process() call).
std::shared_ptr<NativeObject> make_event_object(const data::Record* record);

/// Wrap a tree for script access; same lifetime contract.
std::shared_ptr<NativeObject> make_tree_object(aida::Tree* tree);

}  // namespace ipa::script
