// Host bindings: expose dataset records and the AIDA tree to PawScript.
//
// This is the contract analysis scripts are written against (mirrors the
// paper's Java AIDA API used from PNUTS):
//
//   func begin(tree)          - book objects, once per (re)start
//   func process(event, tree) - called for every record
//   func end(tree)            - optional final hook
//
//   event.get("field")  -> number | string | list   (kNotFound if absent)
//   event.num("field", fallback) / event.str("field", fallback)
//   event.has("field") -> bool
//   event.index() -> number (record index in the parent dataset)
//
//   tree.book_h1(path, bins, lo, hi [, title])
//   tree.book_h2(path, xbins, xlo, xhi, ybins, ylo, yhi [, title])
//   tree.book_prof(path, bins, lo, hi [, title])
//   tree.book_cloud(path [, title])
//   tree.book_tuple(path, [columns...])
//   tree.fill(path, x [, weight])       - Histogram1D or Cloud1D
//   tree.fill2(path, x, y [, weight])   - Histogram2D or Profile1D
//   tree.fill_row(path, [values...])    - Tuple
#pragma once

#include <cstddef>
#include <memory>

#include "aida/tree.hpp"
#include "data/record.hpp"
#include "data/record_batch.hpp"
#include "script/value.hpp"

namespace ipa::script {

/// Wrap a record for script access. The record must outlive the value
/// (engines hold the record for the duration of the process() call).
std::shared_ptr<NativeObject> make_event_object(const data::Record* record);

/// Columnar twin of the event object: one cursor spans a whole RecordBatch,
/// resolving field names to schema slot ids once and reading columns by
/// index per row. Scripts see exactly the event API above; the engine moves
/// the cursor with set_row() between process() calls.
class BatchEventObject : public NativeObject {
 public:
  virtual void set_row(std::size_t row) = 0;
};

/// The batch must outlive the cursor; slot resolutions cached by the cursor
/// stay valid because schema slot ids are append-only.
std::shared_ptr<BatchEventObject> make_batch_event_object(const data::RecordBatch* batch);

/// Wrap a tree for script access; same lifetime contract.
std::shared_ptr<NativeObject> make_tree_object(aida::Tree* tree);

}  // namespace ipa::script
