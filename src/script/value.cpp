#include "script/value.hpp"

#include "common/strings.hpp"

namespace ipa::script {

bool Value::truthy() const {
  if (is_nil()) return false;
  if (is_bool()) return boolean();
  if (is_number()) return number() != 0.0;
  if (is_string()) return !string().empty();
  return true;
}

std::string_view Value::type_name() const {
  switch (rep.index()) {
    case 0: return "nil";
    case 1: return "number";
    case 2: return "bool";
    case 3: return "string";
    case 4: return "list";
    case 5: return "function";
    case 6: return "function";
    case 7: return std::get<std::shared_ptr<NativeObject>>(rep)->type_name();
  }
  return "?";
}

std::string Value::to_display() const {
  if (is_nil()) return "nil";
  if (is_bool()) return boolean() ? "true" : "false";
  if (is_number()) {
    const double v = number();
    if (v == static_cast<long long>(v) && std::abs(v) < 1e15) {
      return std::to_string(static_cast<long long>(v));
    }
    return strings::format("%g", v);
  }
  if (is_string()) return string();
  if (is_list()) {
    std::string out = "[";
    const List& items = *list_ptr();
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) out += ", ";
      if (items[i].is_string()) {
        out += "\"" + items[i].string() + "\"";
      } else {
        out += items[i].to_display();
      }
    }
    return out + "]";
  }
  return "<" + std::string(type_name()) + ">";
}

bool operator==(const Value& a, const Value& b) {
  if (a.rep.index() != b.rep.index()) return false;
  if (a.is_nil()) return true;
  if (a.is_number()) return a.number() == b.number();
  if (a.is_bool()) return a.boolean() == b.boolean();
  if (a.is_string()) return a.string() == b.string();
  if (a.is_list()) {
    const List& la = *a.list_ptr();
    const List& lb = *b.list_ptr();
    if (la.size() != lb.size()) return false;
    for (std::size_t i = 0; i < la.size(); ++i) {
      if (!(la[i] == lb[i])) return false;
    }
    return true;
  }
  // Functions / objects: identity.
  return a.rep == b.rep;
}

Status check_arity(const std::vector<Value>& args, std::size_t min_args, std::size_t max_args,
                   const char* what) {
  if (args.size() < min_args || args.size() > max_args) {
    if (min_args == max_args) {
      return invalid_argument(strings::format("%s: expected %zu argument(s), got %zu", what,
                                              min_args, args.size()));
    }
    return invalid_argument(strings::format("%s: expected %zu..%zu arguments, got %zu", what,
                                            min_args, max_args, args.size()));
  }
  return Status::ok();
}

Result<double> arg_number(const std::vector<Value>& args, std::size_t i, const char* what) {
  if (i >= args.size() || !args[i].is_number()) {
    return invalid_argument(strings::format("%s: argument %zu must be a number", what, i + 1));
  }
  return args[i].number();
}

Result<std::string> arg_string(const std::vector<Value>& args, std::size_t i, const char* what) {
  if (i >= args.size() || !args[i].is_string()) {
    return invalid_argument(strings::format("%s: argument %zu must be a string", what, i + 1));
  }
  return args[i].string();
}

Result<std::shared_ptr<List>> arg_list(const std::vector<Value>& args, std::size_t i,
                                       const char* what) {
  if (i >= args.size() || !args[i].is_list()) {
    return invalid_argument(strings::format("%s: argument %zu must be a list", what, i + 1));
  }
  return args[i].list_ptr();
}

}  // namespace ipa::script
