#include "script/parser.hpp"

#include "script/lexer.hpp"

namespace ipa::script {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> run() {
    Program program;
    while (peek().kind != Tok::kEnd) {
      if (peek().kind == Tok::kFunc) {
        auto fn = parse_function();
        IPA_RETURN_IF_ERROR(fn.status());
        program.functions.push_back(std::move(*fn));
      } else {
        auto stmt = parse_statement();
        IPA_RETURN_IF_ERROR(stmt.status());
        program.top_level.push_back(std::move(*stmt));
      }
    }
    return program;
  }

 private:
  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool check(Tok kind) const { return peek().kind == kind; }
  bool match(Tok kind) {
    if (!check(kind)) return false;
    take();
    return true;
  }

  Status error(const std::string& msg) const {
    return invalid_argument("script: " + msg + ", got " + std::string(token_name(peek().kind)) +
                            " (line " + std::to_string(peek().line) + ")");
  }

  Status expect(Tok kind, const char* context) {
    if (match(kind)) return Status::ok();
    return error("expected " + std::string(token_name(kind)) + " " + context);
  }

  Result<FunctionDecl> parse_function() {
    FunctionDecl fn;
    fn.line = peek().line;
    take();  // 'func'
    if (!check(Tok::kIdent)) return error("expected function name");
    fn.name = take().text;
    IPA_RETURN_IF_ERROR(expect(Tok::kLParen, "after function name"));
    if (!check(Tok::kRParen)) {
      while (true) {
        if (!check(Tok::kIdent)) return error("expected parameter name");
        fn.params.push_back(take().text);
        if (!match(Tok::kComma)) break;
      }
    }
    IPA_RETURN_IF_ERROR(expect(Tok::kRParen, "after parameters"));
    IPA_RETURN_IF_ERROR(expect(Tok::kLBrace, "to open function body"));
    while (!check(Tok::kRBrace) && !check(Tok::kEnd)) {
      auto stmt = parse_statement();
      IPA_RETURN_IF_ERROR(stmt.status());
      fn.body.push_back(std::move(*stmt));
    }
    IPA_RETURN_IF_ERROR(expect(Tok::kRBrace, "to close function body"));
    return fn;
  }

  Result<StmtPtr> parse_block_into(Stmt& stmt, std::vector<StmtPtr>& body) {
    (void)stmt;
    IPA_RETURN_IF_ERROR(expect(Tok::kLBrace, "to open block"));
    while (!check(Tok::kRBrace) && !check(Tok::kEnd)) {
      auto inner = parse_statement();
      IPA_RETURN_IF_ERROR(inner.status());
      body.push_back(std::move(*inner));
    }
    IPA_RETURN_IF_ERROR(expect(Tok::kRBrace, "to close block"));
    return StmtPtr{};
  }

  Result<StmtPtr> parse_statement() {
    const int line = peek().line;
    auto make = [line](Stmt::Kind kind) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = kind;
      stmt->line = line;
      return stmt;
    };

    if (match(Tok::kLet)) {
      auto stmt = make(Stmt::Kind::kLet);
      if (!check(Tok::kIdent)) return error("expected variable name after 'let'");
      stmt->name = take().text;
      IPA_RETURN_IF_ERROR(expect(Tok::kAssign, "in 'let' declaration"));
      IPA_ASSIGN_OR_RETURN(stmt->expr, parse_expr());
      IPA_RETURN_IF_ERROR(expect(Tok::kSemicolon, "after declaration"));
      return StmtPtr(std::move(stmt));
    }
    if (check(Tok::kIf)) return parse_if();
    if (match(Tok::kWhile)) {
      auto stmt = make(Stmt::Kind::kWhile);
      IPA_RETURN_IF_ERROR(expect(Tok::kLParen, "after 'while'"));
      IPA_ASSIGN_OR_RETURN(stmt->cond, parse_expr());
      IPA_RETURN_IF_ERROR(expect(Tok::kRParen, "after condition"));
      IPA_RETURN_IF_ERROR(parse_block_into(*stmt, stmt->body).status());
      return StmtPtr(std::move(stmt));
    }
    if (match(Tok::kFor)) {
      auto stmt = make(Stmt::Kind::kFor);
      IPA_RETURN_IF_ERROR(expect(Tok::kLParen, "after 'for'"));
      if (!check(Tok::kSemicolon)) {
        IPA_ASSIGN_OR_RETURN(stmt->init, parse_simple_statement());
      }
      IPA_RETURN_IF_ERROR(expect(Tok::kSemicolon, "after for-init"));
      if (!check(Tok::kSemicolon)) {
        IPA_ASSIGN_OR_RETURN(stmt->cond, parse_expr());
      }
      IPA_RETURN_IF_ERROR(expect(Tok::kSemicolon, "after for-condition"));
      if (!check(Tok::kRParen)) {
        IPA_ASSIGN_OR_RETURN(stmt->step, parse_simple_statement());
      }
      IPA_RETURN_IF_ERROR(expect(Tok::kRParen, "after for-step"));
      IPA_RETURN_IF_ERROR(parse_block_into(*stmt, stmt->body).status());
      return StmtPtr(std::move(stmt));
    }
    if (match(Tok::kReturn)) {
      auto stmt = make(Stmt::Kind::kReturn);
      if (!check(Tok::kSemicolon)) {
        IPA_ASSIGN_OR_RETURN(stmt->expr, parse_expr());
      }
      IPA_RETURN_IF_ERROR(expect(Tok::kSemicolon, "after 'return'"));
      return StmtPtr(std::move(stmt));
    }
    if (match(Tok::kBreak)) {
      auto stmt = make(Stmt::Kind::kBreak);
      IPA_RETURN_IF_ERROR(expect(Tok::kSemicolon, "after 'break'"));
      return StmtPtr(std::move(stmt));
    }
    if (match(Tok::kContinue)) {
      auto stmt = make(Stmt::Kind::kContinue);
      IPA_RETURN_IF_ERROR(expect(Tok::kSemicolon, "after 'continue'"));
      return StmtPtr(std::move(stmt));
    }
    if (check(Tok::kLBrace)) {
      auto stmt = make(Stmt::Kind::kBlock);
      IPA_RETURN_IF_ERROR(parse_block_into(*stmt, stmt->body).status());
      return StmtPtr(std::move(stmt));
    }

    IPA_ASSIGN_OR_RETURN(StmtPtr stmt, parse_simple_statement());
    IPA_RETURN_IF_ERROR(expect(Tok::kSemicolon, "after statement"));
    return stmt;
  }

  Result<StmtPtr> parse_if() {
    const int line = peek().line;
    take();  // 'if'
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    stmt->line = line;
    IPA_RETURN_IF_ERROR(expect(Tok::kLParen, "after 'if'"));
    IPA_ASSIGN_OR_RETURN(stmt->cond, parse_expr());
    IPA_RETURN_IF_ERROR(expect(Tok::kRParen, "after condition"));
    IPA_RETURN_IF_ERROR(parse_block_into(*stmt, stmt->body).status());
    if (match(Tok::kElse)) {
      if (check(Tok::kIf)) {
        IPA_ASSIGN_OR_RETURN(StmtPtr chained, parse_if());
        stmt->else_body.push_back(std::move(chained));
      } else {
        IPA_RETURN_IF_ERROR(parse_block_into(*stmt, stmt->else_body).status());
      }
    }
    return StmtPtr(std::move(stmt));
  }

  /// `let`-free statement usable in for-headers: assignment or expression.
  Result<StmtPtr> parse_simple_statement() {
    const int line = peek().line;
    if (match(Tok::kLet)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kLet;
      stmt->line = line;
      if (!check(Tok::kIdent)) return error("expected variable name after 'let'");
      stmt->name = take().text;
      IPA_RETURN_IF_ERROR(expect(Tok::kAssign, "in 'let' declaration"));
      IPA_ASSIGN_OR_RETURN(stmt->expr, parse_expr());
      return StmtPtr(std::move(stmt));
    }
    IPA_ASSIGN_OR_RETURN(ExprPtr expr, parse_expr());
    if (check(Tok::kAssign) || check(Tok::kPlusAssign) || check(Tok::kMinusAssign)) {
      if (expr->kind != Expr::Kind::kVar && expr->kind != Expr::Kind::kIndex) {
        return error("invalid assignment target");
      }
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kAssign;
      stmt->line = line;
      stmt->op = check(Tok::kAssign) ? "=" : (check(Tok::kPlusAssign) ? "+=" : "-=");
      take();
      stmt->target = std::move(expr);
      IPA_ASSIGN_OR_RETURN(stmt->expr, parse_expr());
      return StmtPtr(std::move(stmt));
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kExpr;
    stmt->line = line;
    stmt->expr = std::move(expr);
    return StmtPtr(std::move(stmt));
  }

  // --- expressions ----------------------------------------------------------

  ExprPtr make_expr(Expr::Kind kind, int line) {
    auto expr = std::make_unique<Expr>();
    expr->kind = kind;
    expr->line = line;
    return expr;
  }

  Result<ExprPtr> parse_expr() { return parse_or(); }

  Result<ExprPtr> parse_or() {
    IPA_ASSIGN_OR_RETURN(ExprPtr lhs, parse_and());
    while (check(Tok::kOr)) {
      const int line = take().line;
      IPA_ASSIGN_OR_RETURN(ExprPtr rhs, parse_and());
      auto node = make_expr(Expr::Kind::kLogical, line);
      node->op = "||";
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<ExprPtr> parse_and() {
    IPA_ASSIGN_OR_RETURN(ExprPtr lhs, parse_equality());
    while (check(Tok::kAnd)) {
      const int line = take().line;
      IPA_ASSIGN_OR_RETURN(ExprPtr rhs, parse_equality());
      auto node = make_expr(Expr::Kind::kLogical, line);
      node->op = "&&";
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<ExprPtr> parse_binary_level(
      Result<ExprPtr> (Parser::*next)(),
      std::initializer_list<std::pair<Tok, const char*>> ops) {
    IPA_ASSIGN_OR_RETURN(ExprPtr lhs, (this->*next)());
    while (true) {
      const char* matched = nullptr;
      for (const auto& [tok, name] : ops) {
        if (check(tok)) {
          matched = name;
          break;
        }
      }
      if (!matched) return lhs;
      const int line = take().line;
      IPA_ASSIGN_OR_RETURN(ExprPtr rhs, (this->*next)());
      auto node = make_expr(Expr::Kind::kBinary, line);
      node->op = matched;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
  }

  Result<ExprPtr> parse_equality() {
    return parse_binary_level(&Parser::parse_comparison,
                              {{Tok::kEq, "=="}, {Tok::kNe, "!="}});
  }
  Result<ExprPtr> parse_comparison() {
    return parse_binary_level(
        &Parser::parse_term,
        {{Tok::kLt, "<"}, {Tok::kLe, "<="}, {Tok::kGt, ">"}, {Tok::kGe, ">="}});
  }
  Result<ExprPtr> parse_term() {
    return parse_binary_level(&Parser::parse_factor, {{Tok::kPlus, "+"}, {Tok::kMinus, "-"}});
  }
  Result<ExprPtr> parse_factor() {
    return parse_binary_level(&Parser::parse_unary,
                              {{Tok::kStar, "*"}, {Tok::kSlash, "/"}, {Tok::kPercent, "%"}});
  }

  Result<ExprPtr> parse_unary() {
    if (check(Tok::kMinus) || check(Tok::kNot)) {
      const bool negate = check(Tok::kMinus);
      const int line = take().line;
      IPA_ASSIGN_OR_RETURN(ExprPtr operand, parse_unary());
      auto node = make_expr(Expr::Kind::kUnary, line);
      node->op = negate ? "-" : "!";
      node->lhs = std::move(operand);
      return node;
    }
    return parse_postfix();
  }

  Result<ExprPtr> parse_postfix() {
    IPA_ASSIGN_OR_RETURN(ExprPtr expr, parse_primary());
    while (true) {
      if (check(Tok::kLParen)) {
        const int line = take().line;
        auto call = make_expr(Expr::Kind::kCall, line);
        call->lhs = std::move(expr);
        IPA_RETURN_IF_ERROR(parse_args(call->args));
        expr = std::move(call);
      } else if (check(Tok::kDot)) {
        const int line = take().line;
        if (!check(Tok::kIdent)) return error("expected method name after '.'");
        const std::string name = take().text;
        IPA_RETURN_IF_ERROR(expect(Tok::kLParen, "after method name"));
        auto call = make_expr(Expr::Kind::kMethod, line);
        call->text = name;
        call->lhs = std::move(expr);
        IPA_RETURN_IF_ERROR(parse_args(call->args));
        expr = std::move(call);
      } else if (check(Tok::kLBracket)) {
        const int line = take().line;
        auto index = make_expr(Expr::Kind::kIndex, line);
        index->lhs = std::move(expr);
        IPA_ASSIGN_OR_RETURN(index->rhs, parse_expr());
        IPA_RETURN_IF_ERROR(expect(Tok::kRBracket, "after index"));
        expr = std::move(index);
      } else {
        return expr;
      }
    }
  }

  /// Arguments after an already-consumed '('.
  Status parse_args(std::vector<ExprPtr>& args) {
    if (!check(Tok::kRParen)) {
      while (true) {
        auto arg = parse_expr();
        IPA_RETURN_IF_ERROR(arg.status());
        args.push_back(std::move(*arg));
        if (!match(Tok::kComma)) break;
      }
    }
    return expect(Tok::kRParen, "after arguments");
  }

  Result<ExprPtr> parse_primary() {
    const int line = peek().line;
    if (check(Tok::kNumber)) {
      auto node = make_expr(Expr::Kind::kNumber, line);
      node->number = take().number;
      return node;
    }
    if (check(Tok::kString)) {
      auto node = make_expr(Expr::Kind::kString, line);
      node->text = take().text;
      return node;
    }
    if (check(Tok::kTrue) || check(Tok::kFalse)) {
      auto node = make_expr(Expr::Kind::kBool, line);
      node->flag = take().kind == Tok::kTrue;
      return node;
    }
    if (match(Tok::kNil)) return make_expr(Expr::Kind::kNil, line);
    if (check(Tok::kIdent)) {
      auto node = make_expr(Expr::Kind::kVar, line);
      node->text = take().text;
      return node;
    }
    if (match(Tok::kLParen)) {
      IPA_ASSIGN_OR_RETURN(ExprPtr inner, parse_expr());
      IPA_RETURN_IF_ERROR(expect(Tok::kRParen, "after expression"));
      return inner;
    }
    if (match(Tok::kLBracket)) {
      auto node = make_expr(Expr::Kind::kList, line);
      if (!check(Tok::kRBracket)) {
        while (true) {
          auto element = parse_expr();
          IPA_RETURN_IF_ERROR(element.status());
          node->args.push_back(std::move(*element));
          if (!match(Tok::kComma)) break;
        }
      }
      IPA_RETURN_IF_ERROR(expect(Tok::kRBracket, "after list elements"));
      return node;
    }
    return error("expected an expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Program> parse(std::string_view source) {
  IPA_ASSIGN_OR_RETURN(std::vector<Token> tokens, lex(source));
  return Parser(std::move(tokens)).run();
}

}  // namespace ipa::script
