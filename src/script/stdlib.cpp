// PawScript standard library: math, lists, strings, output.
#include <algorithm>
#include <cmath>

#include "common/strings.hpp"
#include "script/interp.hpp"

namespace ipa::script {
namespace {

NativeFn unary_math(const char* name, double (*fn)(double)) {
  return [name, fn](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 1, 1, name));
    IPA_ASSIGN_OR_RETURN(const double x, arg_number(args, 0, name));
    return Value(fn(x));
  };
}

NativeFn binary_math(const char* name, double (*fn)(double, double)) {
  return [name, fn](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 2, 2, name));
    IPA_ASSIGN_OR_RETURN(const double a, arg_number(args, 0, name));
    IPA_ASSIGN_OR_RETURN(const double b, arg_number(args, 1, name));
    return Value(fn(a, b));
  };
}

}  // namespace

void install_stdlib(Interp& interp) {
  // --- math -----------------------------------------------------------------
  interp.register_native("sqrt", unary_math("sqrt", std::sqrt));
  interp.register_native("abs", unary_math("abs", std::fabs));
  interp.register_native("floor", unary_math("floor", std::floor));
  interp.register_native("ceil", unary_math("ceil", std::ceil));
  interp.register_native("exp", unary_math("exp", std::exp));
  interp.register_native("log", unary_math("log", std::log));
  interp.register_native("sin", unary_math("sin", std::sin));
  interp.register_native("cos", unary_math("cos", std::cos));
  interp.register_native("tan", unary_math("tan", std::tan));
  interp.register_native("pow", binary_math("pow", std::pow));
  interp.register_native("atan2", binary_math("atan2", std::atan2));
  interp.register_native("min", binary_math("min", [](double a, double b) {
    return a < b ? a : b;
  }));
  interp.register_native("max", binary_math("max", [](double a, double b) {
    return a > b ? a : b;
  }));
  interp.set_global("PI", Value(3.14159265358979323846));

  // --- lists ------------------------------------------------------------------
  interp.register_native("len", [](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 1, 1, "len"));
    if (args[0].is_list()) return Value(static_cast<double>(args[0].list_ptr()->size()));
    if (args[0].is_string()) return Value(static_cast<double>(args[0].string().size()));
    return invalid_argument("len: argument must be a list or string");
  });
  interp.register_native("push", [](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 2, 2, "push"));
    IPA_ASSIGN_OR_RETURN(const auto list, arg_list(args, 0, "push"));
    list->push_back(args[1]);
    return args[0];
  });
  interp.register_native("pop", [](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 1, 1, "pop"));
    IPA_ASSIGN_OR_RETURN(const auto list, arg_list(args, 0, "pop"));
    if (list->empty()) return out_of_range("pop: empty list");
    Value back = std::move(list->back());
    list->pop_back();
    return back;
  });
  interp.register_native("range", [](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 1, 2, "range"));
    IPA_ASSIGN_OR_RETURN(const double first, arg_number(args, 0, "range"));
    double lo = 0, hi = first;
    if (args.size() == 2) {
      IPA_ASSIGN_OR_RETURN(hi, arg_number(args, 1, "range"));
      lo = first;
    }
    if (hi - lo > 10'000'000) return resource_exhausted("range: too large");
    List items;
    for (double v = lo; v < hi; v += 1.0) items.push_back(Value(v));
    return Value::list(std::move(items));
  });
  interp.register_native("sort", [](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 1, 1, "sort"));
    IPA_ASSIGN_OR_RETURN(const auto list, arg_list(args, 0, "sort"));
    for (const Value& v : *list) {
      if (!v.is_number()) return invalid_argument("sort: list must be all numbers");
    }
    std::sort(list->begin(), list->end(),
              [](const Value& a, const Value& b) { return a.number() < b.number(); });
    return args[0];
  });
  interp.register_native("sum", [](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 1, 1, "sum"));
    IPA_ASSIGN_OR_RETURN(const auto list, arg_list(args, 0, "sum"));
    double total = 0;
    for (const Value& v : *list) {
      if (!v.is_number()) return invalid_argument("sum: list must be all numbers");
      total += v.number();
    }
    return Value(total);
  });

  // --- strings ----------------------------------------------------------------
  interp.register_native("str", [](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 1, 1, "str"));
    return Value(args[0].to_display());
  });
  interp.register_native("num", [](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 1, 1, "num"));
    if (args[0].is_number()) return args[0];
    IPA_ASSIGN_OR_RETURN(const std::string text, arg_string(args, 0, "num"));
    double v = 0;
    if (!strings::parse_f64(text, v)) {
      return invalid_argument("num: cannot parse '" + text + "'");
    }
    return Value(v);
  });
  interp.register_native("substr", [](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 2, 3, "substr"));
    IPA_ASSIGN_OR_RETURN(const std::string text, arg_string(args, 0, "substr"));
    IPA_ASSIGN_OR_RETURN(const double start, arg_number(args, 1, "substr"));
    double count = static_cast<double>(text.size());
    if (args.size() == 3) {
      IPA_ASSIGN_OR_RETURN(count, arg_number(args, 2, "substr"));
    }
    if (start < 0 || start > static_cast<double>(text.size()) || count < 0) {
      return out_of_range("substr: bad range");
    }
    return Value(text.substr(static_cast<std::size_t>(start),
                             static_cast<std::size_t>(count)));
  });
  interp.register_native("contains", [](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 2, 2, "contains"));
    IPA_ASSIGN_OR_RETURN(const std::string text, arg_string(args, 0, "contains"));
    IPA_ASSIGN_OR_RETURN(const std::string needle, arg_string(args, 1, "contains"));
    return Value(text.find(needle) != std::string::npos);
  });
  interp.register_native("upper", [](std::vector<Value>& args) -> Result<Value> {
    IPA_RETURN_IF_ERROR(check_arity(args, 1, 1, "upper"));
    IPA_ASSIGN_OR_RETURN(const std::string text, arg_string(args, 0, "upper"));
    return Value(strings::to_upper(text));
  });

  // --- output -----------------------------------------------------------------
  auto* sink = &interp.output();
  interp.register_native("print", [sink](std::vector<Value>& args) -> Result<Value> {
    std::string line;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i) line += " ";
      line += args[i].to_display();
    }
    sink->push_back(std::move(line));
    return Value::nil();
  });
}

}  // namespace ipa::script
