#include "script/interp.hpp"

#include <cmath>

#include "common/strings.hpp"
#include "script/parser.hpp"

namespace ipa::script {
namespace {

/// Internal control-flow signals (never escape the module).
struct ReturnSignal {
  Value value;
};
struct BreakSignal {};
struct ContinueSignal {};
struct ScriptError {
  Status status;
};

[[noreturn]] void fail(StatusCode code, const std::string& msg, int line) {
  throw ScriptError{Status(code, msg + " (line " + std::to_string(line) + ")")};
}

/// Lexical scope: a chain of variable maps.
class Scope {
 public:
  explicit Scope(Scope* parent = nullptr) : parent_(parent) {}

  void declare(const std::string& name, Value value) { vars_[name] = std::move(value); }

  Value* find(const std::string& name) {
    for (Scope* scope = this; scope != nullptr; scope = scope->parent_) {
      const auto it = scope->vars_.find(name);
      if (it != scope->vars_.end()) return &it->second;
    }
    return nullptr;
  }

 private:
  Scope* parent_;
  std::map<std::string, Value> vars_;
};

}  // namespace

struct Interp::Impl {
  static constexpr int kMaxCallDepth = 256;

  InterpOptions options;
  int call_depth = 0;
  Program program;
  std::map<std::string, const FunctionDecl*, std::less<>> functions;
  Scope globals;  // outermost scope
  std::vector<std::string> print_output;
  std::uint64_t steps = 0;

  void tick(int line) {
    if (++steps > options.max_steps_per_call) {
      fail(StatusCode::kResourceExhausted, "script exceeded its step budget", line);
    }
  }

  // --- expression evaluation ------------------------------------------------

  Value eval(const Expr& expr, Scope& scope) {
    tick(expr.line);
    switch (expr.kind) {
      case Expr::Kind::kNumber: return Value(expr.number);
      case Expr::Kind::kString: return Value(expr.text);
      case Expr::Kind::kBool: return Value(expr.flag);
      case Expr::Kind::kNil: return Value::nil();
      case Expr::Kind::kVar: {
        if (Value* slot = scope.find(expr.text)) return *slot;
        const auto fn = functions.find(expr.text);
        if (fn != functions.end()) return Value(fn->second);
        fail(StatusCode::kNotFound, "undefined variable '" + expr.text + "'", expr.line);
      }
      case Expr::Kind::kList: {
        List items;
        items.reserve(expr.args.size());
        for (const ExprPtr& element : expr.args) items.push_back(eval(*element, scope));
        return Value::list(std::move(items));
      }
      case Expr::Kind::kUnary: {
        Value operand = eval(*expr.lhs, scope);
        if (expr.op == "-") {
          if (!operand.is_number()) {
            fail(StatusCode::kInvalidArgument,
                 "unary '-' needs a number, got " + std::string(operand.type_name()), expr.line);
          }
          return Value(-operand.number());
        }
        return Value(!operand.truthy());
      }
      case Expr::Kind::kLogical: {
        Value lhs = eval(*expr.lhs, scope);
        if (expr.op == "&&") {
          if (!lhs.truthy()) return Value(false);
          return Value(eval(*expr.rhs, scope).truthy());
        }
        if (lhs.truthy()) return Value(true);
        return Value(eval(*expr.rhs, scope).truthy());
      }
      case Expr::Kind::kBinary: return eval_binary(expr, scope);
      case Expr::Kind::kCall: {
        Value callee = eval(*expr.lhs, scope);
        std::vector<Value> args;
        args.reserve(expr.args.size());
        for (const ExprPtr& arg : expr.args) args.push_back(eval(*arg, scope));
        return invoke(callee, args, expr.line);
      }
      case Expr::Kind::kMethod: {
        Value receiver = eval(*expr.lhs, scope);
        if (!receiver.is_object()) {
          fail(StatusCode::kInvalidArgument,
               "cannot call method '" + expr.text + "' on " + std::string(receiver.type_name()),
               expr.line);
        }
        std::vector<Value> args;
        args.reserve(expr.args.size());
        for (const ExprPtr& arg : expr.args) args.push_back(eval(*arg, scope));
        auto result = receiver.object()->call_method(expr.text, args);
        if (!result.is_ok()) {
          fail(result.status().code(), result.status().message(), expr.line);
        }
        return std::move(*result);
      }
      case Expr::Kind::kIndex: {
        Value container = eval(*expr.lhs, scope);
        Value index = eval(*expr.rhs, scope);
        if (!index.is_number()) {
          fail(StatusCode::kInvalidArgument, "index must be a number", expr.line);
        }
        const auto i = static_cast<std::int64_t>(index.number());
        if (container.is_list()) {
          const List& items = *container.list_ptr();
          if (i < 0 || static_cast<std::size_t>(i) >= items.size()) {
            fail(StatusCode::kOutOfRange,
                 strings::format("list index %lld out of range (size %zu)",
                                 static_cast<long long>(i), items.size()),
                 expr.line);
          }
          return items[static_cast<std::size_t>(i)];
        }
        if (container.is_string()) {
          const std::string& s = container.string();
          if (i < 0 || static_cast<std::size_t>(i) >= s.size()) {
            fail(StatusCode::kOutOfRange, "string index out of range", expr.line);
          }
          return Value(std::string(1, s[static_cast<std::size_t>(i)]));
        }
        fail(StatusCode::kInvalidArgument,
             "cannot index " + std::string(container.type_name()), expr.line);
      }
    }
    fail(StatusCode::kInternal, "unhandled expression kind", expr.line);
  }

  Value eval_binary(const Expr& expr, Scope& scope) {
    Value lhs = eval(*expr.lhs, scope);
    Value rhs = eval(*expr.rhs, scope);
    const std::string& op = expr.op;

    if (op == "==") return Value(lhs == rhs);
    if (op == "!=") return Value(!(lhs == rhs));

    if (op == "+") {
      if (lhs.is_number() && rhs.is_number()) return Value(lhs.number() + rhs.number());
      if (lhs.is_string() || rhs.is_string()) {
        return Value(lhs.to_display() + rhs.to_display());
      }
      if (lhs.is_list() && rhs.is_list()) {
        List combined = *lhs.list_ptr();
        combined.insert(combined.end(), rhs.list_ptr()->begin(), rhs.list_ptr()->end());
        return Value::list(std::move(combined));
      }
      fail(StatusCode::kInvalidArgument,
           "cannot add " + std::string(lhs.type_name()) + " and " +
               std::string(rhs.type_name()),
           expr.line);
    }

    if (op == "<" || op == "<=" || op == ">" || op == ">=") {
      int cmp;
      if (lhs.is_number() && rhs.is_number()) {
        cmp = lhs.number() < rhs.number() ? -1 : (lhs.number() > rhs.number() ? 1 : 0);
      } else if (lhs.is_string() && rhs.is_string()) {
        const int c = lhs.string().compare(rhs.string());
        cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
      } else {
        fail(StatusCode::kInvalidArgument,
             "cannot compare " + std::string(lhs.type_name()) + " with " +
                 std::string(rhs.type_name()),
             expr.line);
      }
      if (op == "<") return Value(cmp < 0);
      if (op == "<=") return Value(cmp <= 0);
      if (op == ">") return Value(cmp > 0);
      return Value(cmp >= 0);
    }

    // Remaining operators are numeric-only.
    if (!lhs.is_number() || !rhs.is_number()) {
      fail(StatusCode::kInvalidArgument,
           "operator '" + op + "' needs numbers, got " + std::string(lhs.type_name()) + " and " +
               std::string(rhs.type_name()),
           expr.line);
    }
    const double a = lhs.number();
    const double b = rhs.number();
    if (op == "-") return Value(a - b);
    if (op == "*") return Value(a * b);
    if (op == "/") {
      if (b == 0.0) fail(StatusCode::kInvalidArgument, "division by zero", expr.line);
      return Value(a / b);
    }
    if (op == "%") {
      if (b == 0.0) fail(StatusCode::kInvalidArgument, "modulo by zero", expr.line);
      return Value(std::fmod(a, b));
    }
    fail(StatusCode::kInternal, "unknown operator '" + op + "'", expr.line);
  }

  Value invoke(const Value& callee, std::vector<Value>& args, int line) {
    if (std::holds_alternative<std::shared_ptr<NativeFn>>(callee.rep)) {
      auto result = (*std::get<std::shared_ptr<NativeFn>>(callee.rep))(args);
      if (!result.is_ok()) fail(result.status().code(), result.status().message(), line);
      return std::move(*result);
    }
    if (std::holds_alternative<const FunctionDecl*>(callee.rep)) {
      const FunctionDecl* fn = std::get<const FunctionDecl*>(callee.rep);
      if (call_depth >= kMaxCallDepth) {
        fail(StatusCode::kResourceExhausted,
             "recursion too deep (limit " + std::to_string(kMaxCallDepth) + ")", line);
      }
      if (args.size() != fn->params.size()) {
        fail(StatusCode::kInvalidArgument,
             strings::format("function '%s' expects %zu argument(s), got %zu", fn->name.c_str(),
                             fn->params.size(), args.size()),
             line);
      }
      Scope local(&globals);
      for (std::size_t i = 0; i < args.size(); ++i) {
        local.declare(fn->params[i], std::move(args[i]));
      }
      ++call_depth;
      // RAII depth guard: exec_block may throw Return/Break/ScriptError.
      struct DepthGuard {
        int& depth;
        ~DepthGuard() { --depth; }
      } guard{call_depth};
      try {
        exec_block(fn->body, local);
      } catch (ReturnSignal& signal) {
        return std::move(signal.value);
      }
      return Value::nil();
    }
    fail(StatusCode::kInvalidArgument,
         "value of type " + std::string(callee.type_name()) + " is not callable", line);
  }

  // --- statement execution ---------------------------------------------------

  void exec_block(const std::vector<StmtPtr>& body, Scope& scope) {
    for (const StmtPtr& stmt : body) exec(*stmt, scope);
  }

  void exec(const Stmt& stmt, Scope& scope) {
    tick(stmt.line);
    switch (stmt.kind) {
      case Stmt::Kind::kExpr:
        eval(*stmt.expr, scope);
        return;
      case Stmt::Kind::kLet:
        scope.declare(stmt.name, eval(*stmt.expr, scope));
        return;
      case Stmt::Kind::kAssign: {
        Value value = eval(*stmt.expr, scope);
        Value* slot = nullptr;
        if (stmt.target->kind == Expr::Kind::kVar) {
          slot = scope.find(stmt.target->text);
          if (slot == nullptr) {
            fail(StatusCode::kNotFound,
                 "assignment to undeclared variable '" + stmt.target->text + "' (use 'let')",
                 stmt.line);
          }
        } else {  // kIndex: lhs[idx] = value
          Value container = eval(*stmt.target->lhs, scope);
          Value index = eval(*stmt.target->rhs, scope);
          if (!container.is_list() || !index.is_number()) {
            fail(StatusCode::kInvalidArgument, "indexed assignment needs list[number]",
                 stmt.line);
          }
          List& items = *container.list_ptr();
          const auto i = static_cast<std::int64_t>(index.number());
          if (i < 0 || static_cast<std::size_t>(i) >= items.size()) {
            fail(StatusCode::kOutOfRange, "list index out of range in assignment", stmt.line);
          }
          slot = &items[static_cast<std::size_t>(i)];
        }
        if (stmt.op == "=") {
          *slot = std::move(value);
        } else {
          if (!slot->is_number() || !value.is_number()) {
            fail(StatusCode::kInvalidArgument, "'" + stmt.op + "' needs numbers", stmt.line);
          }
          *slot = Value(stmt.op == "+=" ? slot->number() + value.number()
                                        : slot->number() - value.number());
        }
        return;
      }
      case Stmt::Kind::kIf: {
        if (eval(*stmt.cond, scope).truthy()) {
          Scope inner(&scope);
          exec_block(stmt.body, inner);
        } else if (!stmt.else_body.empty()) {
          Scope inner(&scope);
          exec_block(stmt.else_body, inner);
        }
        return;
      }
      case Stmt::Kind::kWhile: {
        while (eval(*stmt.cond, scope).truthy()) {
          Scope inner(&scope);
          try {
            exec_block(stmt.body, inner);
          } catch (BreakSignal&) {
            break;
          } catch (ContinueSignal&) {
            continue;
          }
        }
        return;
      }
      case Stmt::Kind::kFor: {
        Scope header(&scope);
        if (stmt.init) exec(*stmt.init, header);
        while (stmt.cond == nullptr || eval(*stmt.cond, header).truthy()) {
          Scope inner(&header);
          try {
            exec_block(stmt.body, inner);
          } catch (BreakSignal&) {
            break;
          } catch (ContinueSignal&) {
            // fall through to the step
          }
          if (stmt.step) exec(*stmt.step, header);
        }
        return;
      }
      case Stmt::Kind::kReturn: {
        ReturnSignal signal;
        if (stmt.expr) signal.value = eval(*stmt.expr, scope);
        throw signal;
      }
      case Stmt::Kind::kBreak:
        throw BreakSignal{};
      case Stmt::Kind::kContinue:
        throw ContinueSignal{};
      case Stmt::Kind::kBlock: {
        Scope inner(&scope);
        exec_block(stmt.body, inner);
        return;
      }
    }
  }
};

Interp::Interp(InterpOptions options) : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
  install_stdlib(*this);
}

Interp::~Interp() = default;
Interp::Interp(Interp&&) noexcept = default;
Interp& Interp::operator=(Interp&&) noexcept = default;

Status Interp::load(std::string_view source) {
  auto program = parse(source);
  IPA_RETURN_IF_ERROR(program.status());

  // Replace the program; function table rebuilt from the new program.
  impl_->program = std::move(*program);
  impl_->functions.clear();
  for (const FunctionDecl& fn : impl_->program.functions) {
    impl_->functions[fn.name] = &fn;
  }

  impl_->steps = 0;
  try {
    impl_->exec_block(impl_->program.top_level, impl_->globals);
  } catch (ScriptError& error) {
    return error.status;
  } catch (ReturnSignal&) {
    return invalid_argument("script: 'return' outside a function");
  } catch (BreakSignal&) {
    return invalid_argument("script: 'break' outside a loop");
  } catch (ContinueSignal&) {
    return invalid_argument("script: 'continue' outside a loop");
  }
  return Status::ok();
}

bool Interp::has_function(std::string_view name) const {
  return impl_->functions.find(name) != impl_->functions.end();
}

std::vector<std::string> Interp::function_names() const {
  std::vector<std::string> names;
  names.reserve(impl_->functions.size());
  for (const auto& [name, _] : impl_->functions) names.push_back(name);
  return names;
}

Result<Value> Interp::call(std::string_view name, std::vector<Value> args) {
  const auto it = impl_->functions.find(name);
  if (it == impl_->functions.end()) {
    return not_found("script: no function '" + std::string(name) + "'");
  }
  impl_->steps = 0;
  try {
    return impl_->invoke(Value(it->second), args, it->second->line);
  } catch (ScriptError& error) {
    return error.status;
  } catch (ReturnSignal& signal) {
    return std::move(signal.value);
  } catch (BreakSignal&) {
    return invalid_argument("script: 'break' outside a loop");
  } catch (ContinueSignal&) {
    return invalid_argument("script: 'continue' outside a loop");
  }
}

void Interp::set_global(std::string name, Value value) {
  impl_->globals.declare(name, std::move(value));
}

Result<Value> Interp::global(std::string_view name) const {
  if (Value* slot = impl_->globals.find(std::string(name))) return *slot;
  return not_found("script: no global '" + std::string(name) + "'");
}

void Interp::register_native(std::string name, NativeFn fn) {
  impl_->globals.declare(name, Value(std::make_shared<NativeFn>(std::move(fn))));
}

std::vector<std::string>& Interp::output() { return impl_->print_output; }

}  // namespace ipa::script
