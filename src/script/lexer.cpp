#include "script/lexer.hpp"

#include <cctype>
#include <charconv>
#include <map>

namespace ipa::script {

std::string_view token_name(Tok kind) {
  switch (kind) {
    case Tok::kNumber: return "number";
    case Tok::kString: return "string";
    case Tok::kIdent: return "identifier";
    case Tok::kFunc: return "'func'";
    case Tok::kLet: return "'let'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kWhile: return "'while'";
    case Tok::kFor: return "'for'";
    case Tok::kReturn: return "'return'";
    case Tok::kBreak: return "'break'";
    case Tok::kContinue: return "'continue'";
    case Tok::kTrue: return "'true'";
    case Tok::kFalse: return "'false'";
    case Tok::kNil: return "'nil'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kComma: return "','";
    case Tok::kSemicolon: return "';'";
    case Tok::kDot: return "'.'";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAssign: return "'='";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kAnd: return "'&&'";
    case Tok::kOr: return "'||'";
    case Tok::kNot: return "'!'";
    case Tok::kEnd: return "end of script";
  }
  return "?";
}

namespace {

const std::map<std::string, Tok, std::less<>>& keywords() {
  static const std::map<std::string, Tok, std::less<>> kw = {
      {"func", Tok::kFunc},     {"let", Tok::kLet},           {"if", Tok::kIf},
      {"else", Tok::kElse},     {"while", Tok::kWhile},       {"for", Tok::kFor},
      {"return", Tok::kReturn}, {"break", Tok::kBreak},       {"continue", Tok::kContinue},
      {"true", Tok::kTrue},     {"false", Tok::kFalse},       {"nil", Tok::kNil},
  };
  return kw;
}

}  // namespace

Result<std::vector<Token>> lex(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t pos = 0;
  int line = 1;

  const auto error = [&](const std::string& msg) {
    return invalid_argument("script: " + msg + " (line " + std::to_string(line) + ")");
  };
  const auto push = [&](Tok kind, std::string text = "") {
    tokens.push_back({kind, std::move(text), 0, line});
  };
  const auto match = [&](char c) {
    if (pos < source.size() && source[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  };

  while (pos < source.size()) {
    const char c = source[pos];
    if (c == '\n') {
      ++line;
      ++pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '#' || (c == '/' && pos + 1 < source.size() && source[pos + 1] == '/')) {
      while (pos < source.size() && source[pos] != '\n') ++pos;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[pos + 1])))) {
      const std::size_t start = pos;
      while (pos < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[pos])) || source[pos] == '.' ||
              source[pos] == 'e' || source[pos] == 'E' ||
              ((source[pos] == '+' || source[pos] == '-') && pos > start &&
               (source[pos - 1] == 'e' || source[pos - 1] == 'E')))) {
        ++pos;
      }
      double value = 0;
      const auto text = source.substr(start, pos - start);
      const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return error("malformed number '" + std::string(text) + "'");
      }
      Token token{Tok::kNumber, std::string(text), value, line};
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos;
      while (pos < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[pos])) || source[pos] == '_')) {
        ++pos;
      }
      const std::string word(source.substr(start, pos - start));
      const auto it = keywords().find(word);
      if (it != keywords().end()) {
        push(it->second);
      } else {
        push(Tok::kIdent, word);
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++pos;
      std::string value;
      while (pos < source.size() && source[pos] != quote) {
        char ch = source[pos];
        if (ch == '\n') return error("unterminated string");
        if (ch == '\\' && pos + 1 < source.size()) {
          ++pos;
          switch (source[pos]) {
            case 'n': ch = '\n'; break;
            case 't': ch = '\t'; break;
            case '\\': ch = '\\'; break;
            case '"': ch = '"'; break;
            case '\'': ch = '\''; break;
            default: return error("unknown escape sequence");
          }
        }
        value.push_back(ch);
        ++pos;
      }
      if (pos >= source.size()) return error("unterminated string");
      ++pos;
      push(Tok::kString, std::move(value));
      continue;
    }

    ++pos;
    switch (c) {
      case '(': push(Tok::kLParen); break;
      case ')': push(Tok::kRParen); break;
      case '{': push(Tok::kLBrace); break;
      case '}': push(Tok::kRBrace); break;
      case '[': push(Tok::kLBracket); break;
      case ']': push(Tok::kRBracket); break;
      case ',': push(Tok::kComma); break;
      case ';': push(Tok::kSemicolon); break;
      case '.': push(Tok::kDot); break;
      case '+': push(match('=') ? Tok::kPlusAssign : Tok::kPlus); break;
      case '-': push(match('=') ? Tok::kMinusAssign : Tok::kMinus); break;
      case '*': push(Tok::kStar); break;
      case '/': push(Tok::kSlash); break;
      case '%': push(Tok::kPercent); break;
      case '=': push(match('=') ? Tok::kEq : Tok::kAssign); break;
      case '!': push(match('=') ? Tok::kNe : Tok::kNot); break;
      case '<': push(match('=') ? Tok::kLe : Tok::kLt); break;
      case '>': push(match('=') ? Tok::kGe : Tok::kGt); break;
      case '&':
        if (!match('&')) return error("expected '&&'");
        push(Tok::kAnd);
        break;
      case '|':
        if (!match('|')) return error("expected '||'");
        push(Tok::kOr);
        break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }
  push(Tok::kEnd);
  return tokens;
}

}  // namespace ipa::script
