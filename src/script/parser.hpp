// PawScript recursive-descent parser.
//
// Grammar (precedence low → high):
//   program    := (funcdecl | statement)*
//   funcdecl   := "func" IDENT "(" params? ")" block
//   statement  := let | ifstmt | while | for | return | break | continue
//               | block | exprstmt/assignment
//   expr       := or
//   or         := and ("||" and)*
//   and        := equality ("&&" equality)*
//   equality   := comparison (("=="|"!=") comparison)*
//   comparison := term (("<"|"<="|">"|">=") term)*
//   term       := factor (("+"|"-") factor)*
//   factor     := unary (("*"|"/"|"%") unary)*
//   unary      := ("-"|"!") unary | postfix
//   postfix    := primary ( "(" args ")" | "." IDENT "(" args ")"
//               | "[" expr "]" )*
//   primary    := NUMBER | STRING | IDENT | "true" | "false" | "nil"
//               | "(" expr ")" | "[" args "]"
#pragma once

#include "common/status.hpp"
#include "script/ast.hpp"

namespace ipa::script {

/// Parse a full script into a Program. Errors carry line numbers.
Result<Program> parse(std::string_view source);

}  // namespace ipa::script
