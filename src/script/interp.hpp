// PawScript tree-walking interpreter.
//
// Design notes:
//  - No exceptions escape: the public API returns Status/Result. Internally
//    control flow (return/break/continue) and errors use exceptions, caught
//    at the call boundary.
//  - A step budget bounds runaway scripts: the engine is interactive and a
//    user's accidental `while(true)` must not wedge a worker node.
//  - print() output is captured and retrievable, so engine logs can relay
//    script output back to the client.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "script/ast.hpp"
#include "script/value.hpp"

namespace ipa::script {

struct InterpOptions {
  /// Abort evaluation after this many statement/expression steps per call()
  /// (guards interactive engines against runaway user loops).
  std::uint64_t max_steps_per_call = 100'000'000;
};

class Interp {
 public:
  explicit Interp(InterpOptions options = {});
  ~Interp();
  Interp(Interp&&) noexcept;
  Interp& operator=(Interp&&) noexcept;

  /// Parse a script, register its functions and run its top-level
  /// statements. May be called again to replace the loaded program (the
  /// dynamic-reload path); globals persist across loads.
  Status load(std::string_view source);

  bool has_function(std::string_view name) const;
  std::vector<std::string> function_names() const;

  /// Invoke a script function by name.
  Result<Value> call(std::string_view name, std::vector<Value> args);

  /// Globals visible to scripts.
  void set_global(std::string name, Value value);
  Result<Value> global(std::string_view name) const;

  /// Host-provided functions callable from scripts.
  void register_native(std::string name, NativeFn fn);

  /// Captured print() lines (cleared by the caller as desired).
  std::vector<std::string>& output();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Install the standard library (math, lists, strings, print) on an
/// interpreter. Interp's constructor calls this; exposed for tests.
void install_stdlib(Interp& interp);

}  // namespace ipa::script
