#include "script/engine_api.hpp"

namespace ipa::script {
namespace {

Value value_from_field(const data::Value& field) {
  if (field.is_int()) return Value(static_cast<double>(field.as_int()));
  if (field.is_real()) return Value(field.as_real());
  if (field.is_str()) return Value(field.as_str());
  List items;
  items.reserve(field.as_vec().size());
  for (const double x : field.as_vec()) items.push_back(Value(x));
  return Value::list(std::move(items));
}

class EventObject final : public NativeObject {
 public:
  explicit EventObject(const data::Record* record) : record_(record) {}

  std::string_view type_name() const override { return "event"; }

  Result<Value> call_method(std::string_view method, std::vector<Value>& args) override {
    if (method == "get") {
      IPA_RETURN_IF_ERROR(check_arity(args, 1, 1, "event.get"));
      IPA_ASSIGN_OR_RETURN(const std::string name, arg_string(args, 0, "event.get"));
      const data::Value* field = record_->find(name);
      if (field == nullptr) return not_found("event.get: no field '" + name + "'");
      return value_from_field(*field);
    }
    if (method == "num") {
      IPA_RETURN_IF_ERROR(check_arity(args, 1, 2, "event.num"));
      IPA_ASSIGN_OR_RETURN(const std::string name, arg_string(args, 0, "event.num"));
      double fallback = 0;
      if (args.size() == 2) {
        IPA_ASSIGN_OR_RETURN(fallback, arg_number(args, 1, "event.num"));
      }
      return Value(record_->real_or(name, fallback));
    }
    if (method == "str") {
      IPA_RETURN_IF_ERROR(check_arity(args, 1, 2, "event.str"));
      IPA_ASSIGN_OR_RETURN(const std::string name, arg_string(args, 0, "event.str"));
      std::string fallback;
      if (args.size() == 2) {
        IPA_ASSIGN_OR_RETURN(fallback, arg_string(args, 1, "event.str"));
      }
      return Value(record_->str_or(name, fallback));
    }
    if (method == "has") {
      IPA_RETURN_IF_ERROR(check_arity(args, 1, 1, "event.has"));
      IPA_ASSIGN_OR_RETURN(const std::string name, arg_string(args, 0, "event.has"));
      return Value(record_->has(name));
    }
    if (method == "index") {
      IPA_RETURN_IF_ERROR(check_arity(args, 0, 0, "event.index"));
      return Value(static_cast<double>(record_->index()));
    }
    return unimplemented("event: no method '" + std::string(method) + "'");
  }

 private:
  const data::Record* record_;
};

class BatchEventObjectImpl final : public BatchEventObject {
 public:
  explicit BatchEventObjectImpl(const data::RecordBatch* batch) : batch_(batch) {}

  std::string_view type_name() const override { return "event"; }

  void set_row(std::size_t row) override { row_ = row; }

  Result<Value> call_method(std::string_view method, std::vector<Value>& args) override {
    if (method == "get") {
      IPA_RETURN_IF_ERROR(check_arity(args, 1, 1, "event.get"));
      IPA_ASSIGN_OR_RETURN(const std::string name, arg_string(args, 0, "event.get"));
      const int slot = slot_for(name);
      const auto kind = slot == data::Schema::kNoSlot
                            ? data::RecordBatch::CellKind::kNull
                            : batch_->cell_kind(slot, row_);
      switch (kind) {
        case data::RecordBatch::CellKind::kNull:
          return not_found("event.get: no field '" + name + "'");
        case data::RecordBatch::CellKind::kInt:
          return Value(static_cast<double>(batch_->cell_int(slot, row_)));
        case data::RecordBatch::CellKind::kReal:
          return Value(batch_->cell_real(slot, row_));
        case data::RecordBatch::CellKind::kStr:
          return Value(batch_->cell_str(slot, row_));
        case data::RecordBatch::CellKind::kVec: {
          const auto vec = batch_->cell_vec(slot, row_);
          List items;
          items.reserve(vec.size());
          for (const double x : vec) items.push_back(Value(x));
          return Value::list(std::move(items));
        }
      }
      return internal_error("event.get: unreachable cell kind");
    }
    if (method == "num") {
      IPA_RETURN_IF_ERROR(check_arity(args, 1, 2, "event.num"));
      IPA_ASSIGN_OR_RETURN(const std::string name, arg_string(args, 0, "event.num"));
      double fallback = 0;
      if (args.size() == 2) {
        IPA_ASSIGN_OR_RETURN(fallback, arg_number(args, 1, "event.num"));
      }
      const int slot = slot_for(name);
      double out = fallback;
      if (slot != data::Schema::kNoSlot && batch_->cell_number(slot, row_, &out)) {
        return Value(out);
      }
      return Value(fallback);
    }
    if (method == "str") {
      IPA_RETURN_IF_ERROR(check_arity(args, 1, 2, "event.str"));
      IPA_ASSIGN_OR_RETURN(const std::string name, arg_string(args, 0, "event.str"));
      std::string fallback;
      if (args.size() == 2) {
        IPA_ASSIGN_OR_RETURN(fallback, arg_string(args, 1, "event.str"));
      }
      const int slot = slot_for(name);
      if (slot != data::Schema::kNoSlot &&
          batch_->cell_kind(slot, row_) == data::RecordBatch::CellKind::kStr) {
        return Value(batch_->cell_str(slot, row_));
      }
      return Value(std::move(fallback));
    }
    if (method == "has") {
      IPA_RETURN_IF_ERROR(check_arity(args, 1, 1, "event.has"));
      IPA_ASSIGN_OR_RETURN(const std::string name, arg_string(args, 0, "event.has"));
      const int slot = slot_for(name);
      return Value(slot != data::Schema::kNoSlot &&
                   batch_->cell_kind(slot, row_) != data::RecordBatch::CellKind::kNull);
    }
    if (method == "index") {
      IPA_RETURN_IF_ERROR(check_arity(args, 0, 0, "event.index"));
      return Value(static_cast<double>(batch_->index(row_)));
    }
    return unimplemented("event: no method '" + std::string(method) + "'");
  }

 private:
  // Only hits are cached: a miss may become a hit later because the reader's
  // schema keeps interning fields as batches decode new records.
  int slot_for(const std::string& name) {
    const auto it = slots_.find(name);
    if (it != slots_.end()) return it->second;
    const int slot = batch_->schema().slot_of(name);
    if (slot != data::Schema::kNoSlot) slots_.emplace(name, slot);
    return slot;
  }

  const data::RecordBatch* batch_;
  std::size_t row_ = 0;
  std::map<std::string, int, std::less<>> slots_;
};

class TreeObject final : public NativeObject {
 public:
  explicit TreeObject(aida::Tree* tree) : tree_(tree) {}

  std::string_view type_name() const override { return "tree"; }

  Result<Value> call_method(std::string_view method, std::vector<Value>& args) override {
    if (method == "book_h1") return book_h1(args);
    if (method == "book_h2") return book_h2(args);
    if (method == "book_prof") return book_prof(args);
    if (method == "book_cloud") return book_cloud(args);
    if (method == "book_tuple") return book_tuple(args);
    if (method == "fill") return fill(args);
    if (method == "fill2") return fill2(args);
    if (method == "fill_row") return fill_row(args);
    return unimplemented("tree: no method '" + std::string(method) + "'");
  }

 private:
  Result<Value> book_h1(std::vector<Value>& args) {
    IPA_RETURN_IF_ERROR(check_arity(args, 4, 5, "tree.book_h1"));
    IPA_ASSIGN_OR_RETURN(const std::string path, arg_string(args, 0, "tree.book_h1"));
    IPA_ASSIGN_OR_RETURN(const double bins, arg_number(args, 1, "tree.book_h1"));
    IPA_ASSIGN_OR_RETURN(const double lo, arg_number(args, 2, "tree.book_h1"));
    IPA_ASSIGN_OR_RETURN(const double hi, arg_number(args, 3, "tree.book_h1"));
    std::string title = path;
    if (args.size() == 5) {
      IPA_ASSIGN_OR_RETURN(title, arg_string(args, 4, "tree.book_h1"));
    }
    auto hist = aida::Histogram1D::create(title, static_cast<int>(bins), lo, hi);
    IPA_RETURN_IF_ERROR(hist.status());
    tree_->put(path, std::move(*hist));
    return Value::nil();
  }

  Result<Value> book_h2(std::vector<Value>& args) {
    IPA_RETURN_IF_ERROR(check_arity(args, 7, 8, "tree.book_h2"));
    IPA_ASSIGN_OR_RETURN(const std::string path, arg_string(args, 0, "tree.book_h2"));
    double nums[6];
    for (int i = 0; i < 6; ++i) {
      IPA_ASSIGN_OR_RETURN(nums[i], arg_number(args, static_cast<std::size_t>(i + 1), "tree.book_h2"));
    }
    std::string title = path;
    if (args.size() == 8) {
      IPA_ASSIGN_OR_RETURN(title, arg_string(args, 7, "tree.book_h2"));
    }
    auto hist = aida::Histogram2D::create(title, static_cast<int>(nums[0]), nums[1], nums[2],
                                          static_cast<int>(nums[3]), nums[4], nums[5]);
    IPA_RETURN_IF_ERROR(hist.status());
    tree_->put(path, std::move(*hist));
    return Value::nil();
  }

  Result<Value> book_prof(std::vector<Value>& args) {
    IPA_RETURN_IF_ERROR(check_arity(args, 4, 5, "tree.book_prof"));
    IPA_ASSIGN_OR_RETURN(const std::string path, arg_string(args, 0, "tree.book_prof"));
    IPA_ASSIGN_OR_RETURN(const double bins, arg_number(args, 1, "tree.book_prof"));
    IPA_ASSIGN_OR_RETURN(const double lo, arg_number(args, 2, "tree.book_prof"));
    IPA_ASSIGN_OR_RETURN(const double hi, arg_number(args, 3, "tree.book_prof"));
    std::string title = path;
    if (args.size() == 5) {
      IPA_ASSIGN_OR_RETURN(title, arg_string(args, 4, "tree.book_prof"));
    }
    auto profile = aida::Profile1D::create(title, static_cast<int>(bins), lo, hi);
    IPA_RETURN_IF_ERROR(profile.status());
    tree_->put(path, std::move(*profile));
    return Value::nil();
  }

  Result<Value> book_cloud(std::vector<Value>& args) {
    IPA_RETURN_IF_ERROR(check_arity(args, 1, 2, "tree.book_cloud"));
    IPA_ASSIGN_OR_RETURN(const std::string path, arg_string(args, 0, "tree.book_cloud"));
    std::string title = path;
    if (args.size() == 2) {
      IPA_ASSIGN_OR_RETURN(title, arg_string(args, 1, "tree.book_cloud"));
    }
    tree_->put(path, aida::Cloud1D(title));
    return Value::nil();
  }

  Result<Value> book_tuple(std::vector<Value>& args) {
    IPA_RETURN_IF_ERROR(check_arity(args, 2, 2, "tree.book_tuple"));
    IPA_ASSIGN_OR_RETURN(const std::string path, arg_string(args, 0, "tree.book_tuple"));
    IPA_ASSIGN_OR_RETURN(const auto columns, arg_list(args, 1, "tree.book_tuple"));
    std::vector<std::string> names;
    names.reserve(columns->size());
    for (const Value& c : *columns) {
      if (!c.is_string()) return invalid_argument("tree.book_tuple: columns must be strings");
      names.push_back(c.string());
    }
    tree_->put(path, aida::Tuple(path, std::move(names)));
    return Value::nil();
  }

  Result<Value> fill(std::vector<Value>& args) {
    IPA_RETURN_IF_ERROR(check_arity(args, 2, 3, "tree.fill"));
    IPA_ASSIGN_OR_RETURN(const std::string path, arg_string(args, 0, "tree.fill"));
    IPA_ASSIGN_OR_RETURN(const double x, arg_number(args, 1, "tree.fill"));
    double weight = 1.0;
    if (args.size() == 3) {
      IPA_ASSIGN_OR_RETURN(weight, arg_number(args, 2, "tree.fill"));
    }
    auto object = tree_->find(path);
    IPA_RETURN_IF_ERROR(object.status());
    if (auto* hist = std::get_if<aida::Histogram1D>(*object)) {
      hist->fill(x, weight);
      return Value::nil();
    }
    if (auto* cloud = std::get_if<aida::Cloud1D>(*object)) {
      cloud->fill(x, weight);
      return Value::nil();
    }
    return failed_precondition("tree.fill: '" + path + "' is " +
                               std::string(aida::object_kind(**object)) +
                               ", need Histogram1D or Cloud1D");
  }

  Result<Value> fill2(std::vector<Value>& args) {
    IPA_RETURN_IF_ERROR(check_arity(args, 3, 4, "tree.fill2"));
    IPA_ASSIGN_OR_RETURN(const std::string path, arg_string(args, 0, "tree.fill2"));
    IPA_ASSIGN_OR_RETURN(const double x, arg_number(args, 1, "tree.fill2"));
    IPA_ASSIGN_OR_RETURN(const double y, arg_number(args, 2, "tree.fill2"));
    double weight = 1.0;
    if (args.size() == 4) {
      IPA_ASSIGN_OR_RETURN(weight, arg_number(args, 3, "tree.fill2"));
    }
    auto object = tree_->find(path);
    IPA_RETURN_IF_ERROR(object.status());
    if (auto* hist = std::get_if<aida::Histogram2D>(*object)) {
      hist->fill(x, y, weight);
      return Value::nil();
    }
    if (auto* profile = std::get_if<aida::Profile1D>(*object)) {
      profile->fill(x, y, weight);
      return Value::nil();
    }
    return failed_precondition("tree.fill2: '" + path + "' is " +
                               std::string(aida::object_kind(**object)) +
                               ", need Histogram2D or Profile1D");
  }

  Result<Value> fill_row(std::vector<Value>& args) {
    IPA_RETURN_IF_ERROR(check_arity(args, 2, 2, "tree.fill_row"));
    IPA_ASSIGN_OR_RETURN(const std::string path, arg_string(args, 0, "tree.fill_row"));
    IPA_ASSIGN_OR_RETURN(const auto values, arg_list(args, 1, "tree.fill_row"));
    auto tuple = tree_->tuple(path);
    IPA_RETURN_IF_ERROR(tuple.status());
    std::vector<double> row;
    row.reserve(values->size());
    for (const Value& v : *values) {
      if (!v.is_number()) return invalid_argument("tree.fill_row: values must be numbers");
      row.push_back(v.number());
    }
    IPA_RETURN_IF_ERROR((*tuple)->fill(std::move(row)));
    return Value::nil();
  }

  aida::Tree* tree_;
};

}  // namespace

std::shared_ptr<NativeObject> make_event_object(const data::Record* record) {
  return std::make_shared<EventObject>(record);
}

std::shared_ptr<BatchEventObject> make_batch_event_object(const data::RecordBatch* batch) {
  return std::make_shared<BatchEventObjectImpl>(batch);
}

std::shared_ptr<NativeObject> make_tree_object(aida::Tree* tree) {
  return std::make_shared<TreeObject>(tree);
}

}  // namespace ipa::script
