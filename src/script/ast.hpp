// PawScript abstract syntax tree.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace ipa::script {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

struct Expr {
  enum class Kind {
    kNumber,    // number
    kString,    // text
    kBool,      // flag
    kNil,
    kVar,       // name
    kList,      // args = elements
    kUnary,     // op ∈ {'-', '!'}; lhs
    kBinary,    // op; lhs, rhs
    kLogical,   // op ∈ {"&&","||"}; lhs, rhs (short-circuit)
    kCall,      // lhs = callee expression; args
    kMethod,    // lhs = receiver; name = method; args
    kIndex,     // lhs = container; rhs = index
  };

  Kind kind;
  int line = 1;

  double number = 0;
  bool flag = false;
  std::string text;   // string literal / variable / method name
  std::string op;
  ExprPtr lhs;
  ExprPtr rhs;
  std::vector<ExprPtr> args;
};

struct Stmt {
  enum class Kind {
    kExpr,      // expr
    kLet,       // name, expr
    kAssign,    // target (kVar or kIndex), op ∈ {"=","+=","-="}, expr
    kIf,        // cond, then_block, else_block
    kWhile,     // cond, body
    kFor,       // init, cond, step, body
    kReturn,    // expr (may be null)
    kBreak,
    kContinue,
    kBlock,     // body
  };

  Kind kind;
  int line = 1;

  std::string name;
  std::string op;
  ExprPtr expr;
  ExprPtr cond;
  ExprPtr target;
  StmtPtr init;
  StmtPtr step;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
};

/// A user-defined function.
struct FunctionDecl {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  int line = 1;
};

/// A parsed script: top-level functions plus top-level statements (run in
/// order when the script is loaded).
struct Program {
  std::vector<FunctionDecl> functions;
  std::vector<StmtPtr> top_level;
};

}  // namespace ipa::script
