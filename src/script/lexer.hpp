// PawScript lexer.
//
// PawScript is IPA's analysis-scripting language — the stand-in for the
// PNUTS scripts the paper ships to its Java analysis engines (§3.5). It is
// a small, dynamically-typed, C-syntax language:
//
//   func process(event, tree) {
//     let px = event.get("px");
//     if (len(px) >= 2) { tree.fill("/mass", inv_mass(event)); }
//   }
//
// Scripts travel as source text and are compiled on the engine at load
// time, which is what makes the paper's "change the analysis code on the
// fly and reprocess" loop cheap: only kilobytes of source move.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"

namespace ipa::script {

enum class Tok {
  // literals / names
  kNumber, kString, kIdent,
  // keywords
  kFunc, kLet, kIf, kElse, kWhile, kFor, kReturn, kBreak, kContinue,
  kTrue, kFalse, kNil,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon, kDot,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAssign, kPlusAssign, kMinusAssign,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kNot,
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;   // identifier name / string contents
  double number = 0;  // kNumber value
  int line = 1;
};

std::string_view token_name(Tok kind);

/// Tokenize a full script. '//' and '#' start line comments.
Result<std::vector<Token>> lex(std::string_view source);

}  // namespace ipa::script
