// PawScript runtime values.
//
// Dynamically typed: nil, number (double), bool, string, list (shared,
// reference semantics like Python), native function, user function, and
// native object (host-provided receiver with methods — how the engine
// exposes the current event and the AIDA tree to scripts).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "script/ast.hpp"

namespace ipa::script {

struct Value;
using List = std::vector<Value>;

/// Host object exposed to scripts (event, tree, ...). Methods are invoked
/// as `obj.method(args)`.
class NativeObject {
 public:
  virtual ~NativeObject() = default;
  virtual std::string_view type_name() const = 0;
  virtual Result<Value> call_method(std::string_view method, std::vector<Value>& args) = 0;
};

using NativeFn = std::function<Result<Value>(std::vector<Value>&)>;

struct Value {
  using Rep = std::variant<std::monostate,                  // nil
                           double,                          // number
                           bool,                            // bool
                           std::string,                     // string
                           std::shared_ptr<List>,           // list
                           std::shared_ptr<NativeFn>,       // native function
                           const FunctionDecl*,             // user function
                           std::shared_ptr<NativeObject>>;  // host object

  Rep rep;

  Value() = default;
  Value(double v) : rep(v) {}                     // NOLINT(google-explicit-constructor)
  Value(bool v) : rep(v) {}                       // NOLINT
  Value(std::string v) : rep(std::move(v)) {}     // NOLINT
  Value(const char* v) : rep(std::string(v)) {}   // NOLINT
  Value(std::shared_ptr<List> v) : rep(std::move(v)) {}          // NOLINT
  Value(std::shared_ptr<NativeFn> v) : rep(std::move(v)) {}      // NOLINT
  Value(const FunctionDecl* v) : rep(v) {}                       // NOLINT
  Value(std::shared_ptr<NativeObject> v) : rep(std::move(v)) {}  // NOLINT

  static Value nil() { return Value(); }
  static Value list(List items) { return Value(std::make_shared<List>(std::move(items))); }

  bool is_nil() const { return std::holds_alternative<std::monostate>(rep); }
  bool is_number() const { return std::holds_alternative<double>(rep); }
  bool is_bool() const { return std::holds_alternative<bool>(rep); }
  bool is_string() const { return std::holds_alternative<std::string>(rep); }
  bool is_list() const { return std::holds_alternative<std::shared_ptr<List>>(rep); }
  bool is_callable() const {
    return std::holds_alternative<std::shared_ptr<NativeFn>>(rep) ||
           std::holds_alternative<const FunctionDecl*>(rep);
  }
  bool is_object() const { return std::holds_alternative<std::shared_ptr<NativeObject>>(rep); }

  double number() const { return std::get<double>(rep); }
  bool boolean() const { return std::get<bool>(rep); }
  const std::string& string() const { return std::get<std::string>(rep); }
  const std::shared_ptr<List>& list_ptr() const { return std::get<std::shared_ptr<List>>(rep); }
  const std::shared_ptr<NativeObject>& object() const {
    return std::get<std::shared_ptr<NativeObject>>(rep);
  }

  /// nil/false → false; 0 and "" → false; everything else → true.
  bool truthy() const;

  /// "number", "string", "list", ...
  std::string_view type_name() const;

  /// Display form ("3.5", "\"x\"" inside lists, "[1, 2]", "<tree>").
  std::string to_display() const;

  /// Structural equality (lists compare element-wise; objects by identity).
  friend bool operator==(const Value& a, const Value& b);
};

/// Argument helpers for native functions and methods.
Result<double> arg_number(const std::vector<Value>& args, std::size_t i, const char* what);
Result<std::string> arg_string(const std::vector<Value>& args, std::size_t i, const char* what);
Result<std::shared_ptr<List>> arg_list(const std::vector<Value>& args, std::size_t i,
                                       const char* what);
Status check_arity(const std::vector<Value>& args, std::size_t min_args, std::size_t max_args,
                   const char* what);

}  // namespace ipa::script
