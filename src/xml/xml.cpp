#include "xml/xml.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace ipa::xml {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

bool name_matches(std::string_view element_name, std::string_view query) {
  if (element_name == query) return true;
  if (query.find(':') != std::string_view::npos) return false;
  const std::size_t colon = element_name.find(':');
  return colon != std::string_view::npos && element_name.substr(colon + 1) == query;
}

std::string Node::attribute(std::string_view key) const {
  const auto it = attrs_.find(std::string(key));
  return it == attrs_.end() ? std::string() : it->second;
}

bool Node::has_attribute(std::string_view key) const {
  return attrs_.find(std::string(key)) != attrs_.end();
}

Node& Node::add_child(std::string name) {
  children_.emplace_back(std::move(name));
  return children_.back();
}

Node& Node::add_child(Node node) {
  children_.push_back(std::move(node));
  return children_.back();
}

const Node* Node::find(std::string_view name) const {
  for (const Node& child : children_) {
    if (name_matches(child.name_, name)) return &child;
  }
  return nullptr;
}

const Node* Node::find_path(std::string_view path) const {
  const Node* node = this;
  for (const auto& step : strings::split(path, '/')) {
    if (step.empty()) continue;
    node = node->find(step);
    if (node == nullptr) return nullptr;
  }
  return node;
}

std::vector<const Node*> Node::find_all(std::string_view name) const {
  std::vector<const Node*> out;
  for (const Node& child : children_) {
    if (name_matches(child.name_, name)) out.push_back(&child);
  }
  return out;
}

std::string Node::child_text(std::string_view name, std::string fallback) const {
  const Node* child = find(name);
  return child ? child->text() : std::move(fallback);
}

void Node::write(std::string& out, int depth, bool pretty) const {
  const std::string indent = pretty ? std::string(2 * static_cast<std::size_t>(depth), ' ') : "";
  out += indent;
  out += '<';
  out += name_;
  for (const auto& [key, value] : attrs_) {
    out += ' ';
    out += key;
    out += "=\"";
    out += escape(value);
    out += '"';
  }
  if (text_.empty() && children_.empty()) {
    out += "/>";
    if (pretty) out += '\n';
    return;
  }
  out += '>';
  out += escape(text_);
  if (!children_.empty()) {
    if (pretty) out += '\n';
    for (const Node& child : children_) child.write(out, depth + 1, pretty);
    out += indent;
  }
  out += "</";
  out += name_;
  out += '>';
  if (pretty) out += '\n';
}

std::string Node::to_string(bool pretty) const {
  std::string out;
  write(out, 0, pretty);
  return out;
}

namespace {

/// Recursive-descent XML parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Node> parse_document() {
    skip_prolog();
    IPA_ASSIGN_OR_RETURN(Node root, parse_element());
    skip_misc();
    if (pos_ != text_.size()) return error("trailing content after root element");
    return root;
  }

 private:
  Status error(std::string msg) const {
    int line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return invalid_argument("xml: " + std::move(msg) + " (line " + std::to_string(line) + ")");
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (eof() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool consume(std::string_view s) {
    if (text_.substr(pos_, s.size()) != s) return false;
    pos_ += s.size();
    return true;
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  Status skip_comment() {
    // pos_ is just past "<!--".
    const std::size_t end = text_.find("-->", pos_);
    if (end == std::string_view::npos) return error("unterminated comment");
    pos_ = end + 3;
    return Status::ok();
  }

  void skip_prolog() {
    skip_ws();
    if (consume("<?xml")) {
      const std::size_t end = text_.find("?>", pos_);
      pos_ = (end == std::string_view::npos) ? text_.size() : end + 2;
    }
    skip_misc();
  }

  void skip_misc() {
    while (true) {
      skip_ws();
      if (consume("<!--")) {
        if (!skip_comment().is_ok()) return;
        continue;
      }
      return;
    }
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == ':' || c == '_' || c == '-' ||
           c == '.';
  }

  Result<std::string> parse_name() {
    const std::size_t start = pos_;
    while (!eof() && is_name_char(peek())) ++pos_;
    if (pos_ == start) return error("expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    std::size_t i = 0;
    while (i < raw.size()) {
      if (raw[i] != '&') {
        out.push_back(raw[i++]);
        continue;
      }
      const std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) return error("unterminated entity");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") out.push_back('<');
      else if (entity == "gt") out.push_back('>');
      else if (entity == "amp") out.push_back('&');
      else if (entity == "quot") out.push_back('"');
      else if (entity == "apos") out.push_back('\'');
      else if (!entity.empty() && entity[0] == '#') {
        std::uint64_t code = 0;
        const std::string_view digits = entity.substr(entity.size() > 1 && entity[1] == 'x' ? 2 : 1);
        const int base = (entity.size() > 1 && entity[1] == 'x') ? 16 : 10;
        for (const char d : digits) {
          int v;
          if (d >= '0' && d <= '9') v = d - '0';
          else if (base == 16 && d >= 'a' && d <= 'f') v = d - 'a' + 10;
          else if (base == 16 && d >= 'A' && d <= 'F') v = d - 'A' + 10;
          else return error("bad character reference");
          code = code * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(v);
        }
        if (code > 0x10ffff) return error("character reference out of range");
        // UTF-8 encode.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xc0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else if (code < 0x10000) {
          out.push_back(static_cast<char>(0xe0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
          out.push_back(static_cast<char>(0xf0 | (code >> 18)));
          out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
      } else {
        return error("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi + 1;
    }
    return out;
  }

  Result<Node> parse_element() {
    if (!consume('<')) return error("expected '<'");
    IPA_ASSIGN_OR_RETURN(std::string name, parse_name());
    Node node(std::move(name));

    // Attributes.
    while (true) {
      skip_ws();
      if (eof()) return error("unterminated start tag");
      if (consume("/>")) return node;
      if (consume('>')) break;
      IPA_ASSIGN_OR_RETURN(std::string attr, parse_name());
      skip_ws();
      if (!consume('=')) return error("expected '=' after attribute name");
      skip_ws();
      const char quote = eof() ? '\0' : peek();
      if (quote != '"' && quote != '\'') return error("expected quoted attribute value");
      ++pos_;
      const std::size_t start = pos_;
      while (!eof() && peek() != quote) ++pos_;
      if (eof()) return error("unterminated attribute value");
      IPA_ASSIGN_OR_RETURN(std::string value, decode_entities(text_.substr(start, pos_ - start)));
      ++pos_;  // closing quote
      node.set_attribute(std::move(attr), std::move(value));
    }

    // Content: text, children, comments, CDATA until matching end tag.
    while (true) {
      if (eof()) return error("unterminated element <" + node.name() + ">");
      if (consume("<!--")) {
        IPA_RETURN_IF_ERROR(skip_comment());
        continue;
      }
      if (consume("<![CDATA[")) {
        const std::size_t end = text_.find("]]>", pos_);
        if (end == std::string_view::npos) return error("unterminated CDATA");
        node.append_text(text_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (consume("</")) {
        IPA_ASSIGN_OR_RETURN(const std::string closing, parse_name());
        if (closing != node.name()) {
          return error("mismatched end tag </" + closing + "> for <" + node.name() + ">");
        }
        skip_ws();
        if (!consume('>')) return error("malformed end tag");
        // Trim pure-whitespace text that only separated child elements.
        if (!node.children().empty() &&
            strings::trim(node.text()).empty()) {
          node.set_text("");
        }
        return node;
      }
      if (peek() == '<') {
        IPA_ASSIGN_OR_RETURN(Node child, parse_element());
        node.add_child(std::move(child));
        continue;
      }
      // Character data up to the next markup.
      const std::size_t start = pos_;
      while (!eof() && peek() != '<') ++pos_;
      IPA_ASSIGN_OR_RETURN(std::string decoded, decode_entities(text_.substr(start, pos_ - start)));
      node.append_text(decoded);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Node> parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace ipa::xml
