// Minimal XML document model, writer and parser.
//
// This is the substrate for the SOAP envelope layer (the paper's services
// are Globus WSRF web services speaking SOAP/XML) and for catalog
// import/export. Supported subset: elements, attributes, character data,
// comments, XML declarations, CDATA sections and the five predefined
// entities. Namespaces are kept as literal prefixes ("soap:Envelope").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace ipa::xml {

/// Escape `&<>"'` for use in text/attribute content.
std::string escape(std::string_view text);

/// An element tree. Mixed content is simplified: an element owns one text
/// blob (concatenated character data) plus any number of child elements —
/// sufficient for SOAP and metadata documents.
class Node {
 public:
  Node() = default;
  explicit Node(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view more) { text_.append(more); }

  const std::map<std::string, std::string>& attributes() const { return attrs_; }
  void set_attribute(std::string key, std::string value) { attrs_[std::move(key)] = std::move(value); }
  /// Attribute value or empty string.
  std::string attribute(std::string_view key) const;
  bool has_attribute(std::string_view key) const;

  const std::vector<Node>& children() const { return children_; }
  std::vector<Node>& children() { return children_; }

  /// Append a child and return a reference to it (builder style).
  Node& add_child(std::string name);
  Node& add_child(Node node);

  /// First child with the given name (namespace prefix ignored when the
  /// query has none: "Body" matches "soap:Body"), or nullptr.
  const Node* find(std::string_view name) const;
  /// Descend through a '/'-separated path ("Envelope/Body/response").
  const Node* find_path(std::string_view path) const;
  /// All children with the given name.
  std::vector<const Node*> find_all(std::string_view name) const;

  /// Text of the named child, or fallback.
  std::string child_text(std::string_view name, std::string fallback = "") const;

  /// Serialize. `pretty` adds two-space indentation.
  std::string to_string(bool pretty = false) const;

 private:
  void write(std::string& out, int depth, bool pretty) const;

  std::string name_;
  std::string text_;
  std::map<std::string, std::string> attrs_;
  std::vector<Node> children_;
};

/// Parse a document; returns the root element. Leading XML declaration,
/// comments and whitespace are skipped. Errors carry line information.
Result<Node> parse(std::string_view text);

/// True when local names match, comparing only the part after ':' when the
/// pattern itself is unqualified.
bool name_matches(std::string_view element_name, std::string_view query);

}  // namespace ipa::xml
