// Metadata query language for the Dataset Catalog Service.
//
// The paper (§2.1, §3.3) requires that datasets be searchable "based on a
// query pattern ... using a query language that operates on the metadata".
// Grammar (precedence low→high):
//
//   expr  := or
//   or    := and ( "||" and )*
//   and   := not ( "&&" not )*
//   not   := "!" not | "(" expr ")" | cmp
//   cmp   := key ( "==" | "!=" | "<" | "<=" | ">" | ">=" | "like" ) value
//          | key                      (bare key: "field exists")
//   key   := ident ( "." ident )*
//   value := number | 'single' | "double" quoted string | bareword
//
// Comparisons are numeric when both sides parse as numbers, otherwise
// lexicographic; `like` is a glob match ('*', '?').
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/status.hpp"

namespace ipa::catalog {

class Query {
 public:
  /// Compile a query expression; errors carry the offending position.
  static Result<Query> parse(std::string_view text);

  Query(Query&&) noexcept;
  Query& operator=(Query&&) noexcept;
  ~Query();

  /// Evaluate against a metadata map.
  bool matches(const std::map<std::string, std::string>& metadata) const;

  /// Original query text.
  const std::string& text() const { return text_; }

 public:
  // Implementation detail, public only so the parser (an internal free
  // function) can build the tree.
  struct Node;

 private:
  Query(std::string text, std::unique_ptr<Node> root);

  std::string text_;
  std::unique_ptr<Node> root_;
};

}  // namespace ipa::catalog
