// The Dataset Catalog: a hierarchical tree of key-value metadata with
// browse and query access (paper §2.1/§3.3).
//
// "The Catalog makes no assumptions about the type of metadata stored in
// the catalog except that the metadata consists of key-value pairs stored
// in a hierarchical tree." Leaves are dataset entries; inner nodes are
// folders the user browses.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/query.hpp"
#include "common/status.hpp"
#include "xml/xml.hpp"

namespace ipa::catalog {

/// A dataset as seen by the catalog: an opaque identifier (resolved to a
/// physical location by the Locator service, never by the catalog) plus
/// metadata.
struct DatasetEntry {
  std::string id;     // catalog-unique dataset identifier
  std::string path;   // tree path, e.g. "lc/2006/higgs/run7"
  std::map<std::string, std::string> metadata;
};

/// Listing of one tree level.
struct Listing {
  std::vector<std::string> folders;   // child folder names
  std::vector<DatasetEntry> datasets; // datasets at this level
};

namespace detail {
struct Folder;
}  // namespace detail

class Catalog {
 public:
  Catalog();
  ~Catalog();
  Catalog(Catalog&&) noexcept;
  Catalog& operator=(Catalog&&) noexcept;

  /// Register a dataset at `path` (slash-separated folders + dataset name).
  /// The entry's `name` metadata key is set to the leaf name automatically.
  /// Fails with kAlreadyExists for duplicate paths or ids.
  Status add(const std::string& path, std::string id,
             std::map<std::string, std::string> metadata);

  Status remove(const std::string& path);

  /// Browse one level ("" = root).
  Result<Listing> browse(const std::string& path) const;

  /// Dataset by exact tree path.
  Result<DatasetEntry> find_by_path(const std::string& path) const;
  /// Dataset by identifier.
  Result<DatasetEntry> find_by_id(const std::string& id) const;

  /// All datasets whose metadata satisfies the query. The implicit keys
  /// `name` and `path` participate.
  Result<std::vector<DatasetEntry>> search(const std::string& query_text) const;

  std::size_t dataset_count() const;

  /// XML persistence (round-trips the full tree).
  xml::Node to_xml() const;
  static Result<Catalog> from_xml(const xml::Node& root);

 private:
  std::unique_ptr<detail::Folder> root_;
  std::map<std::string, std::string> id_to_path_;
};

}  // namespace ipa::catalog
