#include "catalog/query.hpp"

#include <cctype>
#include <vector>

#include "common/strings.hpp"

namespace ipa::catalog {
namespace {

enum class TokKind { kKey, kValue, kOp, kAnd, kOr, kNot, kLParen, kRParen, kEnd };

struct Token {
  TokKind kind;
  std::string text;
  std::size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_ws();
      const std::size_t start = pos_;
      if (pos_ >= text_.size()) {
        tokens.push_back({TokKind::kEnd, "", start});
        return tokens;
      }
      const char c = text_[pos_];
      if (c == '(') {
        ++pos_;
        tokens.push_back({TokKind::kLParen, "(", start});
      } else if (c == ')') {
        ++pos_;
        tokens.push_back({TokKind::kRParen, ")", start});
      } else if (c == '&') {
        if (!consume("&&")) return error(start, "expected '&&'");
        tokens.push_back({TokKind::kAnd, "&&", start});
      } else if (c == '|') {
        if (!consume("||")) return error(start, "expected '||'");
        tokens.push_back({TokKind::kOr, "||", start});
      } else if (c == '!') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          ++pos_;
          tokens.push_back({TokKind::kOp, "!=", start});
        } else {
          tokens.push_back({TokKind::kNot, "!", start});
        }
      } else if (c == '=') {
        if (!consume("==")) return error(start, "expected '=='");
        tokens.push_back({TokKind::kOp, "==", start});
      } else if (c == '<' || c == '>') {
        ++pos_;
        std::string op(1, c);
        if (pos_ < text_.size() && text_[pos_] == '=') {
          ++pos_;
          op += '=';
        }
        tokens.push_back({TokKind::kOp, op, start});
      } else if (c == '"' || c == '\'') {
        ++pos_;
        std::string value;
        while (pos_ < text_.size() && text_[pos_] != c) value.push_back(text_[pos_++]);
        if (pos_ >= text_.size()) return error(start, "unterminated string");
        ++pos_;
        tokens.push_back({TokKind::kValue, std::move(value), start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
        std::string value;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
          value.push_back(text_[pos_++]);
        }
        tokens.push_back({TokKind::kValue, std::move(value), start});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string word;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_' ||
                text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '*' ||
                text_[pos_] == '?' || text_[pos_] == '/')) {
          word.push_back(text_[pos_++]);
        }
        if (word == "like") {
          tokens.push_back({TokKind::kOp, "like", start});
        } else if (word == "and") {
          tokens.push_back({TokKind::kAnd, "&&", start});
        } else if (word == "or") {
          tokens.push_back({TokKind::kOr, "||", start});
        } else if (word == "not") {
          tokens.push_back({TokKind::kNot, "!", start});
        } else {
          tokens.push_back({TokKind::kKey, std::move(word), start});
        }
      } else {
        return error(start, std::string("unexpected character '") + c + "'");
      }
    }
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  bool consume(std::string_view s) {
    if (text_.substr(pos_, s.size()) != s) return false;
    pos_ += s.size();
    return true;
  }
  Status error(std::size_t pos, std::string msg) const {
    return invalid_argument("query: " + std::move(msg) + " at position " + std::to_string(pos));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

struct Query::Node {
  enum class Kind { kAnd, kOr, kNot, kCmp, kExists } kind;
  // kCmp / kExists:
  std::string key;
  std::string op;
  std::string value;
  // kAnd/kOr/kNot:
  std::unique_ptr<Node> lhs;
  std::unique_ptr<Node> rhs;

  bool eval(const std::map<std::string, std::string>& metadata) const {
    switch (kind) {
      case Kind::kAnd: return lhs->eval(metadata) && rhs->eval(metadata);
      case Kind::kOr: return lhs->eval(metadata) || rhs->eval(metadata);
      case Kind::kNot: return !lhs->eval(metadata);
      case Kind::kExists: return metadata.count(key) > 0;
      case Kind::kCmp: {
        const auto it = metadata.find(key);
        if (it == metadata.end()) return false;
        return compare(it->second);
      }
    }
    return false;
  }

  bool compare(const std::string& field) const {
    if (op == "like") return strings::glob_match(value, field);
    double lhs_num = 0, rhs_num = 0;
    const bool numeric =
        strings::parse_f64(field, lhs_num) && strings::parse_f64(value, rhs_num);
    int cmp;
    if (numeric) {
      cmp = lhs_num < rhs_num ? -1 : (lhs_num > rhs_num ? 1 : 0);
    } else {
      cmp = field.compare(value);
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    if (op == "==") return cmp == 0;
    if (op == "!=") return cmp != 0;
    if (op == "<") return cmp < 0;
    if (op == "<=") return cmp <= 0;
    if (op == ">") return cmp > 0;
    if (op == ">=") return cmp >= 0;
    return false;
  }
};

namespace {

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  using NodePtr = std::unique_ptr<Query::Node>;

  Result<NodePtr> parse() {
    IPA_ASSIGN_OR_RETURN(NodePtr root, parse_or());
    if (peek().kind != TokKind::kEnd) {
      return error("trailing tokens");
    }
    return root;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  Token take() { return tokens_[pos_++]; }
  Status error(std::string msg) const {
    return invalid_argument("query: " + std::move(msg) + " at position " +
                            std::to_string(peek().pos));
  }

  Result<NodePtr> parse_or() {
    IPA_ASSIGN_OR_RETURN(NodePtr lhs, parse_and());
    while (peek().kind == TokKind::kOr) {
      take();
      IPA_ASSIGN_OR_RETURN(NodePtr rhs, parse_and());
      auto node = std::make_unique<Query::Node>();
      node->kind = Query::Node::Kind::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<NodePtr> parse_and() {
    IPA_ASSIGN_OR_RETURN(NodePtr lhs, parse_not());
    while (peek().kind == TokKind::kAnd) {
      take();
      IPA_ASSIGN_OR_RETURN(NodePtr rhs, parse_not());
      auto node = std::make_unique<Query::Node>();
      node->kind = Query::Node::Kind::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<NodePtr> parse_not() {
    if (peek().kind == TokKind::kNot) {
      take();
      IPA_ASSIGN_OR_RETURN(NodePtr operand, parse_not());
      auto node = std::make_unique<Query::Node>();
      node->kind = Query::Node::Kind::kNot;
      node->lhs = std::move(operand);
      return node;
    }
    if (peek().kind == TokKind::kLParen) {
      take();
      IPA_ASSIGN_OR_RETURN(NodePtr inner, parse_or());
      if (peek().kind != TokKind::kRParen) return error("expected ')'");
      take();
      return inner;
    }
    return parse_cmp();
  }

  Result<NodePtr> parse_cmp() {
    if (peek().kind != TokKind::kKey) return error("expected a metadata key");
    auto node = std::make_unique<Query::Node>();
    node->key = take().text;
    if (peek().kind == TokKind::kOp) {
      node->kind = Query::Node::Kind::kCmp;
      node->op = take().text;
      if (peek().kind != TokKind::kValue && peek().kind != TokKind::kKey) {
        return error("expected a comparison value");
      }
      node->value = take().text;
    } else {
      node->kind = Query::Node::Kind::kExists;
    }
    return node;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Query::Query(std::string text, std::unique_ptr<Node> root)
    : text_(std::move(text)), root_(std::move(root)) {}

Query::Query(Query&&) noexcept = default;
Query& Query::operator=(Query&&) noexcept = default;
Query::~Query() = default;

Result<Query> Query::parse(std::string_view text) {
  IPA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).run());
  IPA_ASSIGN_OR_RETURN(auto root, ParserImpl(std::move(tokens)).parse());
  return Query(std::string(text), std::move(root));
}

bool Query::matches(const std::map<std::string, std::string>& metadata) const {
  return root_->eval(metadata);
}

}  // namespace ipa::catalog
