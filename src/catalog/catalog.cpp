#include "catalog/catalog.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace ipa::catalog {

namespace detail {
struct Folder {
  std::map<std::string, std::unique_ptr<Folder>> folders;
  std::map<std::string, DatasetEntry> datasets;
};
}  // namespace detail
using detail::Folder;

Catalog::Catalog() : root_(std::make_unique<Folder>()) {}
Catalog::~Catalog() = default;
Catalog::Catalog(Catalog&&) noexcept = default;
Catalog& Catalog::operator=(Catalog&&) noexcept = default;

namespace {

Result<std::pair<std::vector<std::string>, std::string>> split_path(const std::string& path) {
  auto parts = strings::split_trimmed(path, '/');
  if (parts.empty()) return invalid_argument("catalog: empty path");
  std::string leaf = parts.back();
  parts.pop_back();
  return std::make_pair(std::move(parts), std::move(leaf));
}

}  // namespace

Status Catalog::add(const std::string& path, std::string id,
                    std::map<std::string, std::string> metadata) {
  IPA_ASSIGN_OR_RETURN(auto split, split_path(path));
  const auto& [folders, leaf] = split;
  if (id.empty()) return invalid_argument("catalog: empty dataset id");
  if (id_to_path_.count(id) != 0) {
    return already_exists("catalog: dataset id '" + id + "' already registered");
  }

  Folder* node = root_.get();
  for (const std::string& name : folders) {
    auto& child = node->folders[name];
    if (!child) child = std::make_unique<Folder>();
    node = child.get();
  }
  if (node->datasets.count(leaf) != 0 || node->folders.count(leaf) != 0) {
    return already_exists("catalog: path '" + path + "' already exists");
  }

  DatasetEntry entry;
  entry.id = std::move(id);
  entry.path = strings::join(folders, "/");
  if (!entry.path.empty()) entry.path += "/";
  entry.path += leaf;
  entry.metadata = std::move(metadata);
  entry.metadata["name"] = leaf;
  entry.metadata["path"] = entry.path;
  id_to_path_[entry.id] = entry.path;
  node->datasets.emplace(leaf, std::move(entry));
  return Status::ok();
}

Status Catalog::remove(const std::string& path) {
  IPA_ASSIGN_OR_RETURN(auto split, split_path(path));
  const auto& [folders, leaf] = split;
  Folder* node = root_.get();
  for (const std::string& name : folders) {
    const auto it = node->folders.find(name);
    if (it == node->folders.end()) return not_found("catalog: no folder '" + name + "'");
    node = it->second.get();
  }
  const auto it = node->datasets.find(leaf);
  if (it == node->datasets.end()) return not_found("catalog: no dataset at '" + path + "'");
  id_to_path_.erase(it->second.id);
  node->datasets.erase(it);
  return Status::ok();
}

Result<Listing> Catalog::browse(const std::string& path) const {
  const Folder* node = root_.get();
  for (const std::string& name : strings::split_trimmed(path, '/')) {
    const auto it = node->folders.find(name);
    if (it == node->folders.end()) {
      return not_found("catalog: no folder '" + name + "' in '" + path + "'");
    }
    node = it->second.get();
  }
  Listing listing;
  for (const auto& [name, _] : node->folders) listing.folders.push_back(name);
  for (const auto& [_, entry] : node->datasets) listing.datasets.push_back(entry);
  return listing;
}

Result<DatasetEntry> Catalog::find_by_path(const std::string& path) const {
  IPA_ASSIGN_OR_RETURN(auto split, split_path(path));
  const auto& [folders, leaf] = split;
  const Folder* node = root_.get();
  for (const std::string& name : folders) {
    const auto it = node->folders.find(name);
    if (it == node->folders.end()) return not_found("catalog: no dataset at '" + path + "'");
    node = it->second.get();
  }
  const auto it = node->datasets.find(leaf);
  if (it == node->datasets.end()) return not_found("catalog: no dataset at '" + path + "'");
  return it->second;
}

Result<DatasetEntry> Catalog::find_by_id(const std::string& id) const {
  const auto it = id_to_path_.find(id);
  if (it == id_to_path_.end()) return not_found("catalog: no dataset with id '" + id + "'");
  return find_by_path(it->second);
}

Result<std::vector<DatasetEntry>> Catalog::search(const std::string& query_text) const {
  IPA_ASSIGN_OR_RETURN(const Query query, Query::parse(query_text));
  std::vector<DatasetEntry> out;
  // Iterative DFS over the tree.
  std::vector<const Folder*> stack = {root_.get()};
  while (!stack.empty()) {
    const Folder* node = stack.back();
    stack.pop_back();
    for (const auto& [_, entry] : node->datasets) {
      if (query.matches(entry.metadata)) out.push_back(entry);
    }
    for (const auto& [_, child] : node->folders) stack.push_back(child.get());
  }
  std::sort(out.begin(), out.end(),
            [](const DatasetEntry& a, const DatasetEntry& b) { return a.path < b.path; });
  return out;
}

std::size_t Catalog::dataset_count() const { return id_to_path_.size(); }

namespace {

/// Emit folders as <folder name=..> and datasets as <dataset id=..> with
/// <meta key=.. value=..> children. Recursive so each subtree is complete
/// before the next sibling is appended (appending can reallocate the
/// parent's child vector, so no references into it may be retained).
xml::Node folder_to_xml(std::string element_name, const std::string& folder_name,
                        const Folder& folder) {
  xml::Node element(std::move(element_name));
  if (!folder_name.empty()) element.set_attribute("name", folder_name);
  for (const auto& [name, entry] : folder.datasets) {
    xml::Node ds("dataset");
    ds.set_attribute("name", name);
    ds.set_attribute("id", entry.id);
    for (const auto& [key, value] : entry.metadata) {
      if (key == "name" || key == "path") continue;  // re-derived on import
      xml::Node meta("meta");
      meta.set_attribute("key", key);
      meta.set_attribute("value", value);
      ds.add_child(std::move(meta));
    }
    element.add_child(std::move(ds));
  }
  for (const auto& [name, child] : folder.folders) {
    element.add_child(folder_to_xml("folder", name, *child));
  }
  return element;
}

}  // namespace

xml::Node Catalog::to_xml() const {
  return folder_to_xml("catalog", "", *root_);
}

Result<Catalog> Catalog::from_xml(const xml::Node& root) {
  if (root.name() != "catalog") return invalid_argument("catalog: expected <catalog> root");
  Catalog catalog;
  struct Frame {
    const xml::Node* element;
    std::string path;
  };
  std::vector<Frame> stack{{&root, ""}};
  while (!stack.empty()) {
    auto [element, path] = stack.back();
    stack.pop_back();
    for (const xml::Node& child : element->children()) {
      if (child.name() == "folder") {
        const std::string name = child.attribute("name");
        if (name.empty()) return invalid_argument("catalog: folder without name");
        stack.push_back({&child, path.empty() ? name : path + "/" + name});
      } else if (child.name() == "dataset") {
        const std::string name = child.attribute("name");
        const std::string id = child.attribute("id");
        if (name.empty() || id.empty()) {
          return invalid_argument("catalog: dataset without name/id");
        }
        std::map<std::string, std::string> metadata;
        for (const xml::Node& meta : child.children()) {
          if (meta.name() == "meta") metadata[meta.attribute("key")] = meta.attribute("value");
        }
        IPA_RETURN_IF_ERROR(
            catalog.add(path.empty() ? name : path + "/" + name, id, std::move(metadata)));
      }
    }
  }
  return catalog;
}

}  // namespace ipa::catalog
