#include "security/credentials.hpp"

#include <algorithm>

#include "crypto/encoding.hpp"
#include "crypto/sha256.hpp"
#include "serialize/serialize.hpp"

namespace ipa::security {

bool Identity::has_role(std::string_view role) const {
  return std::find(roles.begin(), roles.end(), role) != roles.end();
}

std::string CredentialAuthority::sign(const std::string& payload) const {
  return crypto::to_hex(crypto::hmac_sha256(secret_, payload));
}

std::string CredentialAuthority::encode(const Identity& identity) const {
  ser::Writer w;
  w.string(identity.subject);
  w.string(identity.vo);
  w.vector(identity.roles, [](ser::Writer& ww, const std::string& r) { ww.string(r); });
  w.f64(identity.issued_at);
  w.f64(identity.expires_at);
  w.svarint(identity.delegation_depth);
  const auto& bytes = w.data();
  const std::string payload = crypto::base64_encode(
      std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  return payload + "." + sign(payload);
}

std::string CredentialAuthority::issue(const std::string& subject,
                                       const std::vector<std::string>& roles,
                                       double lifetime_s) const {
  Identity identity;
  identity.subject = subject;
  identity.vo = vo_;
  identity.roles = roles;
  identity.issued_at = clock_->now();
  identity.expires_at = identity.issued_at + lifetime_s;
  identity.delegation_depth = 0;
  return encode(identity);
}

Result<std::string> CredentialAuthority::delegate(const std::string& parent_token,
                                                  double lifetime_s) const {
  IPA_ASSIGN_OR_RETURN(Identity parent, verify(parent_token));
  if (parent.delegation_depth >= kMaxDelegationDepth) {
    return permission_denied("credential: delegation depth limit reached");
  }
  Identity proxy = parent;
  proxy.issued_at = clock_->now();
  proxy.expires_at = std::min(parent.expires_at, proxy.issued_at + lifetime_s);
  proxy.delegation_depth = parent.delegation_depth + 1;
  return encode(proxy);
}

Result<Identity> CredentialAuthority::verify(const std::string& token) const {
  const std::size_t dot = token.rfind('.');
  if (dot == std::string::npos) return unauthenticated("credential: malformed token");
  const std::string payload = token.substr(0, dot);
  const std::string signature = token.substr(dot + 1);

  // Constant-time signature check.
  const std::string expected = sign(payload);
  if (expected.size() != signature.size()) {
    return unauthenticated("credential: bad signature");
  }
  unsigned char diff = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    diff = static_cast<unsigned char>(diff | (expected[i] ^ signature[i]));
  }
  if (diff != 0) return unauthenticated("credential: bad signature");

  IPA_ASSIGN_OR_RETURN(const std::string raw, crypto::base64_decode(payload));
  ser::Reader r(reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size());
  Identity identity;
  IPA_ASSIGN_OR_RETURN(identity.subject, r.string());
  IPA_ASSIGN_OR_RETURN(identity.vo, r.string());
  {
    auto roles = r.vector<std::string>([](ser::Reader& rr) { return rr.string(); });
    IPA_RETURN_IF_ERROR(roles.status());
    identity.roles = std::move(*roles);
  }
  IPA_ASSIGN_OR_RETURN(identity.issued_at, r.f64());
  IPA_ASSIGN_OR_RETURN(identity.expires_at, r.f64());
  {
    IPA_ASSIGN_OR_RETURN(const std::int64_t depth, r.svarint());
    identity.delegation_depth = static_cast<int>(depth);
  }

  if (identity.vo != vo_) {
    return unauthenticated("credential: wrong VO '" + identity.vo + "'");
  }
  if (identity.delegation_depth < 0 || identity.delegation_depth > kMaxDelegationDepth) {
    return unauthenticated("credential: invalid delegation depth");
  }
  if (clock_->now() >= identity.expires_at) {
    return unauthenticated("credential: expired");
  }
  return identity;
}

Result<VoPolicy> VoPolicy::from_config(const Config& config) {
  VoPolicy policy;
  IPA_ASSIGN_OR_RETURN(policy.vo_, config.require_string("vo.name"));

  // Collect role names from "role.<name>.max_nodes" keys.
  const Config roles = config.section("role");
  for (const auto& [key, _] : roles.entries()) {
    const std::size_t dot = key.find('.');
    if (dot == std::string::npos || key.substr(dot + 1) != "max_nodes") continue;
    RolePolicy role;
    role.name = key.substr(0, dot);
    IPA_ASSIGN_OR_RETURN(const std::int64_t cap, roles.require_int(key));
    if (cap <= 0) return invalid_argument("policy: role '" + role.name + "' max_nodes must be > 0");
    role.max_nodes = static_cast<int>(cap);
    role.queue = roles.get_string(role.name + ".queue", "batch");
    policy.roles_.push_back(std::move(role));
  }
  if (policy.roles_.empty()) return invalid_argument("policy: no roles configured");
  return policy;
}

const VoPolicy::RolePolicy* VoPolicy::best_role(const Identity& identity) const {
  const RolePolicy* best = nullptr;
  for (const RolePolicy& role : roles_) {
    if (!identity.has_role(role.name)) continue;
    if (best == nullptr || role.max_nodes > best->max_nodes) best = &role;
  }
  return best;
}

Result<int> VoPolicy::authorize_nodes(const Identity& identity, int requested_nodes) const {
  if (identity.vo != vo_) {
    return permission_denied("policy: identity belongs to VO '" + identity.vo +
                             "', site serves '" + vo_ + "'");
  }
  const RolePolicy* role = best_role(identity);
  if (role == nullptr) {
    return permission_denied("policy: subject '" + identity.subject + "' has no authorized role");
  }
  if (requested_nodes <= 0) return invalid_argument("policy: requested nodes must be > 0");
  return std::min(requested_nodes, role->max_nodes);
}

Result<std::string> VoPolicy::queue_for(const Identity& identity) const {
  if (identity.vo != vo_) return permission_denied("policy: wrong VO");
  const RolePolicy* role = best_role(identity);
  if (role == nullptr) return permission_denied("policy: no authorized role");
  return role->queue;
}

}  // namespace ipa::security
