// Grid security: proxy credentials and VO policy.
//
// The paper authenticates the JAS client to the manager services with a GSI
// proxy certificate created from the user's grid credential; the site then
// authorizes the user against Virtual Organization policy (max engines,
// queue access). X.509/GSI is substituted with HMAC-SHA256-signed tokens
// that keep the same lifecycle:
//
//   issue     - the VO authority signs {subject, vo, roles, expiry, depth=0}
//   delegate  - a holder derives a shorter-lived depth+1 proxy (the "proxy
//               certificate" the client actually presents)
//   verify    - any service holding the VO secret validates signature,
//               expiry and delegation depth
//
// Token wire form: base64(payload) "." hex(hmac(payload)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/status.hpp"

namespace ipa::security {

/// Decoded identity of a verified credential.
struct Identity {
  std::string subject;              // "cn=alice"
  std::string vo;                   // "lc-vo"
  std::vector<std::string> roles;   // {"analysis", "admin"}
  double issued_at = 0;
  double expires_at = 0;
  int delegation_depth = 0;

  bool has_role(std::string_view role) const;
};

inline constexpr int kMaxDelegationDepth = 8;

/// Issues and verifies proxy credentials for one VO.
class CredentialAuthority {
 public:
  CredentialAuthority(std::string vo, std::string secret,
                      const Clock& clock = WallClock::instance())
      : vo_(std::move(vo)), secret_(std::move(secret)), clock_(&clock) {}

  /// Sign a fresh depth-0 credential.
  std::string issue(const std::string& subject, const std::vector<std::string>& roles,
                    double lifetime_s) const;

  /// Derive a proxy from an existing valid token: depth+1, lifetime clamped
  /// to both `lifetime_s` and the parent's remaining lifetime.
  Result<std::string> delegate(const std::string& parent_token, double lifetime_s) const;

  /// Validate signature, expiry and depth; returns the identity.
  Result<Identity> verify(const std::string& token) const;

  const std::string& vo() const { return vo_; }

 private:
  std::string sign(const std::string& payload) const;
  std::string encode(const Identity& identity) const;

  std::string vo_;
  std::string secret_;
  const Clock* clock_;
};

/// Per-VO site policy: which roles may run, how many analysis engines each
/// may start, which scheduler queue they use. Loaded from Config entries:
///
///   vo.name = lc-vo
///   role.analysis.max_nodes = 16
///   role.analysis.queue = interactive
///   role.student.max_nodes = 2
///   role.student.queue = batch
class VoPolicy {
 public:
  static Result<VoPolicy> from_config(const Config& config);

  /// Grant for an identity asking for `requested_nodes` engines: the number
  /// actually allowed (min over requested and the best role cap), or an
  /// error when the identity has no authorized role or wrong VO.
  Result<int> authorize_nodes(const Identity& identity, int requested_nodes) const;

  /// Scheduler queue for the identity's best (highest-cap) role.
  Result<std::string> queue_for(const Identity& identity) const;

  const std::string& vo() const { return vo_; }

 private:
  struct RolePolicy {
    std::string name;
    int max_nodes = 0;
    std::string queue;
  };

  const RolePolicy* best_role(const Identity& identity) const;

  std::string vo_;
  std::vector<RolePolicy> roles_;
};

}  // namespace ipa::security
