// The .ipd dataset file format: a self-describing, seekable, record-based
// container — IPA's stand-in for the LCIO-style files the paper stages with
// GridFTP.
//
// Layout:
//   header   magic "IPD1", u32 version, string name, string_map metadata
//   records  repeated [varint length][Record bytes]
//   footer   varint count, varint index stride,
//            vector<u64> offsets (file offset of every stride-th record),
//            u32 crc32 over all record bytes
//   trailer  u64 footer offset, u32 magic "IPDF" (fixed 12 bytes)
//
// The sparse offset index makes record-range extraction (splitting) O(range)
// instead of O(file).
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "data/record.hpp"
#include "data/record_batch.hpp"

namespace ipa::data {

inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint64_t kDefaultIndexStride = 256;

/// Dataset-level description (name + free-form metadata).
struct DatasetInfo {
  std::string name;
  std::map<std::string, std::string> metadata;
  std::uint64_t record_count = 0;
  std::uint64_t file_bytes = 0;
};

/// Streaming writer; records must be appended in order.
class DatasetWriter {
 public:
  static Result<DatasetWriter> create(const std::string& path, const std::string& name,
                                      std::map<std::string, std::string> metadata = {},
                                      std::uint64_t index_stride = kDefaultIndexStride);

  DatasetWriter(DatasetWriter&&) noexcept;
  DatasetWriter& operator=(DatasetWriter&&) noexcept;
  ~DatasetWriter();

  Status append(const Record& record);

  /// Append one already-framed record — `frame` must be the exact on-disk
  /// form `[varint length][Record bytes]`. Index offsets and the CRC are
  /// maintained exactly as append() would, so copying frames between files
  /// reproduces append()'s output byte for byte without decoding. The
  /// caller vouches for the frame's integrity (the splitter obtains frames
  /// from a scanned source file).
  Status append_framed(const std::uint8_t* frame, std::size_t size);

  /// Write footer+trailer and close the file. Must be called; the
  /// destructor closes without finalizing (leaving an unreadable file) and
  /// logs a warning.
  Status finish();

  std::uint64_t records_written() const { return count_; }

 private:
  DatasetWriter() = default;

  struct State;
  std::unique_ptr<State> state_;
  std::uint64_t count_ = 0;
};

/// Random-access reader.
class DatasetReader {
 public:
  static Result<DatasetReader> open(const std::string& path);

  DatasetReader(DatasetReader&&) noexcept;
  DatasetReader& operator=(DatasetReader&&) noexcept;
  ~DatasetReader();

  const DatasetInfo& info() const;
  std::uint64_t size() const;  // record count

  /// Read record `i` (0-based). Seeks via the sparse index.
  Result<Record> read(std::uint64_t i);

  /// Sequential read of the next record from the current position;
  /// kOutOfRange at end.
  Result<Record> next();

  /// Batched sequential read: decode up to `max_records` from the current
  /// position straight into `batch`'s columns (appending — callers clear()
  /// between batches). Returns the number of records appended; 0 at end of
  /// dataset. This is the analysis hot path: no per-record Record/Value
  /// materialization.
  Result<std::uint64_t> read_batch(RecordBatch& batch, std::uint64_t max_records);

  /// Field schema interned so far by this reader (grows as records with new
  /// fields are decoded); shared by every batch made via make_batch().
  const SchemaPtr& schema() const;

  /// An empty batch bound to this reader's cached schema, so slot ids stay
  /// stable across all batches of the dataset (analyzers cache name→slot
  /// resolutions once per run).
  RecordBatch make_batch() const;
  std::uint64_t position() const;
  Status seek(std::uint64_t record_index);

  /// File offset of every record frame plus one end-of-records sentinel
  /// (size()+1 entries): a single buffered pass over the varint frame
  /// headers — record bodies are skipped, never decoded. Verifies that the
  /// frames exactly tile the record region. Restores the read position.
  Result<std::vector<std::uint64_t>> scan_frame_offsets();

  /// Verify the stored CRC against the record bytes.
  Status verify_integrity();

 private:
  DatasetReader() = default;

  struct State;
  std::unique_ptr<State> state_;
};

/// Convenience: write a whole vector of records as a dataset file.
Status write_dataset(const std::string& path, const std::string& name,
                     const std::vector<Record>& records,
                     std::map<std::string, std::string> metadata = {});

/// Convenience: read every record of a dataset file.
Result<std::vector<Record>> read_all(const std::string& path);

}  // namespace ipa::data
