#include "data/record.hpp"

#include <algorithm>

namespace ipa::data {

void Record::set(std::string name, Value value) {
  for (auto& [key, existing] : fields_) {
    if (key == name) {
      existing = std::move(value);
      return;
    }
  }
  // Most records carry a handful of fields; one up-front reservation avoids
  // the doubling reallocations of growing from zero.
  if (fields_.empty()) fields_.reserve(kLinearLookupMax);
  fields_.emplace_back(std::move(name), std::move(value));
  sorted_.clear();  // appended name invalidates the sorted view
}

const Value* Record::find(std::string_view name) const {
  if (fields_.size() <= kLinearLookupMax) {
    for (const auto& [key, value] : fields_) {
      if (key == name) return &value;
    }
    return nullptr;
  }
  return find_sorted(name);
}

const Value* Record::find_sorted(std::string_view name) const {
  if (sorted_.size() != fields_.size()) {
    sorted_.resize(fields_.size());
    for (std::uint32_t i = 0; i < sorted_.size(); ++i) sorted_[i] = i;
    // Stable tie-break on position so duplicate names (possible via
    // decode()) resolve to the first occurrence, matching the linear scan.
    std::sort(sorted_.begin(), sorted_.end(), [this](std::uint32_t a, std::uint32_t b) {
      const int cmp = fields_[a].first.compare(fields_[b].first);
      return cmp != 0 ? cmp < 0 : a < b;
    });
  }
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), name,
      [this](std::uint32_t i, std::string_view key) { return fields_[i].first < key; });
  if (it == sorted_.end() || fields_[*it].first != name) return nullptr;
  return &fields_[*it].second;
}

double Record::real_or(std::string_view name, double fallback) const {
  const Value* v = find(name);
  if (v == nullptr) return fallback;
  const auto num = v->to_number();
  return num.is_ok() ? *num : fallback;
}

std::int64_t Record::int_or(std::string_view name, std::int64_t fallback) const {
  const Value* v = find(name);
  if (v == nullptr || !v->is_int()) return fallback;
  return v->as_int();
}

std::string Record::str_or(std::string_view name, std::string fallback) const {
  const Value* v = find(name);
  if (v == nullptr || !v->is_str()) return fallback;
  return v->as_str();
}

const Value::RealVec* Record::vec_or_null(std::string_view name) const {
  const Value* v = find(name);
  if (v == nullptr || !v->is_vec()) return nullptr;
  return &v->as_vec();
}

void Record::encode(ser::Writer& w) const {
  w.varint(index_);
  w.varint(fields_.size());
  for (const auto& [name, value] : fields_) {
    w.string(name);
    value.encode(w);
  }
}

Result<Record> Record::decode(ser::Reader& r) {
  Record record;
  IPA_ASSIGN_OR_RETURN(const std::uint64_t index, r.varint());
  record.index_ = index;
  IPA_ASSIGN_OR_RETURN(const std::uint64_t count, r.varint());
  if (count > 4096) return data_loss("record: implausible field count");
  record.fields_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    IPA_ASSIGN_OR_RETURN(std::string name, r.string());
    auto value = Value::decode(r);
    IPA_RETURN_IF_ERROR(value.status());
    record.fields_.emplace_back(std::move(name), std::move(*value));
  }
  return record;
}

std::size_t Record::encoded_size_hint() const {
  std::size_t size = 10;
  for (const auto& [name, value] : fields_) {
    size += name.size() + 2;
    if (value.is_str()) {
      size += value.as_str().size() + 2;
    } else if (value.is_vec()) {
      size += value.as_vec().size() * 8 + 2;
    } else {
      size += 9;
    }
  }
  return size;
}

}  // namespace ipa::data
