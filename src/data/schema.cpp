#include "data/schema.hpp"

namespace ipa::data {

std::string_view to_string(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kInt: return "int";
    case ColumnKind::kReal: return "real";
    case ColumnKind::kStr: return "str";
    case ColumnKind::kVec: return "vec";
  }
  return "?";
}

int Schema::intern(std::string_view name, ColumnKind kind) {
  const auto it = slots_.find(name);
  if (it != slots_.end()) return it->second;
  const int slot = static_cast<int>(fields_.size());
  fields_.push_back(Field{std::string(name), kind});
  slots_.emplace(fields_.back().name, slot);
  ++version_;
  return slot;
}

int Schema::slot_of(std::string_view name) const {
  const auto it = slots_.find(name);
  return it == slots_.end() ? kNoSlot : it->second;
}

void Schema::encode(ser::Writer& w) const {
  w.varint(fields_.size());
  for (const Field& field : fields_) {
    w.string(field.name);
    w.u8(static_cast<std::uint8_t>(field.kind));
  }
}

Result<Schema> Schema::decode(ser::Reader& r) {
  Schema schema;
  IPA_ASSIGN_OR_RETURN(const std::uint64_t count, r.varint());
  if (count > 65536) return data_loss("schema: implausible field count");
  for (std::uint64_t i = 0; i < count; ++i) {
    IPA_ASSIGN_OR_RETURN(std::string name, r.string());
    IPA_ASSIGN_OR_RETURN(const std::uint8_t kind, r.u8());
    if (kind > 3) return data_loss("schema: bad column kind");
    schema.intern(name, static_cast<ColumnKind>(kind));
  }
  return schema;
}

}  // namespace ipa::data
