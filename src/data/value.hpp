// Field values of dataset records.
//
// IPA is deliberately generic over record content (the paper's framework
// "requires record-based data" but nothing else): a record is a bag of
// named values. Four value kinds cover the paper's domains — integers,
// reals, strings (DNA sequences, stock symbols) and real vectors (particle
// four-vector components).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "serialize/serialize.hpp"

namespace ipa::data {

class Value {
 public:
  using RealVec = std::vector<double>;

  Value() : rep_(std::int64_t{0}) {}
  Value(std::int64_t v) : rep_(v) {}        // NOLINT(google-explicit-constructor)
  Value(int v) : rep_(std::int64_t{v}) {}   // NOLINT
  Value(double v) : rep_(v) {}              // NOLINT
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT
  Value(RealVec v) : rep_(std::move(v)) {}  // NOLINT

  bool is_int() const { return std::holds_alternative<std::int64_t>(rep_); }
  bool is_real() const { return std::holds_alternative<double>(rep_); }
  bool is_str() const { return std::holds_alternative<std::string>(rep_); }
  bool is_vec() const { return std::holds_alternative<RealVec>(rep_); }

  std::int64_t as_int() const { return std::get<std::int64_t>(rep_); }
  double as_real() const { return std::get<double>(rep_); }
  const std::string& as_str() const { return std::get<std::string>(rep_); }
  const RealVec& as_vec() const { return std::get<RealVec>(rep_); }

  /// Numeric coercion: ints widen to double; other kinds fail.
  Result<double> to_number() const;

  /// Human-readable rendering ("3.14", "[1, 2]", "\"acgt\"").
  std::string to_string() const;

  void encode(ser::Writer& w) const;
  static Result<Value> decode(ser::Reader& r);

  friend bool operator==(const Value& a, const Value& b) = default;

 private:
  std::variant<std::int64_t, double, std::string, RealVec> rep_;
};

}  // namespace ipa::data
