// Interned dataset schema: field names → dense slot ids.
//
// Row-format records carry their field names on every record; the batched
// analysis hot path pays that string cost once. A Schema accumulates the
// union of fields seen while decoding a dataset and hands out stable slot
// ids, so column lookups inside the record loop are array indexing instead
// of per-record string compares. Readers cache one Schema per dataset and
// every RecordBatch they produce shares it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "serialize/serialize.hpp"

namespace ipa::data {

/// Storage class of a column. Fixed by the first value seen for the field;
/// later records holding a different kind for the same name go to the
/// batch's row-wise overflow side-table (rare, exact).
enum class ColumnKind : std::uint8_t { kInt = 0, kReal = 1, kStr = 2, kVec = 3 };

std::string_view to_string(ColumnKind kind);

class Schema {
 public:
  static constexpr int kNoSlot = -1;

  /// Slot id for `name`, interning it with `kind` when unseen. An existing
  /// field keeps its original kind (the caller detects mismatches via
  /// kind(slot)).
  int intern(std::string_view name, ColumnKind kind);

  /// Lookup without interning; kNoSlot when absent.
  int slot_of(std::string_view name) const;

  const std::string& name(int slot) const { return fields_[static_cast<std::size_t>(slot)].name; }
  ColumnKind kind(int slot) const { return fields_[static_cast<std::size_t>(slot)].kind; }

  std::size_t field_count() const { return fields_.size(); }

  /// Bumped whenever a new field is interned; lets per-analyzer name→slot
  /// caches detect growth without re-hashing on every access.
  std::uint64_t version() const { return version_; }

  void encode(ser::Writer& w) const;
  static Result<Schema> decode(ser::Reader& r);

  friend bool operator==(const Schema& a, const Schema& b) {
    if (a.fields_.size() != b.fields_.size()) return false;
    for (std::size_t i = 0; i < a.fields_.size(); ++i) {
      if (a.fields_[i].name != b.fields_[i].name || a.fields_[i].kind != b.fields_[i].kind) {
        return false;
      }
    }
    return true;
  }

 private:
  struct Field {
    std::string name;
    ColumnKind kind;
  };

  std::vector<Field> fields_;                       // slot id -> field
  std::map<std::string, int, std::less<>> slots_;   // heterogeneous lookup
  std::uint64_t version_ = 0;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace ipa::data
