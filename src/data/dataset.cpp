#include "data/dataset.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "data/crc32.hpp"

namespace ipa::data {
namespace {

constexpr char kMagic[4] = {'I', 'P', 'D', '1'};
constexpr std::uint32_t kTrailerMagic = 0x46445049;  // "IPDF" little-endian

/// RAII stdio FILE handle (stdio gives us portable 64-bit seeks + buffering).
struct File {
  std::FILE* fp = nullptr;
  ~File() {
    if (fp) std::fclose(fp);
  }
  void close() {
    if (fp) {
      std::fclose(fp);
      fp = nullptr;
    }
  }
};

Status write_bytes(std::FILE* fp, const void* data, std::size_t len) {
  if (len && std::fwrite(data, 1, len, fp) != len) {
    return unavailable("dataset: write failed");
  }
  return Status::ok();
}

Status read_bytes(std::FILE* fp, void* data, std::size_t len) {
  if (len && std::fread(data, 1, len, fp) != len) {
    return data_loss("dataset: truncated file");
  }
  return Status::ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct DatasetWriter::State {
  File file;
  std::string path;
  std::uint64_t index_stride = kDefaultIndexStride;
  std::vector<std::uint64_t> index_offsets;
  Crc32 crc;
  bool finished = false;
};

Result<DatasetWriter> DatasetWriter::create(const std::string& path, const std::string& name,
                                            std::map<std::string, std::string> metadata,
                                            std::uint64_t index_stride) {
  if (index_stride == 0) return invalid_argument("dataset: index stride must be > 0");
  DatasetWriter writer;
  writer.state_ = std::make_unique<State>();
  writer.state_->path = path;
  writer.state_->index_stride = index_stride;
  writer.state_->file.fp = std::fopen(path.c_str(), "wb");
  if (writer.state_->file.fp == nullptr) {
    return unavailable("dataset: cannot create '" + path + "'");
  }

  ser::Writer header;
  header.raw(kMagic, 4);
  header.u32(kFormatVersion);
  header.string(name);
  header.string_map(metadata);
  IPA_RETURN_IF_ERROR(
      write_bytes(writer.state_->file.fp, header.data().data(), header.size()));
  return writer;
}

DatasetWriter::DatasetWriter(DatasetWriter&&) noexcept = default;
DatasetWriter& DatasetWriter::operator=(DatasetWriter&&) noexcept = default;

DatasetWriter::~DatasetWriter() {
  if (state_ && !state_->finished && state_->file.fp != nullptr) {
    IPA_LOG(warn) << "DatasetWriter for " << state_->path
                  << " destroyed without finish(); file left unreadable";
  }
}

Status DatasetWriter::append(const Record& record) {
  ser::Writer body;
  record.encode(body);
  ser::Writer framed;
  framed.varint(body.size());
  framed.raw(body.data().data(), body.size());
  return append_framed(framed.data().data(), framed.size());
}

Status DatasetWriter::append_framed(const std::uint8_t* frame, std::size_t size) {
  if (!state_ || state_->finished) return failed_precondition("dataset: writer finished");
  if (count_ % state_->index_stride == 0) {
    const long pos = std::ftell(state_->file.fp);
    if (pos < 0) return unavailable("dataset: ftell failed");
    state_->index_offsets.push_back(static_cast<std::uint64_t>(pos));
  }
  state_->crc.update(frame, size);
  IPA_RETURN_IF_ERROR(write_bytes(state_->file.fp, frame, size));
  ++count_;
  return Status::ok();
}

Status DatasetWriter::finish() {
  if (!state_) return failed_precondition("dataset: writer moved-from");
  if (state_->finished) return Status::ok();

  const long footer_pos = std::ftell(state_->file.fp);
  if (footer_pos < 0) return unavailable("dataset: ftell failed");

  ser::Writer footer;
  footer.varint(count_);
  footer.varint(state_->index_stride);
  footer.vector(state_->index_offsets, [](ser::Writer& w, std::uint64_t off) { w.u64(off); });
  footer.u32(state_->crc.value());
  IPA_RETURN_IF_ERROR(write_bytes(state_->file.fp, footer.data().data(), footer.size()));

  ser::Writer trailer;
  trailer.u64(static_cast<std::uint64_t>(footer_pos));
  trailer.u32(kTrailerMagic);
  IPA_RETURN_IF_ERROR(write_bytes(state_->file.fp, trailer.data().data(), trailer.size()));

  state_->file.close();
  state_->finished = true;
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct DatasetReader::State {
  File file;
  std::string path;
  DatasetInfo info;
  std::uint64_t index_stride = kDefaultIndexStride;
  std::vector<std::uint64_t> index_offsets;
  std::uint64_t data_begin = 0;   // offset of the first record frame
  std::uint64_t footer_offset = 0;
  std::uint32_t stored_crc = 0;
  std::uint64_t position = 0;     // next record to be returned by next()
  SchemaPtr schema = std::make_shared<Schema>();  // interned as records decode
  ser::Bytes frame_buf;           // reusable frame scratch for read_batch
};

namespace {

/// Read a frame's varint length prefix at the current file position.
Result<std::uint64_t> read_frame_length(std::FILE* fp) {
  std::uint64_t len = 0;
  int shift = 0;
  while (true) {
    std::uint8_t byte = 0;
    IPA_RETURN_IF_ERROR(read_bytes(fp, &byte, 1));
    if (shift >= 64) return data_loss("dataset: corrupt record length");
    len |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  if (len > ser::Reader::kMaxFieldLen) return data_loss("dataset: oversized record");
  return len;
}

/// Read one length-framed record at the current file position.
Result<Record> read_record_frame(std::FILE* fp) {
  IPA_ASSIGN_OR_RETURN(const std::uint64_t len, read_frame_length(fp));
  ser::Bytes body(static_cast<std::size_t>(len));
  IPA_RETURN_IF_ERROR(read_bytes(fp, body.data(), body.size()));
  ser::Reader r(body);
  auto record = Record::decode(r);
  IPA_RETURN_IF_ERROR(record.status());
  if (!r.at_end()) return data_loss("dataset: trailing bytes in record frame");
  return record;
}

}  // namespace

Result<DatasetReader> DatasetReader::open(const std::string& path) {
  DatasetReader reader;
  reader.state_ = std::make_unique<State>();
  State& st = *reader.state_;
  st.path = path;
  st.file.fp = std::fopen(path.c_str(), "rb");
  if (st.file.fp == nullptr) return not_found("dataset: cannot open '" + path + "'");

  // Header.
  char magic[4];
  IPA_RETURN_IF_ERROR(read_bytes(st.file.fp, magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) return data_loss("dataset: bad magic in " + path);
  {
    std::uint8_t ver_bytes[4];
    IPA_RETURN_IF_ERROR(read_bytes(st.file.fp, ver_bytes, 4));
    ser::Reader vr(ver_bytes, 4);
    IPA_ASSIGN_OR_RETURN(const std::uint32_t version, vr.u32());
    if (version != kFormatVersion) {
      return data_loss("dataset: unsupported version " + std::to_string(version));
    }
  }
  // Name + metadata are varint-framed; read them byte-wise via a small pump.
  // Simpler: slurp the rest of the header by reading a bounded chunk.
  // Read name string (varint len + bytes) manually.
  const auto read_varint = [&]() -> Result<std::uint64_t> {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      std::uint8_t byte = 0;
      IPA_RETURN_IF_ERROR(read_bytes(st.file.fp, &byte, 1));
      if (shift >= 64) return data_loss("dataset: corrupt varint");
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  };
  const auto read_string = [&]() -> Result<std::string> {
    IPA_ASSIGN_OR_RETURN(const std::uint64_t len, read_varint());
    if (len > ser::Reader::kMaxFieldLen) return data_loss("dataset: oversized string");
    std::string out(static_cast<std::size_t>(len), '\0');
    IPA_RETURN_IF_ERROR(read_bytes(st.file.fp, out.data(), out.size()));
    return out;
  };

  IPA_ASSIGN_OR_RETURN(st.info.name, read_string());
  IPA_ASSIGN_OR_RETURN(const std::uint64_t meta_count, read_varint());
  if (meta_count > 100000) return data_loss("dataset: implausible metadata count");
  for (std::uint64_t i = 0; i < meta_count; ++i) {
    IPA_ASSIGN_OR_RETURN(std::string key, read_string());
    IPA_ASSIGN_OR_RETURN(std::string value, read_string());
    st.info.metadata.emplace(std::move(key), std::move(value));
  }
  {
    const long pos = std::ftell(st.file.fp);
    if (pos < 0) return unavailable("dataset: ftell failed");
    st.data_begin = static_cast<std::uint64_t>(pos);
  }

  // Trailer.
  if (std::fseek(st.file.fp, -12, SEEK_END) != 0) return data_loss("dataset: no trailer");
  {
    std::uint8_t trailer[12];
    IPA_RETURN_IF_ERROR(read_bytes(st.file.fp, trailer, 12));
    ser::Reader tr(trailer, 12);
    IPA_ASSIGN_OR_RETURN(st.footer_offset, tr.u64());
    IPA_ASSIGN_OR_RETURN(const std::uint32_t magic2, tr.u32());
    if (magic2 != kTrailerMagic) return data_loss("dataset: bad trailer magic (unfinished file?)");
  }
  {
    const long end = std::ftell(st.file.fp);
    st.info.file_bytes = end < 0 ? 0 : static_cast<std::uint64_t>(end);
  }

  // Footer.
  if (std::fseek(st.file.fp, static_cast<long>(st.footer_offset), SEEK_SET) != 0) {
    return data_loss("dataset: bad footer offset");
  }
  IPA_ASSIGN_OR_RETURN(st.info.record_count, read_varint());
  IPA_ASSIGN_OR_RETURN(st.index_stride, read_varint());
  if (st.index_stride == 0) return data_loss("dataset: zero index stride");
  IPA_ASSIGN_OR_RETURN(const std::uint64_t index_count, read_varint());
  if (index_count > st.info.record_count + 1) return data_loss("dataset: implausible index");
  st.index_offsets.reserve(static_cast<std::size_t>(index_count));
  for (std::uint64_t i = 0; i < index_count; ++i) {
    std::uint8_t off_bytes[8];
    IPA_RETURN_IF_ERROR(read_bytes(st.file.fp, off_bytes, 8));
    ser::Reader orr(off_bytes, 8);
    IPA_ASSIGN_OR_RETURN(const std::uint64_t off, orr.u64());
    st.index_offsets.push_back(off);
  }
  {
    std::uint8_t crc_bytes[4];
    IPA_RETURN_IF_ERROR(read_bytes(st.file.fp, crc_bytes, 4));
    ser::Reader cr(crc_bytes, 4);
    IPA_ASSIGN_OR_RETURN(st.stored_crc, cr.u32());
  }

  IPA_RETURN_IF_ERROR(reader.seek(0));
  return reader;
}

DatasetReader::DatasetReader(DatasetReader&&) noexcept = default;
DatasetReader& DatasetReader::operator=(DatasetReader&&) noexcept = default;
DatasetReader::~DatasetReader() = default;

const DatasetInfo& DatasetReader::info() const { return state_->info; }
std::uint64_t DatasetReader::size() const { return state_->info.record_count; }
std::uint64_t DatasetReader::position() const { return state_->position; }

Status DatasetReader::seek(std::uint64_t record_index) {
  State& st = *state_;
  if (record_index > st.info.record_count) {
    return out_of_range("dataset: seek past end");
  }
  if (record_index == st.info.record_count) {
    st.position = record_index;  // at-end position; next() reports kOutOfRange
    return Status::ok();
  }
  const std::uint64_t slot = record_index / st.index_stride;
  std::uint64_t offset = st.data_begin;
  std::uint64_t base = 0;
  if (slot < st.index_offsets.size()) {
    offset = st.index_offsets[slot];
    base = slot * st.index_stride;
  }
  if (std::fseek(st.file.fp, static_cast<long>(offset), SEEK_SET) != 0) {
    return data_loss("dataset: seek failed");
  }
  // Skip forward to the exact record.
  for (std::uint64_t i = base; i < record_index; ++i) {
    auto skipped = read_record_frame(st.file.fp);
    IPA_RETURN_IF_ERROR(skipped.status());
  }
  st.position = record_index;
  return Status::ok();
}

Result<Record> DatasetReader::next() {
  State& st = *state_;
  if (st.position >= st.info.record_count) {
    return out_of_range("dataset: end of records");
  }
  auto record = read_record_frame(st.file.fp);
  IPA_RETURN_IF_ERROR(record.status());
  ++st.position;
  return record;
}

Result<Record> DatasetReader::read(std::uint64_t i) {
  IPA_RETURN_IF_ERROR(seek(i));
  return next();
}

Result<std::uint64_t> DatasetReader::read_batch(RecordBatch& batch,
                                                std::uint64_t max_records) {
  State& st = *state_;
  std::uint64_t appended = 0;
  // Block-buffered frame parsing: per-frame reads cost three locked stdio
  // calls per record (two one-byte reads for the varint length plus one for
  // the body); reading a large chunk and parsing frames out of memory pays
  // that cost once per ~256 KiB instead.
  ser::Bytes& buf = st.frame_buf;
  std::size_t pos = 0;  // next unparsed byte in buf
  std::size_t len = 0;  // valid bytes in buf
  constexpr std::size_t kChunk = 256 * 1024;

  // Top up the buffer until at least `needed` bytes are available at `pos`;
  // false when the file cannot supply them (truncated file).
  const auto ensure = [&](std::size_t needed) -> bool {
    while (len - pos < needed) {
      if (pos > 0) {
        std::memmove(buf.data(), buf.data() + pos, len - pos);
        len -= pos;
        pos = 0;
      }
      const std::size_t want = std::max(kChunk, needed);
      if (buf.size() < want) buf.resize(want);
      const std::size_t got = std::fread(buf.data() + len, 1, buf.size() - len, st.file.fp);
      if (got == 0) return false;
      len += got;
    }
    return true;
  };

  const auto parse = [&]() -> Status {
    while (appended < max_records && st.position < st.info.record_count) {
      std::uint64_t frame_len = 0;
      int shift = 0;
      while (true) {
        if (!ensure(1)) return data_loss("dataset: truncated file");
        const std::uint8_t byte = buf[pos++];
        if (shift >= 64) return data_loss("dataset: corrupt record length");
        frame_len |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
      }
      if (frame_len > ser::Reader::kMaxFieldLen) return data_loss("dataset: oversized record");
      if (!ensure(static_cast<std::size_t>(frame_len))) {
        return data_loss("dataset: truncated file");
      }
      ser::Reader r(buf.data() + pos, static_cast<std::size_t>(frame_len));
      IPA_RETURN_IF_ERROR(batch.append_encoded(r));
      if (!r.at_end()) return data_loss("dataset: trailing bytes in record frame");
      pos += static_cast<std::size_t>(frame_len);
      ++st.position;
      ++appended;
    }
    return Status::ok();
  };

  const Status status = parse();
  // Rewind the unconsumed tail so the stdio position matches st.position and
  // next()/seek() keep working after (even a failed) batch read.
  if (len > pos && std::fseek(st.file.fp, -static_cast<long>(len - pos), SEEK_CUR) != 0) {
    return data_loss("dataset: seek failed");
  }
  IPA_RETURN_IF_ERROR(status);
  return appended;
}

Result<std::vector<std::uint64_t>> DatasetReader::scan_frame_offsets() {
  State& st = *state_;
  const std::uint64_t saved = st.position;
  std::vector<std::uint64_t> offsets;
  offsets.reserve(static_cast<std::size_t>(st.info.record_count) + 1);
  if (std::fseek(st.file.fp, static_cast<long>(st.data_begin), SEEK_SET) != 0) {
    return data_loss("dataset: seek failed");
  }

  // Buffered header walk: varint lengths are parsed out of large chunks and
  // bodies are skipped within the buffer (or seeked over when they exceed
  // it), so the scan costs one fread per ~256 KiB and zero decodes.
  constexpr std::size_t kChunk = 256 * 1024;
  ser::Bytes buf(kChunk);
  std::size_t pos = 0;
  std::size_t len = 0;
  std::uint64_t at = st.data_begin;  // file offset of the next frame

  for (std::uint64_t i = 0; i < st.info.record_count; ++i) {
    offsets.push_back(at);
    std::uint64_t frame_len = 0;
    std::uint64_t varint_bytes = 0;
    int shift = 0;
    while (true) {
      if (pos == len) {
        pos = 0;
        len = std::fread(buf.data(), 1, buf.size(), st.file.fp);
        if (len == 0) return data_loss("dataset: truncated file");
      }
      const std::uint8_t byte = buf[pos++];
      ++varint_bytes;
      if (shift >= 64) return data_loss("dataset: corrupt record length");
      frame_len |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    if (frame_len > ser::Reader::kMaxFieldLen) return data_loss("dataset: oversized record");
    at += varint_bytes + frame_len;
    std::uint64_t remaining = frame_len;
    while (remaining > 0) {
      const std::uint64_t have = len - pos;
      if (have == 0) {
        // Body extends beyond the buffer: seek straight over the rest. A
        // truncated file is caught by the tiling check below.
        if (std::fseek(st.file.fp, static_cast<long>(remaining), SEEK_CUR) != 0) {
          return data_loss("dataset: seek failed");
        }
        remaining = 0;
        break;
      }
      const std::uint64_t take = std::min(remaining, have);
      pos += static_cast<std::size_t>(take);
      remaining -= take;
    }
  }
  offsets.push_back(at);
  if (at != st.footer_offset) {
    return data_loss("dataset: record frames do not tile the data region");
  }
  IPA_RETURN_IF_ERROR(seek(saved));
  return offsets;
}

const SchemaPtr& DatasetReader::schema() const { return state_->schema; }

RecordBatch DatasetReader::make_batch() const { return RecordBatch(state_->schema); }

Status DatasetReader::verify_integrity() {
  State& st = *state_;
  const std::uint64_t saved = st.position;
  if (std::fseek(st.file.fp, static_cast<long>(st.data_begin), SEEK_SET) != 0) {
    return data_loss("dataset: seek failed");
  }
  Crc32 crc;
  std::uint64_t remaining = st.footer_offset - st.data_begin;
  std::uint8_t chunk[64 * 1024];
  while (remaining > 0) {
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, sizeof chunk));
    IPA_RETURN_IF_ERROR(read_bytes(st.file.fp, chunk, take));
    crc.update(chunk, take);
    remaining -= take;
  }
  IPA_RETURN_IF_ERROR(seek(saved));
  if (crc.value() != st.stored_crc) {
    return data_loss("dataset: CRC mismatch (file corrupted)");
  }
  return Status::ok();
}

Status write_dataset(const std::string& path, const std::string& name,
                     const std::vector<Record>& records,
                     std::map<std::string, std::string> metadata) {
  auto writer = DatasetWriter::create(path, name, std::move(metadata));
  IPA_RETURN_IF_ERROR(writer.status());
  for (const Record& record : records) {
    IPA_RETURN_IF_ERROR(writer->append(record));
  }
  return writer->finish();
}

Result<std::vector<Record>> read_all(const std::string& path) {
  auto reader = DatasetReader::open(path);
  IPA_RETURN_IF_ERROR(reader.status());
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(reader->size()));
  for (std::uint64_t i = 0; i < reader->size(); ++i) {
    auto record = reader->next();
    IPA_RETURN_IF_ERROR(record.status());
    records.push_back(std::move(*record));
  }
  return records;
}

}  // namespace ipa::data
