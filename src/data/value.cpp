#include "data/value.hpp"

#include "common/strings.hpp"

namespace ipa::data {
namespace {

constexpr std::uint8_t kTagInt = 0;
constexpr std::uint8_t kTagReal = 1;
constexpr std::uint8_t kTagStr = 2;
constexpr std::uint8_t kTagVec = 3;

}  // namespace

Result<double> Value::to_number() const {
  if (is_real()) return as_real();
  if (is_int()) return static_cast<double>(as_int());
  return invalid_argument("value: not numeric (" + to_string() + ")");
}

std::string Value::to_string() const {
  if (is_int()) return std::to_string(as_int());
  if (is_real()) return strings::format("%g", as_real());
  if (is_str()) return "\"" + as_str() + "\"";
  std::string out = "[";
  const RealVec& vec = as_vec();
  for (std::size_t i = 0; i < vec.size(); ++i) {
    if (i) out += ", ";
    out += strings::format("%g", vec[i]);
  }
  out += "]";
  return out;
}

void Value::encode(ser::Writer& w) const {
  if (is_int()) {
    w.u8(kTagInt);
    w.svarint(as_int());
  } else if (is_real()) {
    w.u8(kTagReal);
    w.f64(as_real());
  } else if (is_str()) {
    w.u8(kTagStr);
    w.string(as_str());
  } else {
    w.u8(kTagVec);
    const RealVec& vec = as_vec();
    w.varint(vec.size());
    for (const double x : vec) w.f64(x);
  }
}

Result<Value> Value::decode(ser::Reader& r) {
  IPA_ASSIGN_OR_RETURN(const std::uint8_t tag, r.u8());
  switch (tag) {
    case kTagInt: {
      IPA_ASSIGN_OR_RETURN(const std::int64_t v, r.svarint());
      return Value(v);
    }
    case kTagReal: {
      IPA_ASSIGN_OR_RETURN(const double v, r.f64());
      return Value(v);
    }
    case kTagStr: {
      IPA_ASSIGN_OR_RETURN(std::string v, r.string());
      return Value(std::move(v));
    }
    case kTagVec: {
      IPA_ASSIGN_OR_RETURN(const std::uint64_t count, r.varint());
      if (count > ser::Reader::kMaxFieldLen / sizeof(double)) {
        return data_loss("value: vector too large");
      }
      RealVec vec;
      vec.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        IPA_ASSIGN_OR_RETURN(const double x, r.f64());
        vec.push_back(x);
      }
      return Value(std::move(vec));
    }
    default:
      return data_loss("value: unknown tag " + std::to_string(tag));
  }
}

}  // namespace ipa::data
