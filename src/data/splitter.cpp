#include "data/splitter.hpp"

#include <cstdio>
#include <future>

#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace ipa::data {
namespace {

/// RAII stdio handle for the per-part source reads.
struct SourceFile {
  std::FILE* fp = nullptr;
  ~SourceFile() {
    if (fp) std::fclose(fp);
  }
};

/// Write one part: copy the source's record frames [first, last) — located
/// via the scanned `offsets` — into a fresh part file as raw bytes. Each
/// writer task owns its own file handle, so parts stream out concurrently.
Result<PartInfo> write_part(const std::string& source_path, const DatasetInfo& info,
                            const std::vector<std::uint64_t>& offsets, std::uint64_t first,
                            std::uint64_t last, int k, int num_parts,
                            const std::string& out_prefix) {
  auto metadata = info.metadata;
  metadata["part.index"] = std::to_string(k);
  metadata["part.count"] = std::to_string(num_parts);
  metadata["part.first"] = std::to_string(first);
  metadata["part.parent"] = info.name;

  PartInfo part;
  part.path = strings::format("%s.part%d.ipd", out_prefix.c_str(), k);
  part.first_record = first;
  part.record_count = last - first;

  IPA_ASSIGN_OR_RETURN(
      DatasetWriter writer,
      DatasetWriter::create(part.path, info.name + "/part" + std::to_string(k),
                            std::move(metadata)));
  if (last > first) {
    SourceFile src;
    src.fp = std::fopen(source_path.c_str(), "rb");
    if (src.fp == nullptr) return not_found("split: cannot reopen '" + source_path + "'");
    if (std::fseek(src.fp, static_cast<long>(offsets[first]), SEEK_SET) != 0) {
      return data_loss("split: seek failed in '" + source_path + "'");
    }
    // Read runs of consecutive frames in one gulp, then append each frame
    // individually so the writer's sparse index and CRC match append().
    constexpr std::uint64_t kRunBytes = 256 * 1024;
    std::vector<std::uint8_t> buf;
    std::uint64_t i = first;
    while (i < last) {
      std::uint64_t j = i + 1;  // at least one frame, even an oversized one
      while (j < last && offsets[j + 1] - offsets[i] <= kRunBytes) ++j;
      const std::uint64_t run = offsets[j] - offsets[i];
      buf.resize(static_cast<std::size_t>(run));
      if (std::fread(buf.data(), 1, buf.size(), src.fp) != buf.size()) {
        return data_loss("split: truncated read in '" + source_path + "'");
      }
      for (const std::uint64_t base = offsets[i]; i < j; ++i) {
        IPA_RETURN_IF_ERROR(writer.append_framed(
            buf.data() + (offsets[i] - base),
            static_cast<std::size_t>(offsets[i + 1] - offsets[i])));
      }
    }
  }
  IPA_RETURN_IF_ERROR(writer.finish());

  // Record the finished part's size.
  if (std::FILE* fp = std::fopen(part.path.c_str(), "rb")) {
    std::fseek(fp, 0, SEEK_END);
    const long size = std::ftell(fp);
    part.bytes = size < 0 ? 0 : static_cast<std::uint64_t>(size);
    std::fclose(fp);
  }
  return part;
}

}  // namespace

Result<SplitResult> split_dataset(const std::string& source_path, const std::string& out_prefix,
                                  int num_parts) {
  if (num_parts <= 0) return invalid_argument("split: num_parts must be > 0");
  IPA_ASSIGN_OR_RETURN(DatasetReader reader, DatasetReader::open(source_path));

  SplitResult result;
  result.total_records = reader.size();
  result.total_bytes = reader.info().file_bytes;

  // Single pass over the frame headers (no record decoding) yields every
  // frame's offset; boundaries balance the actual framed bytes that land in
  // the part files: target cumulative size k * total/num_parts at the k-th
  // boundary.
  IPA_ASSIGN_OR_RETURN(const std::vector<std::uint64_t> offsets, reader.scan_frame_offsets());
  const std::uint64_t payload_total = offsets.back() - offsets.front();

  // Boundary b[k] = first record index of part k.
  std::vector<std::uint64_t> bounds(static_cast<std::size_t>(num_parts) + 1, 0);
  bounds[static_cast<std::size_t>(num_parts)] = reader.size();
  {
    std::uint64_t cumulative = 0;
    int part = 1;
    for (std::uint64_t i = 0; i + 1 < offsets.size() && part < num_parts; ++i) {
      cumulative += offsets[i + 1] - offsets[i];
      // Place boundaries when cumulative bytes cross the per-part target.
      while (part < num_parts &&
             cumulative >= payload_total * static_cast<std::uint64_t>(part) /
                               static_cast<std::uint64_t>(num_parts)) {
        bounds[static_cast<std::size_t>(part)] = i + 1;
        ++part;
      }
    }
    // Any unplaced boundaries collapse to the end (more parts than data).
    for (; part < num_parts; ++part) {
      bounds[static_cast<std::size_t>(part)] = reader.size();
    }
  }

  // One writer task per part on the shared staging pool (the paper:
  // "transfers are done in parallel"). Results are collected in part order,
  // so the first failing part determines the error deterministically.
  const DatasetInfo& info = reader.info();
  std::vector<std::future<Result<PartInfo>>> parts;
  parts.reserve(static_cast<std::size_t>(num_parts));
  for (int k = 0; k < num_parts; ++k) {
    const std::uint64_t first = bounds[static_cast<std::size_t>(k)];
    const std::uint64_t last = bounds[static_cast<std::size_t>(k) + 1];
    parts.push_back(staging_pool().submit([&source_path, &info, &offsets, first, last, k,
                                           num_parts, &out_prefix] {
      return write_part(source_path, info, offsets, first, last, k, num_parts, out_prefix);
    }));
  }
  Status failure = Status::ok();
  for (auto& future : parts) {
    Result<PartInfo> part = future.get();
    if (!part.is_ok()) {
      if (failure.is_ok()) failure = part.status();
      continue;
    }
    result.parts.push_back(std::move(*part));
  }
  IPA_RETURN_IF_ERROR(failure);
  return result;
}

Status verify_split(const std::string& source_path, const SplitResult& split) {
  IPA_ASSIGN_OR_RETURN(DatasetReader source, DatasetReader::open(source_path));
  std::uint64_t checked = 0;
  for (const PartInfo& part : split.parts) {
    IPA_ASSIGN_OR_RETURN(DatasetReader reader, DatasetReader::open(part.path));
    if (reader.size() != part.record_count) {
      return data_loss("split: part record count mismatch in " + part.path);
    }
    if (part.first_record != checked) {
      return data_loss("split: parts are not contiguous at " + part.path);
    }
    for (std::uint64_t i = 0; i < reader.size(); ++i) {
      IPA_ASSIGN_OR_RETURN(const Record from_part, reader.next());
      IPA_ASSIGN_OR_RETURN(const Record from_source, source.next());
      if (!(from_part == from_source)) {
        return data_loss(strings::format("split: record %llu differs in %s",
                                         static_cast<unsigned long long>(checked + i),
                                         part.path.c_str()));
      }
    }
    checked += reader.size();
  }
  if (checked != source.size()) {
    return data_loss("split: parts cover " + std::to_string(checked) + " of " +
                     std::to_string(source.size()) + " records");
  }
  return Status::ok();
}

}  // namespace ipa::data
