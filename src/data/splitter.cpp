#include "data/splitter.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace ipa::data {

Result<SplitResult> split_dataset(const std::string& source_path, const std::string& out_prefix,
                                  int num_parts) {
  if (num_parts <= 0) return invalid_argument("split: num_parts must be > 0");
  IPA_ASSIGN_OR_RETURN(DatasetReader reader, DatasetReader::open(source_path));

  SplitResult result;
  result.total_records = reader.size();
  result.total_bytes = reader.info().file_bytes;

  // First pass over record sizes to pick byte-balanced boundaries: target
  // cumulative size k * total/num_parts at the k-th boundary.
  std::vector<std::uint64_t> sizes;
  sizes.reserve(static_cast<std::size_t>(reader.size()));
  std::uint64_t payload_total = 0;
  for (std::uint64_t i = 0; i < reader.size(); ++i) {
    IPA_ASSIGN_OR_RETURN(const Record record, reader.next());
    const std::uint64_t sz = record.encoded_size_hint();
    sizes.push_back(sz);
    payload_total += sz;
  }

  // Boundary b[k] = first record index of part k.
  std::vector<std::uint64_t> bounds(static_cast<std::size_t>(num_parts) + 1, 0);
  bounds[static_cast<std::size_t>(num_parts)] = reader.size();
  {
    std::uint64_t cumulative = 0;
    int part = 1;
    for (std::uint64_t i = 0; i < sizes.size() && part < num_parts; ++i) {
      cumulative += sizes[i];
      // Place boundaries when cumulative bytes cross the per-part target.
      while (part < num_parts &&
             cumulative >= payload_total * static_cast<std::uint64_t>(part) /
                               static_cast<std::uint64_t>(num_parts)) {
        bounds[static_cast<std::size_t>(part)] = i + 1;
        ++part;
      }
    }
    // Any unplaced boundaries collapse to the end (more parts than data).
    for (; part < num_parts; ++part) {
      bounds[static_cast<std::size_t>(part)] = reader.size();
    }
  }

  IPA_RETURN_IF_ERROR(reader.seek(0));
  for (int k = 0; k < num_parts; ++k) {
    const std::uint64_t first = bounds[static_cast<std::size_t>(k)];
    const std::uint64_t last = bounds[static_cast<std::size_t>(k) + 1];

    auto metadata = reader.info().metadata;
    metadata["part.index"] = std::to_string(k);
    metadata["part.count"] = std::to_string(num_parts);
    metadata["part.first"] = std::to_string(first);
    metadata["part.parent"] = reader.info().name;

    PartInfo part;
    part.path = strings::format("%s.part%d.ipd", out_prefix.c_str(), k);
    part.first_record = first;
    part.record_count = last - first;

    IPA_ASSIGN_OR_RETURN(
        DatasetWriter writer,
        DatasetWriter::create(part.path, reader.info().name + "/part" + std::to_string(k),
                              std::move(metadata)));
    for (std::uint64_t i = first; i < last; ++i) {
      IPA_ASSIGN_OR_RETURN(const Record record, reader.next());
      IPA_RETURN_IF_ERROR(writer.append(record));
    }
    IPA_RETURN_IF_ERROR(writer.finish());

    // Record the finished part's size.
    if (std::FILE* fp = std::fopen(part.path.c_str(), "rb")) {
      std::fseek(fp, 0, SEEK_END);
      const long size = std::ftell(fp);
      part.bytes = size < 0 ? 0 : static_cast<std::uint64_t>(size);
      std::fclose(fp);
    }
    result.parts.push_back(std::move(part));
  }
  return result;
}

Status verify_split(const std::string& source_path, const SplitResult& split) {
  IPA_ASSIGN_OR_RETURN(DatasetReader source, DatasetReader::open(source_path));
  std::uint64_t checked = 0;
  for (const PartInfo& part : split.parts) {
    IPA_ASSIGN_OR_RETURN(DatasetReader reader, DatasetReader::open(part.path));
    if (reader.size() != part.record_count) {
      return data_loss("split: part record count mismatch in " + part.path);
    }
    if (part.first_record != checked) {
      return data_loss("split: parts are not contiguous at " + part.path);
    }
    for (std::uint64_t i = 0; i < reader.size(); ++i) {
      IPA_ASSIGN_OR_RETURN(const Record from_part, reader.next());
      IPA_ASSIGN_OR_RETURN(const Record from_source, source.next());
      if (!(from_part == from_source)) {
        return data_loss(strings::format("split: record %llu differs in %s",
                                         static_cast<unsigned long long>(checked + i),
                                         part.path.c_str()));
      }
    }
    checked += reader.size();
  }
  if (checked != source.size()) {
    return data_loss("split: parts cover " + std::to_string(checked) + " of " +
                     std::to_string(source.size()) + " records");
  }
  return Status::ok();
}

}  // namespace ipa::data
