// Columnar record batch: the unit of the batched analysis hot path.
//
// A RecordBatch holds N records column-major: one dense, row-aligned column
// per interned schema slot (real/int/string/vec storage + a per-row
// presence mask), so the engine's inner loop reads typed arrays by slot id
// instead of string-matching field names per record. Batches convert
// to/from row-form Records exactly — values, indices and presence survive a
// round trip; field order is normalized to schema slot order.
//
// Kind conflicts (a field whose kind differs from the column's) are legal
// in the row format and preserved exactly here via a small row-wise
// overflow side-table; conflicting cells are rare and never lossy.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/record.hpp"
#include "data/schema.hpp"

namespace ipa::data {

class RecordBatch {
 public:
  /// Effective kind of one cell (resolves presence and overflow).
  enum class CellKind : std::uint8_t { kNull = 0, kInt, kReal, kStr, kVec };

  /// Batches made by one reader share its interned Schema; a standalone
  /// batch creates its own.
  explicit RecordBatch(SchemaPtr schema = nullptr);

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }

  std::size_t rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  /// Drop all rows, keep the schema and column capacity (the engine reuses
  /// one batch across the whole dataset).
  void clear();

  /// Append a row-form record (fields normalized to slot order).
  void append(const Record& record);

  /// Decode one wire-encoded Record (the .ipd frame payload) straight into
  /// the columns — the allocation-light path DatasetReader::read_batch uses.
  Status append_encoded(ser::Reader& r);

  /// Exact row-form view of row `row`.
  Record to_record(std::size_t row) const;
  std::vector<Record> to_records() const;
  static RecordBatch from_records(const std::vector<Record>& records);

  /// Record index (the dataset position stamped by the writer).
  std::uint64_t index(std::size_t row) const { return indices_[row]; }

  // --- typed cell access (slot from schema(), row < rows()) ----------------
  CellKind cell_kind(int slot, std::size_t row) const;
  std::int64_t cell_int(int slot, std::size_t row) const;
  double cell_real(int slot, std::size_t row) const;
  const std::string& cell_str(int slot, std::size_t row) const;
  std::span<const double> cell_vec(int slot, std::size_t row) const;
  /// Numeric widening identical to Value::to_number (ints widen, others
  /// fail); returns false for null/non-numeric cells.
  bool cell_number(int slot, std::size_t row, double* out) const;

  /// Materialize one cell as a row-form Value (null cells return false).
  bool cell_value(int slot, std::size_t row, Value* out) const;

  /// Columnar serialization (snapshot/transfer of whole batches).
  void encode(ser::Writer& w) const;
  static Result<RecordBatch> decode(ser::Reader& r);

  /// Approximate decoded size, mirroring Record::encoded_size_hint.
  std::size_t encoded_size_hint() const;

 private:
  // Per-row presence marker inside a column.
  static constexpr std::uint8_t kAbsent = 0;
  static constexpr std::uint8_t kPresent = 1;
  static constexpr std::uint8_t kOverflow = 2;  // value lives in overflow_

  struct Column {
    ColumnKind kind = ColumnKind::kInt;
    std::vector<std::uint8_t> mask;        // row-aligned presence
    std::vector<std::int64_t> ints;        // kind == kInt (row-aligned)
    std::vector<double> reals;             // kind == kReal (row-aligned)
    std::vector<std::string> strs;         // kind == kStr (row-aligned)
    std::vector<double> vec_values;        // kind == kVec: flattened payload
    std::vector<std::uint64_t> vec_offsets;  // kind == kVec: rows()+1 bounds
  };

  struct OverflowCell {
    std::uint32_t row;
    std::int32_t slot;
    Value value;
  };

  Column& column_for_slot(int slot);
  /// Pad every column that did not receive a value for the row being closed.
  void finish_row();
  void push_null(Column& column);
  void set_cell(int slot, std::size_t row, const Value& value);
  const Value* overflow_at(int slot, std::size_t row) const;

  SchemaPtr schema_;
  std::size_t rows_ = 0;
  std::vector<std::uint64_t> indices_;
  std::vector<Column> columns_;  // indexed by schema slot id
  std::vector<OverflowCell> overflow_;
  // Slot of the i-th field of the previously decoded record. Records of one
  // dataset nearly always share a field layout, so append_encoded checks
  // this before the schema's map lookup: one string compare per field on
  // the homogeneous path. Slots are append-only, so stale hints only miss.
  std::vector<int> layout_hint_;
};

}  // namespace ipa::data
