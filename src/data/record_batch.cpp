#include "data/record_batch.hpp"

#include <algorithm>

namespace ipa::data {
namespace {

// Wire tags shared with Value::encode.
constexpr std::uint8_t kTagInt = 0;
constexpr std::uint8_t kTagReal = 1;
constexpr std::uint8_t kTagStr = 2;
constexpr std::uint8_t kTagVec = 3;

ColumnKind kind_of(const Value& value) {
  if (value.is_int()) return ColumnKind::kInt;
  if (value.is_real()) return ColumnKind::kReal;
  if (value.is_str()) return ColumnKind::kStr;
  return ColumnKind::kVec;
}

}  // namespace

RecordBatch::RecordBatch(SchemaPtr schema)
    : schema_(schema ? std::move(schema) : std::make_shared<Schema>()) {}

void RecordBatch::clear() {
  rows_ = 0;
  indices_.clear();
  overflow_.clear();
  for (Column& column : columns_) {
    column.mask.clear();
    column.ints.clear();
    column.reals.clear();
    column.strs.clear();
    column.vec_values.clear();
    column.vec_offsets.clear();
    if (column.kind == ColumnKind::kVec) column.vec_offsets.push_back(0);
  }
}

RecordBatch::Column& RecordBatch::column_for_slot(int slot) {
  while (columns_.size() <= static_cast<std::size_t>(slot)) {
    Column column;
    column.kind = schema_->kind(static_cast<int>(columns_.size()));
    // Backfill nulls for rows closed before this field first appeared.
    column.mask.assign(rows_, kAbsent);
    switch (column.kind) {
      case ColumnKind::kInt: column.ints.assign(rows_, 0); break;
      case ColumnKind::kReal: column.reals.assign(rows_, 0.0); break;
      case ColumnKind::kStr: column.strs.assign(rows_, std::string()); break;
      case ColumnKind::kVec: column.vec_offsets.assign(rows_ + 1, 0); break;
    }
    columns_.push_back(std::move(column));
  }
  return columns_[static_cast<std::size_t>(slot)];
}

void RecordBatch::push_null(Column& column) {
  column.mask.push_back(kAbsent);
  switch (column.kind) {
    case ColumnKind::kInt: column.ints.push_back(0); break;
    case ColumnKind::kReal: column.reals.push_back(0.0); break;
    case ColumnKind::kStr: column.strs.emplace_back(); break;
    case ColumnKind::kVec: column.vec_offsets.push_back(column.vec_values.size()); break;
  }
}

void RecordBatch::finish_row() {
  for (Column& column : columns_) {
    if (column.mask.size() <= rows_) push_null(column);
  }
}

void RecordBatch::set_cell(int slot, std::size_t row, const Value& value) {
  Column& column = column_for_slot(slot);
  if (column.mask.size() > row) return;  // duplicate field name: first wins
  const ColumnKind value_kind = kind_of(value);
  if (value_kind != column.kind) {
    // Kind conflict: keep the exact value in the overflow side-table and a
    // null placeholder in the column so rows stay aligned.
    push_null(column);
    column.mask.back() = kOverflow;
    overflow_.push_back(OverflowCell{static_cast<std::uint32_t>(row),
                                     static_cast<std::int32_t>(slot), value});
    return;
  }
  column.mask.push_back(kPresent);
  switch (column.kind) {
    case ColumnKind::kInt: column.ints.push_back(value.as_int()); break;
    case ColumnKind::kReal: column.reals.push_back(value.as_real()); break;
    case ColumnKind::kStr: column.strs.push_back(value.as_str()); break;
    case ColumnKind::kVec: {
      const Value::RealVec& vec = value.as_vec();
      column.vec_values.insert(column.vec_values.end(), vec.begin(), vec.end());
      column.vec_offsets.push_back(column.vec_values.size());
      break;
    }
  }
}

void RecordBatch::append(const Record& record) {
  indices_.push_back(record.index());
  for (const auto& [name, value] : record.fields()) {
    const int slot = schema_->intern(name, kind_of(value));
    set_cell(slot, rows_, value);
  }
  finish_row();
  ++rows_;
}

Status RecordBatch::append_encoded(ser::Reader& r) {
  IPA_ASSIGN_OR_RETURN(const std::uint64_t index, r.varint());
  IPA_ASSIGN_OR_RETURN(const std::uint64_t count, r.varint());
  if (count > 4096) return data_loss("record batch: implausible field count");
  indices_.push_back(index);
  for (std::uint64_t i = 0; i < count; ++i) {
    IPA_ASSIGN_OR_RETURN(const std::string_view name, r.string_view());
    IPA_ASSIGN_OR_RETURN(const std::uint8_t tag, r.u8());
    if (tag > kTagVec) return data_loss("record batch: unknown value tag");
    const auto kind = static_cast<ColumnKind>(tag);
    int slot;
    if (i < layout_hint_.size() && schema_->name(layout_hint_[i]) == name) {
      slot = layout_hint_[i];
    } else {
      slot = schema_->intern(name, kind);
      if (i < layout_hint_.size()) {
        layout_hint_[i] = slot;
      } else {
        layout_hint_.push_back(slot);  // i grows by one per field, so i == size()
      }
    }
    Column& column = column_for_slot(slot);
    if (column.mask.size() > rows_) {
      return data_loss("record batch: duplicate field '" + std::string(name) + "'");
    }
    const bool direct = column.kind == kind;
    switch (tag) {
      case kTagInt: {
        IPA_ASSIGN_OR_RETURN(const std::int64_t v, r.svarint());
        if (direct) {
          column.mask.push_back(kPresent);
          column.ints.push_back(v);
        } else {
          set_cell(slot, rows_, Value(v));
        }
        break;
      }
      case kTagReal: {
        IPA_ASSIGN_OR_RETURN(const double v, r.f64());
        if (direct) {
          column.mask.push_back(kPresent);
          column.reals.push_back(v);
        } else {
          set_cell(slot, rows_, Value(v));
        }
        break;
      }
      case kTagStr: {
        IPA_ASSIGN_OR_RETURN(std::string v, r.string());
        if (direct) {
          column.mask.push_back(kPresent);
          column.strs.push_back(std::move(v));
        } else {
          set_cell(slot, rows_, Value(std::move(v)));
        }
        break;
      }
      case kTagVec: {
        IPA_ASSIGN_OR_RETURN(const std::uint64_t n, r.varint());
        if (n > ser::Reader::kMaxFieldLen / sizeof(double)) {
          return data_loss("record batch: vector too large");
        }
        if (direct) {
          const std::size_t old = column.vec_values.size();
          column.vec_values.resize(old + static_cast<std::size_t>(n));
          IPA_RETURN_IF_ERROR(r.f64_array(column.vec_values.data() + old,
                                          static_cast<std::size_t>(n)));
          column.mask.push_back(kPresent);
          column.vec_offsets.push_back(column.vec_values.size());
        } else {
          Value::RealVec vec(static_cast<std::size_t>(n));
          IPA_RETURN_IF_ERROR(r.f64_array(vec.data(), vec.size()));
          set_cell(slot, rows_, Value(std::move(vec)));
        }
        break;
      }
    }
  }
  finish_row();
  ++rows_;
  return Status::ok();
}

const Value* RecordBatch::overflow_at(int slot, std::size_t row) const {
  for (const OverflowCell& cell : overflow_) {
    if (cell.row == row && cell.slot == slot) return &cell.value;
  }
  return nullptr;
}

RecordBatch::CellKind RecordBatch::cell_kind(int slot, std::size_t row) const {
  if (slot < 0 || static_cast<std::size_t>(slot) >= columns_.size()) return CellKind::kNull;
  const Column& column = columns_[static_cast<std::size_t>(slot)];
  if (row >= column.mask.size() || column.mask[row] == kAbsent) return CellKind::kNull;
  if (column.mask[row] == kOverflow) {
    const Value* value = overflow_at(slot, row);
    if (value == nullptr) return CellKind::kNull;
    switch (kind_of(*value)) {
      case ColumnKind::kInt: return CellKind::kInt;
      case ColumnKind::kReal: return CellKind::kReal;
      case ColumnKind::kStr: return CellKind::kStr;
      case ColumnKind::kVec: return CellKind::kVec;
    }
  }
  switch (column.kind) {
    case ColumnKind::kInt: return CellKind::kInt;
    case ColumnKind::kReal: return CellKind::kReal;
    case ColumnKind::kStr: return CellKind::kStr;
    case ColumnKind::kVec: return CellKind::kVec;
  }
  return CellKind::kNull;
}

std::int64_t RecordBatch::cell_int(int slot, std::size_t row) const {
  const Column& column = columns_[static_cast<std::size_t>(slot)];
  if (column.mask[row] == kOverflow) return overflow_at(slot, row)->as_int();
  return column.ints[row];
}

double RecordBatch::cell_real(int slot, std::size_t row) const {
  const Column& column = columns_[static_cast<std::size_t>(slot)];
  if (column.mask[row] == kOverflow) return overflow_at(slot, row)->as_real();
  return column.reals[row];
}

const std::string& RecordBatch::cell_str(int slot, std::size_t row) const {
  const Column& column = columns_[static_cast<std::size_t>(slot)];
  if (column.mask[row] == kOverflow) return overflow_at(slot, row)->as_str();
  return column.strs[row];
}

std::span<const double> RecordBatch::cell_vec(int slot, std::size_t row) const {
  const Column& column = columns_[static_cast<std::size_t>(slot)];
  if (column.mask[row] == kOverflow) {
    const Value::RealVec& vec = overflow_at(slot, row)->as_vec();
    return {vec.data(), vec.size()};
  }
  const std::size_t begin = static_cast<std::size_t>(column.vec_offsets[row]);
  const std::size_t end = static_cast<std::size_t>(column.vec_offsets[row + 1]);
  return {column.vec_values.data() + begin, end - begin};
}

bool RecordBatch::cell_number(int slot, std::size_t row, double* out) const {
  switch (cell_kind(slot, row)) {
    case CellKind::kReal: *out = cell_real(slot, row); return true;
    case CellKind::kInt: *out = static_cast<double>(cell_int(slot, row)); return true;
    default: return false;
  }
}

bool RecordBatch::cell_value(int slot, std::size_t row, Value* out) const {
  switch (cell_kind(slot, row)) {
    case CellKind::kNull: return false;
    case CellKind::kInt: *out = Value(cell_int(slot, row)); return true;
    case CellKind::kReal: *out = Value(cell_real(slot, row)); return true;
    case CellKind::kStr: *out = Value(cell_str(slot, row)); return true;
    case CellKind::kVec: {
      const auto span = cell_vec(slot, row);
      *out = Value(Value::RealVec(span.begin(), span.end()));
      return true;
    }
  }
  return false;
}

Record RecordBatch::to_record(std::size_t row) const {
  Record record(indices_[row]);
  Value value;
  for (std::size_t slot = 0; slot < columns_.size(); ++slot) {
    if (cell_value(static_cast<int>(slot), row, &value)) {
      record.set(schema_->name(static_cast<int>(slot)), std::move(value));
    }
  }
  return record;
}

std::vector<Record> RecordBatch::to_records() const {
  std::vector<Record> records;
  records.reserve(rows_);
  for (std::size_t row = 0; row < rows_; ++row) records.push_back(to_record(row));
  return records;
}

RecordBatch RecordBatch::from_records(const std::vector<Record>& records) {
  RecordBatch batch;
  for (const Record& record : records) batch.append(record);
  return batch;
}

void RecordBatch::encode(ser::Writer& w) const {
  schema_->encode(w);
  w.varint(rows_);
  for (const std::uint64_t index : indices_) w.varint(index);
  w.varint(columns_.size());
  for (const Column& column : columns_) {
    w.u8(static_cast<std::uint8_t>(column.kind));
    w.raw(column.mask.data(), column.mask.size());
    switch (column.kind) {
      case ColumnKind::kInt:
        for (const std::int64_t v : column.ints) w.svarint(v);
        break;
      case ColumnKind::kReal:
        w.f64_array(column.reals.data(), column.reals.size());
        break;
      case ColumnKind::kStr:
        for (const std::string& s : column.strs) w.string(s);
        break;
      case ColumnKind::kVec:
        w.varint(column.vec_values.size());
        w.f64_array(column.vec_values.data(), column.vec_values.size());
        for (const std::uint64_t off : column.vec_offsets) w.varint(off);
        break;
    }
  }
  w.varint(overflow_.size());
  for (const OverflowCell& cell : overflow_) {
    w.varint(cell.row);
    w.varint(static_cast<std::uint64_t>(cell.slot));
    cell.value.encode(w);
  }
}

Result<RecordBatch> RecordBatch::decode(ser::Reader& r) {
  auto schema = Schema::decode(r);
  IPA_RETURN_IF_ERROR(schema.status());
  RecordBatch batch(std::make_shared<Schema>(std::move(*schema)));
  IPA_ASSIGN_OR_RETURN(const std::uint64_t rows, r.varint());
  if (rows > ser::Reader::kMaxFieldLen) return data_loss("record batch: implausible row count");
  batch.rows_ = static_cast<std::size_t>(rows);
  batch.indices_.reserve(batch.rows_);
  for (std::uint64_t i = 0; i < rows; ++i) {
    IPA_ASSIGN_OR_RETURN(const std::uint64_t index, r.varint());
    batch.indices_.push_back(index);
  }
  IPA_ASSIGN_OR_RETURN(const std::uint64_t column_count, r.varint());
  if (column_count != batch.schema_->field_count()) {
    return data_loss("record batch: column/schema count mismatch");
  }
  for (std::uint64_t c = 0; c < column_count; ++c) {
    Column column;
    IPA_ASSIGN_OR_RETURN(const std::uint8_t kind, r.u8());
    if (kind > 3) return data_loss("record batch: bad column kind");
    column.kind = static_cast<ColumnKind>(kind);
    if (column.kind != batch.schema_->kind(static_cast<int>(c))) {
      return data_loss("record batch: column kind disagrees with schema");
    }
    column.mask.resize(batch.rows_);
    for (std::size_t i = 0; i < batch.rows_; ++i) {
      IPA_ASSIGN_OR_RETURN(column.mask[i], r.u8());
      if (column.mask[i] > kOverflow) return data_loss("record batch: bad mask byte");
    }
    switch (column.kind) {
      case ColumnKind::kInt:
        column.ints.resize(batch.rows_);
        for (std::size_t i = 0; i < batch.rows_; ++i) {
          IPA_ASSIGN_OR_RETURN(column.ints[i], r.svarint());
        }
        break;
      case ColumnKind::kReal:
        column.reals.resize(batch.rows_);
        IPA_RETURN_IF_ERROR(r.f64_array(column.reals.data(), column.reals.size()));
        break;
      case ColumnKind::kStr:
        column.strs.resize(batch.rows_);
        for (std::size_t i = 0; i < batch.rows_; ++i) {
          IPA_ASSIGN_OR_RETURN(column.strs[i], r.string());
        }
        break;
      case ColumnKind::kVec: {
        IPA_ASSIGN_OR_RETURN(const std::uint64_t values, r.varint());
        if (values > ser::Reader::kMaxFieldLen / sizeof(double)) {
          return data_loss("record batch: vector payload too large");
        }
        column.vec_values.resize(static_cast<std::size_t>(values));
        IPA_RETURN_IF_ERROR(r.f64_array(column.vec_values.data(), column.vec_values.size()));
        column.vec_offsets.resize(batch.rows_ + 1);
        for (std::size_t i = 0; i <= batch.rows_; ++i) {
          IPA_ASSIGN_OR_RETURN(column.vec_offsets[i], r.varint());
          if (column.vec_offsets[i] > column.vec_values.size() ||
              (i > 0 && column.vec_offsets[i] < column.vec_offsets[i - 1])) {
            return data_loss("record batch: corrupt vector offsets");
          }
        }
        if (column.vec_offsets.back() != column.vec_values.size()) {
          return data_loss("record batch: vector offsets do not cover payload");
        }
        break;
      }
    }
    batch.columns_.push_back(std::move(column));
  }
  IPA_ASSIGN_OR_RETURN(const std::uint64_t overflow_count, r.varint());
  if (overflow_count > ser::Reader::kMaxFieldLen) {
    return data_loss("record batch: implausible overflow count");
  }
  for (std::uint64_t i = 0; i < overflow_count; ++i) {
    OverflowCell cell;
    IPA_ASSIGN_OR_RETURN(const std::uint64_t row, r.varint());
    IPA_ASSIGN_OR_RETURN(const std::uint64_t slot, r.varint());
    if (row >= batch.rows_ || slot >= batch.schema_->field_count()) {
      return data_loss("record batch: overflow cell out of range");
    }
    cell.row = static_cast<std::uint32_t>(row);
    cell.slot = static_cast<std::int32_t>(slot);
    auto value = Value::decode(r);
    IPA_RETURN_IF_ERROR(value.status());
    cell.value = std::move(*value);
    batch.overflow_.push_back(std::move(cell));
  }
  return batch;
}

std::size_t RecordBatch::encoded_size_hint() const {
  std::size_t size = 16;
  for (std::size_t slot = 0; slot < columns_.size(); ++slot) {
    const Column& column = columns_[slot];
    size += schema_->name(static_cast<int>(slot)).size() + 2 + column.mask.size();
    switch (column.kind) {
      case ColumnKind::kInt: size += column.ints.size() * 5; break;
      case ColumnKind::kReal: size += column.reals.size() * 8; break;
      case ColumnKind::kStr:
        for (const std::string& s : column.strs) size += s.size() + 2;
        break;
      case ColumnKind::kVec:
        size += column.vec_values.size() * 8 + column.vec_offsets.size() * 3;
        break;
    }
  }
  return size + overflow_.size() * 16;
}

}  // namespace ipa::data
