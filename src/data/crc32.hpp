// CRC-32 (IEEE 802.3 polynomial, reflected) for dataset file integrity.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ipa::data {

/// Incremental CRC-32. Start with crc = 0; feed chunks through update().
class Crc32 {
 public:
  void update(const void* data, std::size_t len);
  std::uint32_t value() const { return ~state_; }
  void reset() { state_ = 0xffffffffu; }

  static std::uint32_t of(const void* data, std::size_t len) {
    Crc32 crc;
    crc.update(data, len);
    return crc.value();
  }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace ipa::data
