// Dataset splitting: the paper's Splitter service core.
//
// "The splitter service will import the dataset from the actual location
// and split it into a pre-configured number of approximately equal parts"
// (§3.4). Parts are contiguous record ranges, balanced by encoded bytes so
// heterogeneous records still yield even analysis work.
//
// The split is a single streaming pass: part boundaries come from a scan of
// the frame headers (no record is ever decoded) and the parts are written
// concurrently on the shared staging pool, each task raw-copying its frame
// range — so the output bytes are identical to a sequential decode/re-encode
// split, just produced in one pass and in parallel.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "data/dataset.hpp"

namespace ipa::data {

struct PartInfo {
  std::string path;             // part file location
  std::uint64_t first_record = 0;
  std::uint64_t record_count = 0;
  std::uint64_t bytes = 0;      // part file size
};

struct SplitResult {
  std::vector<PartInfo> parts;
  std::uint64_t total_records = 0;
  std::uint64_t total_bytes = 0;  // source file size
};

/// Split `source_path` into `num_parts` files named
/// "<out_prefix>.partK.ipd" (K = 0..num_parts-1). Each part carries the
/// parent's metadata plus part.index/part.count/part.first entries.
/// When the dataset has fewer records than parts, the surplus parts are
/// created empty so every analysis engine still receives a file.
Result<SplitResult> split_dataset(const std::string& source_path, const std::string& out_prefix,
                                  int num_parts);

/// Invariant check used by tests and the splitter service: the parts'
/// records, concatenated in order, must equal the source records.
Status verify_split(const std::string& source_path, const SplitResult& split);

}  // namespace ipa::data
