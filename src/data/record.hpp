// A dataset record (the paper's "event"): an ordered bag of named values.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "data/value.hpp"

namespace ipa::data {

class Record {
 public:
  Record() = default;
  explicit Record(std::uint64_t index) : index_(index) {}

  std::uint64_t index() const { return index_; }
  void set_index(std::uint64_t index) { index_ = index; }

  /// Set (or overwrite) a field.
  void set(std::string name, Value value);

  /// Field lookup; nullptr when absent.
  const Value* find(std::string_view name) const;
  bool has(std::string_view name) const { return find(name) != nullptr; }

  /// Typed getters returning fallbacks for absent/mistyped fields.
  double real_or(std::string_view name, double fallback = 0.0) const;
  std::int64_t int_or(std::string_view name, std::int64_t fallback = 0) const;
  std::string str_or(std::string_view name, std::string fallback = "") const;
  const Value::RealVec* vec_or_null(std::string_view name) const;

  const std::vector<std::pair<std::string, Value>>& fields() const { return fields_; }
  std::size_t field_count() const { return fields_.size(); }

  void encode(ser::Writer& w) const;
  static Result<Record> decode(ser::Reader& r);

  /// Approximate in-memory/on-disk size, used by byte-balanced splitting.
  std::size_t encoded_size_hint() const;

  friend bool operator==(const Record& a, const Record& b) = default;

 private:
  std::uint64_t index_ = 0;
  // Ordered list keeps serialization deterministic; linear lookup is fine
  // for the handful of fields a record carries.
  std::vector<std::pair<std::string, Value>> fields_;
};

}  // namespace ipa::data
