// A dataset record (the paper's "event"): an ordered bag of named values.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "data/value.hpp"

namespace ipa::data {

class Record {
 public:
  /// Records with at most this many fields use a plain linear scan; wider
  /// records fall back to a lazily built name-sorted index (wide records
  /// show up in generic/tabular datasets, not the physics path).
  static constexpr std::size_t kLinearLookupMax = 8;

  Record() = default;
  explicit Record(std::uint64_t index) : index_(index) {}

  std::uint64_t index() const { return index_; }
  void set_index(std::uint64_t index) { index_ = index; }

  /// Set (or overwrite) a field.
  void set(std::string name, Value value);

  /// Field lookup; nullptr when absent.
  const Value* find(std::string_view name) const;
  bool has(std::string_view name) const { return find(name) != nullptr; }

  /// Typed getters returning fallbacks for absent/mistyped fields.
  double real_or(std::string_view name, double fallback = 0.0) const;
  std::int64_t int_or(std::string_view name, std::int64_t fallback = 0) const;
  std::string str_or(std::string_view name, std::string fallback = "") const;
  const Value::RealVec* vec_or_null(std::string_view name) const;

  const std::vector<std::pair<std::string, Value>>& fields() const { return fields_; }
  std::size_t field_count() const { return fields_.size(); }

  void encode(ser::Writer& w) const;
  static Result<Record> decode(ser::Reader& r);

  /// Approximate in-memory/on-disk size, used by byte-balanced splitting.
  std::size_t encoded_size_hint() const;

  friend bool operator==(const Record& a, const Record& b) {
    return a.index_ == b.index_ && a.fields_ == b.fields_;
  }

 private:
  const Value* find_sorted(std::string_view name) const;

  std::uint64_t index_ = 0;
  // Ordered list keeps serialization deterministic.
  std::vector<std::pair<std::string, Value>> fields_;
  // Name-sorted view over fields_, built on first wide lookup and
  // invalidated by set(). Records are single-owner objects (the engine
  // worker thread), so the mutable cache needs no synchronization.
  mutable std::vector<std::uint32_t> sorted_;
};

}  // namespace ipa::data
