// SOAP 1.1-style envelopes over HTTP: the "web service" face of the IPA
// manager node.
//
// Calls are routed by the SOAPAction header ("Service#operation"). State
// addressing follows WSRF: an <ipa:Resource id="..."/> header selects the
// service resource the call operates on, and an <ipa:Security token=".."/>
// header carries the proxy credential (the paper's mutual-auth context).
//
// Faults map bidirectionally onto ipa::Status so service code written once
// behaves identically over binary RPC and SOAP.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "common/uri.hpp"
#include "http/http.hpp"
#include "obs/trace.hpp"
#include "xml/xml.hpp"

namespace ipa::soap {

inline constexpr const char* kEnvelopeNs = "http://schemas.xmlsoap.org/soap/envelope/";
inline constexpr const char* kIpaNs = "http://ipa.example.org/2006/services";

/// Per-call context visible to operations.
struct SoapContext {
  std::string service;
  std::string operation;
  std::string resource;   // WSRF resource id from the header, may be empty
  std::string token;      // security token from the header, may be empty
  std::string principal;  // set by the auth hook
};

/// Wrap a body payload into a full envelope. `resource`/`token` become
/// header entries when non-empty.
xml::Node make_envelope(xml::Node body_content, const std::string& resource = "",
                        const std::string& token = "");

/// Extract the first body child from an envelope document. If that child is
/// a Fault, the mapped Status is returned instead.
Result<xml::Node> unwrap_envelope(const xml::Node& envelope);

/// Read Security/Resource headers from an envelope.
void read_headers(const xml::Node& envelope, std::string& resource, std::string& token);

/// Read the <ipa:Trace trace=".." span=".."/> header extension; returns an
/// invalid (zero) context when absent or malformed.
obs::TraceContext read_trace_header(const xml::Node& envelope);

/// soap:Fault <-> Status mapping. Status codes ride in the faultcode detail
/// so remote errors keep their category.
xml::Node status_to_fault(const Status& status);
Status fault_to_status(const xml::Node& fault);

/// A SOAP operation: request body element in, response body element out.
using Operation = std::function<Result<xml::Node>(const SoapContext&, const xml::Node&)>;

/// Token -> principal verification hook (same contract as rpc::AuthFn).
using AuthFn = std::function<Result<std::string>(const std::string& token)>;

/// SOAP endpoint bound to one HTTP path on an embedded HTTP server.
class SoapServer {
 public:
  /// `pool` bounds the embedded HTTP server's connection workers.
  SoapServer(std::string host, std::uint16_t port, std::string path = "/ipa/services",
             net::ServerPoolOptions pool = {});

  /// Operations registered as "Service", "operation". Services marked
  /// authenticated reject calls whose token fails the auth hook.
  void register_operation(const std::string& service, const std::string& operation, Operation fn,
                          bool require_auth = false);
  void set_auth(AuthFn auth) { auth_ = std::move(auth); }

  Result<Uri> start();
  void stop();
  Uri endpoint() const { return http_.endpoint(); }
  const std::string& path() const { return path_; }

  /// The embedded HTTP server, so hosts can hang extra routes off the same
  /// listener (the site registers /metrics and /status here).
  http::Server& http() { return http_; }

 private:
  http::Response handle(const http::Request& request);

  struct Op {
    Operation fn;
    bool require_auth;
  };

  http::Server http_;
  std::string path_;
  AuthFn auth_;
  std::map<std::string, Op> operations_;  // "Service#operation" -> Op
};

/// Client for one SOAP endpoint. The keep-alive connection under a call can
/// die between calls; when a request fails before any response byte arrives
/// the client re-dials the endpoint and replays it once (the standard
/// stale-connection retry), so a dropped SOAP channel costs latency, not
/// the session.
class SoapClient {
 public:
  static Result<SoapClient> connect(const Uri& endpoint, std::string path = "/ipa/services",
                                    double timeout_s = 5.0);

  SoapClient(SoapClient&&) = default;
  SoapClient& operator=(SoapClient&&) = default;

  /// Invoke Service#operation with `args` as the request body element.
  /// Returns the response body element; remote faults surface as Status.
  Result<xml::Node> call(const std::string& service, const std::string& operation,
                         xml::Node args, const std::string& resource = "",
                         double timeout_s = 30.0);

  void set_token(std::string token) { token_ = std::move(token); }
  const std::string& token() const { return token_; }

  /// Times the connection was re-dialed after a stale-connection failure.
  std::uint64_t reconnects() const { return reconnects_; }

  /// Chaos hook: sever the current connection; the next call re-dials.
  void drop_connection() { http_.close(); }

 private:
  SoapClient(http::Client http, Uri endpoint, std::string path, double connect_timeout_s)
      : http_(std::move(http)),
        endpoint_(std::move(endpoint)),
        path_(std::move(path)),
        connect_timeout_s_(connect_timeout_s) {}

  http::Client http_;
  Uri endpoint_;
  std::string path_;
  double connect_timeout_s_ = 5.0;
  std::string token_;
  std::uint64_t reconnects_ = 0;
};

}  // namespace ipa::soap
