#include "soap/soap.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"

namespace ipa::soap {
namespace {

std::string hex_u64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::uint64_t parse_hex_u64(const std::string& text) {
  if (text.empty()) return 0;
  return std::strtoull(text.c_str(), nullptr, 16);
}

/// Status code <-> faultcode text. Client-side categories map onto
/// "soap:Client", server-side onto "soap:Server", with the precise code in
/// an <ipa:StatusCode> detail element.
bool is_client_fault(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kPermissionDenied:
    case StatusCode::kUnauthenticated:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
      return true;
    default:
      return false;
  }
}

}  // namespace

xml::Node make_envelope(xml::Node body_content, const std::string& resource,
                        const std::string& token) {
  xml::Node envelope("soap:Envelope");
  envelope.set_attribute("xmlns:soap", kEnvelopeNs);
  envelope.set_attribute("xmlns:ipa", kIpaNs);
  const obs::TraceContext trace = obs::current_trace();
  if (!resource.empty() || !token.empty() || trace.valid()) {
    xml::Node& header = envelope.add_child("soap:Header");
    if (!token.empty()) {
      header.add_child("ipa:Security").set_attribute("token", token);
    }
    if (!resource.empty()) {
      header.add_child("ipa:Resource").set_attribute("id", resource);
    }
    if (trace.valid()) {
      // Trace propagation: the caller's active span travels with the call so
      // the server's operation span becomes its child.
      xml::Node& node = header.add_child("ipa:Trace");
      node.set_attribute("trace", hex_u64(trace.trace_id));
      node.set_attribute("span", hex_u64(trace.span_id));
    }
  }
  envelope.add_child("soap:Body").add_child(std::move(body_content));
  return envelope;
}

Result<xml::Node> unwrap_envelope(const xml::Node& envelope) {
  if (!xml::name_matches(envelope.name(), "Envelope")) {
    return data_loss("soap: root element is not an Envelope");
  }
  const xml::Node* body = envelope.find("Body");
  if (body == nullptr) return data_loss("soap: missing Body");
  if (body->children().empty()) return data_loss("soap: empty Body");
  const xml::Node& first = body->children().front();
  if (xml::name_matches(first.name(), "Fault")) {
    return fault_to_status(first);
  }
  return first;
}

void read_headers(const xml::Node& envelope, std::string& resource, std::string& token) {
  resource.clear();
  token.clear();
  const xml::Node* header = envelope.find("Header");
  if (header == nullptr) return;
  if (const xml::Node* sec = header->find("Security")) token = sec->attribute("token");
  if (const xml::Node* res = header->find("Resource")) resource = res->attribute("id");
}

obs::TraceContext read_trace_header(const xml::Node& envelope) {
  const xml::Node* header = envelope.find("Header");
  if (header == nullptr) return {};
  const xml::Node* trace = header->find("Trace");
  if (trace == nullptr) return {};
  return {parse_hex_u64(trace->attribute("trace")), parse_hex_u64(trace->attribute("span"))};
}

xml::Node status_to_fault(const Status& status) {
  xml::Node fault("soap:Fault");
  fault.add_child("faultcode")
      .set_text(is_client_fault(status.code()) ? "soap:Client" : "soap:Server");
  fault.add_child("faultstring").set_text(status.message());
  xml::Node& detail = fault.add_child("detail");
  detail.add_child("ipa:StatusCode").set_text(std::string(to_string(status.code())));
  return fault;
}

Status fault_to_status(const xml::Node& fault) {
  const std::string message = fault.child_text("faultstring", "remote fault");
  StatusCode code = StatusCode::kInternal;
  if (const xml::Node* detail = fault.find("detail")) {
    const std::string name = detail->child_text("StatusCode");
    for (int c = 1; c <= static_cast<int>(StatusCode::kCancelled); ++c) {
      if (to_string(static_cast<StatusCode>(c)) == name) {
        code = static_cast<StatusCode>(c);
        break;
      }
    }
  }
  return Status(code, message);
}

SoapServer::SoapServer(std::string host, std::uint16_t port, std::string path,
                       net::ServerPoolOptions pool)
    : http_(std::move(host), port, pool), path_(std::move(path)) {}

void SoapServer::register_operation(const std::string& service, const std::string& operation,
                                    Operation fn, bool require_auth) {
  operations_[service + "#" + operation] = Op{std::move(fn), require_auth};
}

Result<Uri> SoapServer::start() {
  http_.route(path_, [this](const http::Request& req) { return handle(req); });
  return http_.start();
}

void SoapServer::stop() { http_.stop(); }

http::Response SoapServer::handle(const http::Request& request) {
  const auto respond = [](int http_status, const xml::Node& body_element) {
    const xml::Node envelope = make_envelope(body_element);
    return http::Response::make(http_status,
                                "<?xml version=\"1.0\"?>\n" + envelope.to_string(),
                                "text/xml; charset=utf-8");
  };
  const auto respond_fault = [&](const Status& status) {
    const int http_status = is_client_fault(status.code()) ? 400 : 500;
    return respond(http_status, status_to_fault(status));
  };

  if (request.method != "POST") {
    return respond_fault(invalid_argument("soap: expected POST"));
  }

  // SOAPAction: "Service#operation" (optionally quoted).
  std::string action = request.header_or("SOAPAction");
  if (action.size() >= 2 && action.front() == '"' && action.back() == '"') {
    action = action.substr(1, action.size() - 2);
  }
  if (action.empty()) return respond_fault(invalid_argument("soap: missing SOAPAction"));

  const auto it = operations_.find(action);
  if (it == operations_.end()) {
    return respond_fault(unimplemented("soap: no operation '" + action + "'"));
  }

  auto doc = xml::parse(request.body);
  if (!doc.is_ok()) return respond_fault(doc.status());
  auto body = unwrap_envelope(*doc);
  if (!body.is_ok()) return respond_fault(body.status());

  SoapContext ctx;
  const std::size_t hash = action.find('#');
  ctx.service = action.substr(0, hash);
  ctx.operation = action.substr(hash + 1);
  read_headers(*doc, ctx.resource, ctx.token);

  // Adopt the caller's trace (or none) for the dispatch, and time the
  // operation as a child span. The resource id doubles as the session label
  // so /status can list the op spans next to the phase spans they parent.
  obs::TraceContextScope trace_scope(read_trace_header(*doc));
  obs::ScopedSpan op_span("soap." + ctx.service + "." + ctx.operation);
  op_span.set_session(ctx.resource);

  if (it->second.require_auth) {
    if (!auth_) return respond_fault(unauthenticated("soap: no authenticator installed"));
    auto principal = auth_(ctx.token);
    if (!principal.is_ok()) {
      op_span.set_status(principal.status());
      return respond_fault(principal.status());
    }
    ctx.principal = std::move(*principal);
  }

  auto result = it->second.fn(ctx, *body);
  if (!result.is_ok()) {
    op_span.set_status(result.status());
    return respond_fault(result.status());
  }
  return respond(200, *result);
}

Result<SoapClient> SoapClient::connect(const Uri& endpoint, std::string path, double timeout_s) {
  auto http = http::Client::connect(endpoint.host, endpoint.port, timeout_s);
  IPA_RETURN_IF_ERROR(http.status());
  return SoapClient(std::move(*http), endpoint, std::move(path), timeout_s);
}

Result<xml::Node> SoapClient::call(const std::string& service, const std::string& operation,
                                   xml::Node args, const std::string& resource,
                                   double timeout_s) {
  // The call span must be current before the envelope is built so the
  // <ipa:Trace> header carries *this* span as the server op's parent.
  obs::ScopedSpan call_span("soap.call." + service + "." + operation);
  call_span.set_session(resource);
  const xml::Node envelope = make_envelope(std::move(args), resource, token_);

  http::Request req;
  req.method = "POST";
  req.target = path_;
  req.headers["Content-Type"] = "text/xml; charset=utf-8";
  req.headers["SOAPAction"] = "\"" + service + "#" + operation + "\"";
  req.body = "<?xml version=\"1.0\"?>\n" + envelope.to_string();

  bool got_any_bytes = false;
  auto response = http_.send(req, timeout_s, &got_any_bytes);
  if (!response.is_ok() && !got_any_bytes &&
      response.status().code() != StatusCode::kDeadlineExceeded) {
    // The keep-alive connection died before any response byte arrived, so
    // the request is safe to replay on a fresh connection.
    auto fresh = http::Client::connect(endpoint_.host, endpoint_.port, connect_timeout_s_);
    IPA_RETURN_IF_ERROR(
        fresh.status().with_prefix("soap: reconnect after " +
                                   response.status().message()));
    http_ = std::move(*fresh);
    ++reconnects_;
    response = http_.send(std::move(req), timeout_s);
  }
  if (!response.is_ok()) {
    call_span.set_status(response.status());
    return response.status();
  }
  if (response->status == 503) {
    // The server shed this connection at the accept queue (plain-text body,
    // not an envelope): surface a typed saturation error with the server's
    // pacing hint instead of an XML parse failure.
    const Status saturated = resource_exhausted(
        "soap: server saturated (Retry-After=" + response->header_or("Retry-After", "?") + "s)");
    call_span.set_status(saturated);
    return saturated;
  }
  IPA_ASSIGN_OR_RETURN(const xml::Node doc, xml::parse(response->body));
  auto result = unwrap_envelope(doc);
  if (!result.is_ok()) call_span.set_status(result.status());
  return result;
}

}  // namespace ipa::soap
