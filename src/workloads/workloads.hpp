// Synthetic record-based workloads for the paper's other motivating
// domains (§1): DNA sequencing in cellular biology and stock trading
// records in business. Both produce .ipd datasets any IPA session can
// analyze — demonstrating that the framework "is not specific to any
// particular science application, although it does require record-based
// data" (paper §6).
#pragma once

#include <string>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "data/dataset.hpp"

namespace ipa::workloads {

// --- DNA sequencing ---------------------------------------------------------

struct DnaConfig {
  int read_length = 150;          // bases per read
  double gc_content = 0.42;       // probability of G or C per base
  std::string motif = "GATTACA";  // planted motif
  double motif_rate = 0.08;       // fraction of reads carrying the motif
};

/// Record fields: "seq" (string), "quality" (real: mean base quality),
/// "lane" (int).
data::Record generate_read(Rng& rng, const DnaConfig& config, std::uint64_t index);

Result<data::DatasetInfo> generate_dna_dataset(const std::string& path, const std::string& name,
                                               std::uint64_t reads,
                                               const DnaConfig& config = {},
                                               std::uint64_t seed = Rng::kDefaultSeed);

/// Fraction of G/C bases in a sequence.
double gc_fraction(const std::string& sequence);

/// Count non-overlapping occurrences of `motif`.
int count_motif(const std::string& sequence, const std::string& motif);

/// PawScript analysis: GC-content histogram + motif counting.
const char* dna_script();

// --- stock trading ------------------------------------------------------------

struct StockConfig {
  std::vector<std::string> symbols = {"SLAC", "TECX", "GRID", "AIDA", "PNUT"};
  double initial_price = 100.0;
  double volatility = 0.015;      // per-tick log-return sigma
  double mean_volume = 800;       // exponential tick volume
};

/// Tick records: "symbol" (string), "price" (real), "volume" (int),
/// "ts" (int: tick sequence time).
/// Per-symbol prices follow independent geometric random walks.
class StockTickGenerator {
 public:
  StockTickGenerator(StockConfig config, std::uint64_t seed);
  data::Record next();

 private:
  StockConfig config_;
  Rng rng_;
  std::vector<double> prices_;
  std::uint64_t tick_ = 0;
};

Result<data::DatasetInfo> generate_stock_dataset(const std::string& path,
                                                 const std::string& name, std::uint64_t ticks,
                                                 const StockConfig& config = {},
                                                 std::uint64_t seed = Rng::kDefaultSeed);

/// PawScript analysis: per-tick return histogram and volume profile.
const char* stock_script();

}  // namespace ipa::workloads
