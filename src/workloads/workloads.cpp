#include "workloads/workloads.hpp"

#include <cmath>

namespace ipa::workloads {

data::Record generate_read(Rng& rng, const DnaConfig& config, std::uint64_t index) {
  std::string seq;
  seq.reserve(static_cast<std::size_t>(config.read_length));
  for (int i = 0; i < config.read_length; ++i) {
    if (rng.bernoulli(config.gc_content)) {
      seq.push_back(rng.bernoulli(0.5) ? 'G' : 'C');
    } else {
      seq.push_back(rng.bernoulli(0.5) ? 'A' : 'T');
    }
  }
  if (rng.bernoulli(config.motif_rate) &&
      config.read_length > static_cast<int>(config.motif.size())) {
    const auto pos = static_cast<std::size_t>(rng.uniform_u64(
        0, static_cast<std::uint64_t>(config.read_length) - config.motif.size()));
    seq.replace(pos, config.motif.size(), config.motif);
  }

  data::Record record(index);
  record.set("seq", std::move(seq));
  record.set("quality", rng.normal(34.0, 3.0));
  record.set("lane", static_cast<std::int64_t>(rng.uniform_u64(1, 8)));
  return record;
}

Result<data::DatasetInfo> generate_dna_dataset(const std::string& path, const std::string& name,
                                               std::uint64_t reads, const DnaConfig& config,
                                               std::uint64_t seed) {
  Rng rng(seed);
  auto writer = data::DatasetWriter::create(
      path, name,
      {{"experiment", "genome"},
       {"read_length", std::to_string(config.read_length)},
       {"motif", config.motif}});
  IPA_RETURN_IF_ERROR(writer.status());
  for (std::uint64_t i = 0; i < reads; ++i) {
    IPA_RETURN_IF_ERROR(writer->append(generate_read(rng, config, i)));
  }
  IPA_RETURN_IF_ERROR(writer->finish());
  auto reader = data::DatasetReader::open(path);
  IPA_RETURN_IF_ERROR(reader.status());
  return reader->info();
}

double gc_fraction(const std::string& sequence) {
  if (sequence.empty()) return 0.0;
  std::size_t gc = 0;
  for (const char base : sequence) {
    if (base == 'G' || base == 'C') ++gc;
  }
  return static_cast<double>(gc) / static_cast<double>(sequence.size());
}

int count_motif(const std::string& sequence, const std::string& motif) {
  if (motif.empty()) return 0;
  int count = 0;
  std::size_t pos = 0;
  while ((pos = sequence.find(motif, pos)) != std::string::npos) {
    ++count;
    pos += motif.size();
  }
  return count;
}

const char* dna_script() {
  return R"(
// DNA read quality control: GC content and motif frequency.
func begin(tree) {
  tree.book_h1("/dna/gc", 50, 0, 1, "GC fraction per read");
  tree.book_h1("/dna/quality", 40, 20, 50, "mean base quality");
  tree.book_h1("/dna/motif_hits", 5, 0, 5, "GATTACA occurrences per read");
}

func process(event, tree) {
  let seq = event.str("seq");
  let n = len(seq);
  if (n == 0) { return 0; }
  let gc = 0;
  let hits = 0;
  let i = 0;
  while (i < n) {
    let c = seq[i];
    if (c == "G" || c == "C") { gc += 1; }
    // Motif scan (GATTACA, length 7).
    if (i + 7 <= n && substr(seq, i, 7) == "GATTACA") { hits += 1; i += 7; }
    else { i += 1; }
  }
  tree.fill("/dna/gc", gc / n);
  tree.fill("/dna/quality", event.num("quality"));
  tree.fill("/dna/motif_hits", hits);
  return 0;
}
)";
}

StockTickGenerator::StockTickGenerator(StockConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  prices_.assign(config_.symbols.size(), config_.initial_price);
  for (double& price : prices_) price *= rng_.uniform(0.5, 2.0);
}

data::Record StockTickGenerator::next() {
  const auto idx = static_cast<std::size_t>(
      rng_.uniform_u64(0, config_.symbols.size() - 1));
  // Geometric random walk step.
  prices_[idx] *= std::exp(rng_.normal(0.0, config_.volatility));
  data::Record record(tick_);
  record.set("symbol", config_.symbols[idx]);
  record.set("price", prices_[idx]);
  record.set("volume",
             static_cast<std::int64_t>(1 + rng_.exponential(1.0 / config_.mean_volume)));
  record.set("ts", static_cast<std::int64_t>(tick_));
  ++tick_;
  return record;
}

Result<data::DatasetInfo> generate_stock_dataset(const std::string& path,
                                                 const std::string& name, std::uint64_t ticks,
                                                 const StockConfig& config,
                                                 std::uint64_t seed) {
  StockTickGenerator generator(config, seed);
  auto writer = data::DatasetWriter::create(
      path, name, {{"domain", "finance"}, {"symbols", std::to_string(config.symbols.size())}});
  IPA_RETURN_IF_ERROR(writer.status());
  for (std::uint64_t i = 0; i < ticks; ++i) {
    IPA_RETURN_IF_ERROR(writer->append(generator.next()));
  }
  IPA_RETURN_IF_ERROR(writer->finish());
  auto reader = data::DatasetReader::open(path);
  IPA_RETURN_IF_ERROR(reader.status());
  return reader->info();
}

const char* stock_script() {
  return R"(
// Stock trading records: price distribution, volume profile and
// per-symbol VWAP accumulators kept in a tuple.
func begin(tree) {
  tree.book_h1("/stocks/price", 60, 0, 400, "tick price");
  tree.book_h1("/stocks/volume", 50, 0, 5000, "tick volume");
  tree.book_prof("/stocks/vol_vs_time", 40, 0, 200000, "volume vs time");
  tree.book_tuple("/stocks/vwap", ["price_x_volume", "volume"]);
}

func process(event, tree) {
  let price = event.num("price");
  let volume = event.num("volume");
  tree.fill("/stocks/price", price);
  tree.fill("/stocks/volume", volume);
  tree.fill2("/stocks/vol_vs_time", event.num("ts"), volume);
  tree.fill_row("/stocks/vwap", [price * volume, volume]);
  return 0;
}
)";
}

}  // namespace ipa::workloads
