#include "obs/build_info.hpp"

// The definitions come from the obs module's target_compile_definitions
// (see CMakeLists.txt); fall back so non-CMake consumers still build.
#ifndef IPA_VERSION
#define IPA_VERSION "unknown"
#endif
#ifndef IPA_GIT_SHA
#define IPA_GIT_SHA "unknown"
#endif
#ifndef IPA_BUILD_TYPE
#define IPA_BUILD_TYPE "unknown"
#endif

namespace ipa::obs {

BuildInfo build_info() { return {IPA_VERSION, IPA_GIT_SHA, IPA_BUILD_TYPE}; }

void install_build_info(Registry& registry) {
  const BuildInfo info = build_info();
  registry
      .gauge("ipa_build_info",
             {{"build_type", info.build_type},
              {"git_sha", info.git_sha},
              {"version", info.version}},
             "Build identity of this binary; always 1, the labels are the data.")
      .set(1);
}

}  // namespace ipa::obs
