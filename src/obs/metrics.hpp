// Process-wide metrics: named counter / gauge / histogram families with
// labels, rendered in Prometheus text-exposition format.
//
// The paper's whole evaluation (§4, Tables 1-2, Figure 5) is a per-phase
// timing breakdown, but the live system had no in-band measurement — only
// the offline gridsim replay. This registry is the in-band side: every
// layer (http, rpc, engine, services) records into one process-global
// Registry which the site serves at GET /metrics.
//
// Cost model: series handles are plain atomics — inc()/observe() on the hot
// path touch no lock. Only *creating* a family or a labeled series takes
// the registry mutex, so callers on hot paths resolve their handles once
// and keep the reference (handles are never invalidated; series storage is
// node-based).
//
// Naming scheme (see docs/observability.md): ipa_<layer>_<what>_<unit>,
// counters end in _total, histograms in _seconds/_records.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sync.hpp"

namespace ipa::obs {

/// Label set of one series. Kept sorted by key on entry to the registry so
/// {a=1,b=2} and {b=2,a=1} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value (set/add; CAS loop keeps add() lock-free on
/// platforms without atomic double fetch_add).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: upper bounds chosen at family creation, counts
/// and sum updated atomically per observation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  // Acquire pairs with the release in observe(): reading count == C makes
  // all C bucket increments visible (read count before buckets).
  std::uint64_t count() const { return count_.load(std::memory_order_acquire); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket (non-cumulative) count; index bounds_.size() is +Inf.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one series, for /metrics rendering and tests.
struct SeriesSnapshot {
  Labels labels;
  // Counter/gauge value.
  double value = 0;
  // Histogram-only.
  std::vector<std::uint64_t> bucket_counts;  // non-cumulative, +Inf last
  std::uint64_t count = 0;
  double sum = 0;
};

struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<double> upper_bounds;  // histogram families only
  std::vector<SeriesSnapshot> series;
};

/// Latency bucket ladder suitable for both sub-millisecond RPC hops and
/// multi-minute staging phases: 100us .. ~1000s, x~3.16 per step.
std::vector<double> default_latency_bounds();
/// Exponential ladder: start, start*factor, ... (count bounds).
std::vector<double> exponential_bounds(double start, double factor, int count);

/// Interpolated quantile from CUMULATIVE histogram buckets (the shape a
/// rendered /metrics exposes): `cumulative` has one entry per bound plus a
/// final +Inf entry. Linear interpolation inside the winning bucket, the
/// Prometheus histogram_quantile convention; the +Inf bucket clamps to the
/// largest finite bound. Returns 0 for an empty histogram.
double quantile_from_buckets(const std::vector<double>& upper_bounds,
                             const std::vector<std::uint64_t>& cumulative, double q);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. The kind and (for histograms) bucket bounds are fixed
  /// by the first call for a family name; a later call with a conflicting
  /// kind aborts via assert in debug and returns the existing family's
  /// series in release (misuse is a programming error, not runtime input).
  Counter& counter(std::string_view name, Labels labels = {}, std::string_view help = "");
  Gauge& gauge(std::string_view name, Labels labels = {}, std::string_view help = "");
  Histogram& histogram(std::string_view name, Labels labels = {},
                       std::vector<double> upper_bounds = {}, std::string_view help = "");

  /// Stable copy of every family and series, families in name order.
  std::vector<FamilySnapshot> snapshot() const;

  /// Prometheus text exposition format (version 0.0.4): HELP/TYPE comments,
  /// one line per sample, histogram series expanded into cumulative
  /// _bucket{le=...} plus _sum and _count.
  std::string render_prometheus() const;

  /// The process-global registry served at /metrics.
  static Registry& global();

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<double> upper_bounds;
    std::map<std::string, Series> series;  // canonical label key -> series
  };

  Family& family_locked(std::string_view name, MetricKind kind, std::string_view help)
      IPA_REQUIRES(mutex_);
  Series& series_locked(Family& family, Labels&& labels) IPA_REQUIRES(mutex_);

  mutable Mutex mutex_{LockRank::kMetrics, "metrics-registry"};
  std::map<std::string, Family, std::less<>> families_ IPA_GUARDED_BY(mutex_);
};

}  // namespace ipa::obs
