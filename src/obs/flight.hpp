// Flight recorder: always-on per-thread ring journals of structured events.
//
// Metrics say how much and traces say how long; the flight recorder says
// *what the process was doing* in the seconds before something went wrong.
// Every thread that records gets its own fixed-capacity ring of small POD
// events (state transitions, errors, slow ops, connection lifecycle), so
// the write path is completely lock-free: one relaxed head bump plus a
// per-slot seqlock publish, cheap enough to leave on in Release.
//
// Readers (GET /debug/journal, the crash dump hook, tests) snapshot any
// journal from any thread: the per-slot sequence number is checked before
// and after the copy, so an event being overwritten by the single writer is
// detected and dropped instead of surfacing torn. The journal registry
// itself is a small mutex-guarded table (rank kFlight) touched only on
// thread registration and snapshot — never on the event write path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.hpp"

namespace ipa::obs {

/// Event categories, kept coarse on purpose: the `what`/`detail` strings
/// carry the specifics, the kind is for filtering and dump colouring.
enum class FlightKind : std::uint8_t {
  kState = 0,  // component state transition (engine run/pause/finish...)
  kError,      // failure recorded (engine fail, engine lost, ...)
  kSlowOp,     // span crossed its slow-op threshold
  kConn,       // connection lifecycle (open/close/idle-reap/saturated)
  kOp,         // notable operation (session open/close, restart, ...)
  kMark,       // free-form annotation
};

const char* to_string(FlightKind kind);

/// One journal entry. Fixed-size POD so a seqlocked slot copy is a plain
/// memcpy; strings longer than the fields are truncated on record.
struct FlightEvent {
  double t = 0;            // WallClock seconds
  std::uint64_t a = 0;     // free-form numeric payload (count, id, ...)
  std::uint64_t b = 0;
  FlightKind kind = FlightKind::kMark;
  char what[24] = {};      // event name, e.g. "engine.state"
  char detail[44] = {};    // free text, e.g. the new state or peer address
};

/// Single-writer ring journal with seqlock-published slots. record() must
/// only be called by the owning thread; snapshot() is safe from any thread.
class FlightJournal {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit FlightJournal(std::string name, std::size_t capacity = 256);

  FlightJournal(const FlightJournal&) = delete;
  FlightJournal& operator=(const FlightJournal&) = delete;

  /// Append one event (owner thread only). Never blocks, never allocates.
  void record(FlightKind kind, std::string_view what, std::string_view detail = {},
              std::uint64_t a = 0, std::uint64_t b = 0);

  /// Retained events, newest first, at most `max_events` (0 = all). Events
  /// caught mid-overwrite by the racing writer are skipped, so every
  /// returned event is internally consistent.
  std::vector<FlightEvent> snapshot(std::size_t max_events = 0) const;

  std::uint64_t total_recorded() const {
    return head_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return capacity_; }
  /// Immutable after construction, so cross-thread reads are safe.
  const std::string& name() const { return name_; }

 private:
  struct Slot {
    // 2T+1 while ticket T's write is in flight, 2T+2 once it is stable.
    std::atomic<std::uint64_t> seq{0};
    FlightEvent event;
  };

  const std::string name_;
  std::size_t capacity_;  // power of two
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};  // next ticket to write
};

/// Flight events for one thread, as returned by FlightRecorder::snapshot.
struct ThreadFlight {
  std::string thread;
  std::uint64_t total = 0;              // events ever recorded
  std::vector<FlightEvent> events;      // newest first
};

/// Process-wide table of per-thread journals. Journals are held by
/// shared_ptr so a snapshot taken after a thread exits still sees its tail.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t journal_capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The calling thread's journal, registered on first use.
  FlightJournal& local();

  /// Register an explicitly-named journal (tests, dedicated components).
  std::shared_ptr<FlightJournal> adopt(std::string name);

  /// Per-thread snapshots, registration order, each newest-first.
  std::vector<ThreadFlight> snapshot(std::size_t max_per_thread = 0) const;

  /// JSON document for GET /debug/journal.
  std::string render_json(std::size_t max_per_thread = 128) const;

  /// Best-effort plain-text dump to a file descriptor (crash/abort path;
  /// write(2) only, no stdio buffering).
  void dump(int fd, std::size_t max_per_thread = 32) const;

  std::size_t journal_count() const;

  static FlightRecorder& global();

  /// Install SIGABRT/SIGSEGV/SIGBUS handlers that dump the global recorder
  /// to stderr and re-raise. Idempotent; meant for daemons (ipa_site), not
  /// libraries or tests.
  static void install_crash_handler();

 private:
  const std::size_t journal_capacity_;
  mutable Mutex mutex_{LockRank::kFlight, "flight-recorder"};
  std::vector<std::shared_ptr<FlightJournal>> journals_ IPA_GUARDED_BY(mutex_);
};

/// Record into the calling thread's journal of the global recorder.
void flight(FlightKind kind, std::string_view what, std::string_view detail = {},
            std::uint64_t a = 0, std::uint64_t b = 0);

}  // namespace ipa::obs
