#include "obs/slow.hpp"

#include "common/strings.hpp"
#include "obs/flight.hpp"

namespace ipa::obs {
namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

std::string span_json(const SpanRecord& span) {
  std::string out = "{\"name\":\"" + json_escape(span.name) + "\"";
  out += ",\"trace\":\"" + strings::format("%016llx", (unsigned long long)span.trace_id) + "\"";
  out += ",\"span\":\"" + strings::format("%016llx", (unsigned long long)span.span_id) + "\"";
  out += ",\"parent\":\"" + strings::format("%016llx", (unsigned long long)span.parent_id) + "\"";
  if (!span.session.empty()) out += ",\"session\":\"" + json_escape(span.session) + "\"";
  out += ",\"start\":" + strings::format("%.6f", span.start_s);
  out += ",\"duration\":" + strings::format("%.6f", span.duration_s());
  out += ",\"ok\":" + std::string(span.ok ? "true" : "false");
  if (!span.note.empty()) out += ",\"note\":\"" + json_escape(span.note) + "\"";
  out += '}';
  return out;
}

}  // namespace

SlowOpStore::SlowOpStore(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void SlowOpStore::set_default_threshold(double seconds) {
  LockGuard lock(mutex_);
  default_threshold_s_ = seconds;
}

void SlowOpStore::set_threshold(std::string op_prefix, double seconds) {
  LockGuard lock(mutex_);
  overrides_[std::move(op_prefix)] = seconds;
}

double SlowOpStore::threshold_for(std::string_view name) const {
  LockGuard lock(mutex_);
  double best = default_threshold_s_;
  std::size_t best_len = 0;
  bool matched = false;
  for (const auto& [prefix, threshold] : overrides_) {
    if ((!matched || prefix.size() >= best_len) &&
        name.substr(0, prefix.size()) == prefix) {
      best = threshold;
      best_len = prefix.size();
      matched = true;
    }
  }
  return best;
}

void SlowOpStore::offer(SpanRecord root, std::vector<SpanRecord> children) {
  const double duration_ms = root.duration_s() * 1e3;
  const std::string name = root.name;
  {
    LockGuard lock(mutex_);
    ++total_;
    ops_.push_front(SlowOp{std::move(root), std::move(children)});
    while (ops_.size() > capacity_) ops_.pop_back();
  }
  // Cross-reference in the flight journal: the slow op shows up in the
  // timeline of whatever else that thread was doing around it.
  flight(FlightKind::kSlowOp, "slow-op", name,
         static_cast<std::uint64_t>(duration_ms < 0 ? 0 : duration_ms));
}

std::vector<SlowOp> SlowOpStore::snapshot(std::size_t max_ops) const {
  LockGuard lock(mutex_);
  std::vector<SlowOp> out;
  const std::size_t want =
      max_ops == 0 || max_ops > ops_.size() ? ops_.size() : max_ops;
  out.reserve(want);
  for (std::size_t i = 0; i < want; ++i) out.push_back(ops_[i]);
  return out;
}

std::uint64_t SlowOpStore::total_retained() const {
  LockGuard lock(mutex_);
  return total_;
}

std::string SlowOpStore::render_json(std::size_t max_ops) const {
  double threshold = 0;
  {
    LockGuard lock(mutex_);
    threshold = default_threshold_s_;
  }
  const std::vector<SlowOp> ops = snapshot(max_ops);
  std::string body = "{\"default_threshold_s\":" + strings::format("%.6f", threshold);
  body += ",\"total_retained\":" + std::to_string(total_retained());
  body += ",\"ops\":[";
  bool first = true;
  for (const SlowOp& op : ops) {
    if (!first) body += ',';
    first = false;
    body += "{\"root\":" + span_json(op.root);
    body += ",\"children\":[";
    bool first_child = true;
    for (const SpanRecord& child : op.children) {
      if (!first_child) body += ',';
      first_child = false;
      body += span_json(child);
    }
    body += "]}";
  }
  body += "]}";
  return body;
}

SlowOpStore& SlowOpStore::global() {
  static SlowOpStore* store = new SlowOpStore();  // leaked: outlives all users
  return *store;
}

}  // namespace ipa::obs
