// Trace spans: 64-bit trace/span ids with parent propagation, a bounded
// ring of completed spans, and RAII timing against an ipa::Clock.
//
// The propagation model is deliberately small: a thread-local TraceContext
// names the active span. ScopedSpan pushes itself as current for its
// lifetime (parent = whatever was current), so nested scopes form the span
// tree without any plumbing through call signatures. Cross-process hops
// carry the context in-band — an <ipa:Trace> SOAP header and two trailing
// varints on the binary RPC request frame — and the receiving server
// installs it with TraceContextScope before dispatching, so client call
// spans parent server operation spans.
//
// Timing goes through ipa::Clock: wall-time sites and gridsim virtual-time
// runs (or ManualClock tests) produce spans with the same machinery.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "common/sync.hpp"

namespace ipa::obs {

/// The active span, as carried across call boundaries. trace_id groups one
/// request tree; span_id is the node whose children-to-be will point at it.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0 && span_id != 0; }
};

/// The calling thread's current context ({0,0} when none).
TraceContext current_trace();
/// Non-zero process-unique id (counter mixed through splitmix64, so ids
/// from concurrent threads interleave without coordination).
std::uint64_t new_trace_id();

/// One completed span.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;
  std::string session;  // session id label, "" when not session-scoped
  double start_s = 0;   // Clock seconds (wall or virtual)
  double end_s = 0;
  bool ok = true;
  std::string note;  // error text or free-form annotation
  double duration_s() const { return end_s - start_s; }
};

class SlowOpStore;

/// Bounded ring of completed spans, newest evicting oldest. The site keeps
/// one global ring and serves it at GET /status; tests construct their own.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity = 2048);

  void record(SpanRecord span);
  /// Retained spans, oldest first.
  std::vector<SpanRecord> snapshot() const;
  /// Retained spans for one session, oldest first.
  std::vector<SpanRecord> snapshot_session(const std::string& session) const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_recorded() const;

  /// Route threshold-crossing spans (plus their same-trace children still
  /// in the ring) into `store` from now on; nullptr detaches. The global
  /// ring is attached to SlowOpStore::global() at construction.
  void attach_slow_store(SlowOpStore* store) {
    slow_store_.store(store, std::memory_order_release);
  }

  static SpanRing& global();

 private:
  const std::size_t capacity_;
  std::atomic<SlowOpStore*> slow_store_{nullptr};
  mutable Mutex mutex_{LockRank::kTrace, "span-ring"};
  std::vector<SpanRecord> ring_ IPA_GUARDED_BY(mutex_);
  std::size_t next_ IPA_GUARDED_BY(mutex_) = 0;  // ring_ insertion cursor once full
  std::uint64_t total_ IPA_GUARDED_BY(mutex_) = 0;
};

/// Install a specific context (e.g. decoded from a wire header) as the
/// thread's current trace for the scope's lifetime. An invalid context
/// installs "no trace" — a server thread handling an untraced request must
/// not inherit a context left over from the previous request.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext context);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

/// RAII span: starts on construction, becomes the thread's current context,
/// records into the ring on destruction. Continues the current trace when
/// one is active, otherwise starts a new trace as a root span.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, const Clock& clock = WallClock::instance(),
                      SpanRing& ring = SpanRing::global(), std::string session = "");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  TraceContext context() const { return {record_.trace_id, record_.span_id}; }
  double elapsed_s() const { return clock_->now() - record_.start_s; }

  void set_session(std::string session) { record_.session = std::move(session); }
  void set_note(std::string note) { record_.note = std::move(note); }
  /// Mark the span failed; a non-ok status also fills the note.
  void set_status(const Status& status);

 private:
  const Clock* clock_;
  SpanRing* ring_;
  SpanRecord record_;
  TraceContext prev_;
};

}  // namespace ipa::obs
