#include "obs/log_metrics.hpp"

#include <array>
#include <cstdio>
#include <mutex>

#include "common/log.hpp"

namespace ipa::obs {

void install_log_metrics(Registry& registry) {
  static std::once_flag once;
  std::call_once(once, [&registry] {
    // One counter handle per level, resolved up front so the sink itself
    // never touches the registry mutex.
    auto counters = std::make_shared<std::array<Counter*, 5>>();
    static constexpr const char* kLevels[5] = {"trace", "debug", "info", "warn", "error"};
    for (int i = 0; i < 5; ++i) {
      (*counters)[static_cast<std::size_t>(i)] = &registry.counter(
          "ipa_log_lines_total", {{"level", kLevels[i]}}, "Log lines emitted, by level.");
    }
    // Detach the current sink so we can chain to it; emits in the brief
    // window between the two set_sink calls fall back to stderr.
    log::SinkFn prev = log::set_sink(nullptr);
    log::set_sink([counters, prev = std::move(prev)](log::Level level,
                                                     const std::string& line) {
      const int index = static_cast<int>(level);
      if (index >= 0 && index < 5) (*counters)[static_cast<std::size_t>(index)]->inc();
      if (prev) {
        prev(level, line);
        return;
      }
      std::fputs(line.c_str(), stderr);
      std::fputc('\n', stderr);
    });
  });
}

}  // namespace ipa::obs
