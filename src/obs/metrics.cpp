#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace ipa::obs {
namespace {

/// Canonical map key for a (sorted) label set: k1=v1,k2=v2 with separators
/// escaped so distinct label sets cannot collide.
std::string label_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1e';
  }
  return key;
}

void sort_labels(Labels& labels) {
  std::sort(labels.begin(), labels.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

/// Prometheus label-value escaping: backslash, double-quote and newline.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  // Integral values render without a fractional part (Prometheus accepts
  // both; this keeps counters readable).
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string render_labels(const Labels& labels, const std::string& extra_key = "",
                          const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + escape_label_value(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  // Release on the count RMW chain: a reader that loads count == C with
  // acquire synchronizes with the Cth increment and therefore observes all
  // C bucket increments. Snapshots read count first, so a rendered _count
  // can never exceed the rendered +Inf cumulative bucket even while
  // writers are mid-observe.
  count_.fetch_add(1, std::memory_order_release);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<double> exponential_bounds(double start, double factor, int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

double quantile_from_buckets(const std::vector<double>& upper_bounds,
                             const std::vector<std::uint64_t>& cumulative, double q) {
  if (cumulative.empty() || cumulative.back() == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(cumulative.back());
  std::size_t i = 0;
  while (i < cumulative.size() && static_cast<double>(cumulative[i]) < rank) ++i;
  if (i >= upper_bounds.size()) {
    // +Inf bucket: no upper edge to interpolate against; clamp to the
    // largest finite bound (matches histogram_quantile).
    return upper_bounds.empty() ? 0.0 : upper_bounds.back();
  }
  const double upper = upper_bounds[i];
  const double lower = i == 0 ? 0.0 : upper_bounds[i - 1];
  const std::uint64_t below = i == 0 ? 0 : cumulative[i - 1];
  const std::uint64_t in_bucket = cumulative[i] - below;
  if (in_bucket == 0) return upper;
  const double fraction = (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
  return lower + (upper - lower) * fraction;
}

std::vector<double> default_latency_bounds() {
  // 100us -> ~1000s in half-decade steps: wide enough for RPC hops and for
  // the paper's multi-minute staging phases in one ladder.
  return {1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2, 3.16e-2, 0.1, 0.316,
          1.0,  3.16,    10.0, 31.6,    100.0, 316.0,  1000.0};
}

Registry::Family& Registry::family_locked(std::string_view name, MetricKind kind,
                                          std::string_view help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.kind = kind;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  } else {
    assert(it->second.kind == kind && "metric family redefined with a different kind");
    if (it->second.help.empty() && !help.empty()) it->second.help = std::string(help);
  }
  return it->second;
}

Registry::Series& Registry::series_locked(Family& family, Labels&& labels) {
  sort_labels(labels);
  const std::string key = label_key(labels);
  auto it = family.series.find(key);
  if (it == family.series.end()) {
    Series series;
    series.labels = std::move(labels);
    it = family.series.emplace(key, std::move(series)).first;
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name, Labels labels, std::string_view help) {
  LockGuard lock(mutex_);
  Family& family = family_locked(name, MetricKind::kCounter, help);
  Series& series = series_locked(family, std::move(labels));
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& Registry::gauge(std::string_view name, Labels labels, std::string_view help) {
  LockGuard lock(mutex_);
  Family& family = family_locked(name, MetricKind::kGauge, help);
  Series& series = series_locked(family, std::move(labels));
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

Histogram& Registry::histogram(std::string_view name, Labels labels,
                               std::vector<double> upper_bounds, std::string_view help) {
  LockGuard lock(mutex_);
  Family& family = family_locked(name, MetricKind::kHistogram, help);
  if (family.upper_bounds.empty()) {
    family.upper_bounds =
        upper_bounds.empty() ? default_latency_bounds() : std::move(upper_bounds);
    std::sort(family.upper_bounds.begin(), family.upper_bounds.end());
    family.upper_bounds.erase(
        std::unique(family.upper_bounds.begin(), family.upper_bounds.end()),
        family.upper_bounds.end());
  }
  Series& series = series_locked(family, std::move(labels));
  if (!series.histogram) series.histogram = std::make_unique<Histogram>(family.upper_bounds);
  return *series.histogram;
}

std::vector<FamilySnapshot> Registry::snapshot() const {
  LockGuard lock(mutex_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.help = family.help;
    fs.kind = family.kind;
    fs.upper_bounds = family.upper_bounds;
    for (const auto& [key, series] : family.series) {
      SeriesSnapshot ss;
      ss.labels = series.labels;
      switch (family.kind) {
        case MetricKind::kCounter:
          ss.value = series.counter ? static_cast<double>(series.counter->value()) : 0;
          break;
        case MetricKind::kGauge:
          ss.value = series.gauge ? series.gauge->value() : 0;
          break;
        case MetricKind::kHistogram:
          if (series.histogram) {
            const Histogram& h = *series.histogram;
            // Count first (acquire), buckets after: any in-flight observe
            // beyond the loaded count can only ADD to the buckets, so the
            // snapshot's invariant is count <= sum(buckets).
            ss.count = h.count();
            ss.sum = h.sum();
            ss.bucket_counts.reserve(h.upper_bounds().size() + 1);
            for (std::size_t i = 0; i <= h.upper_bounds().size(); ++i) {
              ss.bucket_counts.push_back(h.bucket_count(i));
            }
          }
          break;
      }
      fs.series.push_back(std::move(ss));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

std::string Registry::render_prometheus() const {
  const std::vector<FamilySnapshot> families = snapshot();
  std::string out;
  for (const FamilySnapshot& family : families) {
    if (!family.help.empty()) {
      out += "# HELP " + family.name + " " + family.help + "\n";
    }
    out += "# TYPE " + family.name + " " + kind_name(family.kind) + "\n";
    for (const SeriesSnapshot& series : family.series) {
      if (family.kind != MetricKind::kHistogram) {
        out += family.name + render_labels(series.labels) + " " +
               format_double(series.value) + "\n";
        continue;
      }
      // Histogram: cumulative buckets, then sum and count.
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < family.upper_bounds.size(); ++i) {
        cumulative += i < series.bucket_counts.size() ? series.bucket_counts[i] : 0;
        out += family.name + "_bucket" +
               render_labels(series.labels, "le", format_double(family.upper_bounds[i])) +
               " " + std::to_string(cumulative) + "\n";
      }
      cumulative += family.upper_bounds.size() < series.bucket_counts.size()
                        ? series.bucket_counts[family.upper_bounds.size()]
                        : 0;
      out += family.name + "_bucket" + render_labels(series.labels, "le", "+Inf") + " " +
             std::to_string(cumulative) + "\n";
      out += family.name + "_sum" + render_labels(series.labels) + " " +
             format_double(series.sum) + "\n";
      out += family.name + "_count" + render_labels(series.labels) + " " +
             std::to_string(series.count) + "\n";
    }
  }
  return out;
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

}  // namespace ipa::obs
