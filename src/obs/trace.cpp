#include "obs/trace.hpp"

#include <atomic>

#include "obs/slow.hpp"

namespace ipa::obs {
namespace {

thread_local TraceContext t_current{};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void set_current(TraceContext context) { t_current = context; }

}  // namespace

TraceContext current_trace() { return t_current; }

std::uint64_t new_trace_id() {
  static std::atomic<std::uint64_t> counter{1};
  std::uint64_t id = 0;
  while (id == 0) {  // 0 is the "no trace" sentinel
    id = splitmix64(counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

SpanRing::SpanRing(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void SpanRing::record(SpanRecord span) {
  // Threshold check outside the ring lock: threshold_for takes the store's
  // own (lower-ranked) mutex and most spans are fast, so the common path
  // adds one relaxed pointer load.
  SlowOpStore* store = slow_store_.load(std::memory_order_acquire);
  const bool slow =
      store != nullptr && span.duration_s() >= store->threshold_for(span.name);

  LockGuard lock(mutex_);
  ++total_;
  std::vector<SpanRecord> children;
  if (slow) {
    // The completing span's children (same trace) finished before it and
    // are still in the ring unless traffic already evicted them.
    for (const SpanRecord& other : ring_) {
      if (other.trace_id == span.trace_id && other.span_id != span.span_id) {
        children.push_back(other);
      }
    }
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[next_] = span;
    next_ = (next_ + 1) % capacity_;
  }
  // kSlowOps (35) nests under kTrace (40): rank-ordered by design.
  if (slow) store->offer(std::move(span), std::move(children));
}

std::vector<SpanRecord> SpanRing::snapshot() const {
  LockGuard lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Oldest first: [next_, end) then [0, next_) once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<SpanRecord> SpanRing::snapshot_session(const std::string& session) const {
  std::vector<SpanRecord> all = snapshot();
  std::vector<SpanRecord> out;
  for (auto& span : all) {
    if (span.session == session) out.push_back(std::move(span));
  }
  return out;
}

std::uint64_t SpanRing::total_recorded() const {
  LockGuard lock(mutex_);
  return total_;
}

SpanRing& SpanRing::global() {
  static SpanRing* ring = [] {
    auto* r = new SpanRing(4096);  // leaked: outlives all users
    r->attach_slow_store(&SlowOpStore::global());
    return r;
  }();
  return *ring;
}

TraceContextScope::TraceContextScope(TraceContext context) : prev_(current_trace()) {
  set_current(context.valid() ? context : TraceContext{});
}

TraceContextScope::~TraceContextScope() { set_current(prev_); }

ScopedSpan::ScopedSpan(std::string name, const Clock& clock, SpanRing& ring,
                       std::string session)
    : clock_(&clock), ring_(&ring), prev_(current_trace()) {
  record_.name = std::move(name);
  record_.session = std::move(session);
  record_.trace_id = prev_.valid() ? prev_.trace_id : new_trace_id();
  record_.span_id = new_trace_id();
  record_.parent_id = prev_.valid() ? prev_.span_id : 0;
  record_.start_s = clock_->now();
  set_current({record_.trace_id, record_.span_id});
}

ScopedSpan::~ScopedSpan() {
  record_.end_s = clock_->now();
  set_current(prev_);
  ring_->record(std::move(record_));
}

void ScopedSpan::set_status(const Status& status) {
  if (status.is_ok()) return;
  record_.ok = false;
  if (record_.note.empty()) record_.note = status.to_string();
}

}  // namespace ipa::obs
