#include "obs/trace.hpp"

#include <atomic>

namespace ipa::obs {
namespace {

thread_local TraceContext t_current{};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void set_current(TraceContext context) { t_current = context; }

}  // namespace

TraceContext current_trace() { return t_current; }

std::uint64_t new_trace_id() {
  static std::atomic<std::uint64_t> counter{1};
  std::uint64_t id = 0;
  while (id == 0) {  // 0 is the "no trace" sentinel
    id = splitmix64(counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

SpanRing::SpanRing(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void SpanRing::record(SpanRecord span) {
  LockGuard lock(mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanRecord> SpanRing::snapshot() const {
  LockGuard lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Oldest first: [next_, end) then [0, next_) once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<SpanRecord> SpanRing::snapshot_session(const std::string& session) const {
  std::vector<SpanRecord> all = snapshot();
  std::vector<SpanRecord> out;
  for (auto& span : all) {
    if (span.session == session) out.push_back(std::move(span));
  }
  return out;
}

std::uint64_t SpanRing::total_recorded() const {
  LockGuard lock(mutex_);
  return total_;
}

SpanRing& SpanRing::global() {
  static SpanRing* ring = new SpanRing(4096);  // leaked: outlives all users
  return *ring;
}

TraceContextScope::TraceContextScope(TraceContext context) : prev_(current_trace()) {
  set_current(context.valid() ? context : TraceContext{});
}

TraceContextScope::~TraceContextScope() { set_current(prev_); }

ScopedSpan::ScopedSpan(std::string name, const Clock& clock, SpanRing& ring,
                       std::string session)
    : clock_(&clock), ring_(&ring), prev_(current_trace()) {
  record_.name = std::move(name);
  record_.session = std::move(session);
  record_.trace_id = prev_.valid() ? prev_.trace_id : new_trace_id();
  record_.span_id = new_trace_id();
  record_.parent_id = prev_.valid() ? prev_.span_id : 0;
  record_.start_s = clock_->now();
  set_current({record_.trace_id, record_.span_id});
}

ScopedSpan::~ScopedSpan() {
  record_.end_s = clock_->now();
  set_current(prev_);
  ring_->record(std::move(record_));
}

void ScopedSpan::set_status(const Status& status) {
  if (status.is_ok()) return;
  record_.ok = false;
  if (record_.note.empty()) record_.note = status.to_string();
}

}  // namespace ipa::obs
