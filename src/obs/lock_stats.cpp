#include "obs/lock_stats.hpp"

#include <atomic>
#include <map>

#include "common/strings.hpp"
#include "common/sync.hpp"

namespace ipa::obs {
namespace {

// Counters only move forward, so the exporter tracks what it has already
// pushed per rank and adds the delta. Indexed like the sync.cpp table:
// rank value / 5.
constexpr int kRankSlots = 40;
std::atomic<std::uint64_t> g_exported[kRankSlots];

}  // namespace

void export_lock_metrics(Registry& registry) {
  for (const LockContention& entry : lock_contention_snapshot()) {
    const char* rank = to_string(entry.rank);
    const int slot = static_cast<int>(entry.rank) / 5;
    std::uint64_t seen = g_exported[slot].load(std::memory_order_relaxed);
    // One exporter usually runs at a time (the /metrics handler), but a
    // concurrent /debug/locks must not double-count the same delta.
    while (entry.contended > seen &&
           !g_exported[slot].compare_exchange_weak(seen, entry.contended,
                                                   std::memory_order_relaxed)) {
    }
    if (entry.contended > seen) {
      registry
          .counter("ipa_lock_contended_total", {{"rank", rank}},
                   "Mutex acquisitions that found the lock held, by lock rank.")
          .inc(entry.contended - seen);
    }
    registry
        .gauge("ipa_lock_wait_seconds", {{"rank", rank}},
               "Total time threads have spent blocked on locks, by lock rank.")
        .set(entry.wait_s);
  }
}

std::string render_locks_json() {
  export_lock_metrics();
  std::string body = "{\"ranks\":[";
  bool first = true;
  for (const LockContention& entry : lock_contention_snapshot()) {
    if (!first) body += ',';
    first = false;
    body += "{\"rank\":\"" + std::string(to_string(entry.rank)) + "\"";
    body += ",\"value\":" + std::to_string(static_cast<int>(entry.rank));
    body += ",\"contended\":" + std::to_string(entry.contended);
    body += ",\"wait_s\":" + strings::format("%.9f", entry.wait_s);
    body += '}';
  }
  body += "]}";
  return body;
}

}  // namespace ipa::obs
