// Build identity: version / git sha / build type, exposed as the standard
// always-1 `ipa_build_info` gauge so dashboards and bug reports can say
// exactly which binary produced a scrape.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace ipa::obs {

struct BuildInfo {
  const char* version;     // project version (CMake), "unknown" if unset
  const char* git_sha;     // short commit sha at configure time
  const char* build_type;  // CMAKE_BUILD_TYPE
};

/// Compile-time build identity of this binary.
BuildInfo build_info();

/// Register `ipa_build_info{build_type=...,git_sha=...,version=...} 1`.
/// Idempotent per registry (same labels -> same series).
void install_build_info(Registry& registry = Registry::global());

}  // namespace ipa::obs
