// Slow-op tail retention: spans that cross a per-op threshold are kept,
// together with their child spans from the same trace, in a bounded store.
//
// The SpanRing keeps the most recent few thousand spans of *everything*,
// which means an interesting 800ms outlier is evicted minutes later by
// healthy 2ms traffic. The SlowOpStore inverts that: only threshold
// crossings get in, newest evicting oldest, so GET /debug/slow answers
// "what were the worst recent operations and where inside them did the time
// go" long after the ring has moved on.
//
// Wiring: SpanRing::record consults the attached store's threshold on every
// completed span and offers the span plus its same-trace children when it
// qualifies. The store's mutex ranks below kTrace (kSlowOps) because the
// offer happens under the ring lock.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.hpp"
#include "obs/trace.hpp"

namespace ipa::obs {

/// One retained slow operation: the threshold-crossing span and whatever
/// spans of the same trace were still in the ring when it completed.
struct SlowOp {
  SpanRecord root;
  std::vector<SpanRecord> children;  // same trace_id, ring order
};

/// Bounded newest-first store of slow operations.
class SlowOpStore {
 public:
  explicit SlowOpStore(std::size_t capacity = 64);

  SlowOpStore(const SlowOpStore&) = delete;
  SlowOpStore& operator=(const SlowOpStore&) = delete;

  /// Spans at/above this duration are retained unless a per-op override
  /// says otherwise. <= 0 retains everything (tests).
  void set_default_threshold(double seconds);
  /// Override the threshold for ops whose name starts with `op_prefix`
  /// (longest matching prefix wins).
  void set_threshold(std::string op_prefix, double seconds);
  double threshold_for(std::string_view name) const;

  /// Retain `root` with its child tree. Called by SpanRing under kTrace.
  void offer(SpanRecord root, std::vector<SpanRecord> children);

  /// Retained ops, newest first, at most `max_ops` (0 = all).
  std::vector<SlowOp> snapshot(std::size_t max_ops = 0) const;
  /// Slow ops ever retained (including since-evicted ones).
  std::uint64_t total_retained() const;
  std::size_t capacity() const { return capacity_; }

  /// JSON document for GET /debug/slow.
  std::string render_json(std::size_t max_ops = 32) const;

  static SlowOpStore& global();

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_{LockRank::kSlowOps, "slow-op-store"};
  double default_threshold_s_ IPA_GUARDED_BY(mutex_) = 0.25;
  std::map<std::string, double> overrides_ IPA_GUARDED_BY(mutex_);
  std::deque<SlowOp> ops_ IPA_GUARDED_BY(mutex_);  // newest at front
  std::uint64_t total_ IPA_GUARDED_BY(mutex_) = 0;
};

}  // namespace ipa::obs
