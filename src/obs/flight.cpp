#include "obs/flight.hpp"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include "common/clock.hpp"
#include "common/strings.hpp"

namespace ipa::obs {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 8;
  while (cap < n) cap <<= 1;
  return cap;
}

void copy_truncated(char* dst, std::size_t dst_size, std::string_view src) {
  const std::size_t n = src.size() < dst_size - 1 ? src.size() : dst_size - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kState: return "state";
    case FlightKind::kError: return "error";
    case FlightKind::kSlowOp: return "slow-op";
    case FlightKind::kConn: return "conn";
    case FlightKind::kOp: return "op";
    case FlightKind::kMark: return "mark";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// FlightJournal
// ---------------------------------------------------------------------------

FlightJournal::FlightJournal(std::string name, std::size_t capacity)
    : name_(std::move(name)),
      capacity_(round_up_pow2(capacity)),
      slots_(new Slot[capacity_]) {}

void FlightJournal::record(FlightKind kind, std::string_view what,
                           std::string_view detail, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t ticket = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[ticket & (capacity_ - 1)];
  // Odd marks the write in flight; a concurrent reader of the evicted event
  // sees the sequence move and discards its copy instead of surfacing torn
  // fields. Single writer per journal, so plain stores suffice.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  FlightEvent& event = slot.event;
  event.t = WallClock::instance().now();
  event.a = a;
  event.b = b;
  event.kind = kind;
  copy_truncated(event.what, sizeof event.what, what);
  copy_truncated(event.detail, sizeof event.detail, detail);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
  head_.store(ticket + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightJournal::snapshot(std::size_t max_events) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t available = head < capacity_ ? head : capacity_;
  std::uint64_t want = available;
  if (max_events != 0 && max_events < want) want = max_events;

  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(want));
  for (std::uint64_t i = 0; i < want; ++i) {
    const std::uint64_t ticket = head - 1 - i;
    const Slot& slot = slots_[ticket & (capacity_ - 1)];
    const std::uint64_t expected = 2 * ticket + 2;
    if (slot.seq.load(std::memory_order_acquire) != expected) continue;
    FlightEvent copy = slot.event;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != expected) continue;
    out.push_back(copy);
  }
  return out;
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

FlightRecorder::FlightRecorder(std::size_t journal_capacity)
    : journal_capacity_(journal_capacity) {}

std::shared_ptr<FlightJournal> FlightRecorder::adopt(std::string name) {
  auto journal = std::make_shared<FlightJournal>(std::move(name), journal_capacity_);
  LockGuard lock(mutex_);
  journals_.push_back(journal);
  return journal;
}

FlightJournal& FlightRecorder::local() {
  struct ThreadSlot {
    FlightRecorder* owner = nullptr;
    std::shared_ptr<FlightJournal> journal;
  };
  thread_local ThreadSlot slot;
  if (slot.owner != this) {
    static std::atomic<std::uint64_t> next_thread{0};
    slot.journal = adopt(strings::format(
        "thread-%llu",
        static_cast<unsigned long long>(next_thread.fetch_add(1))));
    slot.owner = this;
  }
  return *slot.journal;
}

std::vector<ThreadFlight> FlightRecorder::snapshot(std::size_t max_per_thread) const {
  std::vector<std::shared_ptr<FlightJournal>> journals;
  {
    LockGuard lock(mutex_);
    journals = journals_;
  }
  std::vector<ThreadFlight> out;
  out.reserve(journals.size());
  for (const auto& journal : journals) {
    ThreadFlight flight;
    flight.thread = journal->name();
    flight.total = journal->total_recorded();
    flight.events = journal->snapshot(max_per_thread);
    out.push_back(std::move(flight));
  }
  return out;
}

std::string FlightRecorder::render_json(std::size_t max_per_thread) const {
  const std::vector<ThreadFlight> threads = snapshot(max_per_thread);
  std::string body = "{\"threads\":[";
  bool first_thread = true;
  for (const ThreadFlight& thread : threads) {
    if (!first_thread) body += ',';
    first_thread = false;
    body += "{\"thread\":\"" + json_escape(thread.thread) + "\"";
    body += ",\"total\":" + std::to_string(thread.total);
    body += ",\"events\":[";
    bool first_event = true;
    for (const FlightEvent& event : thread.events) {
      if (!first_event) body += ',';
      first_event = false;
      body += "{\"t\":" + strings::format("%.6f", event.t);
      body += ",\"kind\":\"" + std::string(to_string(event.kind)) + "\"";
      body += ",\"what\":\"" + json_escape(event.what) + "\"";
      if (event.detail[0] != '\0') {
        body += ",\"detail\":\"" + json_escape(event.detail) + "\"";
      }
      if (event.a != 0) body += ",\"a\":" + std::to_string(event.a);
      if (event.b != 0) body += ",\"b\":" + std::to_string(event.b);
      body += '}';
    }
    body += "]}";
  }
  body += "]}";
  return body;
}

void FlightRecorder::dump(int fd, std::size_t max_per_thread) const {
  const std::vector<ThreadFlight> threads = snapshot(max_per_thread);
  char line[256];
  int n = std::snprintf(line, sizeof line, "=== ipa flight recorder (%zu threads) ===\n",
                        threads.size());
  (void)!::write(fd, line, static_cast<std::size_t>(n));
  for (const ThreadFlight& thread : threads) {
    n = std::snprintf(line, sizeof line, "-- %s (%llu events total)\n",
                      thread.thread.c_str(),
                      static_cast<unsigned long long>(thread.total));
    (void)!::write(fd, line, static_cast<std::size_t>(n));
    for (const FlightEvent& event : thread.events) {
      n = std::snprintf(line, sizeof line, "  %.6f [%s] %s %s a=%llu b=%llu\n", event.t,
                        to_string(event.kind), event.what, event.detail,
                        static_cast<unsigned long long>(event.a),
                        static_cast<unsigned long long>(event.b));
      (void)!::write(fd, line, static_cast<std::size_t>(n));
    }
  }
}

std::size_t FlightRecorder::journal_count() const {
  LockGuard lock(mutex_);
  return journals_.size();
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked: outlives all users
  return *recorder;
}

namespace {

void crash_dump_handler(int sig) {
  // Best effort: the registry mutex may be held by the crashed thread, but
  // the alternative on this path is no journal at all. Restore the default
  // disposition first so a second fault terminates instead of recursing.
  std::signal(sig, SIG_DFL);
  const char* banner = "ipa: fatal signal, dumping flight recorder\n";
  (void)!::write(2, banner, std::strlen(banner));
  FlightRecorder::global().dump(2);
  ::raise(sig);
}

}  // namespace

void FlightRecorder::install_crash_handler() {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true)) return;
  std::signal(SIGABRT, crash_dump_handler);
  std::signal(SIGSEGV, crash_dump_handler);
  std::signal(SIGBUS, crash_dump_handler);
}

void flight(FlightKind kind, std::string_view what, std::string_view detail,
            std::uint64_t a, std::uint64_t b) {
  FlightRecorder::global().local().record(kind, what, detail, a, b);
}

}  // namespace ipa::obs
