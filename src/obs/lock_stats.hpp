// Lock-contention export: bridges the per-rank contention totals that
// src/common/sync accumulates (plain atomics — common cannot depend on obs)
// into Prometheus series and the GET /debug/locks JSON document.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace ipa::obs {

/// Sync the per-rank contention totals into `registry`:
///   ipa_lock_contended_total{rank=...}  counter (exported by delta)
///   ipa_lock_wait_seconds{rank=...}     gauge, cumulative blocked time
/// Call before rendering /metrics; cheap (a handful of ranks ever contend).
void export_lock_metrics(Registry& registry = Registry::global());

/// JSON document for GET /debug/locks, newest totals at call time.
std::string render_locks_json();

}  // namespace ipa::obs
