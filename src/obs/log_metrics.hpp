// First consumer of the std::function log sink: counts emitted lines per
// level into ipa_log_lines_total{level=...}, then chains to whatever sink
// was installed before it (or stderr when none was).
#pragma once

#include "obs/metrics.hpp"

namespace ipa::obs {

/// Install the counting sink once per process (idempotent; later calls are
/// no-ops, including with a different registry). Wraps — does not replace —
/// the sink installed at call time.
void install_log_metrics(Registry& registry = Registry::global());

}  // namespace ipa::obs
