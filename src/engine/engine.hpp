// The analysis engine: the process the paper starts on each worker node.
//
// Lifecycle (paper §2.3/§3.6): the engine is started for a session, signals
// ready, receives a staged dataset part and the analysis code, and then
// obeys interactive controls — run, pause, stop, rewind — while pushing
// intermediate result snapshots to the AIDA manager. Code can be replaced
// between runs without re-staging the data.
//
// Threading: one worker thread per engine owns the dataset reader, the
// analyzer and the AIDA tree; control verbs and snapshot reads synchronize
// through a small command mailbox, so no analysis state is ever touched by
// two threads at once.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "aida/tree.hpp"
#include "common/status.hpp"
#include "common/sync.hpp"
#include "data/dataset.hpp"
#include "engine/analyzer.hpp"

namespace ipa::engine {

enum class EngineState {
  kIdle,      // no dataset/code yet, or stopped before any processing
  kRunning,
  kPaused,
  kStopped,   // explicitly stopped; position retained
  kFinished,  // dataset exhausted; end() ran
  kFailed,    // analyzer or I/O error; see Progress::error
};

std::string_view to_string(EngineState state);

struct Progress {
  EngineState state = EngineState::kIdle;
  std::uint64_t processed = 0;  // records consumed since last rewind
  std::uint64_t total = 0;      // records in the staged part
  std::uint64_t snapshots = 0;  // snapshots emitted since construction
  std::string error;            // set when state == kFailed
};

/// Engine tuning knobs.
struct EngineConfig {
  /// Emit a snapshot every N processed records (plus one at completion).
  std::uint64_t snapshot_every = 2000;
  /// Records decoded per columnar batch on the hot path. Each loop
  /// iteration is capped so snapshot cadence and run_records() pause points
  /// land on exactly the same record counts as record-at-a-time processing;
  /// control verbs take effect at batch boundaries.
  std::uint64_t batch_size = 256;
  script::InterpOptions interp;
};

class AnalysisEngine {
 public:
  using Config = EngineConfig;

  /// Called from the worker thread with a serialized Tree and progress.
  using SnapshotFn = std::function<void(const ser::Bytes& snapshot, const Progress& progress)>;

  explicit AnalysisEngine(Config config = {});
  ~AnalysisEngine();

  AnalysisEngine(const AnalysisEngine&) = delete;
  AnalysisEngine& operator=(const AnalysisEngine&) = delete;

  /// Stage the dataset part this engine will analyze. Allowed when not
  /// running. Resets position to 0.
  Status stage_dataset(const std::string& path);

  /// Stage (or hot-replace) the analysis code. Allowed when not running.
  /// Compilation errors are reported here, before any record is touched.
  Status stage_code(const CodeBundle& bundle);

  void set_snapshot_handler(SnapshotFn handler);

  // --- interactive controls (paper §3.6) -----------------------------------
  /// Start or resume processing. From kIdle/kStopped-at-0/kFinished-after-
  /// rewind the analyzer's begin() runs first.
  Status run();
  Status pause();
  Status stop();
  /// Reset to record 0 and clear results; allowed when not running.
  Status rewind();
  /// Process at most `n` records then pause (the JAS "run N events" button).
  Status run_records(std::uint64_t n);

  /// Block until the engine leaves kRunning (finished, paused, stopped or
  /// failed). Returns the final progress.
  Progress wait();

  EngineState state() const;
  Progress progress() const;

  /// Copy of the current results (thread-safe; engine may keep running).
  aida::Tree tree_copy() const;
  /// Serialized form of tree_copy().
  ser::Bytes snapshot() const;

 private:
  void worker_loop(const std::stop_token& stop);
  void process_loop();  // runs records while state stays kRunning
  void fail(std::string message);
  void emit_snapshot_locked();  // requires tree_mutex_ NOT held by caller

  Config config_;

  mutable Mutex mutex_{LockRank::kEngine, "engine-control"};
  CondVar cv_;
  EngineState state_ IPA_GUARDED_BY(mutex_) = EngineState::kIdle;
  bool worker_in_loop_ IPA_GUARDED_BY(mutex_) = false;  // inside process_loop()
  std::uint64_t run_budget_ IPA_GUARDED_BY(mutex_) = 0;  // 0 = unlimited
  std::string error_ IPA_GUARDED_BY(mutex_);
  bool begin_pending_ IPA_GUARDED_BY(mutex_) = true;

  std::atomic<std::uint64_t> processed_{0};  // records since last rewind
  std::atomic<std::uint64_t> total_{0};      // records in the staged part
  std::atomic<std::uint64_t> snapshots_{0};  // snapshots emitted

  std::unique_ptr<data::DatasetReader> reader_;
  // One batch reused for the whole dataset (worker-thread only): columns
  // keep their capacity across clear(), and analyzers' per-batch slot
  // resolutions stay valid because the schema is shared with the reader.
  std::unique_ptr<data::RecordBatch> batch_;
  std::unique_ptr<Analyzer> analyzer_;
  SnapshotFn snapshot_handler_ IPA_GUARDED_BY(mutex_);

  mutable Mutex tree_mutex_{LockRank::kEngineTree, "engine-tree"};
  aida::Tree tree_ IPA_GUARDED_BY(tree_mutex_);

  std::jthread worker_;
};

}  // namespace ipa::engine
