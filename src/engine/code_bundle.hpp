// The unit of analysis-code staging (paper §2.4/§3.5): what the client
// ships to every analysis engine. Either PawScript source (the common,
// interactive case — kilobytes of text, the paper's PNUTS path) or the name
// of a natively compiled analyzer already installed on the workers (the
// paper's Java-class path; C++ plugins here).
#pragma once

#include <string>

#include "common/status.hpp"
#include "serialize/serialize.hpp"

namespace ipa::engine {

struct CodeBundle {
  enum class Kind { kScript, kPlugin };

  Kind kind = Kind::kScript;
  std::string name;    // bundle name, e.g. "higgs-search-v3"
  std::string source;  // PawScript source (kScript) or plugin id (kPlugin)

  /// Wire size in bytes — what the code-staging step actually moves.
  std::size_t byte_size() const { return name.size() + source.size() + 2; }

  void encode(ser::Writer& w) const;
  static Result<CodeBundle> decode(ser::Reader& r);

  friend bool operator==(const CodeBundle& a, const CodeBundle& b) = default;
};

}  // namespace ipa::engine
