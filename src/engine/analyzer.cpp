#include "engine/analyzer.hpp"

#include "script/engine_api.hpp"

namespace ipa::engine {

Status Analyzer::process_batch(const data::RecordBatch& batch, aida::Tree& tree) {
  for (std::size_t row = 0; row < batch.rows(); ++row) {
    IPA_RETURN_IF_ERROR(process(batch.to_record(row), tree));
  }
  return Status::ok();
}

void CodeBundle::encode(ser::Writer& w) const {
  w.u8(kind == Kind::kScript ? 0 : 1);
  w.string(name);
  w.string(source);
}

Result<CodeBundle> CodeBundle::decode(ser::Reader& r) {
  CodeBundle bundle;
  IPA_ASSIGN_OR_RETURN(const std::uint8_t kind, r.u8());
  if (kind > 1) return data_loss("code bundle: bad kind byte");
  bundle.kind = kind == 0 ? Kind::kScript : Kind::kPlugin;
  IPA_ASSIGN_OR_RETURN(bundle.name, r.string());
  IPA_ASSIGN_OR_RETURN(bundle.source, r.string());
  return bundle;
}

AnalyzerRegistry& AnalyzerRegistry::instance() {
  static AnalyzerRegistry registry;
  return registry;
}

Status AnalyzerRegistry::register_factory(const std::string& name, AnalyzerFactory factory) {
  LockGuard lock(mutex_);
  if (factories_.count(name) != 0) {
    return already_exists("analyzer '" + name + "' already registered");
  }
  factories_.emplace(name, std::move(factory));
  return Status::ok();
}

Result<std::unique_ptr<Analyzer>> AnalyzerRegistry::create(const std::string& name) const {
  LockGuard lock(mutex_);
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    return not_found("analyzer '" + name + "' is not installed on this worker");
  }
  return it->second();
}

std::vector<std::string> AnalyzerRegistry::names() const {
  LockGuard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

Result<std::unique_ptr<ScriptAnalyzer>> ScriptAnalyzer::compile(const std::string& source,
                                                                script::InterpOptions options) {
  script::Interp interp(options);
  IPA_RETURN_IF_ERROR(interp.load(source).with_prefix("analysis script"));
  if (!interp.has_function("process")) {
    return invalid_argument("analysis script must define process(event, tree)");
  }
  return std::unique_ptr<ScriptAnalyzer>(new ScriptAnalyzer(std::move(interp)));
}

Status ScriptAnalyzer::begin(aida::Tree& tree) {
  if (!interp_.has_function("begin")) return Status::ok();
  const auto result =
      interp_.call("begin", {script::Value(script::make_tree_object(&tree))});
  return result.status().with_prefix("begin()");
}

Status ScriptAnalyzer::process(const data::Record& record, aida::Tree& tree) {
  const auto result =
      interp_.call("process", {script::Value(script::make_event_object(&record)),
                               script::Value(script::make_tree_object(&tree))});
  return result.status().with_prefix("process()");
}

Status ScriptAnalyzer::process_batch(const data::RecordBatch& batch, aida::Tree& tree) {
  if (cursor_batch_ != &batch) {
    cursor_ = script::make_batch_event_object(&batch);
    cursor_batch_ = &batch;
  }
  const script::Value event(cursor_);
  const script::Value tree_object(script::make_tree_object(&tree));
  for (std::size_t row = 0; row < batch.rows(); ++row) {
    cursor_->set_row(row);
    const auto result = interp_.call("process", {event, tree_object});
    IPA_RETURN_IF_ERROR(result.status().with_prefix("process()"));
  }
  return Status::ok();
}

Status ScriptAnalyzer::end(aida::Tree& tree) {
  if (!interp_.has_function("end")) return Status::ok();
  const auto result = interp_.call("end", {script::Value(script::make_tree_object(&tree))});
  return result.status().with_prefix("end()");
}

Result<std::unique_ptr<Analyzer>> make_analyzer(const CodeBundle& bundle,
                                                script::InterpOptions options) {
  if (bundle.kind == CodeBundle::Kind::kScript) {
    auto analyzer = ScriptAnalyzer::compile(bundle.source, options);
    IPA_RETURN_IF_ERROR(analyzer.status());
    return std::unique_ptr<Analyzer>(std::move(*analyzer));
  }
  return AnalyzerRegistry::instance().create(bundle.source);
}

}  // namespace ipa::engine
