#include "engine/engine.hpp"

#include "common/clock.hpp"
#include "common/log.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace ipa::engine {
namespace {

/// Handles resolved once per process: the batch loop is the bench-gated hot
/// path, so each batch costs a few relaxed atomic adds and nothing else.
struct EngineMetrics {
  obs::Counter& records;
  obs::Counter& batches;
  obs::Histogram& batch_records;
  obs::Histogram& batch_pull;
  obs::Counter& pauses;
  obs::Counter& snapshots;

  static EngineMetrics& instance() {
    static EngineMetrics* m = [] {
      obs::Registry& r = obs::Registry::global();
      return new EngineMetrics{
          r.counter("ipa_engine_records_processed_total", {},
                    "Records pushed through analysis engines."),
          r.counter("ipa_engine_batches_total", {}, "Record batches processed."),
          r.histogram("ipa_engine_batch_records", {}, obs::exponential_bounds(1, 4, 10),
                      "Records per processed batch."),
          r.histogram("ipa_engine_batch_pull_seconds", {}, obs::default_latency_bounds(),
                      "Time the engine loop stalled pulling the next record batch "
                      "from its dataset reader."),
          r.counter("ipa_engine_pauses_total", {},
                    "Engine pauses (control verb or run budget exhausted)."),
          r.counter("ipa_engine_snapshots_total", {},
                    "Histogram snapshots emitted to the manager."),
      };
    }();
    return *m;
  }
};

/// Flight-journal a state transition; called on the thread that made it.
void note_state(EngineState state) {
  obs::flight(obs::FlightKind::kState, "engine.state", to_string(state));
}

}  // namespace

std::string_view to_string(EngineState state) {
  switch (state) {
    case EngineState::kIdle: return "idle";
    case EngineState::kRunning: return "running";
    case EngineState::kPaused: return "paused";
    case EngineState::kStopped: return "stopped";
    case EngineState::kFinished: return "finished";
    case EngineState::kFailed: return "failed";
  }
  return "?";
}

AnalysisEngine::AnalysisEngine(Config config) : config_(std::move(config)) {
  if (config_.snapshot_every == 0) config_.snapshot_every = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  worker_ = std::jthread([this](std::stop_token stop) { worker_loop(stop); });
}

AnalysisEngine::~AnalysisEngine() {
  {
    LockGuard lock(mutex_);
    if (state_ == EngineState::kRunning) state_ = EngineState::kStopped;
  }
  worker_.request_stop();
  cv_.notify_all();
}

Status AnalysisEngine::stage_dataset(const std::string& path) {
  UniqueLock lock(mutex_);
  if (state_ == EngineState::kRunning) {
    return failed_precondition("engine: cannot stage a dataset while running");
  }
  // The worker may still be finishing its current record after a pause or
  // stop; the reader must not be replaced under it.
  cv_.wait(lock, [&]() IPA_REQUIRES(mutex_) { return !worker_in_loop_ || state_ == EngineState::kRunning; });
  if (state_ == EngineState::kRunning) {
    return failed_precondition("engine: cannot stage a dataset while running");
  }
  auto reader = data::DatasetReader::open(path);
  IPA_RETURN_IF_ERROR(reader.status());
  reader_ = std::make_unique<data::DatasetReader>(std::move(*reader));
  batch_ = std::make_unique<data::RecordBatch>(reader_->make_batch());
  processed_.store(0);
  total_.store(reader_->size());
  begin_pending_ = true;
  state_ = EngineState::kIdle;
  error_.clear();
  {
    LockGuard tree_lock(tree_mutex_);
    tree_.clear();
  }
  return Status::ok();
}

Status AnalysisEngine::stage_code(const CodeBundle& bundle) {
  UniqueLock lock(mutex_);
  if (state_ == EngineState::kRunning) {
    return failed_precondition("engine: cannot reload code while running (pause first)");
  }
  cv_.wait(lock, [&]() IPA_REQUIRES(mutex_) { return !worker_in_loop_ || state_ == EngineState::kRunning; });
  if (state_ == EngineState::kRunning) {
    return failed_precondition("engine: cannot reload code while running (pause first)");
  }
  auto analyzer = make_analyzer(bundle, config_.interp);
  IPA_RETURN_IF_ERROR(analyzer.status());
  analyzer_ = std::move(*analyzer);
  // New code means new booking on the next (re)start from the beginning;
  // when resuming mid-dataset the existing tree keeps accumulating.
  if (state_ == EngineState::kIdle) begin_pending_ = true;
  if (state_ == EngineState::kFailed) {
    state_ = reader_ ? EngineState::kIdle : EngineState::kFailed;
    error_.clear();
  }
  return Status::ok();
}

void AnalysisEngine::set_snapshot_handler(SnapshotFn handler) {
  LockGuard lock(mutex_);
  snapshot_handler_ = std::move(handler);
}

Status AnalysisEngine::run() {
  UniqueLock lock(mutex_);
  if (state_ == EngineState::kRunning) return Status::ok();
  if (state_ == EngineState::kFinished) {
    return failed_precondition("engine: dataset finished; rewind to re-run");
  }
  if (state_ == EngineState::kFailed) {
    return failed_precondition("engine: failed (" + error_ + "); reload code or rewind");
  }
  if (!reader_) return failed_precondition("engine: no dataset staged");
  if (!analyzer_) return failed_precondition("engine: no analysis code staged");
  run_budget_ = 0;
  state_ = EngineState::kRunning;
  note_state(state_);
  lock.unlock();
  cv_.notify_all();
  return Status::ok();
}

Status AnalysisEngine::run_records(std::uint64_t n) {
  if (n == 0) return invalid_argument("engine: run_records needs n > 0");
  UniqueLock lock(mutex_);
  if (state_ == EngineState::kRunning) return failed_precondition("engine: already running");
  if (state_ == EngineState::kFinished || state_ == EngineState::kFailed) {
    return failed_precondition("engine: not runnable in state " +
                               std::string(to_string(state_)));
  }
  if (!reader_) return failed_precondition("engine: no dataset staged");
  if (!analyzer_) return failed_precondition("engine: no analysis code staged");
  run_budget_ = n;
  state_ = EngineState::kRunning;
  note_state(state_);
  lock.unlock();
  cv_.notify_all();
  return Status::ok();
}

Status AnalysisEngine::pause() {
  LockGuard lock(mutex_);
  if (state_ != EngineState::kRunning) {
    return failed_precondition("engine: not running");
  }
  state_ = EngineState::kPaused;
  note_state(state_);
  EngineMetrics::instance().pauses.inc();
  cv_.notify_all();
  return Status::ok();
}

Status AnalysisEngine::stop() {
  LockGuard lock(mutex_);
  if (state_ != EngineState::kRunning && state_ != EngineState::kPaused) {
    return failed_precondition("engine: not running or paused");
  }
  state_ = EngineState::kStopped;
  note_state(state_);
  cv_.notify_all();
  return Status::ok();
}

Status AnalysisEngine::rewind() {
  UniqueLock lock(mutex_);
  if (state_ == EngineState::kRunning) {
    return failed_precondition("engine: pause or stop before rewinding");
  }
  // Wait for the worker to park: it may still be completing the record it
  // was on when the pause/stop landed, and seek() must not race next().
  cv_.wait(lock, [&]() IPA_REQUIRES(mutex_) { return !worker_in_loop_ || state_ == EngineState::kRunning; });
  if (state_ == EngineState::kRunning) {
    return failed_precondition("engine: pause or stop before rewinding");
  }
  if (!reader_) return failed_precondition("engine: no dataset staged");
  IPA_RETURN_IF_ERROR(reader_->seek(0));
  processed_.store(0);
  {
    LockGuard tree_lock(tree_mutex_);
    tree_.clear();
  }
  begin_pending_ = true;
  error_.clear();
  state_ = EngineState::kIdle;
  note_state(state_);
  return Status::ok();
}

Progress AnalysisEngine::wait() {
  UniqueLock lock(mutex_);
  cv_.wait(lock, [&]() IPA_REQUIRES(mutex_) { return state_ != EngineState::kRunning; });
  Progress progress;
  progress.state = state_;
  progress.processed = processed_.load();
  progress.total = total_.load();
  progress.snapshots = snapshots_.load();
  progress.error = error_;
  return progress;
}

EngineState AnalysisEngine::state() const {
  LockGuard lock(mutex_);
  return state_;
}

Progress AnalysisEngine::progress() const {
  LockGuard lock(mutex_);
  Progress progress;
  progress.state = state_;
  progress.processed = processed_.load();
  progress.total = total_.load();
  progress.snapshots = snapshots_.load();
  progress.error = error_;
  return progress;
}

aida::Tree AnalysisEngine::tree_copy() const {
  LockGuard lock(tree_mutex_);
  auto bytes = tree_.serialize();
  auto copy = aida::Tree::deserialize(bytes);
  return copy.is_ok() ? std::move(*copy) : aida::Tree();
}

ser::Bytes AnalysisEngine::snapshot() const {
  LockGuard lock(tree_mutex_);
  return tree_.serialize();
}

void AnalysisEngine::worker_loop(const std::stop_token& stop) {
  while (true) {
    {
      UniqueLock lock(mutex_);
      cv_.wait(lock, [&]() IPA_REQUIRES(mutex_) { return stop.stop_requested() || state_ == EngineState::kRunning; });
      if (stop.stop_requested()) return;
      worker_in_loop_ = true;
    }
    process_loop();
    {
      LockGuard lock(mutex_);
      worker_in_loop_ = false;
    }
    cv_.notify_all();
  }
}

void AnalysisEngine::process_loop() {
  // begin() on a fresh run.
  {
    UniqueLock lock(mutex_);
    if (state_ != EngineState::kRunning) return;
    if (begin_pending_) {
      Status status;
      {
        LockGuard tree_lock(tree_mutex_);
        status = analyzer_->begin(tree_);
      }
      if (!status.is_ok()) {
        state_ = EngineState::kFailed;
        error_ = status.to_string();
        lock.unlock();
        cv_.notify_all();
        return;
      }
      begin_pending_ = false;
    }
  }

  std::uint64_t since_snapshot = 0;
  while (true) {
    // Check controls and size the next batch. Capping at the remaining
    // run budget and the distance to the next snapshot makes the batched
    // loop land pauses and snapshots on exactly the same record counts as
    // record-at-a-time processing; control verbs act at batch boundaries.
    std::uint64_t cap;
    {
      UniqueLock lock(mutex_);
      if (state_ != EngineState::kRunning) {
        lock.unlock();
        emit_snapshot_locked();  // results as of the pause/stop point
        cv_.notify_all();
        return;
      }
      cap = config_.batch_size;
      if (run_budget_ > 0 && run_budget_ < cap) cap = run_budget_;
    }
    if (config_.snapshot_every - since_snapshot < cap) {
      cap = config_.snapshot_every - since_snapshot;
    }

    batch_->clear();
    const double pull_t0 = WallClock::instance().now();
    const auto appended = reader_->read_batch(*batch_, cap);
    EngineMetrics::instance().batch_pull.observe(WallClock::instance().now() - pull_t0);
    if (!appended.is_ok()) {
      fail("dataset read: " + appended.status().to_string());
      return;
    }
    if (*appended == 0) {
      // Dataset exhausted: run end() and finish.
      Status status;
      {
        LockGuard tree_lock(tree_mutex_);
        status = analyzer_->end(tree_);
      }
      UniqueLock lock(mutex_);
      if (!status.is_ok()) {
        state_ = EngineState::kFailed;
        error_ = status.to_string();
        obs::flight(obs::FlightKind::kError, "engine.fail", error_);
      } else {
        state_ = EngineState::kFinished;
      }
      note_state(state_);
      lock.unlock();
      emit_snapshot_locked();
      cv_.notify_all();
      return;
    }

    Status status;
    {
      LockGuard tree_lock(tree_mutex_);
      status = analyzer_->process_batch(*batch_, tree_);
    }
    if (!status.is_ok()) {
      fail(status.to_string());
      return;
    }
    processed_.fetch_add(*appended, std::memory_order_relaxed);
    EngineMetrics& metrics = EngineMetrics::instance();
    metrics.records.inc(*appended);
    metrics.batches.inc();
    metrics.batch_records.observe(static_cast<double>(*appended));

    since_snapshot += *appended;
    if (since_snapshot >= config_.snapshot_every) {
      since_snapshot = 0;
      emit_snapshot_locked();
    }

    // Bounded runs ("run N events"); the cap above never lets a batch
    // overshoot the budget.
    {
      UniqueLock lock(mutex_);
      if (run_budget_ > 0) {
        run_budget_ -= *appended;
        if (run_budget_ == 0) {
          state_ = EngineState::kPaused;
          note_state(state_);
          EngineMetrics::instance().pauses.inc();
          lock.unlock();
          emit_snapshot_locked();
          cv_.notify_all();
          return;
        }
      }
    }
  }
}

void AnalysisEngine::fail(std::string message) {
  // Log from the local copy: error_ is guarded by mutex_, and another
  // control thread may already be clearing it (rewind) once we release.
  IPA_LOG(warn) << "analysis engine failed: " << message;
  obs::flight(obs::FlightKind::kError, "engine.fail", message);
  {
    LockGuard lock(mutex_);
    state_ = EngineState::kFailed;
    error_ = std::move(message);
  }
  note_state(EngineState::kFailed);
  emit_snapshot_locked();
  cv_.notify_all();
}

void AnalysisEngine::emit_snapshot_locked() {
  SnapshotFn handler;
  {
    LockGuard lock(mutex_);
    handler = snapshot_handler_;
  }
  if (!handler) return;
  ser::Bytes bytes;
  {
    LockGuard tree_lock(tree_mutex_);
    bytes = tree_.serialize();
  }
  ++snapshots_;
  EngineMetrics::instance().snapshots.inc();
  handler(bytes, progress());
}

}  // namespace ipa::engine
