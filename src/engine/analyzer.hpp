// Analyzer contract and registry.
//
// An Analyzer consumes dataset records and fills an AIDA tree. Two
// implementations: registered C++ plugins (fast path, installed on workers
// ahead of time) and ScriptAnalyzer (PawScript shipped per session — the
// paper's interactive path).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "aida/tree.hpp"
#include "common/status.hpp"
#include "data/record.hpp"
#include "engine/code_bundle.hpp"
#include "script/interp.hpp"

namespace ipa::engine {

class Analyzer {
 public:
  virtual ~Analyzer() = default;

  /// Book objects; called once per (re)start of an analysis run.
  virtual Status begin(aida::Tree& tree) = 0;
  /// Called for every record.
  virtual Status process(const data::Record& record, aida::Tree& tree) = 0;
  /// Called when the dataset is exhausted (not on stop/pause).
  virtual Status end(aida::Tree& tree) { (void)tree; return Status::ok(); }
};

using AnalyzerFactory = std::function<std::unique_ptr<Analyzer>()>;

/// Process-wide registry of natively installed analyzers (the "data format
/// readers / analysis classes" pre-installed on the paper's worker nodes).
class AnalyzerRegistry {
 public:
  static AnalyzerRegistry& instance();

  Status register_factory(const std::string& name, AnalyzerFactory factory);
  Result<std::unique_ptr<Analyzer>> create(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, AnalyzerFactory> factories_;
};

/// PawScript-backed analyzer. The script must define
/// process(event, tree); begin(tree) and end(tree) are optional.
class ScriptAnalyzer final : public Analyzer {
 public:
  static Result<std::unique_ptr<ScriptAnalyzer>> compile(
      const std::string& source, script::InterpOptions options = {});

  Status begin(aida::Tree& tree) override;
  Status process(const data::Record& record, aida::Tree& tree) override;
  Status end(aida::Tree& tree) override;

  /// print() output accumulated by the script.
  std::vector<std::string>& script_output() { return interp_.output(); }

 private:
  explicit ScriptAnalyzer(script::Interp interp) : interp_(std::move(interp)) {}

  script::Interp interp_;
};

/// Build an analyzer from a staged code bundle.
Result<std::unique_ptr<Analyzer>> make_analyzer(const CodeBundle& bundle,
                                                script::InterpOptions options = {});

}  // namespace ipa::engine
