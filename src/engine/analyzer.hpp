// Analyzer contract and registry.
//
// An Analyzer consumes dataset records and fills an AIDA tree. Two
// implementations: registered C++ plugins (fast path, installed on workers
// ahead of time) and ScriptAnalyzer (PawScript shipped per session — the
// paper's interactive path).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aida/tree.hpp"
#include "common/status.hpp"
#include "common/sync.hpp"
#include "data/record.hpp"
#include "data/record_batch.hpp"
#include "engine/code_bundle.hpp"
#include "script/interp.hpp"

namespace ipa::script {
class BatchEventObject;
}  // namespace ipa::script

namespace ipa::engine {

class Analyzer {
 public:
  virtual ~Analyzer() = default;

  /// Book objects; called once per (re)start of an analysis run.
  virtual Status begin(aida::Tree& tree) = 0;
  /// Called for every record.
  virtual Status process(const data::Record& record, aida::Tree& tree) = 0;
  /// Batched hot path: consume a columnar batch in row order. The default
  /// materializes each row and forwards to process(), so existing plugins
  /// keep working unmodified; fast analyzers override this to read columns
  /// by slot id. Must be observably equivalent to calling process() per row.
  virtual Status process_batch(const data::RecordBatch& batch, aida::Tree& tree);
  /// Called when the dataset is exhausted (not on stop/pause).
  virtual Status end(aida::Tree& tree) { (void)tree; return Status::ok(); }
};

using AnalyzerFactory = std::function<std::unique_ptr<Analyzer>()>;

/// Process-wide registry of natively installed analyzers (the "data format
/// readers / analysis classes" pre-installed on the paper's worker nodes).
class AnalyzerRegistry {
 public:
  static AnalyzerRegistry& instance();

  Status register_factory(const std::string& name, AnalyzerFactory factory);
  Result<std::unique_ptr<Analyzer>> create(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  mutable Mutex mutex_{LockRank::kRegistry, "analyzer-registry"};
  std::map<std::string, AnalyzerFactory> factories_ IPA_GUARDED_BY(mutex_);
};

/// PawScript-backed analyzer. The script must define
/// process(event, tree); begin(tree) and end(tree) are optional.
class ScriptAnalyzer final : public Analyzer {
 public:
  static Result<std::unique_ptr<ScriptAnalyzer>> compile(
      const std::string& source, script::InterpOptions options = {});

  Status begin(aida::Tree& tree) override;
  Status process(const data::Record& record, aida::Tree& tree) override;
  /// Fast path: one cursor object per batch resolves field names to schema
  /// slots once, then every process(event, tree) call reads columns by index.
  Status process_batch(const data::RecordBatch& batch, aida::Tree& tree) override;
  Status end(aida::Tree& tree) override;

  /// print() output accumulated by the script.
  std::vector<std::string>& script_output() { return interp_.output(); }

 private:
  explicit ScriptAnalyzer(script::Interp interp) : interp_(std::move(interp)) {}

  script::Interp interp_;
  // Cursor reused across process_batch calls: the engine feeds one batch
  // object for the whole run, so the cursor's name→slot cache stays warm.
  std::shared_ptr<script::BatchEventObject> cursor_;
  const data::RecordBatch* cursor_batch_ = nullptr;
};

/// Build an analyzer from a staged code bundle.
Result<std::unique_ptr<Analyzer>> make_analyzer(const CodeBundle& bundle,
                                                script::InterpOptions options = {});

}  // namespace ipa::engine
