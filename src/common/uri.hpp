// URI parsing for IPA endpoint references and dataset locations:
//   http://host:port/path, gftp://storage0:2811/datasets/lc/run7.ipd,
//   inproc://service-name, file:///abs/path, db://host/table?lo=0&hi=999
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace ipa {

struct Uri {
  std::string scheme;   // "http", "gftp", "inproc", "file", "db"
  std::string host;     // empty for file:/// and inproc://name (name in host)
  std::uint16_t port = 0;  // 0 = unspecified
  std::string path;     // always begins with '/' when non-empty
  std::map<std::string, std::string> query;  // decoded key -> value

  /// Parse a URI string; rejects missing scheme or malformed port.
  static Result<Uri> parse(std::string_view text);

  /// Reassemble into canonical text form.
  std::string to_string() const;

  /// Query parameter or fallback.
  std::string query_or(std::string_view key, std::string fallback = "") const;

  friend bool operator==(const Uri& a, const Uri& b) = default;
};

}  // namespace ipa
