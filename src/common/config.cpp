#include "common/config.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace ipa {

Result<Config> Config::parse(std::string_view text) {
  Config cfg;
  int line_no = 0;
  for (const auto& raw_line : strings::split(text, '\n')) {
    ++line_no;
    std::string_view line = strings::trim(raw_line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return invalid_argument(
          strings::format("config line %d: expected 'key = value', got '%.*s'",
                          line_no, static_cast<int>(line.size()), line.data()));
    }
    const std::string_view key = strings::trim(line.substr(0, eq));
    const std::string_view value = strings::trim(line.substr(eq + 1));
    if (key.empty()) {
      return invalid_argument(strings::format("config line %d: empty key", line_no));
    }
    cfg.set(std::string(key), std::string(value));
  }
  return cfg;
}

Result<Config> Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return not_found("config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::contains(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::string Config::get_string(std::string_view key, std::string fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? std::move(fallback) : it->second;
}

std::int64_t Config::get_int(std::string_view key, std::int64_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  std::int64_t v = 0;
  return strings::parse_i64(it->second, v) ? v : fallback;
}

double Config::get_double(std::string_view key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  double v = 0;
  return strings::parse_f64(it->second, v) ? v : fallback;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  bool v = false;
  return strings::parse_bool(it->second, v) ? v : fallback;
}

Result<std::string> Config::require_string(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return not_found("config key: " + std::string(key));
  return it->second;
}

Result<std::int64_t> Config::require_int(std::string_view key) const {
  IPA_ASSIGN_OR_RETURN(const std::string text, require_string(key));
  std::int64_t v = 0;
  if (!strings::parse_i64(text, v)) {
    return invalid_argument("config key " + std::string(key) + ": not an integer: " + text);
  }
  return v;
}

Result<double> Config::require_double(std::string_view key) const {
  IPA_ASSIGN_OR_RETURN(const std::string text, require_string(key));
  double v = 0;
  if (!strings::parse_f64(text, v)) {
    return invalid_argument("config key " + std::string(key) + ": not a number: " + text);
  }
  return v;
}

Config Config::section(std::string_view prefix) const {
  Config out;
  std::string full(prefix);
  full += '.';
  for (const auto& [key, value] : entries_) {
    if (strings::starts_with(key, full)) {
      out.set(key.substr(full.size()), value);
    }
  }
  return out;
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  return out;
}

}  // namespace ipa
