#include "common/ids.hpp"

#include <atomic>
#include <chrono>
#include <string_view>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/sync.hpp"

namespace ipa {
namespace {

std::atomic<std::uint64_t> g_sequence{0};

std::uint64_t random_word() {
  static Mutex mutex{LockRank::kIds, "ids-rng"};
  static Rng rng(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  LockGuard lock(mutex);
  return rng.next();
}

}  // namespace

std::string make_id(std::string_view prefix) {
  const std::uint64_t seq = next_sequence();
  const std::uint64_t rnd = random_word() & 0xffffffULL;
  return strings::format("%.*s-%06llx%04llx", static_cast<int>(prefix.size()), prefix.data(),
                         static_cast<unsigned long long>(rnd),
                         static_cast<unsigned long long>(seq & 0xffff));
}

std::uint64_t next_sequence() {
  return g_sequence.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace ipa
