// Minimal leveled, thread-safe logger for the IPA framework.
//
// Usage:
//   IPA_LOG(info) << "session " << id << " created";
//
// The global level defaults to kWarn so tests and benches stay quiet;
// examples raise it to kInfo to narrate the framework's steps.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace ipa::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(Level level);

/// Global threshold; messages below it are discarded at stream-build time.
Level global_level();
void set_global_level(Level level);

/// Sink override: when set, formatted lines go here instead of stderr.
/// A std::function so sinks can capture state (test capture buffers, the
/// metrics layer's per-level line counters). Pass an empty function (or
/// nullptr) to restore stderr.
///
/// Thread-safe: the sink may be swapped while other threads emit; an
/// in-flight emit keeps the sink it started with alive until the call
/// returns. Returns the previously installed sink so wrappers can chain.
using SinkFn = std::function<void(Level, const std::string& line)>;
SinkFn set_sink(SinkFn sink);

namespace detail {

/// One log statement: accumulates a line, emits on destruction.
class LineBuilder {
 public:
  LineBuilder(Level level, const char* file, int line);
  ~LineBuilder();
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace ipa::log

#define IPA_LOG_LEVEL_trace ::ipa::log::Level::kTrace
#define IPA_LOG_LEVEL_debug ::ipa::log::Level::kDebug
#define IPA_LOG_LEVEL_info ::ipa::log::Level::kInfo
#define IPA_LOG_LEVEL_warn ::ipa::log::Level::kWarn
#define IPA_LOG_LEVEL_error ::ipa::log::Level::kError

#define IPA_LOG(level)                                              \
  if (IPA_LOG_LEVEL_##level >= ::ipa::log::global_level())          \
  ::ipa::log::detail::LineBuilder(IPA_LOG_LEVEL_##level, __FILE__, __LINE__)
