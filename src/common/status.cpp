#include "common/status.hpp"

namespace ipa {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnauthenticated: return "UNAUTHENTICATED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(ipa::to_string(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::with_prefix(std::string_view prefix) const {
  if (is_ok()) return *this;
  std::string msg(prefix);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

Status invalid_argument(std::string msg) { return {StatusCode::kInvalidArgument, std::move(msg)}; }
Status not_found(std::string msg) { return {StatusCode::kNotFound, std::move(msg)}; }
Status already_exists(std::string msg) { return {StatusCode::kAlreadyExists, std::move(msg)}; }
Status permission_denied(std::string msg) { return {StatusCode::kPermissionDenied, std::move(msg)}; }
Status unauthenticated(std::string msg) { return {StatusCode::kUnauthenticated, std::move(msg)}; }
Status failed_precondition(std::string msg) { return {StatusCode::kFailedPrecondition, std::move(msg)}; }
Status out_of_range(std::string msg) { return {StatusCode::kOutOfRange, std::move(msg)}; }
Status unavailable(std::string msg) { return {StatusCode::kUnavailable, std::move(msg)}; }
Status deadline_exceeded(std::string msg) { return {StatusCode::kDeadlineExceeded, std::move(msg)}; }
Status aborted(std::string msg) { return {StatusCode::kAborted, std::move(msg)}; }
Status resource_exhausted(std::string msg) { return {StatusCode::kResourceExhausted, std::move(msg)}; }
Status unimplemented(std::string msg) { return {StatusCode::kUnimplemented, std::move(msg)}; }
Status internal_error(std::string msg) { return {StatusCode::kInternal, std::move(msg)}; }
Status data_loss(std::string msg) { return {StatusCode::kDataLoss, std::move(msg)}; }
Status cancelled(std::string msg) { return {StatusCode::kCancelled, std::move(msg)}; }

}  // namespace ipa
