// Status / Result error-handling vocabulary used across all IPA modules.
//
// No exceptions cross module boundaries; fallible operations return
// ipa::Status or ipa::Result<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ipa {

/// Canonical error categories, loosely modeled after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kUnauthenticated,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kDeadlineExceeded,
  kAborted,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kDataLoss,
  kCancelled,
};

/// Human-readable name of a status code ("OK", "NOT_FOUND", ...).
std::string_view to_string(StatusCode code);

/// A success-or-error value: code plus a contextual message.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message".
  std::string to_string() const;

  /// Returns a copy with `prefix: ` prepended to the message.
  Status with_prefix(std::string_view prefix) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Factory helpers mirroring the StatusCode enumerators.
Status invalid_argument(std::string msg);
Status not_found(std::string msg);
Status already_exists(std::string msg);
Status permission_denied(std::string msg);
Status unauthenticated(std::string msg);
Status failed_precondition(std::string msg);
Status out_of_range(std::string msg);
Status unavailable(std::string msg);
Status deadline_exceeded(std::string msg);
Status aborted(std::string msg);
Status resource_exhausted(std::string msg);
Status unimplemented(std::string msg);
Status internal_error(std::string msg);
Status data_loss(std::string msg);
Status cancelled(std::string msg);

/// A value-or-Status, analogous to absl::StatusOr / std::expected.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).is_ok() && "Result from OK status");
  }

  bool is_ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return is_ok(); }

  /// Status of the result; Status::ok() when a value is held.
  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const& { return is_ok() ? value() : std::move(fallback); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace ipa

/// Propagate a non-OK Status from an expression.
#define IPA_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::ipa::Status _ipa_st = (expr);                \
    if (!_ipa_st.is_ok()) return _ipa_st;          \
  } while (0)

/// Evaluate a Result expression; bind its value to `lhs` or return the error.
#define IPA_ASSIGN_OR_RETURN(lhs, expr)            \
  auto IPA_CONCAT_(_ipa_res_, __LINE__) = (expr);  \
  if (!IPA_CONCAT_(_ipa_res_, __LINE__).is_ok())   \
    return IPA_CONCAT_(_ipa_res_, __LINE__).status(); \
  lhs = std::move(IPA_CONCAT_(_ipa_res_, __LINE__)).value()

#define IPA_CONCAT_INNER_(a, b) a##b
#define IPA_CONCAT_(a, b) IPA_CONCAT_INNER_(a, b)
