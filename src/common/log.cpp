#include "common/log.hpp"

#include <chrono>
#include <cstdio>
#include <memory>

#include "common/sync.hpp"

namespace ipa::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
// shared_ptr so an emit in flight keeps the sink it grabbed alive even if
// another thread swaps it mid-call.
Mutex g_sink_mutex{LockRank::kLog, "log-sink"};
std::shared_ptr<const SinkFn> g_sink IPA_GUARDED_BY(g_sink_mutex);
Mutex g_emit_mutex{LockRank::kLog, "log-emit"};

std::shared_ptr<const SinkFn> current_sink() {
  LockGuard lock(g_sink_mutex);
  return g_sink;
}

}  // namespace

std::string_view to_string(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

Level global_level() { return g_level.load(std::memory_order_relaxed); }
void set_global_level(Level level) { g_level.store(level, std::memory_order_relaxed); }
SinkFn set_sink(SinkFn sink) {
  auto next = sink ? std::make_shared<const SinkFn>(std::move(sink))
                   : std::shared_ptr<const SinkFn>();
  std::shared_ptr<const SinkFn> prev;
  {
    LockGuard lock(g_sink_mutex);
    prev = std::move(g_sink);
    g_sink = std::move(next);
  }
  return prev ? *prev : SinkFn();
}

namespace detail {

LineBuilder::LineBuilder(Level level, const char* file, int line) : level_(level) {
  // Strip directories; keep the basename for compact prefixes.
  std::string_view path(file);
  if (auto pos = path.rfind('/'); pos != std::string_view::npos) path.remove_prefix(pos + 1);
  stream_ << '[' << to_string(level) << ' ' << path << ':' << line << "] ";
}

LineBuilder::~LineBuilder() {
  std::string line = stream_.str();
  if (auto sink = current_sink()) {
    (*sink)(level_, line);
    return;
  }
  LockGuard lock(g_emit_mutex);
  std::fputs(line.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace ipa::log
