#include "common/log.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace ipa::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::atomic<SinkFn> g_sink{nullptr};
std::mutex g_emit_mutex;

}  // namespace

std::string_view to_string(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

Level global_level() { return g_level.load(std::memory_order_relaxed); }
void set_global_level(Level level) { g_level.store(level, std::memory_order_relaxed); }
void set_sink(SinkFn sink) { g_sink.store(sink, std::memory_order_relaxed); }

namespace detail {

LineBuilder::LineBuilder(Level level, const char* file, int line) : level_(level) {
  // Strip directories; keep the basename for compact prefixes.
  std::string_view path(file);
  if (auto pos = path.rfind('/'); pos != std::string_view::npos) path.remove_prefix(pos + 1);
  stream_ << '[' << to_string(level) << ' ' << path << ':' << line << "] ";
}

LineBuilder::~LineBuilder() {
  std::string line = stream_.str();
  if (SinkFn sink = g_sink.load(std::memory_order_relaxed)) {
    sink(level_, line);
    return;
  }
  std::lock_guard lock(g_emit_mutex);
  std::fputs(line.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace ipa::log
