// Fixed-size thread pool over MpmcQueue.
//
// Used for parallel part transfers (the paper's "transfers are done in
// parallel") and for running in-process analysis engines in functional mode.
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mpmc_queue.hpp"

namespace ipa {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns false after shutdown() was called.
  bool post(std::function<void()> task);

  /// Enqueue a task and get a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    if (!post([task] { (*task)(); })) {
      // Pool already closed: run inline so the future is always satisfied.
      (*task)();
    }
    return fut;
  }

  /// Stop accepting tasks, drain the queue, join all workers. Idempotent.
  void shutdown();

  std::size_t size() const { return workers_.size(); }

 private:
  MpmcQueue<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;
};

/// Process-shared pool for staging work: part writer tasks and per-seat
/// RPC fan-out. The tasks are latency-bound (disk and network waits), so
/// the pool is sized generously rather than to the core count. Created on
/// first use, joined at process exit.
ThreadPool& staging_pool();

}  // namespace ipa
