// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ipa::strings {

/// Split `s` on `sep`; empty fields are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Split on `sep`, dropping empty fields and trimming whitespace per field.
std::vector<std::string> split_trimmed(std::string_view s, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

/// Case-insensitive ASCII equality (HTTP header names etc).
bool iequals(std::string_view a, std::string_view b);

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "3.2 KB", "1.4 MB", ... for byte counts.
std::string human_bytes(std::uint64_t bytes);

/// "78 s", "4 min 19 s", "45 min", "1 h 05 min" in the paper's table style.
std::string human_duration_s(double seconds);

/// Parse helpers returning false on malformed input (no exceptions).
bool parse_i64(std::string_view s, std::int64_t& out);
bool parse_u64(std::string_view s, std::uint64_t& out);
bool parse_f64(std::string_view s, double& out);
bool parse_bool(std::string_view s, bool& out);

/// Glob-style match supporting '*' and '?' (used by catalog queries).
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace ipa::strings
