// Opaque identifier generation for sessions, jobs, datasets and resources.
#pragma once

#include <cstdint>
#include <string>

namespace ipa {

/// Unique id like "sess-1a2b3c4d5e6f". Thread-safe; mixes a process-wide
/// counter with a random stream so ids are unique within and across runs.
std::string make_id(std::string_view prefix);

/// Monotonic process-wide counter (1, 2, 3, ...). Thread-safe.
std::uint64_t next_sequence();

}  // namespace ipa
