// Deterministic pseudo-random number generation (xoshiro256** + splitmix64).
//
// All stochastic behaviour in IPA (event generation, simulated jitter,
// synthetic workloads) flows through Rng so runs are reproducible from a
// single seed, as required for regression-testing the experiments.
#pragma once

#include <cstdint>
#include <cmath>

namespace ipa {

/// splitmix64 step; used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// reimplemented here; period 2^256-1, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  static constexpr std::uint64_t kDefaultSeed = 0x49504132303036ULL;  // "IPA2006"

  explicit Rng(std::uint64_t seed = kDefaultSeed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  std::uint64_t operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive (Lemire-style rejection-free
  /// multiply-shift; tiny bias acceptable for simulation workloads).
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next();  // full range
    const unsigned __int128 wide = static_cast<unsigned __int128>(next()) * span;
    return lo + static_cast<std::uint64_t>(wide >> 64);
  }

  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_u64(0, static_cast<std::uint64_t>(hi - lo)));
  }

  /// Standard normal via Box-Muller (no cached spare: keeps state trivial).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Exponential with rate lambda (>0).
  double exponential(double lambda) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / lambda;
  }

  /// Breit-Wigner (Cauchy) distribution: the natural line shape of a decaying
  /// resonance, used by the physics event generator.
  double breit_wigner(double mean, double gamma) {
    return mean + 0.5 * gamma * std::tan(3.141592653589793 * (uniform() - 0.5));
  }

  /// true with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent stream (for per-worker generators).
  Rng split() { return Rng(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace ipa
